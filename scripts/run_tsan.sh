#!/bin/sh
# Builds the concurrency-sensitive test binaries with ThreadSanitizer and
# runs them with a multi-thread pool. Catches data races in the parallel
# execution layer (common/parallel.h) and the kernels built on it.
#
# Death tests fork under TSan and produce noisy false positives, so they
# are filtered out.
set -e
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DSRDA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan --target \
  parallel_test matrix_test sparse_test linalg_lsqr_test core_srda_test \
  blocking_test simd_test linalg_cholesky_test linalg_cholesky_update_test \
  solver_test obs_test io_test sharded_test sketch_test classify_test \
  model_test serving_test

export SRDA_NUM_THREADS=4
for t in parallel_test matrix_test sparse_test linalg_lsqr_test \
         core_srda_test blocking_test simd_test linalg_cholesky_test \
         linalg_cholesky_update_test solver_test obs_test io_test \
         sharded_test sketch_test classify_test model_test \
         serving_test; do
  echo "== TSan: $t =="
  ./build-tsan/tests/"$t" --gtest_filter='-*DeathTest*'
done

# Second pass under chunk->thread pinning: the residue scheduler replaces
# the atomic chunk cursor, so its claim/retire handshake needs its own
# race coverage.
export SRDA_PIN_THREADS=1
for t in parallel_test simd_test core_srda_test; do
  echo "== TSan (pinned): $t =="
  ./build-tsan/tests/"$t" --gtest_filter='-*DeathTest*'
done
echo "TSan suite passed."
