#!/bin/sh
# Re-tunes the cache-blocking knobs (SRDA_BLOCK_KC/MC/NC/NB) for this
# machine: builds the complexity bench and runs its coordinate-descent
# sweep (bench_table1_complexity --sweep-blocks), which prints the
# winning configuration as export lines and refreshes
# BENCH_kernel_blocking.json at the repository root with blocked-vs-naive
# numbers measured under the tuned shapes.
#
# Pass --full to sweep at n=1024 (the size the committed numbers use);
# the default n=512 sweep finishes in well under a minute.
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build --target bench_table1_complexity -j
./build/bench/bench_table1_complexity --sweep-blocks "$@"
