#!/bin/sh
# Builds everything, runs the full test suite and every benchmark, records
# the outputs the repository's deliverables reference, and finishes with a
# perf-regression summary: every BENCH_*.json the benches rewrote is diffed
# against the committed baseline with srda_bench_diff, and a regression in
# any gated metric fails the script.
set -e
cd "$(dirname "$0")/.."

# Snapshot the committed bench baselines before the benches overwrite them.
baseline_dir=$(mktemp -d)
for f in BENCH_*.json; do
  [ -f "$f" ] && cp "$f" "$baseline_dir/"
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

# Perf-regression summary table (lower/higher-is-better metrics gated at
# the default threshold; shape fields are informational only).
echo ""
echo "== Bench regression summary (vs committed baselines) =="
status=0
for f in BENCH_*.json; do
  [ -f "$baseline_dir/$f" ] || continue
  echo "--- $f"
  if ! build/tools/srda_bench_diff "$baseline_dir/$f" "$f"; then
    status=1
  fi
done
rm -rf "$baseline_dir"
if [ "$status" -ne 0 ]; then
  echo "PERF REGRESSION detected (see tables above)"
fi
exit "$status"
