#!/bin/sh
# Builds everything, runs the full test suite and every benchmark, and
# records the outputs the repository's deliverables reference.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
