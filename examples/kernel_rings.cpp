// Kernel SRDA example: concentric rings that no linear discriminant can
// separate. Demonstrates the kernel extension the paper cites as [14]
// (efficient kernel discriminant analysis via spectral regression).
//
// Run: ./build/examples/kernel_rings

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/ksrda.h"
#include "core/srda.h"
#include "kernel/kernel.h"

int main() {
  using namespace srda;

  // Three concentric noisy rings.
  Rng rng(31);
  const int per_class = 120;
  const double radii[] = {1.0, 3.0, 5.0};
  Matrix x(3 * per_class, 2);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      const double angle = rng.NextUniform(0.0, 2.0 * M_PI);
      x(row, 0) = radii[k] * std::cos(angle) + 0.2 * rng.NextGaussian();
      x(row, 1) = radii[k] * std::sin(angle) + 0.2 * rng.NextGaussian();
      labels.push_back(k);
    }
  }
  std::cout << "Three concentric rings, " << x.rows() << " points\n";

  // Linear SRDA cannot separate rings.
  const SrdaModel linear = FitSrda(x, labels, 3);
  CentroidClassifier linear_classifier;
  linear_classifier.Fit(linear.embedding.Transform(x), labels, 3);
  const double linear_error = ErrorRate(
      linear_classifier.Predict(linear.embedding.Transform(x)), labels);
  std::cout << "Linear SRDA training error: " << 100.0 * linear_error
            << "% (chance is 66.7%)\n";

  // Kernel SRDA with an RBF kernel (bandwidth by the median heuristic).
  const double gamma = RbfGammaMedianHeuristic(x);
  std::cout << "RBF gamma by median heuristic: " << gamma << "\n";
  const KsrdaModel kernel_model =
      FitKsrda(x, labels, 3, std::make_shared<RbfKernel>(gamma));
  CentroidClassifier kernel_classifier;
  kernel_classifier.Fit(kernel_model.Transform(x), labels, 3);
  const double kernel_error =
      ErrorRate(kernel_classifier.Predict(kernel_model.Transform(x)), labels);
  std::cout << "Kernel SRDA training error: " << 100.0 * kernel_error
            << "%\n";
  return 0;
}
