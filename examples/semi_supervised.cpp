// Semi-supervised SRDA example: a handful of labeled spoken-letter samples
// plus a pool of unlabeled recordings. Demonstrates the graph-based
// generalization sketched in Section III of the paper (its references [12],
// [15], [16]): the kNN graph over all samples pulls the discriminant
// directions toward the data manifold, which helps when labels are scarce.
//
// Run: ./build/examples/semi_supervised

#include <iostream>
#include <vector>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/semi_supervised_srda.h"
#include "core/srda.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"

int main() {
  using namespace srda;

  SpokenLetterGeneratorOptions options;
  options.num_classes = 8;
  options.examples_per_class = 60;
  options.num_features = 64;
  options.class_separation = 0.8;
  options.speaker_strength = 0.55;
  options.output_scale = 1.0;
  const DenseDataset dataset = GenerateSpokenLetterDataset(options);
  const int c = dataset.num_classes;

  // Label only 2 samples per class; the rest stay unlabeled.
  Rng rng(9);
  const TrainTestSplit split =
      StratifiedSplitByCount(dataset.labels, c, 2, &rng);
  std::vector<int> partial_labels(dataset.labels.size(), kUnlabeled);
  for (int index : split.train) {
    partial_labels[index] = dataset.labels[index];
  }
  std::cout << "Dataset: " << dataset.features.rows() << " samples, "
            << split.train.size() << " labeled, "
            << dataset.features.rows() - static_cast<int>(split.train.size())
            << " unlabeled\n";

  // Supervised SRDA sees only the labeled subset.
  const DenseDataset labeled_only = Subset(dataset, split.train);
  const SrdaModel supervised =
      FitSrda(labeled_only.features, labeled_only.labels, c);
  CentroidClassifier supervised_classifier;
  supervised_classifier.Fit(
      supervised.embedding.Transform(labeled_only.features),
      labeled_only.labels, c);
  const DenseDataset test = Subset(dataset, split.test);
  const double supervised_error = ErrorRate(
      supervised_classifier.Predict(supervised.embedding.Transform(
          test.features)),
      test.labels);

  // Semi-supervised SRDA sees everything (features of unlabeled included).
  SemiSupervisedSrdaOptions semi_options;
  semi_options.graph_weight = 0.3;
  semi_options.graph.num_neighbors = 7;
  semi_options.alpha = 0.05;
  const SemiSupervisedSrdaModel semi =
      FitSemiSupervisedSrda(dataset.features, partial_labels, c,
                            semi_options);
  CentroidClassifier semi_classifier;
  semi_classifier.Fit(
      semi.embedding.Transform(labeled_only.features),
      labeled_only.labels, c);
  const double semi_error = ErrorRate(
      semi_classifier.Predict(semi.embedding.Transform(test.features)),
      test.labels);

  std::cout << "Supervised SRDA (2 labels/class) test error:       "
            << 100.0 * supervised_error << "%\n"
            << "Semi-supervised SRDA (labels + unlabeled pool):    "
            << 100.0 * semi_error << "%\n";
  return 0;
}
