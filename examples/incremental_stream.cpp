// Incremental SRDA example: stream digit images one at a time, re-solving
// the discriminant embedding periodically. The paper's IDR/QR baseline is
// motivated by exactly this setting; SRDA's normal-equations form supports
// it through O(n^2) Cholesky rank-1 updates per sample.
//
// Run: ./build/examples/incremental_stream

#include <iostream>
#include <vector>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/incremental_srda.h"
#include "dataset/digit_generator.h"
#include "dataset/split.h"

int main() {
  using namespace srda;

  DigitGeneratorOptions options;
  options.examples_per_class = 80;
  options.image_size = 12;  // 144 features
  const DenseDataset dataset = GenerateDigitDataset(options);
  const int n = dataset.features.cols();

  Rng rng(17);
  const TrainTestSplit split =
      StratifiedSplitByCount(dataset.labels, 10, 50, &rng);
  const DenseDataset stream = Subset(dataset, split.train);
  const DenseDataset test = Subset(dataset, split.test);

  // Shuffle the stream order.
  std::vector<int> order;
  for (int i = 0; i < stream.features.rows(); ++i) order.push_back(i);
  rng.Shuffle(&order);

  IncrementalSrda trainer(n, 10, /*alpha=*/1.0);
  Stopwatch total;
  int streamed = 0;
  std::cout << "streamed  test-error%  cumulative-train-s\n";
  for (int index : order) {
    trainer.AddSample(stream.features.Row(index),
                      stream.labels[static_cast<size_t>(index)]);
    ++streamed;
    const bool report = trainer.ready() &&
                        (streamed % 100 == 0 || streamed == 20 ||
                         streamed == static_cast<int>(order.size()));
    if (!report) continue;
    const LinearEmbedding embedding = trainer.Solve();
    // Evaluate with centroids from everything streamed so far.
    DenseDataset seen;
    seen.num_classes = 10;
    std::vector<int> seen_indices(order.begin(), order.begin() + streamed);
    seen = Subset(stream, seen_indices);
    CentroidClassifier classifier;
    classifier.Fit(embedding.Transform(seen.features), seen.labels, 10);
    const double error = ErrorRate(
        classifier.Predict(embedding.Transform(test.features)), test.labels);
    std::cout << streamed << "  " << 100.0 * error << "  "
              << total.ElapsedSeconds() << "\n";
  }
  std::cout << "\nEach AddSample costs O(n^2); no pass over past samples is "
               "ever made.\n";
  return 0;
}
