// Visualization example: embed handwritten digits into the first two SRDA
// discriminant directions and render the embedding as an ASCII scatter plot.
// Shows that the learned 2-D space clusters the classes.
//
// Run: ./build/examples/digits_embedding

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/srda.h"
#include "dataset/digit_generator.h"
#include "dataset/split.h"

int main() {
  using namespace srda;

  DigitGeneratorOptions options;
  options.examples_per_class = 40;
  options.image_size = 16;
  const DenseDataset dataset = GenerateDigitDataset(options);

  // Use only digits 0, 1, 7 to keep a readable 2-D plot.
  std::vector<int> keep;
  for (int i = 0; i < dataset.features.rows(); ++i) {
    const int digit = dataset.labels[i];
    if (digit == 0 || digit == 1 || digit == 7) keep.push_back(i);
  }
  DenseDataset three = Subset(dataset, keep);
  // Relabel {0,1,7} -> {0,1,2}.
  for (int& label : three.labels) label = label == 0 ? 0 : (label == 1 ? 1 : 2);
  three.num_classes = 3;

  const SrdaModel model = FitSrda(three.features, three.labels, 3);
  const Matrix embedded = model.embedding.Transform(three.features);
  std::cout << "Embedded " << embedded.rows() << " digit images into "
            << embedded.cols() << "-D SRDA space\n\n";

  // ASCII scatter plot of the two discriminant coordinates.
  constexpr int kWidth = 70;
  constexpr int kHeight = 24;
  double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
  for (int i = 0; i < embedded.rows(); ++i) {
    min_x = std::min(min_x, embedded(i, 0));
    max_x = std::max(max_x, embedded(i, 0));
    min_y = std::min(min_y, embedded(i, 1));
    max_y = std::max(max_y, embedded(i, 1));
  }
  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  const char glyphs[3] = {'0', '1', '7'};
  for (int i = 0; i < embedded.rows(); ++i) {
    const int px = static_cast<int>((embedded(i, 0) - min_x) /
                                    (max_x - min_x) * (kWidth - 1));
    const int py = static_cast<int>((embedded(i, 1) - min_y) /
                                    (max_y - min_y) * (kHeight - 1));
    canvas[static_cast<size_t>(kHeight - 1 - py)][static_cast<size_t>(px)] =
        glyphs[three.labels[i]];
  }
  std::cout << "+" << std::string(kWidth, '-') << "+\n";
  for (const std::string& row : canvas) std::cout << "|" << row << "|\n";
  std::cout << "+" << std::string(kWidth, '-') << "+\n";
  std::cout << "Each glyph is one image, placed at its 2-D SRDA embedding;\n"
               "well-separated clusters of 0s, 1s and 7s are expected.\n";
  return 0;
}
