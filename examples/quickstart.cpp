// Quickstart: train SRDA on a small synthetic problem and classify.
//
// Demonstrates the minimal end-to-end flow of the library:
//   data -> FitSrda -> LinearEmbedding -> CentroidClassifier -> error rate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>
#include <vector>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/srda.h"
#include "matrix/matrix.h"

int main() {
  using namespace srda;

  // Make a toy dataset: 3 Gaussian classes in 20 dimensions.
  const int kClasses = 3;
  const int kPerClass = 50;
  const int kDim = 20;
  Rng rng(123);
  Matrix features(kClasses * kPerClass, kDim);
  std::vector<int> labels;
  for (int k = 0; k < kClasses; ++k) {
    for (int i = 0; i < kPerClass; ++i) {
      const int row = k * kPerClass + i;
      for (int j = 0; j < kDim; ++j) {
        // Class centers at 4*k on the first three coordinates.
        features(row, j) = (j < 3 ? 4.0 * k : 0.0) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }

  // Train SRDA. alpha is the ridge regularizer (the paper's default is 1).
  SrdaOptions options;
  options.alpha = 1.0;
  const SrdaModel model = FitSrda(features, labels, kClasses, options);
  std::cout << "Trained SRDA: " << model.num_responses
            << " discriminant directions, input dim "
            << model.embedding.input_dim() << "\n";

  // Embed into the (c-1)-dimensional discriminant space and classify.
  const Matrix embedded = model.embedding.Transform(features);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, kClasses);
  const double training_error = ErrorRate(classifier.Predict(embedded),
                                          labels);
  std::cout << "Training error rate: " << 100.0 * training_error << "%\n";

  // Embed a new point and classify it.
  Matrix query(1, kDim);
  for (int j = 0; j < kDim; ++j) query(0, j) = (j < 3 ? 8.0 : 0.0);
  const std::vector<int> prediction =
      classifier.Predict(model.embedding.Transform(query));
  std::cout << "Query near class-2 center classified as: " << prediction[0]
            << "\n";
  return 0;
}
