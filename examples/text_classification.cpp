// Sparse text classification example: the paper's 20Newsgroups-style
// pipeline, exercising the SRDA sparse path (LSQR on CSR data, bias absorbed
// with the append-a-constant-feature trick, the data matrix never centered
// or densified).
//
// Run: ./build/examples/text_classification

#include <iostream>
#include <vector>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/srda.h"
#include "dataset/split.h"
#include "dataset/text_generator.h"

int main() {
  using namespace srda;

  TextGeneratorOptions options;
  options.num_topics = 20;
  options.docs_per_topic = 200;
  options.vocabulary_size = 26214;
  const SparseDataset corpus = GenerateTextDataset(options);
  std::cout << "Corpus: " << corpus.features.rows() << " documents, "
            << corpus.features.cols() << " terms, "
            << corpus.num_classes << " topics, avg "
            << corpus.features.AvgNonZerosPerRow()
            << " non-zero terms per document\n";

  Rng rng(7);
  const TrainTestSplit split = StratifiedSplitByFraction(
      corpus.labels, corpus.num_classes, 0.10, &rng);
  const SparseDataset train = Subset(corpus, split.train);
  const SparseDataset test = Subset(corpus, split.test);
  std::cout << "Split: " << train.features.rows() << " train / "
            << test.features.rows() << " test (10% labeled)\n";

  // SRDA with LSQR — the paper's configuration for 20Newsgroups
  // (15 iterations, alpha = 1).
  SrdaOptions srda_options;
  srda_options.solver = SrdaSolver::kLsqr;
  srda_options.lsqr_iterations = 15;
  srda_options.alpha = 1.0;
  Stopwatch watch;
  const SrdaModel model =
      FitSrda(train.features, train.labels, corpus.num_classes, srda_options);
  std::cout << "SRDA trained in " << watch.ElapsedSeconds() << " s ("
            << model.total_lsqr_iterations << " LSQR iterations across "
            << model.num_responses << " responses)\n";

  // Embed both sets (sparse transform) and classify with nearest centroid.
  const Matrix train_embedded = model.embedding.Transform(train.features);
  const Matrix test_embedded = model.embedding.Transform(test.features);
  CentroidClassifier classifier;
  classifier.Fit(train_embedded, train.labels, corpus.num_classes);
  const double error =
      100.0 * ErrorRate(classifier.Predict(test_embedded), test.labels);
  std::cout << "Test error rate: " << error << "% (chance would be "
            << 100.0 * (1.0 - 1.0 / corpus.num_classes) << "%)\n";
  return 0;
}
