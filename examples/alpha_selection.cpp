// Model selection example: pick SRDA's ridge parameter by stratified
// cross-validation, reproducing the paper's Figure 5 finding that a wide
// range of alpha works.
//
// Run: ./build/examples/alpha_selection

#include <iostream>
#include <vector>

#include "common/table_printer.h"
#include "dataset/spoken_letter_generator.h"
#include "select/model_selection.h"

int main() {
  using namespace srda;

  SpokenLetterGeneratorOptions options;
  options.num_classes = 10;
  options.examples_per_class = 40;
  options.num_features = 120;
  const DenseDataset dataset = GenerateSpokenLetterDataset(options);
  std::cout << "Dataset: " << dataset.features.rows() << " samples, "
            << dataset.features.cols() << " features, "
            << dataset.num_classes << " classes\n\n";

  const std::vector<double> alphas = {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
  const AlphaSearchResult result =
      SelectSrdaAlpha(dataset, alphas, /*num_folds=*/5, /*seed=*/2024);

  TablePrinter table({"alpha", "5-fold CV error %"});
  for (size_t i = 0; i < alphas.size(); ++i) {
    table.AddRow({FormatDouble(alphas[i], 4),
                  FormatDouble(100.0 * result.errors[i], 2)});
  }
  table.Print(std::cout);
  std::cout << "\nSelected alpha = " << result.best_alpha
            << " (the paper's Figure 5 observes SRDA is robust over a wide "
               "range,\nso close errors across the grid are expected).\n";
  return 0;
}
