// Face recognition example: the paper's PIE-style pipeline.
//
// Generates a face dataset (68 subjects, 16x16 pixels here), splits it with
// a small labeled set per subject, trains all four discriminant methods and
// compares their test error and training time — a miniature version of the
// paper's Tables III/IV experiment.
//
// Run: ./build/examples/face_recognition

#include <iostream>
#include <vector>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "core/srda.h"
#include "dataset/face_generator.h"
#include "dataset/split.h"

int main() {
  using namespace srda;

  FaceGeneratorOptions options;
  options.num_subjects = 68;
  options.images_per_subject = 30;
  options.image_size = 16;
  const DenseDataset dataset = GenerateFaceDataset(options);
  std::cout << "Face dataset: " << dataset.features.rows() << " images of "
            << dataset.num_classes << " subjects, "
            << dataset.features.cols() << " pixels each\n";

  Rng rng(2024);
  const TrainTestSplit split =
      StratifiedSplitByCount(dataset.labels, dataset.num_classes, 10, &rng);
  const DenseDataset train = Subset(dataset, split.train);
  const DenseDataset test = Subset(dataset, split.test);
  std::cout << "Split: " << train.features.rows() << " train / "
            << test.features.rows() << " test (10 per subject)\n\n";

  auto evaluate = [&](const LinearEmbedding& embedding) {
    CentroidClassifier classifier;
    classifier.Fit(embedding.Transform(train.features), train.labels,
                   train.num_classes);
    return 100.0 * ErrorRate(
        classifier.Predict(embedding.Transform(test.features)), test.labels);
  };

  TablePrinter table({"method", "test error %", "train time s"});
  {
    Stopwatch watch;
    const LdaModel model = FitLda(train.features, train.labels, 68);
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({"LDA", FormatDouble(evaluate(model.embedding), 2),
                  FormatDouble(seconds, 3)});
  }
  {
    Stopwatch watch;
    const RldaModel model = FitRlda(train.features, train.labels, 68);
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({"RLDA", FormatDouble(evaluate(model.embedding), 2),
                  FormatDouble(seconds, 3)});
  }
  {
    Stopwatch watch;
    const SrdaModel model = FitSrda(train.features, train.labels, 68);
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({"SRDA", FormatDouble(evaluate(model.embedding), 2),
                  FormatDouble(seconds, 3)});
  }
  {
    Stopwatch watch;
    const IdrQrModel model = FitIdrQr(train.features, train.labels, 68);
    const double seconds = watch.ElapsedSeconds();
    table.AddRow({"IDR/QR", FormatDouble(evaluate(model.embedding), 2),
                  FormatDouble(seconds, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper Tables III/IV): RLDA ~ SRDA best on "
               "accuracy,\nSRDA and IDR/QR fastest, plain LDA overfits the "
               "small labeled set.\n";
  return 0;
}
