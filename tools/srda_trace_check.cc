// srda_trace_check: validate the files the obs layer emits.
//
// Usage:
//   srda_trace_check FILE [--format=trace|prom|events] [--require=a,b,...]
//
// Formats:
//   trace   (default) Chrome trace JSON written by --trace-out
//           (TraceRecorder::WriteJsonFile); --require names spans.
//   prom    Prometheus text exposition written by --metrics-out or scraped
//           from /metrics; --require names metrics (post-sanitization,
//           e.g. srda_serve_requests).
//   events  JSONL event log written by --event-log / SRDA_EVENT_LOG;
//           --require names events (e.g. model.load).
//
// Exits 0 when FILE validates and every --require'd name appears at least
// once; prints the first violation to stderr and exits 1 otherwise. Used as
// the second half of the bench_smoke_trace / trace_schema_check ctest pair.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_trace_check FILE [--format=trace|prom|events] "
    "[--require=name1,name2,...]\n";

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> names;
  std::string item;
  std::istringstream stream(list);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

int Main(int argc, char** argv) {
  std::string path;
  std::string format = "trace";
  std::vector<std::string> required_names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    const std::string require_prefix = "--require=";
    if (arg.compare(0, require_prefix.size(), require_prefix) == 0) {
      const std::vector<std::string> names =
          SplitCommaList(arg.substr(require_prefix.size()));
      required_names.insert(required_names.end(), names.begin(), names.end());
      continue;
    }
    const std::string format_prefix = "--format=";
    if (arg.compare(0, format_prefix.size(), format_prefix) == 0) {
      format = arg.substr(format_prefix.size());
      if (format != "trace" && format != "prom" && format != "events") {
        std::cerr << "srda_trace_check: unknown format " << format << "\n"
                  << kUsage;
        return 1;
      }
      continue;
    }
    if (!path.empty()) {
      std::cerr << "srda_trace_check: unexpected argument " << arg << "\n"
                << kUsage;
      return 1;
    }
    path = arg;
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 1;
  }

  std::ifstream input(path);
  if (!input) {
    std::cerr << "srda_trace_check: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream contents;
  contents << input.rdbuf();

  std::string error;
  bool ok;
  if (format == "prom") {
    ok = ValidatePrometheusText(contents.str(), required_names, &error);
  } else if (format == "events") {
    ok = ValidateJsonlEvents(contents.str(), required_names, &error);
  } else {
    ok = ValidateTraceJson(contents.str(), required_names, &error);
  }
  if (!ok) {
    std::cerr << "srda_trace_check: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": ok\n";
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
