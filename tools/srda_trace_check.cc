// srda_trace_check: validate a Chrome trace JSON file written by
// --trace-out (TraceRecorder::WriteJsonFile).
//
// Usage:
//   srda_trace_check FILE [--require=name1,name2,...]
//
// Exits 0 when FILE parses as a Chrome trace_event document whose events all
// carry the required fields and every --require'd span name appears at least
// once; prints the first violation to stderr and exits 1 otherwise. Used as
// the second half of the bench_smoke_trace / trace_schema_check ctest pair.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_trace_check FILE [--require=name1,name2,...]\n";

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> names;
  std::string item;
  std::istringstream stream(list);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

int Main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required_names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    const std::string require_prefix = "--require=";
    if (arg.compare(0, require_prefix.size(), require_prefix) == 0) {
      const std::vector<std::string> names =
          SplitCommaList(arg.substr(require_prefix.size()));
      required_names.insert(required_names.end(), names.begin(), names.end());
      continue;
    }
    if (!path.empty()) {
      std::cerr << "srda_trace_check: unexpected argument " << arg << "\n"
                << kUsage;
      return 1;
    }
    path = arg;
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 1;
  }

  std::ifstream input(path);
  if (!input) {
    std::cerr << "srda_trace_check: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream contents;
  contents << input.rdbuf();

  std::string error;
  if (!ValidateTraceJson(contents.str(), required_names, &error)) {
    std::cerr << "srda_trace_check: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": ok\n";
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
