// srda_generate: emit one of the paper-analogue synthetic datasets as a
// CSV or LibSVM file, so the CLI tools (and any external program) can run
// on exactly the data the benchmarks use.
//
// Usage:
//   srda_generate --dataset=faces|letters|digits|text --out=FILE
//                 [--seed=1] [--scale=small|full]
//
// faces/letters/digits write CSV; text writes LibSVM.

#include <iostream>
#include <string>

#include "common/arg_parser.h"
#include "common/check.h"
#include "dataset/digit_generator.h"
#include "dataset/face_generator.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"
#include "io/dataset_io.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_generate --dataset=faces|letters|digits|text --out=FILE\n"
    "                     [--seed=1] [--scale=small|full]\n";

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string dataset_name = args.GetString("dataset", "");
  const std::string out_path = args.GetString("out", "");
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string scale = args.GetString("scale", "small");
  SRDA_CHECK(args.UnusedFlags().empty())
      << "unknown flag --" << args.UnusedFlags().front() << "\n" << kUsage;
  SRDA_CHECK(!dataset_name.empty() && !out_path.empty())
      << "--dataset and --out are required\n" << kUsage;
  SRDA_CHECK(scale == "small" || scale == "full")
      << "unknown --scale=" << scale << "\n" << kUsage;
  const bool full = scale == "full";

  if (dataset_name == "faces") {
    FaceGeneratorOptions options;
    options.images_per_subject = full ? 170 : 40;
    options.image_size = full ? 32 : 16;
    options.seed = seed;
    const DenseDataset dataset = GenerateFaceDataset(options);
    WriteDenseCsvFile(dataset, out_path);
    std::cout << "wrote " << dataset.features.rows() << " x "
              << dataset.features.cols() << " faces dataset to " << out_path
              << "\n";
  } else if (dataset_name == "letters") {
    SpokenLetterGeneratorOptions options;
    options.examples_per_class = full ? 240 : 130;
    options.num_features = full ? 617 : 200;
    options.seed = seed;
    const DenseDataset dataset = GenerateSpokenLetterDataset(options);
    WriteDenseCsvFile(dataset, out_path);
    std::cout << "wrote " << dataset.features.rows() << " x "
              << dataset.features.cols() << " letters dataset to "
              << out_path << "\n";
  } else if (dataset_name == "digits") {
    DigitGeneratorOptions options;
    options.examples_per_class = full ? 400 : 250;
    options.image_size = full ? 28 : 16;
    options.seed = seed;
    const DenseDataset dataset = GenerateDigitDataset(options);
    WriteDenseCsvFile(dataset, out_path);
    std::cout << "wrote " << dataset.features.rows() << " x "
              << dataset.features.cols() << " digits dataset to " << out_path
              << "\n";
  } else if (dataset_name == "text") {
    TextGeneratorOptions options;
    options.docs_per_topic = full ? 947 : 250;
    options.seed = seed;
    const SparseDataset dataset = GenerateTextDataset(options);
    WriteLibSvmFile(dataset, out_path);
    std::cout << "wrote " << dataset.features.rows() << " docs ("
              << dataset.features.AvgNonZerosPerRow()
              << " nnz/doc) text dataset to " << out_path << "\n";
  } else {
    SRDA_CHECK(false) << "unknown --dataset=" << dataset_name << "\n"
                      << kUsage;
  }
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
