// srda_serve: batched prediction serving against a saved model.
//
// Usage:
//   srda_serve --model=FILE --data=FILE [--format=csv|binary]
//              [--clients=4] [--client-block=64] [--requests=100000]
//              [--max-batch=256] [--max-delay-ms=0.2]
//              [--predictions-out=FILE] [--json-out=FILE]
//              [--trace-out=FILE] [--metrics]
//              [--http-port=N] [--metrics-window=10]
//              [--metrics-out=FILE] [--metrics-interval=SEC]
//              [--event-log=FILE] [--linger=SEC]
//
// Loads a model-store file (text, SRDM binary, or legacy — sniffed), then
// drives synthetic traffic through the micro-batching PredictionService
// (serve/serving.h): --clients threads each submit blocks of
// --client-block query rows drawn from the data file, cycling until
// --requests total rows are served. Blocks from different clients coalesce
// into shared batches closed by the --max-batch / --max-delay-ms policy.
// Reported: sustained predictions/s, p50/p99 request latency (exact, from
// per-request samples), and the realized batch-size distribution.
//
// Because per-row scoring is independent of batch composition, the served
// predictions are exactly the ones srda_predict produces on the same data.
// --predictions-out runs one ordered pass through the service and writes
// one raw label per line — byte-identical to srda_predict's output.
//
// --json-out writes the measurements as JSON (the serving bench's format);
// --trace-out / --metrics record serve.batch / model.load spans and the
// serve.* counters through the obs layer.
//
// Live telemetry (serve/telemetry.h): --http-port binds an embedded
// loopback HTTP listener (0 = ephemeral; the chosen port is printed as
// "telemetry listening on PORT") exposing /metrics (Prometheus text with
// windowed QPS and latency quantiles over --metrics-window seconds),
// /metrics.json, /healthz (503 until the model is loaded), and /buildz.
// --linger keeps the process (and the endpoint) alive that many seconds
// after the traffic drains, so a scraper can observe a quiescing server.
// --metrics-out snapshots the registry to a file every --metrics-interval
// seconds; --event-log appends lifecycle events as JSONL.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/arg_parser.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "io/dataset_io.h"
#include "matrix/simd/simd.h"
#include "model/codec.h"
#include "model/model.h"
#include "obs/event_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/serving.h"
#include "serve/telemetry.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_serve --model=FILE --data=FILE [--format=csv|binary]\n"
    "                  [--clients=4] [--client-block=64]\n"
    "                  [--requests=100000] [--max-batch=256]\n"
    "                  [--max-delay-ms=0.2] [--predictions-out=FILE]\n"
    "                  [--json-out=FILE] [--trace-out=FILE] [--metrics]\n"
    "                  [--http-port=N] [--metrics-window=10]\n"
    "                  [--metrics-out=FILE] [--metrics-interval=SEC]\n"
    "                  [--event-log=FILE] [--linger=SEC]\n";

// Slices the dataset into contiguous blocks of `block_rows` query rows
// (last block may be short). Blocks are what clients submit.
std::vector<Matrix> SliceBlocks(const Matrix& features, int block_rows) {
  std::vector<Matrix> blocks;
  for (int start = 0; start < features.rows(); start += block_rows) {
    const int rows = std::min(block_rows, features.rows() - start);
    Matrix block(rows, features.cols());
    std::memcpy(block.RowPtr(0), features.RowPtr(start),
                static_cast<size_t>(rows) * features.cols() * sizeof(double));
    blocks.push_back(std::move(block));
  }
  return blocks;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string model_path = args.GetString("model", "");
  const std::string data_path = args.GetString("data", "");
  const std::string format = args.GetString("format", "csv");
  const int clients = args.GetInt("clients", 4);
  const int client_block = args.GetInt("client-block", 64);
  const int64_t requests = args.GetInt("requests", 100000);
  const int max_batch = args.GetInt("max-batch", 256);
  const double max_delay_ms = args.GetDouble("max-delay-ms", 0.2);
  const std::string predictions_path = args.GetString("predictions-out", "");
  const std::string json_path = args.GetString("json-out", "");
  const std::string trace_path = args.GetString("trace-out", "");
  const bool print_metrics = args.GetBool("metrics");
  const bool http_port_set = args.Has("http-port");
  const int http_port = args.GetInt("http-port", 0);
  const int metrics_window = args.GetInt("metrics-window", 10);
  const std::string metrics_out = args.GetString("metrics-out", "");
  const double metrics_interval = args.GetDouble("metrics-interval", 1.0);
  const std::string event_log_path = args.GetString("event-log", "");
  const double linger_s = args.GetDouble("linger", 0.0);
  SRDA_CHECK(args.UnusedFlags().empty())
      << "unknown flag --" << args.UnusedFlags().front() << "\n" << kUsage;
  SRDA_CHECK(!model_path.empty() && !data_path.empty())
      << "--model and --data are required\n" << kUsage;
  SRDA_CHECK(format == "csv" || format == "binary")
      << "unknown --format=" << format << "\n" << kUsage;
  SRDA_CHECK_GT(clients, 0) << "--clients must be positive";
  SRDA_CHECK_GT(client_block, 0) << "--client-block must be positive";
  SRDA_CHECK_GE(requests, 0) << "--requests must be non-negative";
  SRDA_CHECK_GT(metrics_window, 0) << "--metrics-window must be positive";
  SRDA_CHECK_GE(linger_s, 0.0) << "--linger must be non-negative";

  const bool observe = !trace_path.empty() || print_metrics || TraceEnabled();
  if (observe) {
    TraceRecorder::Global().SetEnabled(true);
    TraceRecorder::Global().Clear();
    MetricsRegistry::Global().ResetAll();
  }
  if (!event_log_path.empty()) {
    SRDA_CHECK(obs::EventLog::Global().Open(event_log_path))
        << "cannot open --event-log=" << event_log_path;
  }

  // Telemetry comes up BEFORE the model loads so /healthz honestly reports
  // the not-ready window; it flips ready only once serving can answer.
  serve::TelemetryServer telemetry(metrics_window);
  if (http_port_set) {
    SRDA_CHECK(telemetry.Start(http_port))
        << "cannot bind --http-port=" << http_port;
    // Flushed immediately: orchestrators parse this line to find the
    // ephemeral port while the process is still running.
    std::cout << "telemetry listening on " << telemetry.port() << std::endl;
  }
  obs::ExporterOptions exporter_options;
  exporter_options.path = metrics_out;
  exporter_options.interval_s = metrics_interval;
  exporter_options.window_s = metrics_window;
  exporter_options.format = metrics_out.size() >= 5 &&
                                    metrics_out.compare(metrics_out.size() - 5,
                                                        5, ".json") == 0
                                ? obs::ExporterOptions::Format::kJson
                                : obs::ExporterOptions::Format::kPrometheus;
  obs::Exporter exporter(exporter_options);
  if (!metrics_out.empty()) {
    SRDA_CHECK(exporter.Start())
        << "cannot write --metrics-out=" << metrics_out;
  }

  const model::SrdaModel model = model::Load(model_path);
  std::cout << "loaded " << model.provenance.trainer << " model: "
            << model.input_dim() << " -> " << model.output_dim() << ", "
            << model.num_classes() << " classes\n";
  telemetry.SetBuildInfo("model", model_path);
  telemetry.SetBuildInfo("trainer", model.provenance.trainer);
  telemetry.SetBuildInfo("input_dim", std::to_string(model.input_dim()));
  telemetry.SetBuildInfo("classes", std::to_string(model.num_classes()));
  // Dispatch is resolved here, not lazily on the first batch, so /buildz
  // is truthful from the moment the server flips ready.
  const char* simd_level = simd::CpuLevelName(simd::ActiveLevel());
  const char* pool_pinning = GlobalThreadPool().pinned() ? "pinned" : "free";
  telemetry.SetBuildInfo("simd_level", simd_level);
  telemetry.SetBuildInfo("pool_pinning", pool_pinning);
  obs::Event("serve.start")
      .Str("model", model_path)
      .Str("simd_level", simd_level)
      .Str("pool_pinning", pool_pinning);
  telemetry.SetReady(true);

  const DenseDataset dataset = format == "binary"
                                   ? ReadDenseBinaryFile(data_path)
                                   : ReadDenseCsvFile(data_path);
  SRDA_CHECK_EQ(dataset.features.cols(), model.input_dim())
      << "data width does not match the model";
  const std::vector<Matrix> blocks =
      SliceBlocks(dataset.features, client_block);

  serve::ServeOptions options;
  options.max_batch = max_batch;
  options.max_delay_ms = max_delay_ms;

  if (!predictions_path.empty()) {
    // One ordered pass: blocks submitted in dataset order from one client,
    // so the output lines up row-for-row with srda_predict on this file.
    serve::PredictionService service(&model, options);
    std::ofstream out(predictions_path);
    SRDA_CHECK(out.good()) << "cannot open " << predictions_path;
    for (const Matrix& block : blocks) {
      for (int raw : service.Predict(block)) out << raw << '\n';
    }
    SRDA_CHECK(out.good()) << "write failure on " << predictions_path;
    std::cout << "predictions written to " << predictions_path << "\n";
  }

  double seconds = 0.0;
  serve::ServeStats stats;
  if (requests > 0) {
    serve::PredictionService service(&model, options);
    // Remaining-row budget shared by every client; a client claims one
    // block at a time until the budget is gone.
    std::atomic<int64_t> budget{requests};
    Stopwatch watch;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&service, &blocks, &budget, c] {
        size_t next = static_cast<size_t>(c) % blocks.size();
        while (true) {
          const Matrix& block = blocks[next];
          next = (next + 1) % blocks.size();
          if (budget.fetch_sub(block.rows(), std::memory_order_relaxed) <=
              0) {
            return;
          }
          service.Predict(block);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    seconds = watch.ElapsedSeconds();
    stats = service.Stats();
  }

  if (stats.requests > 0) {
    const double throughput = static_cast<double>(stats.requests) / seconds;
    const double p50 = serve::LatencyQuantile(stats.latencies_us, 0.50);
    const double p99 = serve::LatencyQuantile(stats.latencies_us, 0.99);
    std::cout << "served " << stats.requests << " predictions in " << seconds
              << " s: " << throughput << " predictions/s\n";
    std::cout << "latency p50 " << p50 << " us, p99 " << p99 << " us; "
              << stats.batches << " batches, mean " << stats.mean_batch()
              << " rows, max " << stats.max_batch_seen << "\n";
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      SRDA_CHECK(out.good()) << "cannot open " << json_path;
      out << "{\n"
          << "  \"clients\": " << clients << ",\n"
          << "  \"client_block\": " << client_block << ",\n"
          << "  \"max_batch\": " << max_batch << ",\n"
          << "  \"max_delay_ms\": " << max_delay_ms << ",\n"
          << "  \"requests\": " << stats.requests << ",\n"
          << "  \"seconds\": " << seconds << ",\n"
          << "  \"predictions_per_s\": " << throughput << ",\n"
          << "  \"latency_p50_us\": " << p50 << ",\n"
          << "  \"latency_p99_us\": " << p99 << ",\n"
          << "  \"batches\": " << stats.batches << ",\n"
          << "  \"mean_batch\": " << stats.mean_batch() << ",\n"
          << "  \"max_batch_seen\": " << stats.max_batch_seen << "\n"
          << "}\n";
      SRDA_CHECK(out.good()) << "write failure on " << json_path;
      std::cout << "measurements written to " << json_path << "\n";
    }
  }

  if (linger_s > 0.0 && telemetry.running()) {
    // Keep the endpoint answering after the traffic drains (scrapers poll
    // on their own schedule, not ours).
    std::cout << "lingering " << linger_s << " s for scrapers\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  if (!metrics_out.empty()) {
    exporter.Stop();
    std::cout << "wrote metrics to " << metrics_out << " ("
              << exporter.snapshots_written() << " snapshots)\n";
  }
  if (telemetry.running()) {
    telemetry.SetReady(false);
    telemetry.Stop();
  }

  if (observe) {
    PrintRunSummary(std::cout);
    if (!trace_path.empty()) {
      if (TraceRecorder::Global().WriteJsonFile(trace_path)) {
        std::cout << "wrote trace to " << trace_path << "\n";
      } else {
        std::cout << "failed to write trace to " << trace_path << "\n";
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
