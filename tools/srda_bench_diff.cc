// srda_bench_diff: perf-regression gate over two bench JSON files.
//
// Usage:
//   srda_bench_diff BASELINE CURRENT [--threshold=PCT]
//                   [--threshold:metric.path=PCT] [--quiet]
//
// Flattens every numeric leaf of both documents to a dot-joined path
// (results[2].lsqr_seconds -> "results.2.lsqr_seconds"), pairs them up,
// and classifies each metric by name:
//
//   lower is better:   *seconds*, *_us, *_ms, *_ns, *iterations*, *bytes*
//   higher is better:  *per_s*, *per_sec*, *speedup*, *gflops*, *qps*,
//                      *throughput*
//   informational:     everything else (shape fields, counts, alphas) —
//                      compared for presence, never gated.
//
// A gated metric regresses when it moves in the bad direction by more than
// the threshold (default 30%, tuned to sit above machine noise on the
// smoke benches; override per metric with --threshold:PATH=PCT, where PATH
// may also be a suffix of the full path). Metrics present in only one file
// are reported but never fatal — bench output grows fields across
// versions. Exits 0 when nothing regressed, 1 on any regression, 2 on
// unreadable/malformed input. Prints one row per gated metric:
//
//   metric                         baseline     current      delta  verdict
//   results.0.train_seconds        1.23         1.25         +1.6%  ok
//
// The ctest wiring (bench/CMakeLists.txt) runs each smoke bench, diffs its
// JSON against itself (must pass), and tools_integration_test fabricates a
// 2x-slower copy to prove the gate trips. scripts/run_all.sh ends with a
// bench-diff summary table against the repo's committed BENCH_*.json.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_bench_diff BASELINE CURRENT [--threshold=PCT]\n"
    "       [--threshold:metric.path=PCT] [--quiet]\n";

enum class Direction { kLowerBetter, kHigherBetter, kInformational };

bool Contains(const std::string& name, const char* needle) {
  return name.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& name, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

// Classifies a flattened metric path by the final key's name. Checked on
// the last path segment so a parent named "throughput" does not flip the
// direction of a child named "seconds".
Direction Classify(const std::string& path) {
  const size_t dot = path.rfind('.');
  const std::string leaf =
      dot == std::string::npos ? path : path.substr(dot + 1);
  if (Contains(leaf, "per_s") || Contains(leaf, "per_sec") ||
      Contains(leaf, "speedup") || Contains(leaf, "gflops") ||
      Contains(leaf, "qps") || Contains(leaf, "throughput")) {
    return Direction::kHigherBetter;
  }
  if (Contains(leaf, "seconds") || EndsWith(leaf, "_s") ||
      EndsWith(leaf, "_us") || EndsWith(leaf, "_ms") ||
      EndsWith(leaf, "_ns") || Contains(leaf, "iterations") ||
      Contains(leaf, "bytes")) {
    return Direction::kLowerBetter;
  }
  return Direction::kInformational;
}

// Flattens numeric leaves to dot-joined paths; array indices become path
// segments ("results.2.train_seconds").
void FlattenNumbers(const JsonValue& value, const std::string& prefix,
                    std::map<std::string, double>* out) {
  switch (value.type) {
    case JsonValue::Type::kNumber:
      (*out)[prefix] = value.number;
      break;
    case JsonValue::Type::kObject:
      for (const auto& [key, child] : value.object) {
        FlattenNumbers(child, prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Type::kArray:
      for (size_t i = 0; i < value.array.size(); ++i) {
        const std::string indexed =
            (prefix.empty() ? "" : prefix + ".") + std::to_string(i);
        FlattenNumbers(value.array[i], indexed, out);
      }
      break;
    default:
      break;  // strings/bools/nulls are not gateable
  }
}

bool LoadFlattened(const std::string& path, std::map<std::string, double>* out,
                   std::string* error) {
  std::ifstream input(path);
  if (!input) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream contents;
  contents << input.rdbuf();
  JsonValue document;
  std::string parse_error;
  if (!ParseJson(contents.str(), &document, &parse_error)) {
    *error = path + ": " + parse_error;
    return false;
  }
  FlattenNumbers(document, "", out);
  if (out->empty()) {
    *error = path + ": no numeric metrics";
    return false;
  }
  return true;
}

struct Options {
  std::string baseline_path;
  std::string current_path;
  double threshold_pct = 30.0;
  // Per-metric overrides: full path or suffix -> percent.
  std::vector<std::pair<std::string, double>> overrides;
  bool quiet = false;
};

// The longest matching override wins; falls back to the global threshold.
double ThresholdFor(const Options& options, const std::string& path) {
  double best = options.threshold_pct;
  size_t best_len = 0;
  for (const auto& [pattern, pct] : options.overrides) {
    if ((path == pattern || EndsWith(path, ("." + pattern).c_str()) ||
         EndsWith(path, pattern.c_str())) &&
        pattern.size() > best_len) {
      best = pct;
      best_len = pattern.size();
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--quiet") {
      options.quiet = true;
      continue;
    }
    const std::string metric_prefix = "--threshold:";
    if (arg.compare(0, metric_prefix.size(), metric_prefix) == 0) {
      const size_t equals = arg.find('=', metric_prefix.size());
      if (equals == std::string::npos) {
        std::cerr << "srda_bench_diff: bad override " << arg << "\n" << kUsage;
        return 2;
      }
      const std::string pattern =
          arg.substr(metric_prefix.size(), equals - metric_prefix.size());
      options.overrides.emplace_back(pattern,
                                     std::stod(arg.substr(equals + 1)));
      continue;
    }
    const std::string threshold_prefix = "--threshold=";
    if (arg.compare(0, threshold_prefix.size(), threshold_prefix) == 0) {
      options.threshold_pct = std::stod(arg.substr(threshold_prefix.size()));
      continue;
    }
    if (options.baseline_path.empty()) {
      options.baseline_path = arg;
    } else if (options.current_path.empty()) {
      options.current_path = arg;
    } else {
      std::cerr << "srda_bench_diff: unexpected argument " << arg << "\n"
                << kUsage;
      return 2;
    }
  }
  if (options.current_path.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::map<std::string, double> baseline;
  std::map<std::string, double> current;
  std::string error;
  if (!LoadFlattened(options.baseline_path, &baseline, &error) ||
      !LoadFlattened(options.current_path, &current, &error)) {
    std::cerr << "srda_bench_diff: " << error << "\n";
    return 2;
  }

  int regressions = 0;
  int gated = 0;
  int only_one_side = 0;
  if (!options.quiet) {
    std::printf("%-44s %12s %12s %8s  %s\n", "metric", "baseline", "current",
                "delta", "verdict");
  }
  for (const auto& [path, base_value] : baseline) {
    const auto it = current.find(path);
    if (it == current.end()) {
      ++only_one_side;
      if (!options.quiet) {
        std::printf("%-44s %12.4g %12s %8s  missing-in-current\n",
                    path.c_str(), base_value, "-", "-");
      }
      continue;
    }
    const double current_value = it->second;
    const Direction direction = Classify(path);
    if (direction == Direction::kInformational) continue;
    ++gated;
    // Signed percent change, oriented so positive = worse.
    double worse_pct = 0.0;
    if (base_value != 0.0) {
      const double change = (current_value - base_value) / std::fabs(base_value);
      worse_pct =
          100.0 * (direction == Direction::kLowerBetter ? change : -change);
    } else if (current_value != 0.0 &&
               direction == Direction::kLowerBetter) {
      worse_pct = std::numeric_limits<double>::infinity();
    }
    const double threshold = ThresholdFor(options, path);
    const bool regressed = worse_pct > threshold;
    if (regressed) ++regressions;
    if (!options.quiet || regressed) {
      const double delta_pct =
          base_value != 0.0
              ? 100.0 * (current_value - base_value) / std::fabs(base_value)
              : 0.0;
      std::printf("%-44s %12.4g %12.4g %+7.1f%%  %s\n", path.c_str(),
                  base_value, current_value, delta_pct,
                  regressed ? "REGRESSED" : "ok");
    }
  }
  for (const auto& [path, value] : current) {
    if (baseline.count(path) == 0) {
      ++only_one_side;
      if (!options.quiet) {
        std::printf("%-44s %12s %12.4g %8s  missing-in-baseline\n",
                    path.c_str(), "-", value, "-");
      }
    }
  }
  std::printf("%d gated metric(s), %d regression(s), %d unmatched\n", gated,
              regressions, only_one_side);
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
