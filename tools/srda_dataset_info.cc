// srda_dataset_info: print the statistics the paper's Table II reports for
// a dataset file (size, dimensionality, classes, sparsity, class balance).
//
// Usage:
//   srda_dataset_info --data=FILE [--format=csv|libsvm]

#include <algorithm>
#include <iostream>
#include <string>

#include "common/arg_parser.h"
#include "common/check.h"
#include "common/table_printer.h"
#include "dataset/dataset.h"
#include "io/dataset_io.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_dataset_info --data=FILE [--format=csv|libsvm]\n";

void PrintCounts(const std::vector<int>& labels, int num_classes) {
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  std::cout << "class sizes: min " << *min_it << ", max " << *max_it << "\n";
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string data_path = args.GetString("data", "");
  const std::string format = args.GetString("format", "csv");
  SRDA_CHECK(args.UnusedFlags().empty())
      << "unknown flag --" << args.UnusedFlags().front() << "\n" << kUsage;
  SRDA_CHECK(!data_path.empty()) << "--data is required\n" << kUsage;

  TablePrinter table({"size (m)", "dim (n)", "# classes (c)", "density"});
  if (format == "libsvm") {
    const SparseDataset dataset = ReadLibSvmFile(data_path);
    const double density =
        dataset.features.AvgNonZerosPerRow() / dataset.features.cols();
    table.AddRow({std::to_string(dataset.features.rows()),
                  std::to_string(dataset.features.cols()),
                  std::to_string(dataset.num_classes),
                  FormatDouble(100.0 * density, 3) + "%"});
    table.Print(std::cout);
    std::cout << "avg non-zeros per sample: "
              << FormatDouble(dataset.features.AvgNonZerosPerRow(), 1)
              << "\n";
    PrintCounts(dataset.labels, dataset.num_classes);
  } else {
    const DenseDataset dataset = ReadDenseCsvFile(data_path);
    table.AddRow({std::to_string(dataset.features.rows()),
                  std::to_string(dataset.features.cols()),
                  std::to_string(dataset.num_classes), "dense"});
    table.Print(std::cout);
    PrintCounts(dataset.labels, dataset.num_classes);
  }
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
