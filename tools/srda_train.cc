// srda_train: train a discriminant model on a dataset file and save it.
//
// Usage:
//   srda_train --data=FILE [--format=csv|libsvm|binary]
//              [--algorithm=srda|lda|rlda|idr_qr|fisherfaces|semi_srda]
//              [--alpha=1.0] [--solver=normal|lsqr] [--lsqr-iterations=20]
//              [--shard-rows=N] [--model-format=text|binary]
//              --model-out=FILE
//
// CSV rows are "label,x1,...,xn"; LibSVM is the standard sparse format;
// binary is the repo's seekable SRDB container (srda_io). Sparse data
// always trains SRDA with LSQR. The saved artifact is a versioned
// model-store file (src/model): the embedding, the nearest-centroid head,
// the compact -> raw label map of the training file, and provenance
// (trainer, alpha, sketch seed). --model-format picks the codec: "text"
// (default, inspectable, migration-friendly) or "binary" (mmap-able SRDM,
// zero-parse load for serving). srda_predict and srda_serve read either.
//
// --shard-rows=N trains out of core: the dataset streams through a
// RowShardReader in shards of N rows, the dataset never resides in RAM as
// a whole, and the resulting model is bitwise identical to the in-RAM fit
// at any N. SRDA only.
//
// --sketch-mode=precond trains SRDA with LSQR right-preconditioned by a
// factored randomized sketch of the data (same solutions, fewer iterations
// on ill-conditioned data); --sketch-mode=solve returns the sketched
// solution directly with per-response error bounds printed. --sketch-size=N
// sets the sketch rows (0 = auto, 4x the feature count), --sketch-kind
// picks count-sketch (default) or Gaussian. SRDA only.
//
// --trace-out=FILE writes a Chrome/Perfetto trace of the training run;
// --metrics prints the phase/metrics summary without writing a trace. Either
// flag (or SRDA_TRACE=1 in the environment) enables the trace recorder.

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/arg_parser.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/srda.h"
#include "matrix/simd/simd.h"
#include "core/trainers.h"
#include "io/dataset_io.h"
#include "io/row_shard_reader.h"
#include "model/codec.h"
#include "model/model.h"
#include "obs/event_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_train --data=FILE [--format=csv|libsvm|binary]\n"
    "                  [--algorithm=srda|lda|rlda|idr_qr|fisherfaces|"
    "semi_srda]\n"
    "                  [--alpha=1.0] [--solver=normal|lsqr]\n"
    "                  [--lsqr-iterations=20] [--shard-rows=N]\n"
    "                  [--sketch-mode=off|precond|solve] [--sketch-size=N]\n"
    "                  [--sketch-kind=count|gaussian]\n"
    "                  [--model-format=text|binary]\n"
    "                  [--trace-out=FILE] [--metrics]\n"
    "                  [--metrics-out=FILE] [--metrics-interval=SEC]\n"
    "                  [--event-log=FILE] --model-out=FILE\n";

// Prints one line per regression target summarizing how LSQR stopped.
void PrintLsqrDiagnostics(const std::vector<RidgeRhsDiagnostics>& diagnostics,
                          int total_iterations) {
  if (diagnostics.empty()) return;
  std::cout << "LSQR convergence (" << total_iterations
            << " total iterations):\n";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const RidgeRhsDiagnostics& diag = diagnostics[i];
    std::cout << "  rhs " << i << ": " << diag.iterations << " iterations, "
              << "residual " << diag.residual_norm << ", normal residual "
              << diag.normal_residual_norm << ", stop "
              << LsqrStopName(diag.stop) << "\n";
  }
}

// Pure sketch-solve fits carry a per-response bound on the distance to the
// exact ridge solution; print it so the accuracy tradeoff is visible.
void PrintSketchBounds(const std::vector<double>& bounds) {
  if (bounds.empty()) return;
  std::cout << "sketch-solve error bounds (||coeff - exact||):\n";
  for (size_t i = 0; i < bounds.size(); ++i) {
    std::cout << "  rhs " << i << ": <= " << bounds[i] << "\n";
  }
}

// Provenance shared by every training path below.
model::Provenance MakeProvenance(const std::string& algorithm, double alpha,
                                 const SketchConfig& sketch) {
  model::Provenance provenance;
  provenance.trainer = algorithm;
  provenance.alpha = alpha;
  provenance.seed = sketch.mode == SketchMode::kOff ? 0 : sketch.seed;
  return provenance;
}

// Out-of-core training: SRDA through a RidgeSolver bound to the shard
// stream (one pass per Gram/RHS build or LSQR iteration), then one more
// pass fitting the nearest-centroid head on the streamed embeddings. The
// class-sum accumulation visits rows in the same ascending order
// CentroidClassifier::Fit uses on the full embedded matrix, so the model is
// bitwise identical to the in-RAM fit at any shard size.
model::SrdaModel TrainSharded(const std::string& data_path,
                              RowStreamFormat stream_format, int shard_rows,
                              double alpha, const std::string& solver,
                              int lsqr_iterations, const SketchConfig& sketch,
                              bool observe) {
  RowShardReaderOptions reader_options;
  reader_options.shard_rows = shard_rows;
  RowShardReader reader(data_path, stream_format, reader_options);
  std::cout << "streaming " << reader.rows() << " samples, " << reader.cols()
            << " features, " << reader.num_classes()
            << " classes in shards of " << shard_rows << " rows\n";

  RidgeSolver ridge(&reader);
  SrdaOptions options;
  options.alpha = alpha;
  options.solver = reader.sparse() || solver == "lsqr"
                       ? SrdaSolver::kLsqr
                       : SrdaSolver::kNormalEquations;
  options.lsqr_iterations = lsqr_iterations;
  options.sketch = sketch;
  const SrdaModel trained =
      FitSrda(&ridge, reader.labels(), reader.num_classes(), options);
  SRDA_CHECK(trained.converged) << "SRDA training failed";
  if (observe) {
    PrintLsqrDiagnostics(trained.lsqr_diagnostics,
                         trained.total_lsqr_iterations);
  }
  PrintSketchBounds(trained.sketch_error_bounds);

  const std::vector<int>& labels = reader.labels();
  const int num_classes = reader.num_classes();
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no training samples";
  }
  Matrix centroids(num_classes, trained.embedding.output_dim());
  reader.Reset();
  RowShard shard;
  while (reader.Next(&shard)) {
    const Matrix embedded = shard.sparse != nullptr
                                ? trained.embedding.Transform(*shard.sparse)
                                : trained.embedding.Transform(*shard.dense);
    for (int i = 0; i < embedded.rows(); ++i) {
      const double* row = embedded.RowPtr(i);
      double* centroid = centroids.RowPtr(
          labels[static_cast<size_t>(shard.first_row + i)]);
      for (int j = 0; j < embedded.cols(); ++j) centroid[j] += row[j];
    }
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv = 1.0 / counts[static_cast<size_t>(k)];
    double* centroid = centroids.RowPtr(k);
    for (int j = 0; j < centroids.cols(); ++j) centroid[j] *= inv;
  }
  std::cout << "streamed " << reader.bytes_streamed()
            << " bytes total, peak shard " << reader.peak_shard_bytes()
            << " bytes\n";
  return model::BuildModelFromCentroids(
      trained.embedding, std::move(centroids), reader.raw_labels(),
      MakeProvenance("srda", alpha, sketch));
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string data_path = args.GetString("data", "");
  const std::string model_path = args.GetString("model-out", "");
  const std::string format = args.GetString("format", "csv");
  const std::string algorithm = args.GetString("algorithm", "srda");
  const double alpha = args.GetDouble("alpha", 1.0);
  const std::string solver = args.GetString("solver", "normal");
  const int lsqr_iterations = args.GetInt("lsqr-iterations", 20);
  const int shard_rows = args.GetInt("shard-rows", 0);
  const std::string sketch_mode = args.GetString("sketch-mode", "off");
  const int sketch_size = args.GetInt("sketch-size", 0);
  const std::string sketch_kind = args.GetString("sketch-kind", "count");
  const std::string model_format = args.GetString("model-format", "text");
  const std::string trace_path = args.GetString("trace-out", "");
  const bool print_metrics = args.GetBool("metrics");
  const std::string metrics_out = args.GetString("metrics-out", "");
  const double metrics_interval = args.GetDouble("metrics-interval", 1.0);
  const std::string event_log_path = args.GetString("event-log", "");
  SRDA_CHECK(args.UnusedFlags().empty())
      << "unknown flag --" << args.UnusedFlags().front() << "\n" << kUsage;
  SRDA_CHECK(!data_path.empty() && !model_path.empty())
      << "--data and --model-out are required\n" << kUsage;
  SRDA_CHECK(format == "csv" || format == "libsvm" || format == "binary")
      << "unknown --format=" << format << "\n" << kUsage;
  SRDA_CHECK(IsDenseTrainer(algorithm))
      << "unknown --algorithm=" << algorithm << "\n" << kUsage;
  SRDA_CHECK(solver == "normal" || solver == "lsqr")
      << "unknown --solver=" << solver << "\n" << kUsage;
  SRDA_CHECK(model_format == "text" || model_format == "binary")
      << "unknown --model-format=" << model_format << "\n" << kUsage;
  SRDA_CHECK_GE(shard_rows, 0) << "--shard-rows must be non-negative";
  SRDA_CHECK(sketch_mode == "off" || sketch_mode == "precond" ||
             sketch_mode == "solve")
      << "unknown --sketch-mode=" << sketch_mode << "\n" << kUsage;
  SRDA_CHECK(sketch_kind == "count" || sketch_kind == "gaussian")
      << "unknown --sketch-kind=" << sketch_kind << "\n" << kUsage;
  SRDA_CHECK_GE(sketch_size, 0) << "--sketch-size must be non-negative";
  SketchConfig sketch;
  sketch.mode = sketch_mode == "precond" ? SketchMode::kPrecondition
                : sketch_mode == "solve" ? SketchMode::kSolve
                                         : SketchMode::kOff;
  sketch.sketch_rows = sketch_size;
  sketch.kind = sketch_kind == "gaussian" ? SketchKind::kGaussian
                                          : SketchKind::kCountSketch;
  if (sketch.mode != SketchMode::kOff) {
    SRDA_CHECK(algorithm == "srda")
        << "--sketch-mode supports --algorithm=srda only";
  }

  const bool observe = !trace_path.empty() || print_metrics || TraceEnabled();
  if (observe) {
    TraceRecorder::Global().SetEnabled(true);
    TraceRecorder::Global().Clear();
    MetricsRegistry::Global().ResetAll();
  }
  if (!event_log_path.empty()) {
    SRDA_CHECK(obs::EventLog::Global().Open(event_log_path))
        << "cannot open --event-log=" << event_log_path;
  }
  // Periodic registry snapshots while training runs; format follows the
  // extension (.json -> JSON, anything else -> Prometheus text). Stop()
  // writes a final snapshot, so short runs still leave a complete file.
  obs::ExporterOptions exporter_options;
  exporter_options.path = metrics_out;
  exporter_options.interval_s = metrics_interval;
  exporter_options.format = metrics_out.size() >= 5 &&
                                    metrics_out.compare(metrics_out.size() - 5,
                                                        5, ".json") == 0
                                ? obs::ExporterOptions::Format::kJson
                                : obs::ExporterOptions::Format::kPrometheus;
  obs::Exporter exporter(exporter_options);
  if (!metrics_out.empty()) {
    SRDA_CHECK(exporter.Start())
        << "cannot write --metrics-out=" << metrics_out;
  }

  model::SrdaModel model;
  obs::Event("train.start")
      .Str("data", data_path)
      .Str("algorithm", algorithm)
      .Str("simd_level", simd::CpuLevelName(simd::ActiveLevel()))
      .Str("pool_pinning", GlobalThreadPool().pinned() ? "pinned" : "free")
      .Num("alpha", alpha)
      .Num("shard_rows", shard_rows);
  Stopwatch watch;
  if (shard_rows > 0) {
    SRDA_CHECK(algorithm == "srda")
        << "--shard-rows supports --algorithm=srda only";
    const RowStreamFormat stream_format =
        format == "libsvm" ? RowStreamFormat::kLibSvm
        : format == "csv"  ? RowStreamFormat::kCsv
                           : RowStreamFormat::kBinary;
    model = TrainSharded(data_path, stream_format, shard_rows, alpha, solver,
                         lsqr_iterations, sketch, observe);
  } else if (format == "libsvm") {
    SRDA_CHECK(algorithm == "srda")
        << "sparse data supports --algorithm=srda only";
    const SparseDataset dataset = ReadLibSvmFile(data_path);
    std::cout << "loaded " << dataset.features.rows() << " samples, "
              << dataset.features.cols() << " features ("
              << dataset.features.AvgNonZerosPerRow()
              << " nnz/sample), " << dataset.num_classes << " classes\n";
    SrdaOptions options;
    options.alpha = alpha;
    options.solver = SrdaSolver::kLsqr;
    options.lsqr_iterations = lsqr_iterations;
    options.sketch = sketch;
    const SrdaModel trained = FitSrda(dataset.features, dataset.labels,
                                      dataset.num_classes, options);
    SRDA_CHECK(trained.converged) << "SRDA training failed";
    if (observe) {
      PrintLsqrDiagnostics(trained.lsqr_diagnostics,
                           trained.total_lsqr_iterations);
    }
    PrintSketchBounds(trained.sketch_error_bounds);
    model = model::BuildModel(trained.embedding,
                              trained.embedding.Transform(dataset.features),
                              dataset.labels, dataset.num_classes,
                              dataset.raw_labels,
                              MakeProvenance(algorithm, alpha, sketch));
  } else {
    const DenseDataset dataset = format == "binary"
                                     ? ReadDenseBinaryFile(data_path)
                                     : ReadDenseCsvFile(data_path);
    std::cout << "loaded " << dataset.features.rows() << " samples, "
              << dataset.features.cols() << " features, "
              << dataset.num_classes << " classes\n";
    TrainerOptions options;
    options.alpha = alpha;
    options.solver =
        solver == "lsqr" ? SrdaSolver::kLsqr : SrdaSolver::kNormalEquations;
    options.lsqr_iterations = lsqr_iterations;
    options.sketch = sketch;
    const TrainResult trained =
        TrainDenseByName(algorithm, dataset.features, dataset.labels,
                         dataset.num_classes, options);
    if (observe) {
      PrintLsqrDiagnostics(trained.lsqr_diagnostics,
                           trained.total_lsqr_iterations);
    }
    PrintSketchBounds(trained.sketch_error_bounds);
    model = model::BuildModel(trained.embedding,
                              trained.embedding.Transform(dataset.features),
                              dataset.labels, dataset.num_classes,
                              dataset.raw_labels,
                              MakeProvenance(algorithm, alpha, sketch));
  }
  const double seconds = watch.ElapsedSeconds();
  obs::Event("train.end")
      .Num("seconds", seconds)
      .Num("directions", model.output_dim());
  model::Save(model, model_path,
              model_format == "binary" ? model::Codec::kBinary
                                       : model::Codec::kText);
  std::cout << "trained " << algorithm << " (" << model.output_dim()
            << " directions) in " << seconds << " s; " << model_format
            << " model written to " << model_path << "\n";
  if (!metrics_out.empty()) {
    exporter.Stop();
    std::cout << "wrote metrics to " << metrics_out << " ("
              << exporter.snapshots_written() << " snapshots)\n";
  }
  if (observe) {
    PrintRunSummary(std::cout);
    if (!trace_path.empty()) {
      if (TraceRecorder::Global().WriteJsonFile(trace_path)) {
        std::cout << "wrote trace to " << trace_path << "\n";
      } else {
        std::cout << "failed to write trace to " << trace_path << "\n";
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
