// srda_predict: classify a dataset file with a model trained by srda_train.
//
// Usage:
//   srda_predict --model=FILE --data=FILE [--format=csv|libsvm]
//                [--predictions-out=FILE]
//
// Prints the error rate against the labels stored in the data file and
// optionally writes one predicted label per line.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "classify/classifiers.h"
#include "common/arg_parser.h"
#include "common/check.h"
#include "io/dataset_io.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_predict --model=FILE --data=FILE [--format=csv|libsvm]\n"
    "                    [--predictions-out=FILE]\n";

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string model_path = args.GetString("model", "");
  const std::string data_path = args.GetString("data", "");
  const std::string format = args.GetString("format", "csv");
  const std::string predictions_path = args.GetString("predictions-out", "");
  SRDA_CHECK(args.UnusedFlags().empty())
      << "unknown flag --" << args.UnusedFlags().front() << "\n" << kUsage;
  SRDA_CHECK(!model_path.empty() && !data_path.empty())
      << "--model and --data are required\n" << kUsage;

  const ClassifierModel model = LoadClassifierModel(model_path);

  Matrix embedded;
  std::vector<int> labels;
  if (format == "libsvm") {
    const SparseDataset dataset =
        ReadLibSvmFile(data_path, model.embedding.input_dim());
    embedded = model.embedding.Transform(dataset.features);
    labels = dataset.labels;
  } else {
    const DenseDataset dataset = ReadDenseCsvFile(data_path);
    SRDA_CHECK_EQ(dataset.features.cols(), model.embedding.input_dim())
        << "data width does not match the model";
    embedded = model.embedding.Transform(dataset.features);
    labels = dataset.labels;
  }

  CentroidClassifier classifier;
  classifier.SetCentroids(model.centroids);
  const std::vector<int> predictions = classifier.Predict(embedded);
  std::cout << "classified " << predictions.size() << " samples; error rate "
            << 100.0 * ErrorRate(predictions, labels) << "%\n";

  if (!predictions_path.empty()) {
    std::ofstream out(predictions_path);
    SRDA_CHECK(out.good()) << "cannot open " << predictions_path;
    for (int prediction : predictions) out << prediction << '\n';
    std::cout << "predictions written to " << predictions_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
