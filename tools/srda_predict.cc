// srda_predict: classify a dataset file with a model trained by srda_train.
//
// Usage:
//   srda_predict --model=FILE --data=FILE [--format=csv|libsvm|binary]
//                [--predictions-out=FILE] [--trace-out=FILE] [--metrics]
//                [--metrics-out=FILE] [--event-log=FILE]
//
// --trace-out writes a Chrome trace of the load/transform/score phases;
// --metrics prints the run summary; --metrics-out writes a final registry
// snapshot (Prometheus text, or JSON with a .json extension); --event-log
// appends lifecycle events (model.load and any fallbacks) as JSONL.
//
// The model file may be either model-store codec (versioned text or SRDM
// binary — sniffed from the magic) or a legacy "srda-classifier 1" file.
// "binary" data is the seekable SRDB container (srda_io). Prints the error
// rate against the labels stored in the data file; --predictions-out writes
// one predicted label per line in the ORIGINAL raw label space of the
// training file (the model's raw_labels map applied to each prediction), so
// gapped ids like {3, 7} come back out as 3 and 7, never 0 and 1. The error
// rate compares raw against raw for the same reason.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "classify/classifiers.h"
#include "common/arg_parser.h"
#include "common/check.h"
#include "io/dataset_io.h"
#include "model/codec.h"
#include "model/model.h"
#include "obs/event_log.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace srda {
namespace {

constexpr char kUsage[] =
    "usage: srda_predict --model=FILE --data=FILE "
    "[--format=csv|libsvm|binary]\n"
    "                    [--predictions-out=FILE] [--trace-out=FILE]\n"
    "                    [--metrics] [--metrics-out=FILE] "
    "[--event-log=FILE]\n";

// The dataset's compact labels mapped back to the raw ids of the file
// (identity when the dataset carries no map).
std::vector<int> DatasetRawLabels(const std::vector<int>& labels,
                                  const std::vector<int>& raw_labels) {
  std::vector<int> raw(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    raw[i] = raw_labels.empty()
                 ? labels[i]
                 : raw_labels[static_cast<size_t>(labels[i])];
  }
  return raw;
}

int Main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string model_path = args.GetString("model", "");
  const std::string data_path = args.GetString("data", "");
  const std::string format = args.GetString("format", "csv");
  const std::string predictions_path = args.GetString("predictions-out", "");
  const std::string trace_path = args.GetString("trace-out", "");
  const bool print_metrics = args.GetBool("metrics");
  const std::string metrics_out = args.GetString("metrics-out", "");
  const std::string event_log_path = args.GetString("event-log", "");
  SRDA_CHECK(args.UnusedFlags().empty())
      << "unknown flag --" << args.UnusedFlags().front() << "\n" << kUsage;
  SRDA_CHECK(!model_path.empty() && !data_path.empty())
      << "--model and --data are required\n" << kUsage;
  SRDA_CHECK(format == "csv" || format == "libsvm" || format == "binary")
      << "unknown --format=" << format << "\n" << kUsage;

  const bool observe = !trace_path.empty() || print_metrics || TraceEnabled();
  if (observe) {
    TraceRecorder::Global().SetEnabled(true);
    TraceRecorder::Global().Clear();
    MetricsRegistry::Global().ResetAll();
  }
  if (!event_log_path.empty()) {
    SRDA_CHECK(obs::EventLog::Global().Open(event_log_path))
        << "cannot open --event-log=" << event_log_path;
  }

  const model::SrdaModel model = model::Load(model_path);

  Matrix embedded;
  std::vector<int> actual_raw;
  {
    TraceSpan span("predict.load_and_embed");
    if (format == "libsvm") {
      const SparseDataset dataset =
          ReadLibSvmFile(data_path, model.input_dim());
      embedded = model.embedding.Transform(dataset.features);
      actual_raw = DatasetRawLabels(dataset.labels, dataset.raw_labels);
    } else {
      const DenseDataset dataset = format == "binary"
                                       ? ReadDenseBinaryFile(data_path)
                                       : ReadDenseCsvFile(data_path);
      SRDA_CHECK_EQ(dataset.features.cols(), model.input_dim())
          << "data width does not match the model";
      embedded = model.embedding.Transform(dataset.features);
      actual_raw = DatasetRawLabels(dataset.labels, dataset.raw_labels);
    }
  }

  CentroidClassifier classifier;
  classifier.SetCentroids(model.centroids);
  std::vector<int> predictions;
  {
    TraceSpan span("predict.score");
    if (span.recording()) {
      span.AddArg("rows", static_cast<double>(embedded.rows()));
    }
    predictions = model.ToRawLabels(classifier.ScoreBatch(embedded));
  }
  std::cout << "classified " << predictions.size() << " samples; error rate "
            << 100.0 * ErrorRate(predictions, actual_raw) << "%\n";

  if (!predictions_path.empty()) {
    std::ofstream out(predictions_path);
    SRDA_CHECK(out.good()) << "cannot open " << predictions_path;
    for (int prediction : predictions) out << prediction << '\n';
    std::cout << "predictions written to " << predictions_path << "\n";
  }
  if (!metrics_out.empty()) {
    // One-shot run: a single exit snapshot, no background thread.
    obs::ExporterOptions exporter_options;
    exporter_options.path = metrics_out;
    exporter_options.format =
        metrics_out.size() >= 5 &&
                metrics_out.compare(metrics_out.size() - 5, 5, ".json") == 0
            ? obs::ExporterOptions::Format::kJson
            : obs::ExporterOptions::Format::kPrometheus;
    obs::Exporter exporter(exporter_options);
    SRDA_CHECK(exporter.WriteSnapshot())
        << "cannot write --metrics-out=" << metrics_out;
    std::cout << "wrote metrics to " << metrics_out << "\n";
  }
  if (observe) {
    PrintRunSummary(std::cout);
    if (!trace_path.empty()) {
      if (TraceRecorder::Global().WriteJsonFile(trace_path)) {
        std::cout << "wrote trace to " << trace_path << "\n";
      } else {
        std::cout << "failed to write trace to " << trace_path << "\n";
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace srda

int main(int argc, char** argv) { return srda::Main(argc, argv); }
