#include "classify/classifiers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "dataset/dataset.h"
#include "matrix/blas.h"
#include "obs/trace.h"

namespace srda {
namespace {

// |row|^2 per row, precomputed once at fit time so batched scoring only
// needs the cross products.
Vector RowSquaredNorms(const Matrix& m) {
  Vector norms(m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    double sum = 0.0;
    for (int j = 0; j < m.cols(); ++j) sum += row[j] * row[j];
    norms[i] = sum;
  }
  return norms;
}

}  // namespace

void CentroidClassifier::Fit(const Matrix& embedded,
                             const std::vector<int>& labels, int num_classes) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), embedded.rows())
      << "label count mismatch";
  SRDA_CHECK_GT(embedded.rows(), 0) << "cannot fit on an empty set";
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no training samples";
  }
  centroids_ = Matrix(num_classes, embedded.cols());
  for (int i = 0; i < embedded.rows(); ++i) {
    const double* row = embedded.RowPtr(i);
    double* centroid = centroids_.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < embedded.cols(); ++j) centroid[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv = 1.0 / counts[static_cast<size_t>(k)];
    double* centroid = centroids_.RowPtr(k);
    for (int j = 0; j < embedded.cols(); ++j) centroid[j] *= inv;
  }
  centroid_sq_norms_ = RowSquaredNorms(centroids_);
  fitted_ = true;
}

void CentroidClassifier::SetCentroids(Matrix centroids) {
  SRDA_CHECK_GT(centroids.rows(), 0) << "need at least one centroid";
  centroids_ = std::move(centroids);
  centroid_sq_norms_ = RowSquaredNorms(centroids_);
  fitted_ = true;
}

std::vector<int> CentroidClassifier::ScoreBatch(const Matrix& embedded) const {
  SRDA_CHECK(fitted_) << "Predict before Fit";
  SRDA_CHECK_EQ(embedded.cols(), centroids_.cols())
      << "embedding dimension mismatch";
  SRDA_TRACE_SCOPE("classify.score");
  // One blocked GEMM for every query x centroid cross product; row i of the
  // result depends only on query i, so any sub-batching of the rows scores
  // identically.
  const Matrix cross = MultiplyTransposedB(embedded, centroids_);
  std::vector<int> predictions(static_cast<size_t>(embedded.rows()), 0);
  for (int i = 0; i < cross.rows(); ++i) {
    const double* row = cross.RowPtr(i);
    int best_class = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (int k = 0; k < centroids_.rows(); ++k) {
      const double score = centroid_sq_norms_[k] - 2.0 * row[k];
      if (score < best_score) {
        best_score = score;
        best_class = k;
      }
    }
    predictions[static_cast<size_t>(i)] = best_class;
  }
  return predictions;
}

std::vector<int> CentroidClassifier::Predict(const Matrix& embedded) const {
  return ScoreBatch(embedded);
}

KnnClassifier::KnnClassifier(int k) : k_(k) {
  SRDA_CHECK_GT(k, 0) << "k must be positive";
}

void KnnClassifier::Fit(const Matrix& embedded, const std::vector<int>& labels,
                        int num_classes) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), embedded.rows())
      << "label count mismatch";
  SRDA_CHECK_GT(embedded.rows(), 0) << "cannot fit on an empty set";
  ClassCounts(labels, num_classes);  // Validates the labels.
  train_ = embedded;
  train_sq_norms_ = RowSquaredNorms(train_);
  labels_ = labels;
  num_classes_ = num_classes;
  fitted_ = true;
}

std::vector<int> KnnClassifier::ScoreBatch(const Matrix& embedded) const {
  SRDA_CHECK(fitted_) << "Predict before Fit";
  SRDA_CHECK_EQ(embedded.cols(), train_.cols())
      << "embedding dimension mismatch";
  SRDA_TRACE_SCOPE("classify.score");
  const int k = std::min(k_, train_.rows());
  const Matrix cross = MultiplyTransposedB(embedded, train_);
  std::vector<int> predictions;
  predictions.reserve(static_cast<size_t>(embedded.rows()));
  std::vector<std::pair<double, int>> distances(
      static_cast<size_t>(train_.rows()));
  for (int i = 0; i < cross.rows(); ++i) {
    const double* row = cross.RowPtr(i);
    // |q - t|^2 shifted by the per-row constant |q|^2: the ranking (and the
    // equal-distance, lower-label tie rule of std::pair ordering) is
    // unchanged.
    for (int t = 0; t < train_.rows(); ++t) {
      distances[static_cast<size_t>(t)] = {
          train_sq_norms_[t] - 2.0 * row[t], labels_[static_cast<size_t>(t)]};
    }
    std::partial_sort(distances.begin(), distances.begin() + k,
                      distances.end());
    // Majority vote among the k nearest; ties go to the class whose nearest
    // member is closest (i.e. the first encountered in sorted order).
    std::vector<int> votes(static_cast<size_t>(num_classes_), 0);
    for (int j = 0; j < k; ++j) {
      ++votes[static_cast<size_t>(distances[static_cast<size_t>(j)].second)];
    }
    int best_class = -1;
    int best_votes = 0;
    for (int j = 0; j < k; ++j) {
      const int label = distances[static_cast<size_t>(j)].second;
      if (votes[static_cast<size_t>(label)] > best_votes) {
        best_votes = votes[static_cast<size_t>(label)];
        best_class = label;
      }
    }
    predictions.push_back(best_class);
  }
  return predictions;
}

std::vector<int> KnnClassifier::Predict(const Matrix& embedded) const {
  return ScoreBatch(embedded);
}

double ErrorRate(const std::vector<int>& predicted,
                 const std::vector<int>& actual) {
  SRDA_CHECK_EQ(predicted.size(), actual.size()) << "size mismatch";
  SRDA_CHECK(!predicted.empty()) << "empty prediction set";
  int errors = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] != actual[i]) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(predicted.size());
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  SRDA_CHECK(!values.empty()) << "no measurements";
  MeanStd result;
  for (double value : values) result.mean += value;
  result.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double sum_sq = 0.0;
    for (double value : values) {
      const double diff = value - result.mean;
      sum_sq += diff * diff;
    }
    result.stddev =
        std::sqrt(sum_sq / (static_cast<double>(values.size()) - 1.0));
  }
  return result;
}

}  // namespace srda
