#include "classify/classifiers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "dataset/dataset.h"

namespace srda {
namespace {

double SquaredDistance(const double* a, const double* b, int dim) {
  double sum = 0.0;
  for (int j = 0; j < dim; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

void CentroidClassifier::Fit(const Matrix& embedded,
                             const std::vector<int>& labels, int num_classes) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), embedded.rows())
      << "label count mismatch";
  SRDA_CHECK_GT(embedded.rows(), 0) << "cannot fit on an empty set";
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no training samples";
  }
  centroids_ = Matrix(num_classes, embedded.cols());
  for (int i = 0; i < embedded.rows(); ++i) {
    const double* row = embedded.RowPtr(i);
    double* centroid = centroids_.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < embedded.cols(); ++j) centroid[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv = 1.0 / counts[static_cast<size_t>(k)];
    double* centroid = centroids_.RowPtr(k);
    for (int j = 0; j < embedded.cols(); ++j) centroid[j] *= inv;
  }
  fitted_ = true;
}

void CentroidClassifier::SetCentroids(Matrix centroids) {
  SRDA_CHECK_GT(centroids.rows(), 0) << "need at least one centroid";
  centroids_ = std::move(centroids);
  fitted_ = true;
}

std::vector<int> CentroidClassifier::Predict(const Matrix& embedded) const {
  SRDA_CHECK(fitted_) << "Predict before Fit";
  SRDA_CHECK_EQ(embedded.cols(), centroids_.cols())
      << "embedding dimension mismatch";
  std::vector<int> predictions;
  predictions.reserve(static_cast<size_t>(embedded.rows()));
  for (int i = 0; i < embedded.rows(); ++i) {
    const double* row = embedded.RowPtr(i);
    int best_class = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (int k = 0; k < centroids_.rows(); ++k) {
      const double distance =
          SquaredDistance(row, centroids_.RowPtr(k), embedded.cols());
      if (distance < best_distance) {
        best_distance = distance;
        best_class = k;
      }
    }
    predictions.push_back(best_class);
  }
  return predictions;
}

KnnClassifier::KnnClassifier(int k) : k_(k) {
  SRDA_CHECK_GT(k, 0) << "k must be positive";
}

void KnnClassifier::Fit(const Matrix& embedded, const std::vector<int>& labels,
                        int num_classes) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), embedded.rows())
      << "label count mismatch";
  SRDA_CHECK_GT(embedded.rows(), 0) << "cannot fit on an empty set";
  ClassCounts(labels, num_classes);  // Validates the labels.
  train_ = embedded;
  labels_ = labels;
  num_classes_ = num_classes;
  fitted_ = true;
}

std::vector<int> KnnClassifier::Predict(const Matrix& embedded) const {
  SRDA_CHECK(fitted_) << "Predict before Fit";
  SRDA_CHECK_EQ(embedded.cols(), train_.cols())
      << "embedding dimension mismatch";
  const int k = std::min(k_, train_.rows());
  std::vector<int> predictions;
  predictions.reserve(static_cast<size_t>(embedded.rows()));
  std::vector<std::pair<double, int>> distances(
      static_cast<size_t>(train_.rows()));
  for (int i = 0; i < embedded.rows(); ++i) {
    const double* row = embedded.RowPtr(i);
    for (int t = 0; t < train_.rows(); ++t) {
      distances[static_cast<size_t>(t)] = {
          SquaredDistance(row, train_.RowPtr(t), embedded.cols()),
          labels_[static_cast<size_t>(t)]};
    }
    std::partial_sort(distances.begin(), distances.begin() + k,
                      distances.end());
    // Majority vote among the k nearest; ties go to the class whose nearest
    // member is closest (i.e. the first encountered in sorted order).
    std::vector<int> votes(static_cast<size_t>(num_classes_), 0);
    for (int j = 0; j < k; ++j) {
      ++votes[static_cast<size_t>(distances[static_cast<size_t>(j)].second)];
    }
    int best_class = -1;
    int best_votes = 0;
    for (int j = 0; j < k; ++j) {
      const int label = distances[static_cast<size_t>(j)].second;
      if (votes[static_cast<size_t>(label)] > best_votes) {
        best_votes = votes[static_cast<size_t>(label)];
        best_class = label;
      }
    }
    predictions.push_back(best_class);
  }
  return predictions;
}

double ErrorRate(const std::vector<int>& predicted,
                 const std::vector<int>& actual) {
  SRDA_CHECK_EQ(predicted.size(), actual.size()) << "size mismatch";
  SRDA_CHECK(!predicted.empty()) << "empty prediction set";
  int errors = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] != actual[i]) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(predicted.size());
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  SRDA_CHECK(!values.empty()) << "no measurements";
  MeanStd result;
  for (double value : values) result.mean += value;
  result.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double sum_sq = 0.0;
    for (double value : values) {
      const double diff = value - result.mean;
      sum_sq += diff * diff;
    }
    result.stddev =
        std::sqrt(sum_sq / (static_cast<double>(values.size()) - 1.0));
  }
  return result;
}

}  // namespace srda
