// Classifiers operating in the embedded (post-projection) space, plus error
// evaluation helpers. These close the loop for the paper's experiments: each
// discriminant method produces an embedding, a simple classifier measures the
// test error rate in that space.
//
// Both classifiers implement the batched Scorer interface: a whole block of
// embedded queries is scored at once through the blocked GEMM kernels
// (matrix/blas.h) instead of a per-row distance loop, so prediction
// throughput scales with the level-3 kernels' cache blocking and thread
// pool rather than gemv latency. Per-row results are independent of the
// block they arrive in — scoring rows one at a time, in micro-batches, or
// all at once yields identical predictions — which is what lets the
// serving layer (serve/serving.h) micro-batch traffic without changing
// any answer.

#ifndef SRDA_CLASSIFY_CLASSIFIERS_H_
#define SRDA_CLASSIFY_CLASSIFIERS_H_

#include <vector>

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// A fitted classifier that scores blocks of embedded queries. `embedded`
// carries one query per row in the embedding's output space; the result is
// one compact class id per row.
class Scorer {
 public:
  virtual ~Scorer() = default;

  // Dimension of the embedded space queries must arrive in.
  virtual int embedded_dim() const = 0;

  // Number of classes predictions are drawn from.
  virtual int num_classes() const = 0;

  // Scores every row of `embedded` (m x embedded_dim). Row i's prediction
  // depends only on row i, never on the rest of the block.
  virtual std::vector<int> ScoreBatch(const Matrix& embedded) const = 0;
};

// Nearest-centroid classifier: stores one mean vector per class and assigns
// each query to the class with the closest (Euclidean) centroid. Batched
// scoring expands |q - c_k|^2 = |q|^2 - 2 q.c_k + |c_k|^2 and drops the
// query term (constant per row): one blocked GEMM produces every q.c_k
// cross product, then an argmin over |c_k|^2 - 2 q.c_k per row. Ties take
// the lowest class id.
class CentroidClassifier : public Scorer {
 public:
  // Fits centroids from embedded training data (one row per sample).
  void Fit(const Matrix& embedded, const std::vector<int>& labels,
           int num_classes);

  // Adopts precomputed centroids (one row per class), e.g. loaded from a
  // saved model. Leaves the classifier ready to score.
  void SetCentroids(Matrix centroids);

  // Predicts the class of each row of `embedded` (same as ScoreBatch).
  std::vector<int> Predict(const Matrix& embedded) const;

  // Scorer:
  int embedded_dim() const override { return centroids_.cols(); }
  int num_classes() const override { return centroids_.rows(); }
  std::vector<int> ScoreBatch(const Matrix& embedded) const override;

  const Matrix& centroids() const { return centroids_; }

 private:
  Matrix centroids_;            // num_classes x dim
  Vector centroid_sq_norms_;    // |c_k|^2, precomputed at fit time
  bool fitted_ = false;
};

// k-nearest-neighbor classifier with majority vote (ties broken by the
// nearest member of the tied classes). Batched scoring computes the
// query x train cross products with one blocked GEMM, then ranks
// |t|^2 - 2 q.t per row (the |q|^2 term cannot change the order).
class KnnClassifier : public Scorer {
 public:
  explicit KnnClassifier(int k = 1);

  void Fit(const Matrix& embedded, const std::vector<int>& labels,
           int num_classes);

  std::vector<int> Predict(const Matrix& embedded) const;

  // Scorer:
  int embedded_dim() const override { return train_.cols(); }
  int num_classes() const override { return num_classes_; }
  std::vector<int> ScoreBatch(const Matrix& embedded) const override;

 private:
  int k_;
  Matrix train_;
  Vector train_sq_norms_;  // |t|^2 per training row
  std::vector<int> labels_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

// Fraction of mismatches between `predicted` and `actual` (same length,
// non-empty), in [0, 1].
double ErrorRate(const std::vector<int>& predicted,
                 const std::vector<int>& actual);

// Mean and sample standard deviation of a set of measurements.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace srda

#endif  // SRDA_CLASSIFY_CLASSIFIERS_H_
