// Classifiers operating in the embedded (post-projection) space, plus error
// evaluation helpers. These close the loop for the paper's experiments: each
// discriminant method produces an embedding, a simple classifier measures the
// test error rate in that space.

#ifndef SRDA_CLASSIFY_CLASSIFIERS_H_
#define SRDA_CLASSIFY_CLASSIFIERS_H_

#include <vector>

#include "matrix/matrix.h"

namespace srda {

// Nearest-centroid classifier: stores one mean vector per class and assigns
// each query to the class with the closest (Euclidean) centroid.
class CentroidClassifier {
 public:
  // Fits centroids from embedded training data (one row per sample).
  void Fit(const Matrix& embedded, const std::vector<int>& labels,
           int num_classes);

  // Adopts precomputed centroids (one row per class), e.g. loaded from a
  // saved classifier model. Leaves the classifier ready to Predict.
  void SetCentroids(Matrix centroids);

  // Predicts the class of each row of `embedded`.
  std::vector<int> Predict(const Matrix& embedded) const;

  const Matrix& centroids() const { return centroids_; }

 private:
  Matrix centroids_;  // num_classes x dim
  bool fitted_ = false;
};

// k-nearest-neighbor classifier with majority vote (ties broken by the
// nearest member of the tied classes). Brute force: fine in the low-
// dimensional embedded space.
class KnnClassifier {
 public:
  explicit KnnClassifier(int k = 1);

  void Fit(const Matrix& embedded, const std::vector<int>& labels,
           int num_classes);

  std::vector<int> Predict(const Matrix& embedded) const;

 private:
  int k_;
  Matrix train_;
  std::vector<int> labels_;
  int num_classes_ = 0;
  bool fitted_ = false;
};

// Fraction of mismatches between `predicted` and `actual` (same length,
// non-empty), in [0, 1].
double ErrorRate(const std::vector<int>& predicted,
                 const std::vector<int>& actual);

// Mean and sample standard deviation of a set of measurements.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace srda

#endif  // SRDA_CLASSIFY_CLASSIFIERS_H_
