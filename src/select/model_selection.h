// Model selection utilities: stratified k-fold cross-validation and an
// alpha-grid search for SRDA.
//
// Figure 5 of the paper studies SRDA's sensitivity to the regularization
// parameter and concludes selection "is not a very crucial problem"; this
// module provides the tooling to verify that on any dataset and to pick
// alpha automatically when it does matter.

#ifndef SRDA_SELECT_MODEL_SELECTION_H_
#define SRDA_SELECT_MODEL_SELECTION_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/srda.h"
#include "dataset/dataset.h"
#include "dataset/split.h"

namespace srda {

// Partitions samples into `num_folds` stratified folds. Every fold receives
// floor or ceil of class_size / num_folds samples of each class; each class
// must have at least `num_folds` samples.
std::vector<std::vector<int>> StratifiedFolds(const std::vector<int>& labels,
                                              int num_classes, int num_folds,
                                              Rng* rng);

// Evaluates `evaluate(train, validation)` over the k folds and returns the
// mean validation value (typically an error rate).
double CrossValidate(
    const DenseDataset& dataset, int num_folds, Rng* rng,
    const std::function<double(const DenseDataset& train,
                               const DenseDataset& validation)>& evaluate);

struct AlphaSearchResult {
  // Mean validation error (fraction in [0, 1]) per candidate.
  std::vector<double> errors;
  // Index of the best candidate (smallest error, ties to the smaller alpha).
  int best_index = 0;
  double best_alpha = 0.0;
};

// Grid-searches SRDA's ridge parameter by k-fold cross-validation with a
// nearest-centroid classifier in the embedded space.
AlphaSearchResult SelectSrdaAlpha(const DenseDataset& dataset,
                                  const std::vector<double>& alphas,
                                  int num_folds, uint64_t seed);

// Same search with every fold fit running under `base_options` (solver
// choice, LSQR budget, sketch config — see SrdaOptions; the alpha field is
// overridden by each grid candidate). With base_options.sketch.mode ==
// SketchMode::kPrecondition each fold solver builds its sketch once and
// pays only a small s-row refactorization per grid point, mirroring the
// Gram amortization. The default-options overload above is
// bitwise-unchanged from the historical search.
AlphaSearchResult SelectSrdaAlpha(const DenseDataset& dataset,
                                  const std::vector<double>& alphas,
                                  int num_folds, uint64_t seed,
                                  const SrdaOptions& base_options);

}  // namespace srda

#endif  // SRDA_SELECT_MODEL_SELECTION_H_
