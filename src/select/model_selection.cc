#include "select/model_selection.h"

#include <algorithm>

#include "classify/classifiers.h"
#include "common/check.h"
#include "core/srda.h"
#include "solver/ridge_solver.h"

namespace srda {

std::vector<std::vector<int>> StratifiedFolds(const std::vector<int>& labels,
                                              int num_classes, int num_folds,
                                              Rng* rng) {
  SRDA_CHECK(rng != nullptr);
  SRDA_CHECK_GT(num_folds, 1) << "need at least two folds";
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GE(counts[static_cast<size_t>(k)], num_folds)
        << "class " << k << " has fewer samples than folds";
  }

  std::vector<std::vector<int>> by_class(static_cast<size_t>(num_classes));
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    by_class[static_cast<size_t>(labels[static_cast<size_t>(i)])].push_back(i);
  }
  for (auto& indices : by_class) rng->Shuffle(&indices);

  std::vector<std::vector<int>> folds(static_cast<size_t>(num_folds));
  for (const auto& indices : by_class) {
    for (size_t position = 0; position < indices.size(); ++position) {
      folds[position % static_cast<size_t>(num_folds)].push_back(
          indices[position]);
    }
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

double CrossValidate(
    const DenseDataset& dataset, int num_folds, Rng* rng,
    const std::function<double(const DenseDataset& train,
                               const DenseDataset& validation)>& evaluate) {
  SRDA_CHECK(evaluate != nullptr);
  const std::vector<std::vector<int>> folds =
      StratifiedFolds(dataset.labels, dataset.num_classes, num_folds, rng);
  double total = 0.0;
  for (int f = 0; f < num_folds; ++f) {
    std::vector<int> train_indices;
    for (int other = 0; other < num_folds; ++other) {
      if (other == f) continue;
      train_indices.insert(train_indices.end(),
                           folds[static_cast<size_t>(other)].begin(),
                           folds[static_cast<size_t>(other)].end());
    }
    std::sort(train_indices.begin(), train_indices.end());
    const DenseDataset train = Subset(dataset, train_indices);
    const DenseDataset validation =
        Subset(dataset, folds[static_cast<size_t>(f)]);
    total += evaluate(train, validation);
  }
  return total / num_folds;
}

AlphaSearchResult SelectSrdaAlpha(const DenseDataset& dataset,
                                  const std::vector<double>& alphas,
                                  int num_folds, uint64_t seed) {
  return SelectSrdaAlpha(dataset, alphas, num_folds, seed, SrdaOptions{});
}

AlphaSearchResult SelectSrdaAlpha(const DenseDataset& dataset,
                                  const std::vector<double>& alphas,
                                  int num_folds, uint64_t seed,
                                  const SrdaOptions& base_options) {
  SRDA_CHECK(!alphas.empty()) << "no alpha candidates";
  AlphaSearchResult result;
  result.errors.assign(alphas.size(), 0.0);

  // One draw of the folds serves every candidate (paired comparison).
  // Factor-once CV: one solver is bound to the FULL dataset and each
  // training fold's solver derives from it via ExcludeRows, so every
  // Cholesky factor a fold needs comes from a rank-(|fold|+1) downdate of
  // the parent's cached factor instead of a per-fold Gram rebuild (the
  // full build runs only on the downdate engine's condition fallback).
  // The loop runs alpha-outer / fold-inner so the parent factors each grid
  // point exactly once and all k children downdate from it before the next
  // alpha evicts the parent's single-entry factor cache: a k-fold x
  // g-alpha grid pays one Gram build and g full factorizations total.
  // For a fixed alpha the error sum still accumulates over folds in
  // ascending order, matching the historical loop orders.
  Rng rng(seed);
  const std::vector<std::vector<int>> folds =
      StratifiedFolds(dataset.labels, dataset.num_classes, num_folds, &rng);
  RidgeSolver full(&dataset.features);
  std::vector<DenseDataset> train_sets;
  std::vector<DenseDataset> validation_sets;
  std::vector<RidgeSolver> fold_solvers;
  train_sets.reserve(static_cast<size_t>(num_folds));
  validation_sets.reserve(static_cast<size_t>(num_folds));
  fold_solvers.reserve(static_cast<size_t>(num_folds));
  for (int f = 0; f < num_folds; ++f) {
    std::vector<int> train_indices;
    for (int other = 0; other < num_folds; ++other) {
      if (other == f) continue;
      train_indices.insert(train_indices.end(),
                           folds[static_cast<size_t>(other)].begin(),
                           folds[static_cast<size_t>(other)].end());
    }
    std::sort(train_indices.begin(), train_indices.end());
    train_sets.push_back(Subset(dataset, train_indices));
    validation_sets.push_back(Subset(dataset, folds[static_cast<size_t>(f)]));
    fold_solvers.push_back(full.ExcludeRows(folds[static_cast<size_t>(f)]));
  }
  for (size_t a = 0; a < alphas.size(); ++a) {
    for (int f = 0; f < num_folds; ++f) {
      const DenseDataset& train = train_sets[static_cast<size_t>(f)];
      const DenseDataset& validation = validation_sets[static_cast<size_t>(f)];
      SrdaOptions options = base_options;
      options.alpha = alphas[a];
      const SrdaModel model =
          FitSrda(&fold_solvers[static_cast<size_t>(f)], train.labels,
                  train.num_classes, options);
      SRDA_CHECK(model.converged) << "SRDA failed during CV";
      CentroidClassifier classifier;
      classifier.Fit(model.embedding.Transform(train.features), train.labels,
                     train.num_classes);
      result.errors[a] += ErrorRate(
          classifier.Predict(model.embedding.Transform(validation.features)),
          validation.labels);
    }
  }
  for (double& error : result.errors) error /= num_folds;
  result.best_index = static_cast<int>(
      std::min_element(result.errors.begin(), result.errors.end()) -
      result.errors.begin());
  result.best_alpha = alphas[static_cast<size_t>(result.best_index)];
  return result;
}

}  // namespace srda
