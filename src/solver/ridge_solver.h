// Shared ridge-regression engine behind every discriminant trainer.
//
// Theorem 1 of the paper reduces each discriminant variant to "spectral
// responses + regularized least squares"; this layer owns that second step so
// the trainers stop carrying private Gram/Cholesky/LSQR loops. A RidgeSolver
// binds to one description of the data — a dense matrix, a matrix-free
// LinearOperator, or a precomputed SPD Gram — and solves
//
//   min_A ||X A - Y||^2 + alpha ||A||^2        (all responses at once)
//
// for any number of alphas. The expensive, alpha-independent work (column
// means, centering, the Gram product X̄ᵀX̄ or X̄X̄ᵀ) is computed once and
// cached inside the solver, so an alpha sweep pays only one Cholesky
// refactorization per grid point (the paper's §III-C / Fig. 5 amortization).
//
// Determinism contract: every path reuses the repo's bitwise-deterministic
// kernels, and the batched LSQR path reproduces the serial per-column
// recurrence exactly, so results are bitwise identical to the pre-refactor
// per-trainer solves at any thread count.

#ifndef SRDA_SOLVER_RIDGE_SOLVER_H_
#define SRDA_SOLVER_RIDGE_SOLVER_H_

#include <memory>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/linear_operator.h"
#include "linalg/lsqr.h"
#include "linalg/sharded_operator.h"
#include "linalg/sketch.h"
#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// How the solver treats the affine bias of the regression y ~ A a + b.
enum class RidgeBias {
  // No bias: solve against the operator exactly as given.
  kNone,
  // Solve on the implicitly centered data (A - 1 meanᵀ) and recover
  // b = -meanᵀ a. This keeps the bias out of the ridge penalty — the
  // paper's Eq. 15 convention — and is what SRDA uses on both paths.
  kImplicitCentering,
  // Solve on [A 1]; the bias is the trailing coefficient. Kept for the
  // semi-supervised sparse path (note the damping then also penalizes the
  // bias, which kImplicitCentering avoids).
  kAugmentedOnes,
};

// Which solve algorithm Solve() runs.
enum class RidgeMethod {
  // Normal equations for dense-bound and Gram-bound solvers, LSQR for
  // operator-bound ones.
  kAuto,
  kNormalEquations,
  kLsqr,
};

// Which Gram product a dense-bound solver caches for the normal equations.
enum class GramSide {
  kAuto,    // primal n x n when n <= m, else the dual m x m (Eqn. 21)
  kPrimal,  // force X̄ᵀX̄ (RLDA needs the n x n scatter factor itself)
  kDual,    // force X̄X̄ᵀ
};

struct RidgeSolveOptions {
  RidgeMethod method = RidgeMethod::kAuto;
  // LSQR iteration cap and early-stopping tolerances (LSQR path only).
  int lsqr_iterations = 20;
  double lsqr_atol = 1e-10;
  double lsqr_btol = 1e-10;
};

// How the solver uses a randomized sketch (linalg/sketch.h) of the bound
// data. Configured per solver via SetSketch(); the sketch itself is
// alpha-independent and cached across the alpha grid exactly like the Gram.
enum class SketchMode {
  // No sketching (the default).
  kOff,
  // LSQR runs with the factored sketched Gram as a right preconditioner
  // (LsqrOptions::right_precond). Exact solutions, fewer iterations on
  // ill-conditioned data; if the sketched factor fails (alpha == 0 on a
  // rank-deficient sketch) the solve falls back to plain LSQR.
  kPrecondition,
  // Solve() returns the minimizer of the SKETCHED objective
  // min ||S(X̄ a - y)||² + alpha ||a||² directly — one s-row factor and no
  // iterations at all, with a computed per-response error bound vs the
  // exact path in RidgeSolution::sketch_error_bounds. Requires alpha > 0
  // and row-level data (not a Gram binding).
  kSolve,
};

struct SketchConfig {
  SketchMode mode = SketchMode::kOff;
  // Sketch rows s; 0 picks min(rows, 4 * effective columns), the usual
  // preconditioning regime.
  int sketch_rows = 0;
  SketchKind kind = SketchKind::kCountSketch;
  // Seed of the sketch operator. Same seed + any thread count or shard
  // size => bitwise-identical sketches, factors, and preconditioned solves.
  uint64_t seed = 0x5eed5eedULL;
};

// Convergence record for one LSQR right-hand side, surfaced so trainers
// can report why each response stopped instead of discarding the solver's
// diagnostics.
struct RidgeRhsDiagnostics {
  int iterations = 0;
  double residual_norm = 0.0;
  double normal_residual_norm = 0.0;
  bool converged = false;
  LsqrStop stop = LsqrStop::kIterationLimit;
};

struct RidgeSolution {
  // False only when the Cholesky factorization failed (alpha == 0 on
  // rank-deficient data); the other fields are then empty.
  bool ok = false;
  // n x k ridge coefficients, one column per response.
  Matrix coefficients;
  // k bias entries; empty under RidgeBias::kNone and for Gram-bound solvers.
  Vector bias;
  // Total LSQR iterations across all responses (0 on the direct paths).
  int total_lsqr_iterations = 0;
  // Per-response convergence diagnostics (empty on the direct paths).
  std::vector<RidgeRhsDiagnostics> lsqr;
  // Filled by pure sketch solves (SketchMode::kSolve) only: a rigorous
  // per-response upper bound on ||â_j - a*_j||₂, the distance from the
  // sketched coefficients to the exact ridge solution. Derived from the
  // exact quadratic identity a* = â - H⁻¹∇f(â) with H ⪰ 2 alpha I, so
  // ||â - a*|| <= ||X̄ᵀ(X̄ â - y) + alpha â|| / alpha — computed with two
  // passes over the (exact) data operator.
  std::vector<double> sketch_error_bounds;
};

// One instance per training-data binding. Solve() may be called repeatedly
// with different alphas and responses; the Gram and the last Cholesky factor
// are cached across calls. Movable but not copyable; not thread-safe (the
// caches mutate). The bound matrix/operator is not owned and must outlive
// the solver.
class RidgeSolver {
 public:
  // Binds dense data (rows are samples) with implicit centering. Normal
  // equations by default; RidgeMethod::kLsqr runs the matrix-free path on
  // the same data.
  explicit RidgeSolver(const Matrix* x, GramSide side = GramSide::kAuto);

  // Binds a matrix-free operator; Solve() always runs batched LSQR.
  explicit RidgeSolver(const LinearOperator* data,
                       RidgeBias bias = RidgeBias::kImplicitCentering);

  // Binds an out-of-core shard stream. Dense shard sources solve by
  // streamed normal equations: the column mean, the primal Gram X̄ᵀX̄, and
  // the right-hand sides X̄ᵀY accumulate shard by shard through the
  // chain-continuing blas kernels, bitwise identical to a dense-bound
  // solver on the concatenated matrix at any shard size (the dual m x m
  // Gram cannot stream row-wise, so the side is always primal). Sparse
  // shard sources solve by batched LSQR over a ShardedOperator — one
  // streaming pass over the shards per iteration, bitwise identical to the
  // operator-bound in-RAM path. RidgeMethod::kLsqr forces the streaming
  // LSQR path for dense sources too. The source is not owned, must outlive
  // the solver, and is exclusively cursored by it during Solve/FactorAt.
  explicit RidgeSolver(RowShardSource* source);

  // Binds a precomputed SPD base matrix G; Solve() returns
  // (G + alpha I)^{-1} Y with G cached across alphas. Used by the kernel
  // trainers (KSRDA: G = K; KDA: G = K K + alpha K, shifted by epsilon).
  static RidgeSolver FromGram(Matrix gram);

  RidgeSolver(RidgeSolver&&) = default;
  RidgeSolver& operator=(RidgeSolver&&) = default;
  RidgeSolver(const RidgeSolver&) = delete;
  RidgeSolver& operator=(const RidgeSolver&) = delete;

  // Fold API: returns a child solver bound to this solver's dense data with
  // the given rows (sorted ascending, unique, a strict subset) held out —
  // the training side of one cross-validation fold. The child owns a copy
  // of the kept rows and solves exactly the same ridge problem a fresh
  // solver on that submatrix would, but derives each Cholesky factor from
  // the parent's by a rank-(k+1) downdate (primal: the fold's centered rows
  // plus one mean-correction vector; dual: row/col deletion plus a rank-2
  // recentering) instead of rebuilding and refactoring the Gram — O(n²k)
  // per alpha instead of O(mn² + n³). When the downdate nears singularity
  // it falls back to a full Gram build + factorization, so the child's
  // Solve()/FactorAt() contract (including the `ok` failure mode) is
  // unchanged. The parent must outlive the child and resolves its Gram
  // side first; the child inherits it so the algebra lines up. Counters
  // `ridge.fold_downdate_hit` / `ridge.fold_downdate_fallback` record
  // which path each factor took (while tracing).
  RidgeSolver ExcludeRows(const std::vector<int>& rows);

  // Configures sketching for subsequent Solve() calls. The sketch operator
  // (rows/kind/seed) and its factored Gram are cached across calls and
  // across the alpha grid; changing only the mode keeps both caches (the
  // operator does not depend on the mode), changing rows/kind/seed drops
  // them. Row-level bindings only (dense, operator, sharded) — Gram-bound
  // solvers have no rows to sketch and must stay at SketchMode::kOff.
  void SetSketch(const SketchConfig& config);
  const SketchConfig& sketch_config() const { return sketch_config_; }

  // Solves the ridge problem for every column of `responses` at `alpha`.
  RidgeSolution Solve(const Matrix& responses, double alpha,
                      const RidgeSolveOptions& options = {});

  // Cholesky factor of (base + alpha I) where base is the cached Gram.
  // Returns nullptr if the factorization fails; the factor is cached, so
  // repeated calls at the same alpha are free. Dense- and Gram-bound
  // solvers only. The pointer is invalidated by the next FactorAt/Solve
  // with a different alpha.
  const Cholesky* FactorAt(double alpha);

  // Column means of the bound data (dense-bound solvers, and sharded
  // solvers over dense shards — computed in one streaming pass).
  const Vector& mean();

  // The centered copy X̄ = X - 1 meanᵀ (dense-bound solvers only). RLDA
  // builds its class-sum matrix from this.
  const Matrix& centered();

 private:
  enum class Binding { kDense, kOperator, kGram, kSharded };

  RidgeSolver() = default;

  void PrepareDense();
  void PrepareSharded();
  const Matrix& GramBase();
  bool TryFoldDowndate(double alpha);
  RidgeSolution SolveNormalEquations(const Matrix& responses, double alpha);
  RidgeSolution SolveLsqr(const Matrix& responses, double alpha,
                          const RidgeSolveOptions& options);
  RidgeSolution SolveSketched(const Matrix& responses, double alpha);
  // The operator view of the bound data the LSQR/sketch paths run on
  // (creates and caches the DenseOperator for dense bindings).
  const LinearOperator* ResolveOperator();
  void EnsureOperatorMean(const LinearOperator* data);
  // Builds (and caches) the sketch of the EFFECTIVE solve matrix — the
  // base data corrected for the bias mode (implicit centering subtracts
  // (S·1) meanᵀ, augmented-ones appends the S·1 column).
  void EnsureSketch(const LinearOperator* data);
  // Cholesky factor of (sketchᵀ sketch + alpha I), cached per alpha like
  // FactorAt. nullptr when the factorization fails.
  const Cholesky* SketchedFactorAt(const LinearOperator* data, double alpha);

  Binding binding_ = Binding::kGram;
  const Matrix* x_ = nullptr;
  const LinearOperator* operator_ = nullptr;
  // Sharded binding: the shard stream and its operator view (owned).
  RowShardSource* source_ = nullptr;
  std::unique_ptr<ShardedOperator> sharded_operator_;
  RidgeBias bias_mode_ = RidgeBias::kImplicitCentering;
  GramSide side_ = GramSide::kAuto;

  // Dense-binding caches (built on first use).
  bool dense_ready_ = false;
  Vector mean_;
  Matrix centered_;
  bool use_primal_ = true;

  // The alpha-independent Gram base (X̄ᵀX̄, X̄X̄ᵀ, or the user's G).
  bool gram_ready_ = false;
  Matrix gram_;

  // Last Cholesky factor of (gram_ + alpha I).
  bool factor_ready_ = false;
  double factor_alpha_ = 0.0;
  bool factor_ok_ = false;
  Cholesky chol_;

  // Fold-child state (ExcludeRows): the parent whose packed Gram factor we
  // downdate, the excluded parent row indices, and the owned copy of the
  // kept rows that x_ points at (kept in a unique_ptr so moves don't
  // invalidate the pointer).
  RidgeSolver* parent_ = nullptr;
  std::vector<int> fold_rows_;
  std::unique_ptr<Matrix> owned_x_;

  // LSQR-path caches: the operator view of dense data and the column means
  // computed through the operator (A^T 1 / m), matching the historical
  // matrix-free arithmetic bit for bit.
  std::unique_ptr<DenseOperator> dense_operator_;
  bool operator_mean_ready_ = false;
  Vector operator_mean_;

  // Sketch caches (SetSketch): the alpha-independent sketch of the
  // effective solve matrix, the resolved sketch options (rows/kind/seed —
  // reused to sketch the responses in pure sketch solves), and the last
  // factored (sketchᵀ sketch + alpha I).
  SketchConfig sketch_config_;
  bool sketch_ready_ = false;
  Matrix sketch_;
  SketchOptions sketch_options_;
  bool sketch_factor_ready_ = false;
  double sketch_factor_alpha_ = 0.0;
  bool sketch_factor_ok_ = false;
  Cholesky sketch_chol_;
};

}  // namespace srda

#endif  // SRDA_SOLVER_RIDGE_SOLVER_H_
