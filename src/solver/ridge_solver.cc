#include "solver/ridge_solver.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "linalg/lsqr.h"
#include "matrix/blas.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Cache effectiveness of the alpha-sweep amortization, recorded while
// tracing: Gram (re)builds and Cholesky (re)factorizations vs. reuse.
struct RidgeInstruments {
  Counter* gram_hits;
  Counter* gram_misses;
  Counter* factor_hits;
  Counter* factor_misses;
};

const RidgeInstruments& RidgeMetrics() {
  static const RidgeInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return RidgeInstruments{registry.counter("ridge.gram_cache_hits"),
                            registry.counter("ridge.gram_cache_misses"),
                            registry.counter("ridge.factor_cache_hits"),
                            registry.counter("ridge.factor_cache_misses")};
  }();
  return instruments;
}

}  // namespace

RidgeSolver::RidgeSolver(const Matrix* x, GramSide side) {
  SRDA_CHECK(x != nullptr);
  binding_ = Binding::kDense;
  x_ = x;
  side_ = side;
}

RidgeSolver::RidgeSolver(const LinearOperator* data, RidgeBias bias) {
  SRDA_CHECK(data != nullptr);
  binding_ = Binding::kOperator;
  operator_ = data;
  bias_mode_ = bias;
}

RidgeSolver RidgeSolver::FromGram(Matrix gram) {
  SRDA_CHECK_EQ(gram.rows(), gram.cols()) << "Gram base must be square";
  RidgeSolver solver;
  solver.binding_ = Binding::kGram;
  solver.gram_ = std::move(gram);
  solver.gram_ready_ = true;
  return solver;
}

void RidgeSolver::PrepareDense() {
  SRDA_CHECK(binding_ == Binding::kDense)
      << "dense data accessor on a non-dense-bound solver";
  if (dense_ready_) return;
  TraceSpan span("ridge.prepare_dense");
  mean_ = ColumnMeans(*x_);
  centered_ = *x_;
  SubtractRowVector(mean_, &centered_);
  switch (side_) {
    case GramSide::kAuto:
      use_primal_ = x_->cols() <= x_->rows();
      break;
    case GramSide::kPrimal:
      use_primal_ = true;
      break;
    case GramSide::kDual:
      use_primal_ = false;
      break;
  }
  dense_ready_ = true;
}

const Matrix& RidgeSolver::GramBase() {
  if (gram_ready_) {
    if (TraceEnabled()) RidgeMetrics().gram_hits->Increment();
    return gram_;
  }
  TraceSpan span("ridge.gram_build");
  if (span.recording()) RidgeMetrics().gram_misses->Increment();
  PrepareDense();
  gram_ = use_primal_ ? Gram(centered_) : OuterGram(centered_);
  gram_ready_ = true;
  return gram_;
}

const Cholesky* RidgeSolver::FactorAt(double alpha) {
  SRDA_CHECK(binding_ != Binding::kOperator)
      << "FactorAt needs a dense- or Gram-bound solver";
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";
  if (factor_ready_ && factor_alpha_ == alpha) {
    if (TraceEnabled()) RidgeMetrics().factor_hits->Increment();
    return factor_ok_ ? &chol_ : nullptr;
  }
  TraceSpan span("ridge.factor");
  if (span.recording()) {
    span.AddArg("alpha", alpha);
    RidgeMetrics().factor_misses->Increment();
  }
  Matrix shifted = GramBase();
  AddDiagonal(alpha, &shifted);
  factor_ok_ = chol_.Factor(shifted);
  factor_alpha_ = alpha;
  factor_ready_ = true;
  return factor_ok_ ? &chol_ : nullptr;
}

const Vector& RidgeSolver::mean() {
  PrepareDense();
  return mean_;
}

const Matrix& RidgeSolver::centered() {
  PrepareDense();
  return centered_;
}

RidgeSolution RidgeSolver::Solve(const Matrix& responses, double alpha,
                                 const RidgeSolveOptions& options) {
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";
  RidgeMethod method = options.method;
  if (method == RidgeMethod::kAuto) {
    method = binding_ == Binding::kOperator ? RidgeMethod::kLsqr
                                            : RidgeMethod::kNormalEquations;
  }
  if (method == RidgeMethod::kNormalEquations) {
    SRDA_CHECK(binding_ != Binding::kOperator)
        << "normal equations need dense or Gram-bound data";
    if (binding_ == Binding::kGram) {
      SRDA_CHECK_EQ(responses.rows(), gram_.rows())
          << "response count mismatch";
      TraceSpan span("ridge.solve_normal");
      RidgeSolution solution;
      const Cholesky* chol = FactorAt(alpha);
      if (chol == nullptr) return solution;
      solution.coefficients = chol->SolveMatrix(responses);
      solution.ok = true;
      return solution;
    }
    return SolveNormalEquations(responses, alpha);
  }
  SRDA_CHECK(binding_ != Binding::kGram)
      << "LSQR needs dense- or operator-bound data";
  return SolveLsqr(responses, alpha, options);
}

// Dense normal-equations path (Section III-C1): primal
// (X̄ᵀX̄ + alpha I) A = X̄ᵀY, or the exact dual A = X̄ᵀ(X̄X̄ᵀ + alpha I)⁻¹Y
// when the solver was sided that way. With responses orthogonal to the ones
// vector, centering makes the optimal regression bias zero; the embedding
// bias folds the mean back in as b = -meanᵀ a.
RidgeSolution RidgeSolver::SolveNormalEquations(const Matrix& responses,
                                                double alpha) {
  TraceSpan span("ridge.solve_normal");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(responses.cols()));
    span.AddArg("alpha", alpha);
  }
  PrepareDense();
  SRDA_CHECK_EQ(responses.rows(), x_->rows()) << "response count mismatch";
  RidgeSolution solution;
  const Cholesky* chol = FactorAt(alpha);
  if (chol == nullptr) return solution;

  if (use_primal_) {
    solution.coefficients =
        chol->SolveMatrix(MultiplyTransposedA(centered_, responses));
  } else {
    solution.coefficients =
        MultiplyTransposedA(centered_, chol->SolveMatrix(responses));
  }

  const int d = responses.cols();
  solution.bias = Vector(d);
  const Vector mean_projected =
      MultiplyTransposed(solution.coefficients, mean_);
  for (int j = 0; j < d; ++j) solution.bias[j] = -mean_projected[j];
  solution.ok = true;
  return solution;
}

// Matrix-free path (Section III-C2): batched damped LSQR with
// damp = sqrt(alpha), one operator pass per iteration for all responses.
RidgeSolution RidgeSolver::SolveLsqr(const Matrix& responses, double alpha,
                                     const RidgeSolveOptions& options) {
  TraceSpan span("ridge.solve_lsqr");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(responses.cols()));
    span.AddArg("alpha", alpha);
  }
  SRDA_CHECK_GT(options.lsqr_iterations, 0);
  const LinearOperator* data = operator_;
  if (binding_ == Binding::kDense) {
    if (dense_operator_ == nullptr) {
      dense_operator_ = std::make_unique<DenseOperator>(x_);
    }
    data = dense_operator_.get();
  }
  SRDA_CHECK_EQ(responses.rows(), data->rows()) << "response count mismatch";

  const int m = data->rows();
  const int n = data->cols();
  const int d = responses.cols();

  LsqrOptions lsqr_options;
  lsqr_options.max_iterations = options.lsqr_iterations;
  lsqr_options.damp = std::sqrt(alpha);
  lsqr_options.atol = options.lsqr_atol;
  lsqr_options.btol = options.lsqr_btol;

  RidgeSolution solution;
  solution.coefficients = Matrix(n, d);

  std::vector<LsqrResult> results;
  if (bias_mode_ == RidgeBias::kImplicitCentering) {
    if (!operator_mean_ready_) {
      // Column means through the operator itself (A^T 1 / m): works for
      // dense and sparse data without densifying either.
      operator_mean_ = data->ApplyTransposed(Vector(m, 1.0));
      Scale(1.0 / m, &operator_mean_);
      operator_mean_ready_ = true;
    }
    const CenterColumnsOperator centered(data, &operator_mean_);
    results = LsqrBatch(centered, responses, lsqr_options);
    solution.bias = Vector(d);
    for (int j = 0; j < d; ++j) {
      const LsqrResult& result = results[static_cast<size_t>(j)];
      for (int i = 0; i < n; ++i) solution.coefficients(i, j) = result.x[i];
      solution.bias[j] = -Dot(operator_mean_, result.x);
    }
  } else if (bias_mode_ == RidgeBias::kAugmentedOnes) {
    const AppendOnesColumnOperator augmented(data);
    results = LsqrBatch(augmented, responses, lsqr_options);
    solution.bias = Vector(d);
    for (int j = 0; j < d; ++j) {
      const LsqrResult& result = results[static_cast<size_t>(j)];
      for (int i = 0; i < n; ++i) solution.coefficients(i, j) = result.x[i];
      solution.bias[j] = result.x[n];
    }
  } else {
    results = LsqrBatch(*data, responses, lsqr_options);
    for (int j = 0; j < d; ++j) {
      const LsqrResult& result = results[static_cast<size_t>(j)];
      for (int i = 0; i < n; ++i) solution.coefficients(i, j) = result.x[i];
    }
  }

  solution.lsqr.reserve(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    const LsqrResult& result = results[static_cast<size_t>(j)];
    solution.total_lsqr_iterations += result.iterations;
    RidgeRhsDiagnostics diag;
    diag.iterations = result.iterations;
    diag.residual_norm = result.residual_norm;
    diag.normal_residual_norm = result.normal_residual_norm;
    diag.converged = result.converged;
    diag.stop = result.stop;
    solution.lsqr.push_back(diag);
  }
  solution.ok = true;
  return solution;
}

}  // namespace srda
