#include "solver/ridge_solver.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "linalg/cholesky_update.h"
#include "linalg/lsqr.h"
#include "matrix/blas.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Cache effectiveness of the alpha-sweep amortization, recorded while
// tracing: Gram (re)builds and Cholesky (re)factorizations vs. reuse.
struct RidgeInstruments {
  Counter* gram_hits;
  Counter* gram_misses;
  Counter* factor_hits;
  Counter* factor_misses;
  Counter* fold_downdate_hits;
  Counter* fold_downdate_fallbacks;
  Counter* sketch_hits;
  Counter* sketch_misses;
  Counter* sketch_precond_fallbacks;
};

const RidgeInstruments& RidgeMetrics() {
  static const RidgeInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return RidgeInstruments{registry.counter("ridge.gram_cache_hits"),
                            registry.counter("ridge.gram_cache_misses"),
                            registry.counter("ridge.factor_cache_hits"),
                            registry.counter("ridge.factor_cache_misses"),
                            registry.counter("ridge.fold_downdate_hit"),
                            registry.counter("ridge.fold_downdate_fallback"),
                            registry.counter("ridge.sketch_cache_hits"),
                            registry.counter("ridge.sketch_cache_misses"),
                            registry.counter("ridge.sketch_precond_fallback")};
  }();
  return instruments;
}

}  // namespace

RidgeSolver::RidgeSolver(const Matrix* x, GramSide side) {
  SRDA_CHECK(x != nullptr);
  binding_ = Binding::kDense;
  x_ = x;
  side_ = side;
}

RidgeSolver::RidgeSolver(const LinearOperator* data, RidgeBias bias) {
  SRDA_CHECK(data != nullptr);
  binding_ = Binding::kOperator;
  operator_ = data;
  bias_mode_ = bias;
}

RidgeSolver::RidgeSolver(RowShardSource* source) {
  SRDA_CHECK(source != nullptr);
  binding_ = Binding::kSharded;
  source_ = source;
  sharded_operator_ = std::make_unique<ShardedOperator>(source);
  // The dual m x m Gram needs all rows at once, so sharded solvers are
  // primal-only; sparse shard streams additionally skip the Gram entirely
  // (Solve auto-routes them to LSQR).
  side_ = GramSide::kPrimal;
  use_primal_ = true;
}

RidgeSolver RidgeSolver::FromGram(Matrix gram) {
  SRDA_CHECK_EQ(gram.rows(), gram.cols()) << "Gram base must be square";
  RidgeSolver solver;
  solver.binding_ = Binding::kGram;
  solver.gram_ = std::move(gram);
  solver.gram_ready_ = true;
  return solver;
}

void RidgeSolver::PrepareDense() {
  SRDA_CHECK(binding_ == Binding::kDense)
      << "dense data accessor on a non-dense-bound solver";
  if (dense_ready_) return;
  TraceSpan span("ridge.prepare_dense");
  mean_ = ColumnMeans(*x_);
  centered_ = *x_;
  SubtractRowVector(mean_, &centered_);
  switch (side_) {
    case GramSide::kAuto:
      use_primal_ = x_->cols() <= x_->rows();
      break;
    case GramSide::kPrimal:
      use_primal_ = true;
      break;
    case GramSide::kDual:
      use_primal_ = false;
      break;
  }
  dense_ready_ = true;
}

// Streaming pass over dense shards: the column-sum chain is the same
// serial ascending-row recurrence ColumnMeans runs on the concatenated
// matrix, so the mean is bitwise identical to the in-RAM one.
void RidgeSolver::PrepareSharded() {
  SRDA_CHECK(binding_ == Binding::kSharded)
      << "sharded data accessor on a non-sharded solver";
  SRDA_CHECK(!source_->sparse())
      << "sharded normal equations need dense shards; sparse shard streams "
         "solve via RidgeMethod::kLsqr";
  if (dense_ready_) return;
  TraceSpan span("ridge.prepare_sharded");
  const int m = source_->rows();
  Vector sums(source_->cols());
  source_->Reset();
  RowShard shard;
  int next_row = 0;
  while (source_->Next(&shard)) {
    SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
    ColumnSumsAccumulate(*shard.dense, &sums);
    next_row += shard.rows();
  }
  SRDA_CHECK_EQ(next_row, m) << "shard stream ended early";
  Scale(1.0 / m, &sums);
  mean_ = std::move(sums);
  dense_ready_ = true;
}

const Matrix& RidgeSolver::GramBase() {
  if (gram_ready_) {
    if (TraceEnabled()) RidgeMetrics().gram_hits->Increment();
    return gram_;
  }
  TraceSpan span("ridge.gram_build");
  if (span.recording()) RidgeMetrics().gram_misses->Increment();
  if (binding_ == Binding::kSharded) {
    // Primal Gram X̄ᵀX̄ accumulated shard by shard. GramAccumulateUpper
    // continues each output element's ascending-k dot-product chain from
    // the values already in gram_, so the sum over shards reproduces the
    // one-shot Gram(centered_) bit for bit at any shard size.
    PrepareSharded();
    gram_ = Matrix(source_->cols(), source_->cols());
    source_->Reset();
    RowShard shard;
    int next_row = 0;
    while (source_->Next(&shard)) {
      SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
      Matrix centered_shard = *shard.dense;
      SubtractRowVector(mean_, &centered_shard);
      GramAccumulateUpper(centered_shard, &gram_);
      next_row += shard.rows();
    }
    SRDA_CHECK_EQ(next_row, source_->rows()) << "shard stream ended early";
    SymmetrizeFromUpper(&gram_);
    gram_ready_ = true;
    return gram_;
  }
  PrepareDense();
  gram_ = use_primal_ ? Gram(centered_) : OuterGram(centered_);
  gram_ready_ = true;
  return gram_;
}

const Cholesky* RidgeSolver::FactorAt(double alpha) {
  SRDA_CHECK(binding_ != Binding::kOperator)
      << "FactorAt needs a dense-, Gram-, or sharded-bound solver";
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";
  if (factor_ready_ && factor_alpha_ == alpha) {
    if (TraceEnabled()) RidgeMetrics().factor_hits->Increment();
    return factor_ok_ ? &chol_ : nullptr;
  }
  if (parent_ != nullptr && TryFoldDowndate(alpha)) {
    if (TraceEnabled()) RidgeMetrics().fold_downdate_hits->Increment();
    factor_ok_ = true;
    factor_alpha_ = alpha;
    factor_ready_ = true;
    return &chol_;
  }
  TraceSpan span("ridge.factor");
  if (span.recording()) {
    span.AddArg("alpha", alpha);
    RidgeMetrics().factor_misses->Increment();
  }
  if (parent_ != nullptr) {
    // The fold/downdate shortcut declined (condition trip or unsupported
    // shape) and we are paying for a fresh factor: count it whether or not
    // a trace is recording, and log the alpha it happened at.
    RidgeMetrics().fold_downdate_fallbacks->Increment();
    obs::Event("ridge.downdate_fallback").Num("alpha", alpha);
  }
  Matrix shifted = GramBase();
  AddDiagonal(alpha, &shifted);
  factor_ok_ = chol_.Factor(shifted);
  factor_alpha_ = alpha;
  factor_ready_ = true;
  return factor_ok_ ? &chol_ : nullptr;
}

RidgeSolver RidgeSolver::ExcludeRows(const std::vector<int>& rows) {
  SRDA_CHECK(binding_ == Binding::kDense)
      << "ExcludeRows needs a dense-bound parent";
  const int m = x_->rows();
  const int n = x_->cols();
  const int k = static_cast<int>(rows.size());
  SRDA_CHECK_GT(k, 0) << "no rows to exclude";
  SRDA_CHECK_LT(k, m) << "cannot exclude every row";
  for (int j = 0; j < k; ++j) {
    SRDA_CHECK_GE(rows[static_cast<size_t>(j)], 0) << "row index out of range";
    SRDA_CHECK_LT(rows[static_cast<size_t>(j)], m) << "row index out of range";
    if (j > 0) {
      SRDA_CHECK_GT(rows[static_cast<size_t>(j)],
                    rows[static_cast<size_t>(j - 1)])
          << "excluded rows must be sorted ascending and unique";
    }
  }
  // Resolve the Gram side now so the child inherits the side the parent's
  // factor actually lives on; the downdate algebra must match it.
  PrepareDense();
  RidgeSolver child;
  child.binding_ = Binding::kDense;
  child.parent_ = this;
  child.fold_rows_ = rows;
  child.side_ = use_primal_ ? GramSide::kPrimal : GramSide::kDual;
  child.owned_x_ = std::make_unique<Matrix>(m - k, n);
  int next = 0;
  int out = 0;
  for (int i = 0; i < m; ++i) {
    if (next < k && rows[static_cast<size_t>(next)] == i) {
      ++next;
      continue;
    }
    const double* src = x_->RowPtr(i);
    std::copy(src, src + n, child.owned_x_->RowPtr(out));
    ++out;
  }
  child.x_ = child.owned_x_.get();
  return child;
}

// Derives this fold child's factor of (G_train + alpha I) from the
// parent's full-data factor at the same alpha.
//
// Primal (G = X̄ᵀX̄): with x̄_i the parent's centered rows, s = Σ_fold x̄_i
// and m_tr kept rows, the training Gram centered on the training mean is
//
//   X̄_trᵀX̄_tr = G_full − Σ_fold x̄_i x̄_iᵀ − s sᵀ / m_tr,
//
// a pure rank-(k+1) downdate (the trailing vector moves the centering from
// the full mean to the training mean); the +alpha I shift carries through.
//
// Dual (G = X̄X̄ᵀ): deleting the fold's rows/cols from the factor gives the
// kept rows' outer Gram still centered on the full mean (alpha shift again
// preserved on the principal submatrix). Re-centering subtracts the
// symmetric rank-2 term u𝟙ᵀ + 𝟙uᵀ − (dᵀd)𝟙𝟙ᵀ, where d = mean_tr − mean
// and u = X̄_tr d; with w = u − (dᵀd/2)𝟙 that term is
// ½(w+𝟙)(w+𝟙)ᵀ − ½(w−𝟙)(w−𝟙)ᵀ — one rank-1 update then one rank-1
// downdate.
//
// Returns false when the parent factor is unavailable or a downdate
// rotation hits the condition floor; FactorAt then rebuilds from scratch.
bool RidgeSolver::TryFoldDowndate(double alpha) {
  const Cholesky* parent_factor = parent_->FactorAt(alpha);
  if (parent_factor == nullptr) return false;
  PrepareDense();
  const Matrix& parent_centered = parent_->centered();
  const int n = parent_centered.cols();
  const int k = static_cast<int>(fold_rows_.size());
  const int m_train = x_->rows();
  TraceSpan span("ridge.fold_downdate");
  if (span.recording()) {
    span.AddArg("k", static_cast<double>(k));
    span.AddArg("alpha", alpha);
  }
  // Sum of the fold's centered rows; the training mean sits at
  // mean_full − s / m_train.
  Vector s(n);
  for (int r = 0; r < k; ++r) {
    const double* row = parent_centered.RowPtr(fold_rows_[static_cast<size_t>(r)]);
    for (int j = 0; j < n; ++j) s[j] += row[j];
  }
  if (use_primal_) {
    Matrix v(k + 1, n);
    for (int r = 0; r < k; ++r) {
      const double* src =
          parent_centered.RowPtr(fold_rows_[static_cast<size_t>(r)]);
      std::copy(src, src + n, v.RowPtr(r));
    }
    const double scale = 1.0 / std::sqrt(static_cast<double>(m_train));
    double* last = v.RowPtr(k);
    for (int j = 0; j < n; ++j) last[j] = scale * s[j];
    Matrix l = parent_factor->factor();
    if (!CholeskyRankKDowndate(&l, v)) return false;
    chol_.SetFactor(std::move(l));
    return true;
  }
  Matrix l = CholeskyDeleteRowsCols(parent_factor->factor(), fold_rows_);
  Vector d = s;
  Scale(-1.0 / m_train, &d);
  const double dd = Dot(d, d);
  Matrix update(1, m_train);
  Matrix downdate(1, m_train);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  double* up = update.RowPtr(0);
  double* down = downdate.RowPtr(0);
  const int m = parent_centered.rows();
  int next = 0;
  int out = 0;
  for (int i = 0; i < m; ++i) {
    if (next < k && fold_rows_[static_cast<size_t>(next)] == i) {
      ++next;
      continue;
    }
    const double* row = parent_centered.RowPtr(i);
    double u = 0.0;
    for (int j = 0; j < n; ++j) u += row[j] * d[j];
    const double w = u - 0.5 * dd;
    up[out] = (w - 1.0) * inv_sqrt2;
    down[out] = (w + 1.0) * inv_sqrt2;
    ++out;
  }
  CholeskyRankKUpdate(&l, update);
  if (!CholeskyRankKDowndate(&l, downdate)) return false;
  chol_.SetFactor(std::move(l));
  return true;
}

void RidgeSolver::SetSketch(const SketchConfig& config) {
  SRDA_CHECK(config.mode == SketchMode::kOff || binding_ != Binding::kGram)
      << "sketching needs row-level data; Gram-bound solvers have no rows";
  if (config.sketch_rows != 0) {
    SRDA_CHECK_GT(config.sketch_rows, 0) << "sketch_rows must be positive";
  }
  const bool same_operator =
      config.sketch_rows == sketch_config_.sketch_rows &&
      config.kind == sketch_config_.kind && config.seed == sketch_config_.seed;
  sketch_config_ = config;
  // The sketch and its factor depend on (rows, kind, seed) but not on the
  // mode, so a mode flip alone keeps both caches.
  if (!same_operator) {
    sketch_ready_ = false;
    sketch_factor_ready_ = false;
  }
}

const LinearOperator* RidgeSolver::ResolveOperator() {
  switch (binding_) {
    case Binding::kDense:
      if (dense_operator_ == nullptr) {
        dense_operator_ = std::make_unique<DenseOperator>(x_);
      }
      return dense_operator_.get();
    case Binding::kOperator:
      return operator_;
    case Binding::kSharded:
      return sharded_operator_.get();
    case Binding::kGram:
      break;
  }
  SRDA_CHECK(false) << "no operator view of a Gram-bound solver";
  return nullptr;
}

void RidgeSolver::EnsureOperatorMean(const LinearOperator* data) {
  if (operator_mean_ready_) return;
  // Column means through the operator itself (A^T 1 / m): works for
  // dense and sparse data without densifying either.
  operator_mean_ = data->ApplyTransposed(Vector(data->rows(), 1.0));
  Scale(1.0 / data->rows(), &operator_mean_);
  operator_mean_ready_ = true;
}

void RidgeSolver::EnsureSketch(const LinearOperator* data) {
  if (sketch_ready_) {
    if (TraceEnabled()) RidgeMetrics().sketch_hits->Increment();
    return;
  }
  if (TraceEnabled()) RidgeMetrics().sketch_misses->Increment();
  const int m = data->rows();
  const int n_effective =
      data->cols() + (bias_mode_ == RidgeBias::kAugmentedOnes ? 1 : 0);
  SketchOptions opts;
  opts.kind = sketch_config_.kind;
  opts.seed = sketch_config_.seed;
  opts.sketch_rows = sketch_config_.sketch_rows > 0
                         ? sketch_config_.sketch_rows
                         : std::max(1, std::min(m, 4 * n_effective));
  sketch_options_ = opts;
  // Sketch the raw rows through the cheapest kernel the binding offers;
  // the generic operator fallback only fires for operator types without
  // row access.
  Matrix base;
  switch (binding_) {
    case Binding::kDense:
      base = SketchRows(*x_, opts);
      break;
    case Binding::kOperator: {
      if (const auto* sparse = dynamic_cast<const SparseOperator*>(operator_)) {
        base = SketchRows(*sparse->matrix(), opts);
      } else if (const auto* dense =
                     dynamic_cast<const DenseOperator*>(operator_)) {
        base = SketchRows(*dense->matrix(), opts);
      } else {
        base = SketchOperator(*operator_, opts);
      }
      break;
    }
    case Binding::kSharded:
      base = SketchShards(source_, opts);
      break;
    case Binding::kGram:
      SRDA_CHECK(false) << "sketching needs row-level data";
  }
  // Correct for the bias mode so the sketch is of the EFFECTIVE matrix the
  // LSQR path solves against: S(A - 1 meanᵀ) = SA - (S·1) meanᵀ and
  // S[A 1] = [SA, S·1], both without a second data pass.
  if (bias_mode_ == RidgeBias::kImplicitCentering) {
    EnsureOperatorMean(data);
    const Vector sketched_ones = SketchOnes(m, opts);
    for (int t = 0; t < base.rows(); ++t) {
      const double s1 = sketched_ones[t];
      if (s1 == 0.0) continue;
      double* row = base.RowPtr(t);
      for (int j = 0; j < base.cols(); ++j) row[j] -= s1 * operator_mean_[j];
    }
    sketch_ = std::move(base);
  } else if (bias_mode_ == RidgeBias::kAugmentedOnes) {
    const Vector sketched_ones = SketchOnes(m, opts);
    sketch_ = Matrix(opts.sketch_rows, n_effective);
    for (int t = 0; t < opts.sketch_rows; ++t) {
      const double* src = base.RowPtr(t);
      double* dst = sketch_.RowPtr(t);
      std::copy(src, src + base.cols(), dst);
      dst[base.cols()] = sketched_ones[t];
    }
  } else {
    sketch_ = std::move(base);
  }
  sketch_ready_ = true;
}

const Cholesky* RidgeSolver::SketchedFactorAt(const LinearOperator* data,
                                              double alpha) {
  EnsureSketch(data);
  if (sketch_factor_ready_ && sketch_factor_alpha_ == alpha) {
    return sketch_factor_ok_ ? &sketch_chol_ : nullptr;
  }
  sketch_factor_ok_ = FactorSketchedGram(sketch_, alpha, &sketch_chol_);
  sketch_factor_alpha_ = alpha;
  sketch_factor_ready_ = true;
  return sketch_factor_ok_ ? &sketch_chol_ : nullptr;
}

const Vector& RidgeSolver::mean() {
  if (binding_ == Binding::kSharded) {
    PrepareSharded();
    return mean_;
  }
  PrepareDense();
  return mean_;
}

const Matrix& RidgeSolver::centered() {
  PrepareDense();
  return centered_;
}

RidgeSolution RidgeSolver::Solve(const Matrix& responses, double alpha,
                                 const RidgeSolveOptions& options) {
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";
  if (sketch_config_.mode == SketchMode::kSolve) {
    SRDA_CHECK(binding_ != Binding::kGram)
        << "pure sketch-solve needs row-level data";
    return SolveSketched(responses, alpha);
  }
  RidgeMethod method = options.method;
  if (method == RidgeMethod::kAuto) {
    const bool streaming_only =
        binding_ == Binding::kOperator ||
        (binding_ == Binding::kSharded && source_->sparse());
    method = streaming_only ? RidgeMethod::kLsqr
                            : RidgeMethod::kNormalEquations;
  }
  if (method == RidgeMethod::kNormalEquations) {
    SRDA_CHECK(binding_ != Binding::kOperator)
        << "normal equations need dense or Gram-bound data";
    if (binding_ == Binding::kGram) {
      SRDA_CHECK_EQ(responses.rows(), gram_.rows())
          << "response count mismatch";
      TraceSpan span("ridge.solve_normal");
      RidgeSolution solution;
      const Cholesky* chol = FactorAt(alpha);
      if (chol == nullptr) return solution;
      solution.coefficients = chol->SolveMatrix(responses);
      solution.ok = true;
      return solution;
    }
    return SolveNormalEquations(responses, alpha);
  }
  SRDA_CHECK(binding_ != Binding::kGram)
      << "LSQR needs dense- or operator-bound data";
  return SolveLsqr(responses, alpha, options);
}

// Dense normal-equations path (Section III-C1): primal
// (X̄ᵀX̄ + alpha I) A = X̄ᵀY, or the exact dual A = X̄ᵀ(X̄X̄ᵀ + alpha I)⁻¹Y
// when the solver was sided that way. With responses orthogonal to the ones
// vector, centering makes the optimal regression bias zero; the embedding
// bias folds the mean back in as b = -meanᵀ a.
RidgeSolution RidgeSolver::SolveNormalEquations(const Matrix& responses,
                                                double alpha) {
  TraceSpan span("ridge.solve_normal");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(responses.cols()));
    span.AddArg("alpha", alpha);
  }
  if (binding_ == Binding::kSharded) {
    PrepareSharded();
    SRDA_CHECK_EQ(responses.rows(), source_->rows())
        << "response count mismatch";
    RidgeSolution solution;
    const Cholesky* chol = FactorAt(alpha);
    if (chol == nullptr) return solution;
    // Right-hand sides X̄ᵀY streamed shard by shard: each block product
    // continues the accumulator chains of MultiplyTransposedA on the
    // concatenated centered matrix, so rhs — and hence the solve — is
    // bitwise identical to the dense-bound path.
    Matrix rhs(source_->cols(), responses.cols());
    source_->Reset();
    RowShard shard;
    int next_row = 0;
    while (source_->Next(&shard)) {
      SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
      Matrix centered_shard = *shard.dense;
      SubtractRowVector(mean_, &centered_shard);
      MultiplyTransposedAAccumulate(
          centered_shard,
          responses.Block(next_row, 0, shard.rows(), responses.cols()), &rhs);
      next_row += shard.rows();
    }
    SRDA_CHECK_EQ(next_row, source_->rows()) << "shard stream ended early";
    solution.coefficients = chol->SolveMatrix(rhs);
    const int d = responses.cols();
    solution.bias = Vector(d);
    const Vector mean_projected =
        MultiplyTransposed(solution.coefficients, mean_);
    for (int j = 0; j < d; ++j) solution.bias[j] = -mean_projected[j];
    solution.ok = true;
    return solution;
  }
  PrepareDense();
  SRDA_CHECK_EQ(responses.rows(), x_->rows()) << "response count mismatch";
  RidgeSolution solution;
  const Cholesky* chol = FactorAt(alpha);
  if (chol == nullptr) return solution;

  if (use_primal_) {
    solution.coefficients =
        chol->SolveMatrix(MultiplyTransposedA(centered_, responses));
  } else {
    solution.coefficients =
        MultiplyTransposedA(centered_, chol->SolveMatrix(responses));
  }

  const int d = responses.cols();
  solution.bias = Vector(d);
  const Vector mean_projected =
      MultiplyTransposed(solution.coefficients, mean_);
  for (int j = 0; j < d; ++j) solution.bias[j] = -mean_projected[j];
  solution.ok = true;
  return solution;
}

// Matrix-free path (Section III-C2): batched damped LSQR with
// damp = sqrt(alpha), one operator pass per iteration for all responses.
RidgeSolution RidgeSolver::SolveLsqr(const Matrix& responses, double alpha,
                                     const RidgeSolveOptions& options) {
  TraceSpan span("ridge.solve_lsqr");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(responses.cols()));
    span.AddArg("alpha", alpha);
  }
  SRDA_CHECK_GT(options.lsqr_iterations, 0);
  // For the sharded binding, one streaming pass over the shards per
  // operator product; every product is bitwise identical to the in-RAM
  // operator on the concatenated matrix, so the whole LSQR recurrence
  // matches too.
  const LinearOperator* data = ResolveOperator();
  SRDA_CHECK_EQ(responses.rows(), data->rows()) << "response count mismatch";

  const int n = data->cols();
  const int d = responses.cols();

  LsqrOptions lsqr_options;
  lsqr_options.max_iterations = options.lsqr_iterations;
  lsqr_options.damp = std::sqrt(alpha);
  lsqr_options.atol = options.lsqr_atol;
  lsqr_options.btol = options.lsqr_btol;
  if (sketch_config_.mode == SketchMode::kPrecondition) {
    // Factored sketched Gram of the effective matrix as a right
    // preconditioner; on a factor failure (alpha == 0 with a rank-deficient
    // sketch) the solve falls back to plain LSQR — counted and logged, no
    // longer silent.
    const Cholesky* precond = SketchedFactorAt(data, alpha);
    if (precond != nullptr) {
      lsqr_options.right_precond = &precond->factor();
    } else {
      RidgeMetrics().sketch_precond_fallbacks->Increment();
      obs::Event("ridge.sketch_fallback")
          .Num("alpha", alpha)
          .Num("rhs", responses.cols());
    }
  }

  RidgeSolution solution;
  solution.coefficients = Matrix(n, d);

  std::vector<LsqrResult> results;
  if (bias_mode_ == RidgeBias::kImplicitCentering) {
    EnsureOperatorMean(data);
    const CenterColumnsOperator centered(data, &operator_mean_);
    results = LsqrBatch(centered, responses, lsqr_options);
    solution.bias = Vector(d);
    for (int j = 0; j < d; ++j) {
      const LsqrResult& result = results[static_cast<size_t>(j)];
      for (int i = 0; i < n; ++i) solution.coefficients(i, j) = result.x[i];
      solution.bias[j] = -Dot(operator_mean_, result.x);
    }
  } else if (bias_mode_ == RidgeBias::kAugmentedOnes) {
    const AppendOnesColumnOperator augmented(data);
    results = LsqrBatch(augmented, responses, lsqr_options);
    solution.bias = Vector(d);
    for (int j = 0; j < d; ++j) {
      const LsqrResult& result = results[static_cast<size_t>(j)];
      for (int i = 0; i < n; ++i) solution.coefficients(i, j) = result.x[i];
      solution.bias[j] = result.x[n];
    }
  } else {
    results = LsqrBatch(*data, responses, lsqr_options);
    for (int j = 0; j < d; ++j) {
      const LsqrResult& result = results[static_cast<size_t>(j)];
      for (int i = 0; i < n; ++i) solution.coefficients(i, j) = result.x[i];
    }
  }

  solution.lsqr.reserve(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    const LsqrResult& result = results[static_cast<size_t>(j)];
    solution.total_lsqr_iterations += result.iterations;
    if (!result.converged) {
      obs::Event("lsqr.nonconverged")
          .Num("rhs", j)
          .Num("iterations", result.iterations)
          .Num("residual_norm", result.residual_norm);
    }
    RidgeRhsDiagnostics diag;
    diag.iterations = result.iterations;
    diag.residual_norm = result.residual_norm;
    diag.normal_residual_norm = result.normal_residual_norm;
    diag.converged = result.converged;
    diag.stop = result.stop;
    solution.lsqr.push_back(diag);
  }
  solution.ok = true;
  return solution;
}

// Pure sketch-solve (SketchMode::kSolve): the minimizer of the sketched
// objective min ||S X̄ a - S y||² + alpha ||a||² is
// (sketchᵀ sketch + alpha I)⁻¹ sketchᵀ (S y) — one cached s-row factor, one
// sketch of the responses, zero LSQR iterations. The reported error bound
// uses the exact quadratic identity a* = â - H⁻¹ ∇f(â) for the TRUE
// objective f (Hessian H = 2(X̄ᵀX̄ + alpha I) ⪰ 2 alpha I):
// ||â - a*|| <= ||∇f(â)|| / (2 alpha) = ||X̄ᵀ(X̄ â - y) + alpha â|| / alpha,
// computed with one forward and one transposed pass over the exact operator.
RidgeSolution RidgeSolver::SolveSketched(const Matrix& responses,
                                         double alpha) {
  TraceSpan span("ridge.solve_sketched");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(responses.cols()));
    span.AddArg("alpha", alpha);
  }
  SRDA_CHECK_GT(alpha, 0.0)
      << "pure sketch-solve needs alpha > 0 (the error bound scales as "
         "1/alpha and the sketched Gram may be singular)";
  const LinearOperator* data = ResolveOperator();
  SRDA_CHECK_EQ(responses.rows(), data->rows()) << "response count mismatch";

  RidgeSolution solution;
  const Cholesky* chol = SketchedFactorAt(data, alpha);
  if (chol == nullptr) return solution;

  const Matrix sketched_responses = SketchRows(responses, sketch_options_);
  const Matrix full =
      chol->SolveMatrix(MultiplyTransposedA(sketch_, sketched_responses));

  const int n = data->cols();
  const int d = responses.cols();

  // Gradient of the exact objective at the sketched solution, evaluated
  // through the effective operator of this bias mode.
  const auto fill_bounds = [&](const LinearOperator& effective) {
    Matrix residual = effective.ApplyMulti(full);
    for (int i = 0; i < residual.rows(); ++i) {
      const double* y = responses.RowPtr(i);
      double* r = residual.RowPtr(i);
      for (int j = 0; j < d; ++j) r[j] -= y[j];
    }
    Matrix gradient = effective.ApplyTransposedMulti(residual);
    solution.sketch_error_bounds.assign(static_cast<size_t>(d), 0.0);
    for (int j = 0; j < d; ++j) {
      double norm_sq = 0.0;
      for (int i = 0; i < gradient.rows(); ++i) {
        const double g = gradient(i, j) + alpha * full(i, j);
        norm_sq += g * g;
      }
      solution.sketch_error_bounds[static_cast<size_t>(j)] =
          std::sqrt(norm_sq) / alpha;
    }
  };

  if (bias_mode_ == RidgeBias::kImplicitCentering) {
    EnsureOperatorMean(data);
    const CenterColumnsOperator centered(data, &operator_mean_);
    fill_bounds(centered);
    solution.coefficients = full;
    solution.bias = Vector(d);
    for (int j = 0; j < d; ++j) {
      solution.bias[j] = -Dot(operator_mean_, full.Col(j));
    }
  } else if (bias_mode_ == RidgeBias::kAugmentedOnes) {
    const AppendOnesColumnOperator augmented(data);
    fill_bounds(augmented);
    solution.coefficients = Matrix(n, d);
    solution.bias = Vector(d);
    for (int i = 0; i < n; ++i) {
      const double* src = full.RowPtr(i);
      double* dst = solution.coefficients.RowPtr(i);
      for (int j = 0; j < d; ++j) dst[j] = src[j];
    }
    for (int j = 0; j < d; ++j) solution.bias[j] = full(n, j);
  } else {
    fill_bounds(*data);
    solution.coefficients = full;
  }
  solution.ok = true;
  return solution;
}

}  // namespace srda
