#include "graph/knn_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace srda {

SparseMatrix BuildKnnGraph(const Matrix& x, const KnnGraphOptions& options) {
  const int m = x.rows();
  SRDA_CHECK_GT(m, 1) << "graph needs at least two samples";
  SRDA_CHECK_GT(options.num_neighbors, 0);
  SRDA_CHECK_GE(options.heat_bandwidth, 0.0);
  const int k = std::min(options.num_neighbors, m - 1);

  // All pairwise squared distances, then per-row k smallest.
  std::vector<std::pair<double, int>> row_distances(
      static_cast<size_t>(m));
  std::vector<std::vector<std::pair<int, double>>> neighbors(
      static_cast<size_t>(m));
  double knn_distance_sum = 0.0;
  int knn_distance_count = 0;
  for (int i = 0; i < m; ++i) {
    const double* xi = x.RowPtr(i);
    for (int j = 0; j < m; ++j) {
      double distance_sq = 0.0;
      const double* xj = x.RowPtr(j);
      for (int d = 0; d < x.cols(); ++d) {
        const double diff = xi[d] - xj[d];
        distance_sq += diff * diff;
      }
      row_distances[static_cast<size_t>(j)] = {distance_sq, j};
    }
    row_distances[static_cast<size_t>(i)].first =
        std::numeric_limits<double>::infinity();  // Exclude self.
    std::partial_sort(row_distances.begin(), row_distances.begin() + k,
                      row_distances.end());
    for (int neighbor = 0; neighbor < k; ++neighbor) {
      const auto& [distance_sq, index] =
          row_distances[static_cast<size_t>(neighbor)];
      neighbors[static_cast<size_t>(i)].push_back({index, distance_sq});
      knn_distance_sum += std::sqrt(distance_sq);
      ++knn_distance_count;
    }
  }

  double bandwidth = options.heat_bandwidth;
  if (bandwidth == 0.0) {
    bandwidth = knn_distance_sum / std::max(knn_distance_count, 1);
    if (bandwidth == 0.0) bandwidth = 1.0;  // All points identical.
  }
  const double inv_two_bw_sq = 1.0 / (2.0 * bandwidth * bandwidth);

  // Symmetrize: w_ij = max over both directions (duplicates are summed by
  // the builder, so emit each directed edge at half weight and let i-j plus
  // j-i sum; for one-directional edges the weight is halved, which keeps the
  // graph symmetric and positive — the standard "or" symmetrization up to a
  // factor that normalization absorbs).
  SparseMatrixBuilder builder(m, m);
  for (int i = 0; i < m; ++i) {
    for (const auto& [j, distance_sq] : neighbors[static_cast<size_t>(i)]) {
      double weight = 1.0;
      if (options.weights == GraphWeightScheme::kHeatKernel) {
        weight = std::exp(-distance_sq * inv_two_bw_sq);
      }
      builder.Add(i, j, 0.5 * weight);
      builder.Add(j, i, 0.5 * weight);
    }
  }
  return std::move(builder).Build();
}

SparseMatrix BuildCosineKnnGraph(const SparseMatrix& x, int num_neighbors) {
  const int m = x.rows();
  SRDA_CHECK_GT(m, 1) << "graph needs at least two samples";
  SRDA_CHECK_GT(num_neighbors, 0);
  const int k = std::min(num_neighbors, m - 1);

  // Row norms for cosine normalization.
  std::vector<double> norms(static_cast<size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    const double* values = x.RowValues(i);
    double sum = 0.0;
    for (int e = 0; e < x.RowNonZeros(i); ++e) sum += values[e] * values[e];
    norms[static_cast<size_t>(i)] = std::sqrt(sum);
  }

  SparseMatrixBuilder builder(m, m);
  std::vector<double> dense_row;
  std::vector<std::pair<double, int>> similarities(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    // Scatter row i into a dense buffer for fast dot products.
    dense_row.assign(static_cast<size_t>(x.cols()), 0.0);
    const int* cols_i = x.RowIndices(i);
    const double* values_i = x.RowValues(i);
    for (int e = 0; e < x.RowNonZeros(i); ++e) {
      dense_row[static_cast<size_t>(cols_i[e])] = values_i[e];
    }
    for (int j = 0; j < m; ++j) {
      double dot = 0.0;
      const int* cols_j = x.RowIndices(j);
      const double* values_j = x.RowValues(j);
      for (int e = 0; e < x.RowNonZeros(j); ++e) {
        dot += values_j[e] * dense_row[static_cast<size_t>(cols_j[e])];
      }
      const double denom =
          norms[static_cast<size_t>(i)] * norms[static_cast<size_t>(j)];
      // Negative similarity = descending sort key; self excluded below.
      similarities[static_cast<size_t>(j)] = {
          denom > 0.0 ? -dot / denom : 0.0, j};
    }
    similarities[static_cast<size_t>(i)].first = 1.0;  // Exclude self.
    std::partial_sort(similarities.begin(), similarities.begin() + k,
                      similarities.end());
    for (int neighbor = 0; neighbor < k; ++neighbor) {
      const auto& [negative_sim, j] =
          similarities[static_cast<size_t>(neighbor)];
      const double weight = std::max(-negative_sim, 0.0);
      if (weight == 0.0) continue;
      builder.Add(i, j, 0.5 * weight);
      builder.Add(j, i, 0.5 * weight);
    }
  }
  return std::move(builder).Build();
}

Vector GraphDegrees(const SparseMatrix& affinity) {
  SRDA_CHECK_EQ(affinity.rows(), affinity.cols())
      << "affinity matrix must be square";
  Vector degrees(affinity.rows());
  for (int i = 0; i < affinity.rows(); ++i) {
    const double* values = affinity.RowValues(i);
    double sum = 0.0;
    for (int k = 0; k < affinity.RowNonZeros(i); ++k) sum += values[k];
    degrees[i] = sum;
  }
  return degrees;
}

}  // namespace srda
