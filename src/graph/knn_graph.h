// k-nearest-neighbor affinity graphs.
//
// Section III of the paper notes the SRDA recipe "can be generalized by
// constructing the graph matrix W in the unsupervised or semi-supervised
// way" (its references [12]-[16]). This module provides that substrate: a
// symmetric kNN affinity matrix over the samples, with binary or
// heat-kernel weights, which semi_supervised_srda.h combines with the
// label-block graph.

#ifndef SRDA_GRAPH_KNN_GRAPH_H_
#define SRDA_GRAPH_KNN_GRAPH_H_

#include "matrix/matrix.h"
#include "sparse/sparse_matrix.h"

namespace srda {

enum class GraphWeightScheme {
  kBinary,      // w_ij = 1 for neighbors
  kHeatKernel,  // w_ij = exp(-||x_i - x_j||^2 / (2 t^2))
};

struct KnnGraphOptions {
  int num_neighbors = 5;
  GraphWeightScheme weights = GraphWeightScheme::kHeatKernel;
  // Heat-kernel bandwidth; 0 selects the mean kNN distance automatically.
  double heat_bandwidth = 0.0;
};

// Builds the symmetrized kNN affinity graph over the rows of `x`:
// w_ij > 0 iff i is among j's k nearest neighbors or vice versa. The
// diagonal is zero. Brute-force O(m^2 n).
SparseMatrix BuildKnnGraph(const Matrix& x, const KnnGraphOptions& options);

// Row sums (degrees) of a symmetric affinity matrix.
Vector GraphDegrees(const SparseMatrix& affinity);

// kNN affinity graph over sparse rows using cosine similarity (the natural
// metric for L2-normalized text vectors): w_ij = max(cos(x_i, x_j), 0) for
// mutual-or-single kNN edges, symmetrized like BuildKnnGraph. Brute force
// O(m^2 * nnz/row).
SparseMatrix BuildCosineKnnGraph(const SparseMatrix& x, int num_neighbors);

}  // namespace srda

#endif  // SRDA_GRAPH_KNN_GRAPH_H_
