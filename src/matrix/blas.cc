#include "matrix/blas.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "matrix/blocking.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Dense-kernel traffic in bytes (operands read + result written), recorded
// only while tracing so the disabled path stays untouched.
Counter* BytesTouched() {
  static Counter* counter =
      MetricsRegistry::Global().counter("bytes.touched");
  return counter;
}

}  // namespace

double Dot(const Vector& x, const Vector& y) {
  SRDA_CHECK_EQ(x.size(), y.size()) << "Dot size mismatch";
  const double* px = x.data();
  const double* py = y.data();
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) sum += px[i] * py[i];
  return sum;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  SRDA_CHECK(y != nullptr);
  SRDA_CHECK_EQ(x.size(), y->size()) << "Axpy size mismatch";
  const double* px = x.data();
  double* py = y->data();
  for (int i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void Scale(double alpha, Vector* x) {
  SRDA_CHECK(x != nullptr);
  double* px = x->data();
  for (int i = 0; i < x->size(); ++i) px[i] *= alpha;
}

double Norm2(const Vector& x) {
  // Two-pass scaled norm: immune to overflow/underflow for the magnitudes
  // seen in practice.
  const double max_abs = NormInf(x);
  if (max_abs == 0.0) return 0.0;
  const double* px = x.data();
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    const double scaled = px[i] / max_abs;
    sum += scaled * scaled;
  }
  return max_abs * std::sqrt(sum);
}

double NormInf(const Vector& x) {
  const double* px = x.data();
  double max_abs = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(px[i]));
  }
  return max_abs;
}

Vector Multiply(const Matrix& a, const Vector& x) {
  SRDA_CHECK_EQ(a.cols(), x.size()) << "A*x shape mismatch";
  TraceSpan span("gemv");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * a.rows() * a.cols());
    BytesTouched()->Add(8.0 * (static_cast<double>(a.rows()) * a.cols() +
                               a.cols() + a.rows()));
  }
  AddFlops(2.0 * a.rows() * a.cols());
  Vector y(a.rows());
  const double* px = x.data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double sum = 0.0;
    for (int j = 0; j < a.cols(); ++j) sum += row[j] * px[j];
    y[i] = sum;
  }
  return y;
}

Vector MultiplyTransposed(const Matrix& a, const Vector& x) {
  Vector y(a.cols());
  MultiplyTransposedAccumulate(a, x, &y);
  return y;
}

void MultiplyTransposedAccumulate(const Matrix& a, const Vector& x,
                                  Vector* y) {
  SRDA_CHECK_EQ(a.rows(), x.size()) << "A^T*x shape mismatch";
  SRDA_CHECK_EQ(a.cols(), y->size()) << "A^T*x output size mismatch";
  TraceSpan span("gemv_t");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * a.rows() * a.cols());
    BytesTouched()->Add(8.0 * (static_cast<double>(a.rows()) * a.cols() +
                               a.cols() + a.rows()));
  }
  AddFlops(2.0 * a.rows() * a.cols());
  double* py = y->data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int j = 0; j < a.cols(); ++j) py[j] += xi * row[j];
  }
}

namespace {

// ---- Blocked level-3 building blocks -----------------------------------
//
// Two micro-kernel shapes cover all five products:
//
//  * axpy form (GemmTileUpdate): the output tile's rows are updated with
//    scaled operand rows, j as the vector axis — used when B's k-rows are
//    contiguous (Multiply, MultiplyTransposedA, Gram);
//  * dot form (DotTileUpdate): each output element is a dot product of two
//    row segments — used when both operands index k along rows
//    (MultiplyTransposedB, OuterGram).
//
// Both keep ONE running accumulator per output element, carried through C
// between K-panels, and advance k strictly ascending. Row/column unrolling
// multiplies the number of concurrent elements, never the number of
// partial sums per element, so the per-element addition chain — and hence
// the result bits — is independent of tile shapes, unroll cleanup paths,
// and the ParallelFor partition. That preserves PR 1's guarantee: any
// thread count produces identical bits.

// C[i0:i1, j0:j1] += P * B[k0:k0+kk, j0:j1], where row r = i - i0 of the
// panel P starts at `panel + r * stride` and holds the kk values for
// k = k0 .. k0+kk-1.
//
// The body is a 4x4 outer-product register tile: sixteen accumulators are
// seeded from C, folded over the whole K-panel, and stored back once.
// Seeding from C and folding k ascending produces exactly the same
// addition chain per element as updating C in memory each step — the
// loads/stores just move out of the k loop — so register blocking changes
// no bits, only the C-row traffic (once per panel instead of once per k).
void GemmTileUpdate(const double* panel, int stride, int kk, const Matrix& b,
                    int k0, int i0, int i1, int j0, int j1, Matrix* c) {
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* p0 = panel + static_cast<size_t>(i - i0) * stride;
    const double* p1 = p0 + stride;
    const double* p2 = p1 + stride;
    const double* p3 = p2 + stride;
    double* c0 = c->RowPtr(i);
    double* c1 = c->RowPtr(i + 1);
    double* c2 = c->RowPtr(i + 2);
    double* c3 = c->RowPtr(i + 3);
    int j = j0;
    for (; j + 4 <= j1; j += 4) {
      double a00 = c0[j], a01 = c0[j + 1], a02 = c0[j + 2], a03 = c0[j + 3];
      double a10 = c1[j], a11 = c1[j + 1], a12 = c1[j + 2], a13 = c1[j + 3];
      double a20 = c2[j], a21 = c2[j + 1], a22 = c2[j + 2], a23 = c2[j + 3];
      double a30 = c3[j], a31 = c3[j + 1], a32 = c3[j + 2], a33 = c3[j + 3];
      for (int k = 0; k < kk; ++k) {
        const double* brow = b.RowPtr(k0 + k) + j;
        const double b0 = brow[0];
        const double b1 = brow[1];
        const double b2 = brow[2];
        const double b3 = brow[3];
        const double v0 = p0[k];
        const double v1 = p1[k];
        const double v2 = p2[k];
        const double v3 = p3[k];
        a00 += v0 * b0; a01 += v0 * b1; a02 += v0 * b2; a03 += v0 * b3;
        a10 += v1 * b0; a11 += v1 * b1; a12 += v1 * b2; a13 += v1 * b3;
        a20 += v2 * b0; a21 += v2 * b1; a22 += v2 * b2; a23 += v2 * b3;
        a30 += v3 * b0; a31 += v3 * b1; a32 += v3 * b2; a33 += v3 * b3;
      }
      c0[j] = a00; c0[j + 1] = a01; c0[j + 2] = a02; c0[j + 3] = a03;
      c1[j] = a10; c1[j + 1] = a11; c1[j + 2] = a12; c1[j + 3] = a13;
      c2[j] = a20; c2[j + 1] = a21; c2[j + 2] = a22; c2[j + 3] = a23;
      c3[j] = a30; c3[j + 1] = a31; c3[j + 2] = a32; c3[j + 3] = a33;
    }
    for (; j < j1; ++j) {
      double a0 = c0[j], a1 = c1[j], a2 = c2[j], a3 = c3[j];
      for (int k = 0; k < kk; ++k) {
        const double bv = b.RowPtr(k0 + k)[j];
        a0 += p0[k] * bv;
        a1 += p1[k] * bv;
        a2 += p2[k] * bv;
        a3 += p3[k] * bv;
      }
      c0[j] = a0;
      c1[j] = a1;
      c2[j] = a2;
      c3[j] = a3;
    }
  }
  for (; i < i1; ++i) {
    const double* prow = panel + static_cast<size_t>(i - i0) * stride;
    double* crow = c->RowPtr(i);
    int j = j0;
    for (; j + 4 <= j1; j += 4) {
      double a0 = crow[j], a1 = crow[j + 1], a2 = crow[j + 2],
             a3 = crow[j + 3];
      for (int k = 0; k < kk; ++k) {
        const double* brow = b.RowPtr(k0 + k) + j;
        const double v = prow[k];
        a0 += v * brow[0];
        a1 += v * brow[1];
        a2 += v * brow[2];
        a3 += v * brow[3];
      }
      crow[j] = a0;
      crow[j + 1] = a1;
      crow[j + 2] = a2;
      crow[j + 3] = a3;
    }
    for (; j < j1; ++j) {
      double acc = crow[j];
      for (int k = 0; k < kk; ++k) acc += prow[k] * b.RowPtr(k0 + k)[j];
      crow[j] = acc;
    }
  }
}

// Triangular variant for the stripes straddling the diagonal of a
// symmetric product: row i starts at column max(j0, i).
void GemmTileUpdateUpper(const double* panel, int kk, const Matrix& b,
                         int k0, int i0, int i1, int j0, int j1, Matrix* c) {
  for (int i = i0; i < i1; ++i) {
    const double* prow = panel + static_cast<size_t>(i - i0) * kk;
    const int jstart = std::max(j0, i);
    double* crow = c->RowPtr(i);
    for (int k = 0; k < kk; ++k) {
      const double v = prow[k];
      const double* brow = b.RowPtr(k0 + k);
      for (int j = jstart; j < j1; ++j) crow[j] += v * brow[j];
    }
  }
}

// C[i0:i1, j0:j1] += A[i0:i1, k0:k0+kk] * B[j0:j1, k0:k0+kk]^T as dot
// products of row segments, 2x2-unrolled (four independent accumulator
// chains, one per output element).
void DotTileUpdate(const Matrix& a, const Matrix& b, int k0, int kk,
                   int i0, int i1, int j0, int j1, Matrix* c) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const double* a0 = a.RowPtr(i) + k0;
    const double* a1 = a.RowPtr(i + 1) + k0;
    double* c0 = c->RowPtr(i);
    double* c1 = c->RowPtr(i + 1);
    int j = j0;
    for (; j + 2 <= j1; j += 2) {
      const double* b0 = b.RowPtr(j) + k0;
      const double* b1 = b.RowPtr(j + 1) + k0;
      double s00 = c0[j];
      double s01 = c0[j + 1];
      double s10 = c1[j];
      double s11 = c1[j + 1];
      for (int k = 0; k < kk; ++k) {
        const double av0 = a0[k];
        const double av1 = a1[k];
        s00 += av0 * b0[k];
        s01 += av0 * b1[k];
        s10 += av1 * b0[k];
        s11 += av1 * b1[k];
      }
      c0[j] = s00;
      c0[j + 1] = s01;
      c1[j] = s10;
      c1[j + 1] = s11;
    }
    for (; j < j1; ++j) {
      const double* brow = b.RowPtr(j) + k0;
      double s0 = c0[j];
      double s1 = c1[j];
      for (int k = 0; k < kk; ++k) {
        s0 += a0[k] * brow[k];
        s1 += a1[k] * brow[k];
      }
      c0[j] = s0;
      c1[j] = s1;
    }
  }
  for (; i < i1; ++i) {
    const double* arow = a.RowPtr(i) + k0;
    double* crow = c->RowPtr(i);
    for (int j = j0; j < j1; ++j) {
      const double* brow = b.RowPtr(j) + k0;
      double sum = crow[j];
      for (int k = 0; k < kk; ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
}

// Dot-form triangular variant: row i covers columns max(j0, i) .. j1.
void DotTileUpdateUpper(const Matrix& a, const Matrix& b, int k0, int kk,
                        int i0, int i1, int j0, int j1, Matrix* c) {
  for (int i = i0; i < i1; ++i) {
    const double* arow = a.RowPtr(i) + k0;
    double* crow = c->RowPtr(i);
    for (int j = std::max(j0, i); j < j1; ++j) {
      const double* brow = b.RowPtr(j) + k0;
      double sum = crow[j];
      for (int k = 0; k < kk; ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
}

// pack[(i - i0) * kk + (k - k0)] = a(k0 + k, i): the K-panel of columns
// [i0, i1), transposed to contiguous per-column storage. Read row-wise, so
// the pack touches each cache line of A once — this is the one place the
// transposed products pay for A's row-major layout.
void PackPanelTransposed(const Matrix& a, int k0, int kk, int i0, int i1,
                         double* pack) {
  for (int k = 0; k < kk; ++k) {
    const double* arow = a.RowPtr(k0 + k) + i0;
    for (int i = 0; i < i1 - i0; ++i) {
      pack[static_cast<size_t>(i) * kk + k] = arow[i];
    }
  }
}

// Copies the strict upper triangle into the lower one.
void MirrorUpperToLower(Matrix* c) {
  ParallelFor(1, c->rows(), [&](int row_begin, int row_end) {
    for (int j = row_begin; j < row_end; ++j) {
      double* crow = c->RowPtr(j);
      for (int i = 0; i < j; ++i) crow[i] = c->RowPtr(i)[j];
    }
  });
}

// C += A^T B, blocked. Shared by MultiplyTransposedA (C zeroed) and the
// streaming accumulate variant (C carries the previous blocks' partial
// chains); no span/flop accounting here.
void GemmAtBInto(const Matrix& a, const Matrix& b, Matrix* c) {
  const int m = a.rows();
  const int p = a.cols();
  const int n = b.cols();
  const BlockConfig& blk = GetBlockConfig();
  ParallelFor(0, p, [&](int col_begin, int col_end) {
    std::vector<double> pack(static_cast<size_t>(blk.mc) * blk.kc);
    for (int i0 = col_begin; i0 < col_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, col_end);
      for (int k0 = 0; k0 < m; k0 += blk.kc) {
        const int kk = std::min(blk.kc, m - k0);
        PackPanelTransposed(a, k0, kk, i0, i1, pack.data());
        for (int j0 = 0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          GemmTileUpdate(pack.data(), kk, kk, b, k0, i0, i1, j0, j1, c);
        }
      }
    }
  });
}

// Upper triangle of C += A^T A, blocked; same sharing as GemmAtBInto.
void GramUpperInto(const Matrix& a, Matrix* c) {
  const int m = a.rows();
  const int n = a.cols();
  const BlockConfig& blk = GetBlockConfig();
  ParallelFor(0, n, [&](int row_begin, int row_end) {
    std::vector<double> pack(static_cast<size_t>(blk.mc) * blk.kc);
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < m; k0 += blk.kc) {
        const int kk = std::min(blk.kc, m - k0);
        PackPanelTransposed(a, k0, kk, i0, i1, pack.data());
        for (int j0 = i0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          if (j0 >= i1) {
            GemmTileUpdate(pack.data(), kk, kk, a, k0, i0, i1, j0, j1, c);
          } else {
            // Stripe straddles the diagonal: scalar triangle up to the
            // tile's last row, fast rectangle for the columns beyond it.
            const int split = std::min(j1, i1);
            GemmTileUpdateUpper(pack.data(), kk, a, k0, i0, i1, j0, split,
                                c);
            if (split < j1) {
              GemmTileUpdate(pack.data(), kk, kk, a, k0, i0, i1, split, j1,
                             c);
            }
          }
        }
      }
    }
  });
}

}  // namespace

Matrix Multiply(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.rows()) << "A*B shape mismatch";
  const int m = a.rows();
  const int kdim = a.cols();
  const int n = b.cols();
  TraceSpan span("gemm");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * kdim * n);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * kdim +
                               static_cast<double>(kdim) * n +
                               static_cast<double>(m) * n));
  }
  AddFlops(2.0 * m * kdim * n);
  Matrix c(m, n);
  const BlockConfig& blk = GetBlockConfig();
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < kdim; k0 += blk.kc) {
        const int kk = std::min(blk.kc, kdim - k0);
        for (int j0 = 0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          // A's k-segment is contiguous within each row: no packing needed,
          // the row stride stands in for a packed panel.
          GemmTileUpdate(a.RowPtr(i0) + k0, a.cols(), kk, b, k0, i0, i1, j0,
                         j1, &c);
        }
      }
    }
  });
  return c;
}

Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  const int m = a.rows();
  const int p = a.cols();
  const int n = b.cols();
  TraceSpan span("gemm_at_b");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * p * n);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * p +
                               static_cast<double>(m) * n +
                               static_cast<double>(p) * n));
  }
  AddFlops(2.0 * m * p * n);
  Matrix c(p, n);
  GemmAtBInto(a, b, &c);
  return c;
}

void MultiplyTransposedAAccumulate(const Matrix& a, const Matrix& b,
                                   Matrix* c) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  SRDA_CHECK(c->rows() == a.cols() && c->cols() == b.cols())
      << "A^T*B accumulate output shape mismatch";
  const int m = a.rows();
  const int p = a.cols();
  const int n = b.cols();
  TraceSpan span("gemm_at_b");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * p * n);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * p +
                               static_cast<double>(m) * n +
                               static_cast<double>(p) * n));
  }
  AddFlops(2.0 * m * p * n);
  GemmAtBInto(a, b, c);
}

Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.cols()) << "A*B^T shape mismatch";
  const int m = a.rows();
  const int n = b.rows();
  const int kdim = a.cols();
  TraceSpan span("gemm_a_bt");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * n * kdim);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * kdim +
                               static_cast<double>(n) * kdim +
                               static_cast<double>(m) * n));
  }
  AddFlops(2.0 * m * n * kdim);
  Matrix c(m, n);
  const BlockConfig& blk = GetBlockConfig();
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < kdim; k0 += blk.kc) {
        const int kk = std::min(blk.kc, kdim - k0);
        for (int j0 = 0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          DotTileUpdate(a, b, k0, kk, i0, i1, j0, j1, &c);
        }
      }
    }
  });
  return c;
}

Matrix Gram(const Matrix& a) {
  // Computes the upper triangle in tiles, then mirrors. Element (i, j)
  // accumulates over the sample index k in ascending order exactly as the
  // serial formulation did, so any thread count produces the same bits.
  const int m = a.rows();
  const int n = a.cols();
  TraceSpan span("gram");
  if (span.recording()) {
    span.AddArg("flops", static_cast<double>(m) * n * (n + 1));
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * n +
                               static_cast<double>(n) * n));
  }
  AddFlops(static_cast<double>(m) * n * (n + 1));
  Matrix c(n, n);
  GramUpperInto(a, &c);
  MirrorUpperToLower(&c);
  return c;
}

void GramAccumulateUpper(const Matrix& a, Matrix* c) {
  const int m = a.rows();
  const int n = a.cols();
  SRDA_CHECK(c->rows() == n && c->cols() == n)
      << "Gram accumulate output shape mismatch";
  TraceSpan span("gram");
  if (span.recording()) {
    span.AddArg("flops", static_cast<double>(m) * n * (n + 1));
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * n +
                               static_cast<double>(n) * n));
  }
  AddFlops(static_cast<double>(m) * n * (n + 1));
  GramUpperInto(a, c);
}

void SymmetrizeFromUpper(Matrix* c) {
  SRDA_CHECK_EQ(c->rows(), c->cols()) << "SymmetrizeFromUpper needs square";
  MirrorUpperToLower(c);
}

Matrix OuterGram(const Matrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  TraceSpan span("outer_gram");
  if (span.recording()) {
    span.AddArg("flops", static_cast<double>(n) * m * (m + 1));
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * n +
                               static_cast<double>(m) * m));
  }
  AddFlops(static_cast<double>(n) * m * (m + 1));
  Matrix c(m, m);
  const BlockConfig& blk = GetBlockConfig();
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < n; k0 += blk.kc) {
        const int kk = std::min(blk.kc, n - k0);
        for (int j0 = i0; j0 < m; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, m);
          if (j0 >= i1) {
            DotTileUpdate(a, a, k0, kk, i0, i1, j0, j1, &c);
          } else {
            const int split = std::min(j1, i1);
            DotTileUpdateUpper(a, a, k0, kk, i0, i1, j0, split, &c);
            if (split < j1) {
              DotTileUpdate(a, a, k0, kk, i0, i1, split, j1, &c);
            }
          }
        }
      }
    }
  });
  MirrorUpperToLower(&c);
  return c;
}

void AddDiagonal(double alpha, Matrix* m) {
  SRDA_CHECK(m != nullptr);
  SRDA_CHECK_EQ(m->rows(), m->cols()) << "AddDiagonal needs a square matrix";
  for (int i = 0; i < m->rows(); ++i) (*m)(i, i) += alpha;
}

Vector ColumnMeans(const Matrix& a) {
  SRDA_CHECK(a.rows() > 0) << "ColumnMeans of an empty matrix";
  Vector mean(a.cols());
  ColumnSumsAccumulate(a, &mean);
  double* pm = mean.data();
  const double inv = 1.0 / a.rows();
  for (int j = 0; j < a.cols(); ++j) pm[j] *= inv;
  return mean;
}

void ColumnSumsAccumulate(const Matrix& a, Vector* sums) {
  SRDA_CHECK_EQ(a.cols(), sums->size()) << "ColumnSums size mismatch";
  double* pm = sums->data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    for (int j = 0; j < a.cols(); ++j) pm[j] += row[j];
  }
}

void SubtractRowVector(const Vector& center, Matrix* a) {
  SRDA_CHECK(a != nullptr);
  SRDA_CHECK_EQ(center.size(), a->cols()) << "SubtractRowVector size mismatch";
  const double* pc = center.data();
  ParallelFor(0, a->rows(), [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      double* row = a->RowPtr(i);
      for (int j = 0; j < a->cols(); ++j) row[j] -= pc[j];
    }
  });
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SRDA_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "MaxAbsDiff shape mismatch";
  double max_diff = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t total = static_cast<size_t>(a.rows()) * a.cols();
  for (size_t i = 0; i < total; ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

double MaxAbsDiff(const Vector& x, const Vector& y) {
  SRDA_CHECK_EQ(x.size(), y.size()) << "MaxAbsDiff size mismatch";
  double max_diff = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(x[i] - y[i]));
  }
  return max_diff;
}

namespace naive {

Matrix Multiply(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.rows()) << "A*B shape mismatch";
  AddFlops(2.0 * a.rows() * a.cols() * b.cols());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  AddFlops(2.0 * a.rows() * a.cols() * b.cols());
  Matrix c(a.cols(), b.cols());
  for (int i = 0; i < a.cols(); ++i) {
    double* crow = c.RowPtr(i);
    for (int k = 0; k < a.rows(); ++k) {
      const double aki = a.RowPtr(k)[i];
      if (aki == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.cols()) << "A*B^T shape mismatch";
  AddFlops(2.0 * a.rows() * a.cols() * b.rows());
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
  return c;
}

Matrix Gram(const Matrix& a) {
  const int n = a.cols();
  AddFlops(static_cast<double>(a.rows()) * n * (n + 1));
  Matrix c(n, n);
  for (int i = 0; i < n; ++i) {
    double* crow = c.RowPtr(i);
    for (int k = 0; k < a.rows(); ++k) {
      const double* arow = a.RowPtr(k);
      const double aki = arow[i];
      if (aki == 0.0) continue;
      for (int j = i; j < n; ++j) crow[j] += aki * arow[j];
    }
  }
  for (int j = 1; j < n; ++j) {
    double* crow = c.RowPtr(j);
    for (int i = 0; i < j; ++i) crow[i] = c.RowPtr(i)[j];
  }
  return c;
}

Matrix OuterGram(const Matrix& a) {
  const int m = a.rows();
  AddFlops(static_cast<double>(a.cols()) * m * (m + 1));
  Matrix c(m, m);
  for (int i = 0; i < m; ++i) {
    const double* rowi = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int j = i; j < m; ++j) {
      const double* rowj = a.RowPtr(j);
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += rowi[k] * rowj[k];
      crow[j] = sum;
    }
  }
  for (int j = 1; j < m; ++j) {
    double* crow = c.RowPtr(j);
    for (int i = 0; i < j; ++i) crow[i] = c.RowPtr(i)[j];
  }
  return c;
}

}  // namespace naive

}  // namespace srda
