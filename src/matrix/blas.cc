#include "matrix/blas.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace srda {

double Dot(const Vector& x, const Vector& y) {
  SRDA_CHECK_EQ(x.size(), y.size()) << "Dot size mismatch";
  const double* px = x.data();
  const double* py = y.data();
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) sum += px[i] * py[i];
  return sum;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  SRDA_CHECK(y != nullptr);
  SRDA_CHECK_EQ(x.size(), y->size()) << "Axpy size mismatch";
  const double* px = x.data();
  double* py = y->data();
  for (int i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void Scale(double alpha, Vector* x) {
  SRDA_CHECK(x != nullptr);
  double* px = x->data();
  for (int i = 0; i < x->size(); ++i) px[i] *= alpha;
}

double Norm2(const Vector& x) {
  // Two-pass scaled norm: immune to overflow/underflow for the magnitudes
  // seen in practice.
  const double max_abs = NormInf(x);
  if (max_abs == 0.0) return 0.0;
  const double* px = x.data();
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    const double scaled = px[i] / max_abs;
    sum += scaled * scaled;
  }
  return max_abs * std::sqrt(sum);
}

double NormInf(const Vector& x) {
  const double* px = x.data();
  double max_abs = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(px[i]));
  }
  return max_abs;
}

Vector Multiply(const Matrix& a, const Vector& x) {
  SRDA_CHECK_EQ(a.cols(), x.size()) << "A*x shape mismatch";
  Vector y(a.rows());
  const double* px = x.data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double sum = 0.0;
    for (int j = 0; j < a.cols(); ++j) sum += row[j] * px[j];
    y[i] = sum;
  }
  return y;
}

Vector MultiplyTransposed(const Matrix& a, const Vector& x) {
  SRDA_CHECK_EQ(a.rows(), x.size()) << "A^T*x shape mismatch";
  Vector y(a.cols());
  double* py = y.data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int j = 0; j < a.cols(); ++j) py[j] += xi * row[j];
  }
  return y;
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.rows()) << "A*B shape mismatch";
  Matrix c(a.rows(), b.cols());
  // Row-partitioned: each output row is owned by exactly one chunk, and its
  // i-k-j accumulation order is independent of the partition, so results are
  // bitwise identical at any thread count.
  ParallelFor(0, a.rows(), [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const double* arow = a.RowPtr(i);
      double* crow = c.RowPtr(i);
      for (int k = 0; k < a.cols(); ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* brow = b.RowPtr(k);
        for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
      }
    }
  });
  return c;
}

Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  Matrix c(a.cols(), b.cols());
  // Partitioned over output rows (columns of A) with the k accumulation
  // innermost in the same ascending order as the serial k-outer loop, so
  // every element sees the identical addition sequence.
  ParallelFor(0, a.cols(), [&](int col_begin, int col_end) {
    for (int i = col_begin; i < col_end; ++i) {
      double* crow = c.RowPtr(i);
      for (int k = 0; k < a.rows(); ++k) {
        const double aki = a.RowPtr(k)[i];
        if (aki == 0.0) continue;
        const double* brow = b.RowPtr(k);
        for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
      }
    }
  });
  return c;
}

Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.cols()) << "A*B^T shape mismatch";
  Matrix c(a.rows(), b.rows());
  ParallelFor(0, a.rows(), [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const double* arow = a.RowPtr(i);
      double* crow = c.RowPtr(i);
      for (int j = 0; j < b.rows(); ++j) {
        const double* brow = b.RowPtr(j);
        double sum = 0.0;
        for (int k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
        crow[j] = sum;
      }
    }
  });
  return c;
}

Matrix Gram(const Matrix& a) {
  // Computes only the upper triangle, then mirrors. Partitioned over output
  // rows; element (i, j) accumulates over k in ascending order exactly as
  // the serial k-outer formulation did, so any thread count produces the
  // same bits. The triangle makes early rows more expensive than late ones;
  // the pool's chunk over-decomposition absorbs the imbalance.
  const int n = a.cols();
  Matrix c(n, n);
  ParallelFor(0, n, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      double* crow = c.RowPtr(i);
      for (int k = 0; k < a.rows(); ++k) {
        const double* arow = a.RowPtr(k);
        const double aki = arow[i];
        if (aki == 0.0) continue;
        for (int j = i; j < n; ++j) crow[j] += aki * arow[j];
      }
    }
  });
  ParallelFor(1, n, [&](int row_begin, int row_end) {
    for (int j = row_begin; j < row_end; ++j) {
      double* crow = c.RowPtr(j);
      for (int i = 0; i < j; ++i) crow[i] = c.RowPtr(i)[j];
    }
  });
  return c;
}

Matrix OuterGram(const Matrix& a) {
  const int m = a.rows();
  Matrix c(m, m);
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const double* rowi = a.RowPtr(i);
      double* crow = c.RowPtr(i);
      for (int j = i; j < m; ++j) {
        const double* rowj = a.RowPtr(j);
        double sum = 0.0;
        for (int k = 0; k < a.cols(); ++k) sum += rowi[k] * rowj[k];
        crow[j] = sum;
      }
    }
  });
  ParallelFor(1, m, [&](int row_begin, int row_end) {
    for (int j = row_begin; j < row_end; ++j) {
      double* crow = c.RowPtr(j);
      for (int i = 0; i < j; ++i) crow[i] = c.RowPtr(i)[j];
    }
  });
  return c;
}

void AddDiagonal(double alpha, Matrix* m) {
  SRDA_CHECK(m != nullptr);
  SRDA_CHECK_EQ(m->rows(), m->cols()) << "AddDiagonal needs a square matrix";
  for (int i = 0; i < m->rows(); ++i) (*m)(i, i) += alpha;
}

Vector ColumnMeans(const Matrix& a) {
  SRDA_CHECK(a.rows() > 0) << "ColumnMeans of an empty matrix";
  Vector mean(a.cols());
  double* pm = mean.data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    for (int j = 0; j < a.cols(); ++j) pm[j] += row[j];
  }
  const double inv = 1.0 / a.rows();
  for (int j = 0; j < a.cols(); ++j) pm[j] *= inv;
  return mean;
}

void SubtractRowVector(const Vector& center, Matrix* a) {
  SRDA_CHECK(a != nullptr);
  SRDA_CHECK_EQ(center.size(), a->cols()) << "SubtractRowVector size mismatch";
  const double* pc = center.data();
  ParallelFor(0, a->rows(), [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      double* row = a->RowPtr(i);
      for (int j = 0; j < a->cols(); ++j) row[j] -= pc[j];
    }
  });
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SRDA_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "MaxAbsDiff shape mismatch";
  double max_diff = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t total = static_cast<size_t>(a.rows()) * a.cols();
  for (size_t i = 0; i < total; ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

double MaxAbsDiff(const Vector& x, const Vector& y) {
  SRDA_CHECK_EQ(x.size(), y.size()) << "MaxAbsDiff size mismatch";
  double max_diff = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(x[i] - y[i]));
  }
  return max_diff;
}

}  // namespace srda
