#include "matrix/blas.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "matrix/blocking.h"
#include "matrix/simd/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Dense-kernel traffic in bytes (operands read + result written), recorded
// only while tracing so the disabled path stays untouched.
Counter* BytesTouched() {
  static Counter* counter =
      MetricsRegistry::Global().counter("bytes.touched");
  return counter;
}

}  // namespace

double Dot(const Vector& x, const Vector& y) {
  SRDA_CHECK_EQ(x.size(), y.size()) << "Dot size mismatch";
  const double* px = x.data();
  const double* py = y.data();
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) sum += px[i] * py[i];
  return sum;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  SRDA_CHECK(y != nullptr);
  SRDA_CHECK_EQ(x.size(), y->size()) << "Axpy size mismatch";
  const double* px = x.data();
  double* py = y->data();
  for (int i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

void Scale(double alpha, Vector* x) {
  SRDA_CHECK(x != nullptr);
  double* px = x->data();
  for (int i = 0; i < x->size(); ++i) px[i] *= alpha;
}

double Norm2(const Vector& x) {
  // Two-pass scaled norm: immune to overflow/underflow for the magnitudes
  // seen in practice.
  const double max_abs = NormInf(x);
  if (max_abs == 0.0) return 0.0;
  const double* px = x.data();
  double sum = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    const double scaled = px[i] / max_abs;
    sum += scaled * scaled;
  }
  return max_abs * std::sqrt(sum);
}

double NormInf(const Vector& x) {
  const double* px = x.data();
  double max_abs = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(px[i]));
  }
  return max_abs;
}

Vector Multiply(const Matrix& a, const Vector& x) {
  SRDA_CHECK_EQ(a.cols(), x.size()) << "A*x shape mismatch";
  TraceSpan span("gemv");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * a.rows() * a.cols());
    BytesTouched()->Add(8.0 * (static_cast<double>(a.rows()) * a.cols() +
                               a.cols() + a.rows()));
  }
  AddFlops(2.0 * a.rows() * a.cols());
  Vector y(a.rows());
  const double* px = x.data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double sum = 0.0;
    for (int j = 0; j < a.cols(); ++j) sum += row[j] * px[j];
    y[i] = sum;
  }
  return y;
}

Vector MultiplyTransposed(const Matrix& a, const Vector& x) {
  Vector y(a.cols());
  MultiplyTransposedAccumulate(a, x, &y);
  return y;
}

void MultiplyTransposedAccumulate(const Matrix& a, const Vector& x,
                                  Vector* y) {
  SRDA_CHECK_EQ(a.rows(), x.size()) << "A^T*x shape mismatch";
  SRDA_CHECK_EQ(a.cols(), y->size()) << "A^T*x output size mismatch";
  TraceSpan span("gemv_t");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * a.rows() * a.cols());
    BytesTouched()->Add(8.0 * (static_cast<double>(a.rows()) * a.cols() +
                               a.cols() + a.rows()));
  }
  AddFlops(2.0 * a.rows() * a.cols());
  double* py = y->data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int j = 0; j < a.cols(); ++j) py[j] += xi * row[j];
  }
}

namespace {

// ---- Blocked level-3 building blocks -----------------------------------
//
// Two micro-kernel shapes cover all five products:
//
//  * axpy form (gemm_tile): the output tile's rows are updated with
//    scaled operand rows, j as the vector axis — used when B's k-rows are
//    contiguous (Multiply, MultiplyTransposedA, Gram);
//  * dot form (dot_tile): each output element is a dot product of two
//    row segments — used when both operands index k along rows
//    (MultiplyTransposedB, OuterGram).
//
// Both keep ONE running accumulator per output element, carried through C
// between K-panels, and advance k strictly ascending. Row/column unrolling
// multiplies the number of concurrent elements, never the number of
// partial sums per element, so the per-element addition chain — and hence
// the result bits — is independent of tile shapes, unroll cleanup paths,
// and the ParallelFor partition. That preserves PR 1's guarantee: any
// thread count produces identical bits.
//
// The kernel bodies live in matrix/simd/ behind runtime CPU dispatch
// (matrix/simd/simd.h): simd::Dispatch() returns scalar, AVX2, AVX-512,
// or NEON implementations of the same chains — bitwise identical at every
// level. Only the triangular diagonal-straddle variants below stay scalar
// here; they touch a vanishing fraction of the work.

// Triangular variant for the stripes straddling the diagonal of a
// symmetric product: row i starts at column max(j0, i).
void GemmTileUpdateUpper(const double* panel, int kk, const Matrix& b,
                         int k0, int i0, int i1, int j0, int j1, Matrix* c) {
  for (int i = i0; i < i1; ++i) {
    const double* prow = panel + static_cast<size_t>(i - i0) * kk;
    const int jstart = std::max(j0, i);
    double* crow = c->RowPtr(i);
    for (int k = 0; k < kk; ++k) {
      const double v = prow[k];
      const double* brow = b.RowPtr(k0 + k);
      for (int j = jstart; j < j1; ++j) crow[j] += v * brow[j];
    }
  }
}

// Dot-form triangular variant: row i covers columns max(j0, i) .. j1.
void DotTileUpdateUpper(const Matrix& a, const Matrix& b, int k0, int kk,
                        int i0, int i1, int j0, int j1, Matrix* c) {
  for (int i = i0; i < i1; ++i) {
    const double* arow = a.RowPtr(i) + k0;
    double* crow = c->RowPtr(i);
    for (int j = std::max(j0, i); j < j1; ++j) {
      const double* brow = b.RowPtr(j) + k0;
      double sum = crow[j];
      for (int k = 0; k < kk; ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
}

// pack[(i - i0) * kk + (k - k0)] = a(k0 + k, i): the K-panel of columns
// [i0, i1), transposed to contiguous per-column storage. Read row-wise, so
// the pack touches each cache line of A once — this is the one place the
// transposed products pay for A's row-major layout.
void PackPanelTransposed(const Matrix& a, int k0, int kk, int i0, int i1,
                         double* pack) {
  for (int k = 0; k < kk; ++k) {
    const double* arow = a.RowPtr(k0 + k) + i0;
    for (int i = 0; i < i1 - i0; ++i) {
      pack[static_cast<size_t>(i) * kk + k] = arow[i];
    }
  }
}

// Copies the strict upper triangle into the lower one.
void MirrorUpperToLower(Matrix* c) {
  ParallelFor(1, c->rows(), [&](int row_begin, int row_end) {
    for (int j = row_begin; j < row_end; ++j) {
      double* crow = c->RowPtr(j);
      for (int i = 0; i < j; ++i) crow[i] = c->RowPtr(i)[j];
    }
  });
}

// C += A^T B, blocked. Shared by MultiplyTransposedA (C zeroed) and the
// streaming accumulate variant (C carries the previous blocks' partial
// chains); no span/flop accounting here.
void GemmAtBInto(const Matrix& a, const Matrix& b, Matrix* c) {
  const int m = a.rows();
  const int p = a.cols();
  const int n = b.cols();
  const BlockConfig& blk = GetBlockConfig();
  const simd::KernelTable& kt = simd::Dispatch();
  ParallelFor(0, p, [&](int col_begin, int col_end) {
    // Chunk-local scratch: the packed panel is allocated and first-touched
    // by the worker that streams it (NUMA-local under pinning).
    PanelScratch scratch;
    double* pack = scratch.Acquire(static_cast<size_t>(blk.mc) * blk.kc);
    for (int i0 = col_begin; i0 < col_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, col_end);
      for (int k0 = 0; k0 < m; k0 += blk.kc) {
        const int kk = std::min(blk.kc, m - k0);
        PackPanelTransposed(a, k0, kk, i0, i1, pack);
        for (int j0 = 0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          kt.gemm_tile(pack, kk, kk, b.data(), b.cols(), k0, c->data(),
                       c->cols(), i0, i1, j0, j1);
        }
      }
    }
  });
}

// Upper triangle of C += A^T A, blocked; same sharing as GemmAtBInto.
void GramUpperInto(const Matrix& a, Matrix* c) {
  const int m = a.rows();
  const int n = a.cols();
  const BlockConfig& blk = GetBlockConfig();
  const simd::KernelTable& kt = simd::Dispatch();
  ParallelFor(0, n, [&](int row_begin, int row_end) {
    PanelScratch scratch;
    double* pack = scratch.Acquire(static_cast<size_t>(blk.mc) * blk.kc);
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < m; k0 += blk.kc) {
        const int kk = std::min(blk.kc, m - k0);
        PackPanelTransposed(a, k0, kk, i0, i1, pack);
        for (int j0 = i0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          if (j0 >= i1) {
            kt.gemm_tile(pack, kk, kk, a.data(), a.cols(), k0, c->data(),
                         c->cols(), i0, i1, j0, j1);
          } else {
            // Stripe straddles the diagonal: scalar triangle up to the
            // tile's last row, fast rectangle for the columns beyond it.
            const int split = std::min(j1, i1);
            GemmTileUpdateUpper(pack, kk, a, k0, i0, i1, j0, split, c);
            if (split < j1) {
              kt.gemm_tile(pack, kk, kk, a.data(), a.cols(), k0, c->data(),
                           c->cols(), i0, i1, split, j1);
            }
          }
        }
      }
    }
  });
}

}  // namespace

Matrix Multiply(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.rows()) << "A*B shape mismatch";
  const int m = a.rows();
  const int kdim = a.cols();
  const int n = b.cols();
  TraceSpan span("gemm");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * kdim * n);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * kdim +
                               static_cast<double>(kdim) * n +
                               static_cast<double>(m) * n));
  }
  AddFlops(2.0 * m * kdim * n);
  Matrix c(m, n);
  const BlockConfig& blk = GetBlockConfig();
  const simd::KernelTable& kt = simd::Dispatch();
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < kdim; k0 += blk.kc) {
        const int kk = std::min(blk.kc, kdim - k0);
        for (int j0 = 0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          // A's k-segment is contiguous within each row: no packing needed,
          // the row stride stands in for a packed panel.
          kt.gemm_tile(a.RowPtr(i0) + k0, a.cols(), kk, b.data(), b.cols(),
                       k0, c.data(), c.cols(), i0, i1, j0, j1);
        }
      }
    }
  });
  return c;
}

Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  const int m = a.rows();
  const int p = a.cols();
  const int n = b.cols();
  TraceSpan span("gemm_at_b");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * p * n);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * p +
                               static_cast<double>(m) * n +
                               static_cast<double>(p) * n));
  }
  AddFlops(2.0 * m * p * n);
  Matrix c(p, n);
  GemmAtBInto(a, b, &c);
  return c;
}

void MultiplyTransposedAAccumulate(const Matrix& a, const Matrix& b,
                                   Matrix* c) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  SRDA_CHECK(c->rows() == a.cols() && c->cols() == b.cols())
      << "A^T*B accumulate output shape mismatch";
  const int m = a.rows();
  const int p = a.cols();
  const int n = b.cols();
  TraceSpan span("gemm_at_b");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * p * n);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * p +
                               static_cast<double>(m) * n +
                               static_cast<double>(p) * n));
  }
  AddFlops(2.0 * m * p * n);
  GemmAtBInto(a, b, c);
}

Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.cols()) << "A*B^T shape mismatch";
  const int m = a.rows();
  const int n = b.rows();
  const int kdim = a.cols();
  TraceSpan span("gemm_a_bt");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * m * n * kdim);
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * kdim +
                               static_cast<double>(n) * kdim +
                               static_cast<double>(m) * n));
  }
  AddFlops(2.0 * m * n * kdim);
  Matrix c(m, n);
  const BlockConfig& blk = GetBlockConfig();
  const simd::KernelTable& kt = simd::Dispatch();
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < kdim; k0 += blk.kc) {
        const int kk = std::min(blk.kc, kdim - k0);
        for (int j0 = 0; j0 < n; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, n);
          kt.dot_tile(a.data(), a.cols(), b.data(), b.cols(), k0, kk,
                      c.data(), c.cols(), i0, i1, j0, j1);
        }
      }
    }
  });
  return c;
}

Matrix Gram(const Matrix& a) {
  // Computes the upper triangle in tiles, then mirrors. Element (i, j)
  // accumulates over the sample index k in ascending order exactly as the
  // serial formulation did, so any thread count produces the same bits.
  const int m = a.rows();
  const int n = a.cols();
  TraceSpan span("gram");
  if (span.recording()) {
    span.AddArg("flops", static_cast<double>(m) * n * (n + 1));
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * n +
                               static_cast<double>(n) * n));
  }
  AddFlops(static_cast<double>(m) * n * (n + 1));
  Matrix c(n, n);
  GramUpperInto(a, &c);
  MirrorUpperToLower(&c);
  return c;
}

void GramAccumulateUpper(const Matrix& a, Matrix* c) {
  const int m = a.rows();
  const int n = a.cols();
  SRDA_CHECK(c->rows() == n && c->cols() == n)
      << "Gram accumulate output shape mismatch";
  TraceSpan span("gram");
  if (span.recording()) {
    span.AddArg("flops", static_cast<double>(m) * n * (n + 1));
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * n +
                               static_cast<double>(n) * n));
  }
  AddFlops(static_cast<double>(m) * n * (n + 1));
  GramUpperInto(a, c);
}

void SymmetrizeFromUpper(Matrix* c) {
  SRDA_CHECK_EQ(c->rows(), c->cols()) << "SymmetrizeFromUpper needs square";
  MirrorUpperToLower(c);
}

Matrix OuterGram(const Matrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  TraceSpan span("outer_gram");
  if (span.recording()) {
    span.AddArg("flops", static_cast<double>(n) * m * (m + 1));
    BytesTouched()->Add(8.0 * (static_cast<double>(m) * n +
                               static_cast<double>(m) * m));
  }
  AddFlops(static_cast<double>(n) * m * (m + 1));
  Matrix c(m, m);
  const BlockConfig& blk = GetBlockConfig();
  const simd::KernelTable& kt = simd::Dispatch();
  ParallelFor(0, m, [&](int row_begin, int row_end) {
    for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
      const int i1 = std::min(i0 + blk.mc, row_end);
      for (int k0 = 0; k0 < n; k0 += blk.kc) {
        const int kk = std::min(blk.kc, n - k0);
        for (int j0 = i0; j0 < m; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, m);
          if (j0 >= i1) {
            kt.dot_tile(a.data(), a.cols(), a.data(), a.cols(), k0, kk,
                        c.data(), c.cols(), i0, i1, j0, j1);
          } else {
            const int split = std::min(j1, i1);
            DotTileUpdateUpper(a, a, k0, kk, i0, i1, j0, split, &c);
            if (split < j1) {
              kt.dot_tile(a.data(), a.cols(), a.data(), a.cols(), k0, kk,
                          c.data(), c.cols(), i0, i1, split, j1);
            }
          }
        }
      }
    }
  });
  MirrorUpperToLower(&c);
  return c;
}

void AddDiagonal(double alpha, Matrix* m) {
  SRDA_CHECK(m != nullptr);
  SRDA_CHECK_EQ(m->rows(), m->cols()) << "AddDiagonal needs a square matrix";
  for (int i = 0; i < m->rows(); ++i) (*m)(i, i) += alpha;
}

Vector ColumnMeans(const Matrix& a) {
  SRDA_CHECK(a.rows() > 0) << "ColumnMeans of an empty matrix";
  Vector mean(a.cols());
  ColumnSumsAccumulate(a, &mean);
  double* pm = mean.data();
  const double inv = 1.0 / a.rows();
  for (int j = 0; j < a.cols(); ++j) pm[j] *= inv;
  return mean;
}

void ColumnSumsAccumulate(const Matrix& a, Vector* sums) {
  SRDA_CHECK_EQ(a.cols(), sums->size()) << "ColumnSums size mismatch";
  double* pm = sums->data();
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    for (int j = 0; j < a.cols(); ++j) pm[j] += row[j];
  }
}

void SubtractRowVector(const Vector& center, Matrix* a) {
  SRDA_CHECK(a != nullptr);
  SRDA_CHECK_EQ(center.size(), a->cols()) << "SubtractRowVector size mismatch";
  const double* pc = center.data();
  ParallelFor(0, a->rows(), [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      double* row = a->RowPtr(i);
      for (int j = 0; j < a->cols(); ++j) row[j] -= pc[j];
    }
  });
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SRDA_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "MaxAbsDiff shape mismatch";
  double max_diff = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const size_t total = static_cast<size_t>(a.rows()) * a.cols();
  for (size_t i = 0; i < total; ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

double MaxAbsDiff(const Vector& x, const Vector& y) {
  SRDA_CHECK_EQ(x.size(), y.size()) << "MaxAbsDiff size mismatch";
  double max_diff = 0.0;
  for (int i = 0; i < x.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(x[i] - y[i]));
  }
  return max_diff;
}

namespace naive {

Matrix Multiply(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.rows()) << "A*B shape mismatch";
  AddFlops(2.0 * a.rows() * a.cols() * b.cols());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.rows(), b.rows()) << "A^T*B shape mismatch";
  AddFlops(2.0 * a.rows() * a.cols() * b.cols());
  Matrix c(a.cols(), b.cols());
  for (int i = 0; i < a.cols(); ++i) {
    double* crow = c.RowPtr(i);
    for (int k = 0; k < a.rows(); ++k) {
      const double aki = a.RowPtr(k)[i];
      if (aki == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.cols()) << "A*B^T shape mismatch";
  AddFlops(2.0 * a.rows() * a.cols() * b.rows());
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const double* brow = b.RowPtr(j);
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
  return c;
}

Matrix Gram(const Matrix& a) {
  const int n = a.cols();
  AddFlops(static_cast<double>(a.rows()) * n * (n + 1));
  Matrix c(n, n);
  for (int i = 0; i < n; ++i) {
    double* crow = c.RowPtr(i);
    for (int k = 0; k < a.rows(); ++k) {
      const double* arow = a.RowPtr(k);
      const double aki = arow[i];
      if (aki == 0.0) continue;
      for (int j = i; j < n; ++j) crow[j] += aki * arow[j];
    }
  }
  for (int j = 1; j < n; ++j) {
    double* crow = c.RowPtr(j);
    for (int i = 0; i < j; ++i) crow[i] = c.RowPtr(i)[j];
  }
  return c;
}

Matrix OuterGram(const Matrix& a) {
  const int m = a.rows();
  AddFlops(static_cast<double>(a.cols()) * m * (m + 1));
  Matrix c(m, m);
  for (int i = 0; i < m; ++i) {
    const double* rowi = a.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (int j = i; j < m; ++j) {
      const double* rowj = a.RowPtr(j);
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += rowi[k] * rowj[k];
      crow[j] = sum;
    }
  }
  for (int j = 1; j < m; ++j) {
    double* crow = c.RowPtr(j);
    for (int i = 0; i < j; ++i) crow[i] = c.RowPtr(i)[j];
  }
  return c;
}

}  // namespace naive

}  // namespace srda
