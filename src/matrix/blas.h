// BLAS-like dense kernels.
//
// These free functions implement the handful of level-1/2/3 operations the
// library needs. Inner loops use raw row pointers (no per-element bounds
// checks); shapes are validated once per call.
//
// The level-3 kernels (Multiply, MultiplyTransposedA/B, Gram, OuterGram)
// are cache-blocked: the reduction dimension streams in packed K-panels
// against register-unrolled output tiles, with tile shapes from
// matrix/blocking.h (SRDA_BLOCK_* knobs). Every output element accumulates
// its k-terms in one fixed ascending chain, so results are bitwise
// identical for any tile shape and any thread count. The unblocked
// originals live in srda::naive for agreement tests and the blocked-vs-
// naive bench sweep, and all kernels report flop counts to
// common/flops.h's runtime counter.

#ifndef SRDA_MATRIX_BLAS_H_
#define SRDA_MATRIX_BLAS_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// Returns x . y (sizes must match).
double Dot(const Vector& x, const Vector& y);

// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector* y);

// x *= alpha.
void Scale(double alpha, Vector* x);

// Euclidean norm, computed with scaling to avoid overflow.
double Norm2(const Vector& x);

// Largest absolute entry (0 for the empty vector).
double NormInf(const Vector& x);

// y = A * x  (A is m x n, x has n entries, y gets m entries).
Vector Multiply(const Matrix& a, const Vector& x);

// y = A^T * x  (A is m x n, x has m entries, y gets n entries).
Vector MultiplyTransposed(const Matrix& a, const Vector& x);

// C = A * B (shapes must agree).
Matrix Multiply(const Matrix& a, const Matrix& b);

// C = A^T * B.
Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b);

// C = A * B^T.
Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b);

// C = A^T * A (n x n, symmetric; both triangles are filled).
Matrix Gram(const Matrix& a);

// ---- Chain-continuing accumulate kernels (out-of-core streaming) --------
//
// Each of these adds into an existing output, seeding every element's
// running accumulator from the value already stored there — exactly what
// the blocked kernels do between K-panels. Streaming the row blocks of a
// tall matrix through them top-to-bottom therefore produces bit-for-bit
// the same result as one call on the full matrix, at any block size and
// thread count: pausing and resuming a sequential reduction chain changes
// no operations.

// C += A^T * B (C is a.cols() x b.cols(), pre-sized by the caller).
void MultiplyTransposedAAccumulate(const Matrix& a, const Matrix& b,
                                   Matrix* c);

// Upper triangle of C += A^T * A. Stream all row blocks, then call
// SymmetrizeFromUpper once; Gram() is exactly that sequence on one block.
void GramAccumulateUpper(const Matrix& a, Matrix* c);

// Copies the strict upper triangle onto the lower triangle.
void SymmetrizeFromUpper(Matrix* c);

// y += A^T * x.
void MultiplyTransposedAccumulate(const Matrix& a, const Vector& x,
                                  Vector* y);

// sums += per-column sums of A: the ColumnMeans accumulation without the
// final 1/m scale, so a streamed mean matches the in-RAM one bitwise.
void ColumnSumsAccumulate(const Matrix& a, Vector* sums);

// C = A * A^T (m x m, symmetric; both triangles are filled).
Matrix OuterGram(const Matrix& a);

// M += alpha * I (M must be square).
void AddDiagonal(double alpha, Matrix* m);

// Column means of A as a length-n vector.
Vector ColumnMeans(const Matrix& a);

// Subtracts `center` from every row of A in place (center.size() == cols).
void SubtractRowVector(const Vector& center, Matrix* a);

// max_ij |A(i,j) - B(i,j)|; shapes must match.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

// max_i |x[i] - y[i]|; sizes must match.
double MaxAbsDiff(const Vector& x, const Vector& y);

// Reference level-3 kernels: the unblocked serial loops the blocked
// versions replaced. Agreement tests pin the blocked kernels against these,
// and bench_table1_complexity's kernel sweep (BENCH_kernel_blocking.json)
// measures the blocking speedup from them. Not for production call sites.
namespace naive {

Matrix Multiply(const Matrix& a, const Matrix& b);
Matrix MultiplyTransposedA(const Matrix& a, const Matrix& b);
Matrix MultiplyTransposedB(const Matrix& a, const Matrix& b);
Matrix Gram(const Matrix& a);
Matrix OuterGram(const Matrix& a);

}  // namespace naive

}  // namespace srda

#endif  // SRDA_MATRIX_BLAS_H_
