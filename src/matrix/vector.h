// Dense double-precision vector used throughout the SRDA library.

#ifndef SRDA_MATRIX_VECTOR_H_
#define SRDA_MATRIX_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"

namespace srda {

// A contiguous vector of doubles with bounds-checked element access.
//
// Copyable and movable. Sizes use int (all dimensions in this library fit
// comfortably; the style guide prefers signed arithmetic).
class Vector {
 public:
  Vector() = default;

  // A vector of `size` zeros.
  explicit Vector(int size) : values_(Checked(size), 0.0) {}

  // A vector of `size` copies of `fill`.
  Vector(int size, double fill) : values_(Checked(size), fill) {}

  // Conversion from a brace list, e.g. Vector v{1.0, 2.0, 3.0}.
  Vector(std::initializer_list<double> values) : values_(values) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  int size() const { return static_cast<int>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double& operator[](int i) {
    SRDA_CHECK(i >= 0 && i < size()) << "vector index " << i << " out of "
                                     << size();
    return values_[static_cast<size_t>(i)];
  }
  double operator[](int i) const {
    SRDA_CHECK(i >= 0 && i < size()) << "vector index " << i << " out of "
                                     << size();
    return values_[static_cast<size_t>(i)];
  }

  double* data() { return values_.data(); }
  const double* data() const { return values_.data(); }

  // Sets every element to `value`.
  void Fill(double value) {
    for (double& x : values_) x = value;
  }

  // Grows or shrinks to `size`, zero-filling new elements.
  void Resize(int size) { values_.resize(Checked(size), 0.0); }

 private:
  static size_t Checked(int size) {
    SRDA_CHECK(size >= 0) << "negative vector size " << size;
    return static_cast<size_t>(size);
  }

  std::vector<double> values_;
};

}  // namespace srda

#endif  // SRDA_MATRIX_VECTOR_H_
