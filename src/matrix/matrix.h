// Dense row-major double-precision matrix.

#ifndef SRDA_MATRIX_MATRIX_H_
#define SRDA_MATRIX_MATRIX_H_

#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "matrix/vector.h"

namespace srda {

// A dense matrix of doubles stored row-major in one contiguous buffer.
//
// Rows are the natural sample axis in this library: datasets store one
// sample per row (m x n, samples x features), matching the paper's X^T
// layout for cache-friendly per-sample access.
//
// Copyable and movable; copying copies the buffer.
class Matrix {
 public:
  Matrix() = default;

  // A rows x cols matrix of zeros.
  Matrix(int rows, int cols);

  // A rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, double fill);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  // The n x n identity.
  static Matrix Identity(int n);

  // Builds a matrix from a brace list of rows; all rows must have the same
  // length. Intended for tests and small examples.
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int i, int j) {
    SRDA_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_)
        << "matrix index (" << i << ", " << j << ") out of " << rows_ << " x "
        << cols_;
    return values_[static_cast<size_t>(i) * cols_ + j];
  }
  double operator()(int i, int j) const {
    SRDA_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_)
        << "matrix index (" << i << ", " << j << ") out of " << rows_ << " x "
        << cols_;
    return values_[static_cast<size_t>(i) * cols_ + j];
  }

  // Unchecked pointer to the start of row `i`; valid for cols() doubles.
  double* RowPtr(int i) {
    return values_.data() + static_cast<size_t>(i) * cols_;
  }
  const double* RowPtr(int i) const {
    return values_.data() + static_cast<size_t>(i) * cols_;
  }

  double* data() { return values_.data(); }
  const double* data() const { return values_.data(); }

  // Sets every element to `value`.
  void Fill(double value);

  // Returns the transpose as a new matrix.
  Matrix Transposed() const;

  // Copies row `i` into a Vector.
  Vector Row(int i) const;

  // Copies column `j` into a Vector.
  Vector Col(int j) const;

  // Overwrites row `i` with `v` (v.size() must equal cols()).
  void SetRow(int i, const Vector& v);

  // Overwrites column `j` with `v` (v.size() must equal rows()).
  void SetCol(int j, const Vector& v);

  // Returns the sub-matrix of rows [row, row+num_rows) and columns
  // [col, col+num_cols).
  Matrix Block(int row, int col, int num_rows, int num_cols) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> values_;
};

}  // namespace srda

#endif  // SRDA_MATRIX_MATRIX_H_
