#include "matrix/blocking.h"

#include <cstdlib>

namespace srda {
namespace {

// One env-overridable tile dimension; falls back to `fallback` unless the
// variable parses to a positive integer.
int ResolveDimension(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0 || parsed > 1 << 20) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

BlockConfig ResolveFromEnvironment() {
  const BlockConfig defaults;
  BlockConfig config;
  config.kc = ResolveDimension("SRDA_BLOCK_KC", defaults.kc);
  config.mc = ResolveDimension("SRDA_BLOCK_MC", defaults.mc);
  config.nc = ResolveDimension("SRDA_BLOCK_NC", defaults.nc);
  config.nb = ResolveDimension("SRDA_BLOCK_NB", defaults.nb);
  return config;
}

BlockConfig& ActiveConfig() {
  static BlockConfig config = ResolveFromEnvironment();
  return config;
}

}  // namespace

const BlockConfig& GetBlockConfig() { return ActiveConfig(); }

void SetBlockConfig(const BlockConfig& config) {
  const BlockConfig defaults;
  BlockConfig resolved = config;
  if (resolved.kc <= 0) resolved.kc = defaults.kc;
  if (resolved.mc <= 0) resolved.mc = defaults.mc;
  if (resolved.nc <= 0) resolved.nc = defaults.nc;
  if (resolved.nb <= 0) resolved.nb = defaults.nb;
  ActiveConfig() = resolved;
}

}  // namespace srda
