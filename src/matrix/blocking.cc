#include "matrix/blocking.h"

#include <algorithm>
#include <cstdlib>
#include <new>

namespace srda {
namespace {

// One env-overridable tile dimension; falls back to `fallback` unless the
// variable parses to a positive integer.
int ResolveDimension(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0 || parsed > 1 << 20) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

BlockConfig ResolveFromEnvironment() {
  const BlockConfig defaults;
  BlockConfig config;
  config.kc = ResolveDimension("SRDA_BLOCK_KC", defaults.kc);
  config.mc = ResolveDimension("SRDA_BLOCK_MC", defaults.mc);
  config.nc = ResolveDimension("SRDA_BLOCK_NC", defaults.nc);
  config.nb = ResolveDimension("SRDA_BLOCK_NB", defaults.nb);
  return config;
}

BlockConfig& ActiveConfig() {
  static BlockConfig config = ResolveFromEnvironment();
  return config;
}

}  // namespace

const BlockConfig& GetBlockConfig() { return ActiveConfig(); }

PanelScratch::~PanelScratch() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{64});
  }
}

double* PanelScratch::Acquire(size_t count) {
  if (count > capacity_) {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{64});
    }
    data_ = static_cast<double*>(
        ::operator new(count * sizeof(double), std::align_val_t{64}));
    capacity_ = count;
    // First touch: commit the pages from the calling thread.
    std::fill(data_, data_ + count, 0.0);
  }
  return data_;
}

void SetBlockConfig(const BlockConfig& config) {
  const BlockConfig defaults;
  BlockConfig resolved = config;
  if (resolved.kc <= 0) resolved.kc = defaults.kc;
  if (resolved.mc <= 0) resolved.mc = defaults.mc;
  if (resolved.nc <= 0) resolved.nc = defaults.nc;
  if (resolved.nb <= 0) resolved.nb = defaults.nb;
  ActiveConfig() = resolved;
}

}  // namespace srda
