// Cache-blocking configuration for the dense kernels.
//
// All tiled kernels — the level-3 products in matrix/blas.cc and the
// blocked Cholesky factorization / triangular solves in linalg/cholesky.cc —
// read their tile shapes from one process-wide BlockConfig. The defaults
// target a typical 32 KB L1 / 512 KB L2 cache; benches sweep them through
// the SRDA_BLOCK_* environment variables, tests shrink them with
// SetBlockConfig to exercise tile boundaries on small matrices.
//
// Tile shapes never affect results: every blocked kernel accumulates each
// output element in a fixed k-ascending order regardless of the tiling (see
// DESIGN.md, "Blocking layer"), so the knobs are pure performance tuning.

#ifndef SRDA_MATRIX_BLOCKING_H_
#define SRDA_MATRIX_BLOCKING_H_

#include <cstddef>

namespace srda {

struct BlockConfig {
  // K-panel depth of the level-3 products: the reduction dimension is cut
  // into panels of kc iterations that stream through cache while an output
  // tile stays resident.  (SRDA_BLOCK_KC)
  int kc = 128;
  // Output row-tile height: rows of C updated against one K-panel before
  // the panel is released.  (SRDA_BLOCK_MC)
  int mc = 32;
  // Output column-stripe width, sized so a stripe of the operand panel and
  // the C rows it updates fit in L1 together.  (SRDA_BLOCK_NC)
  int nc = 256;
  // Panel width of the blocked right-looking Cholesky factorization and of
  // the blocked triangular solves.  (SRDA_BLOCK_NB)
  int nb = 64;
};

// The active configuration. The first call resolves SRDA_BLOCK_KC /
// SRDA_BLOCK_MC / SRDA_BLOCK_NC / SRDA_BLOCK_NB from the environment;
// unset, non-numeric, or non-positive values keep the defaults above.
const BlockConfig& GetBlockConfig();

// Replaces the active configuration; fields <= 0 reset to their defaults.
// Not safe to call concurrently with running kernels — intended for tests
// and benchmark sweeps, mirroring SetGlobalThreadCount.
void SetBlockConfig(const BlockConfig& config);

// Scratch buffer for packed K-panels and kernel workspaces, owned by the
// thread that consumes it. Acquire() allocates 64-byte-aligned storage
// (full-cacheline vector loads) and zero-fills it on growth — the
// zero-fill is the first touch, so under the first-touch NUMA policy the
// pages land on the node of the worker that will stream the panel. With
// chunk→thread pinning (SRDA_PIN_THREADS=1) the same worker re-touches
// the same panels on every pass, keeping them node-local. Declare one
// inside each ParallelFor chunk lambda.
class PanelScratch {
 public:
  PanelScratch() = default;
  ~PanelScratch();
  PanelScratch(const PanelScratch&) = delete;
  PanelScratch& operator=(const PanelScratch&) = delete;

  // A buffer of at least `count` doubles; contents unspecified after a
  // growth reallocation, zeroed on first use.
  double* Acquire(size_t count);

 private:
  double* data_ = nullptr;
  size_t capacity_ = 0;
};

}  // namespace srda

#endif  // SRDA_MATRIX_BLOCKING_H_
