// Explicit SIMD micro-kernels behind one-time runtime CPU dispatch.
//
// The blocked dense kernels (GEMM family, SYRK/TRSM of the blocked
// Cholesky, and the downdate engine's rotation sweep) funnel their
// innermost loops through the function-pointer table returned by
// Dispatch(). The table is resolved once, on first use, from CPUID
// (x86-64) or the architecture baseline (aarch64 NEON), and can be forced
// with SRDA_CPU_LEVEL=scalar|avx2|avx512|neon — unknown or unsupported
// values silently fall back to the detected best, matching the SRDA_BLOCK_*
// idiom.
//
// Determinism contract (see DESIGN.md §4j): every vector kernel assigns
// SIMD lanes to *independent output elements* and walks k strictly
// ascending, so each element keeps the exact mul-then-add chain of the
// scalar kernel — no horizontal reductions, no FMA contraction (the SIMD
// translation units are built with -ffp-contract=off and use separate
// mul/add intrinsics). Results are therefore bitwise identical across
// every dispatch level, tile shape, and thread count.

#ifndef SRDA_MATRIX_SIMD_SIMD_H_
#define SRDA_MATRIX_SIMD_SIMD_H_

#include <vector>

namespace srda {
namespace simd {

enum class CpuLevel {
  kScalar = 0,  // generic C++, compiler autovectorization only
  kAvx2 = 1,    // 256-bit ymm kernels (x86-64)
  kAvx512 = 2,  // 512-bit zmm kernels (x86-64)
  kNeon = 3,    // 128-bit kernels (aarch64 baseline)
};

// Lane count of the downdate sweep's interleaved workspace tiles. The
// layout constant lives here so the widest kernel (one zmm row per
// rotation step) and the workspace builder in linalg/cholesky_update.cc
// agree by construction.
inline constexpr int kDowndateLanes = 8;

// Widest row group any trsm_rows implementation processes in lockstep;
// callers must size the scratch argument as kTrsmMaxLanes * (p1 - p0).
inline constexpr int kTrsmMaxLanes = 8;

// The micro-kernel table. All pointers are non-null at every level; the
// scalar entries are the autovec reference implementations.
struct KernelTable {
  // C[i0:i1, j0:j1] += P * B[k0:k0+kk, j0:j1] in axpy (outer-product)
  // form. Panel row r = i - i0 starts at panel + r * panel_stride and
  // holds the kk values for this K-panel; B row k0+k starts at
  // b + (k0 + k) * b_stride; C row i at c + i * c_stride. One
  // accumulator per C element, seeded from C, k ascending.
  void (*gemm_tile)(const double* panel, int panel_stride, int kk,
                    const double* b, int b_stride, int k0, double* c,
                    int c_stride, int i0, int i1, int j0, int j1);

  // C[i0:i1, j0:j1] += A[i0:i1, k0:k0+kk] * B[j0:j1, k0:k0+kk]^T in dot
  // form (both operands index k along rows). Same accumulator contract.
  void (*dot_tile)(const double* a, int a_stride, const double* b,
                   int b_stride, int k0, int kk, double* c, int c_stride,
                   int i0, int i1, int j0, int j1);

  // Blocked-Cholesky SYRK inner loop: for j in [j0, jend),
  // l[i][j] -= dot(l[i][p0:p0+kk], l[j][p0:p0+kk]), each dot a fresh
  // ascending-k chain. Requires j0 >= p0 + kk (the trailing-update call
  // site guarantees it): writes must not alias the panel columns, or the
  // j-order — which differs between implementations — would show.
  void (*syrk_row)(double* l, int stride, int i, int p0, int kk, int j0,
                   int jend);

  // Blocked-Cholesky TRSM: finishes panel columns [p0, p1) for the
  // `rows` factor rows starting at row `i`. inv_diag[j - p0] is the
  // reciprocal of the panel diagonal. `scratch` must hold at least
  // kTrsmMaxLanes * (p1 - p0) doubles; its layout is private to the
  // implementation.
  void (*trsm_rows)(double* l, int stride, int p0, int p1,
                    const double* inv_diag, int i, int rows,
                    double* scratch);

  // Downdate sweep full-tile kernel: applies `width` panel columns of
  // scaled-rotation coefficients (p, g; column j's k entries at
  // p + j * k) to kDowndateLanes factor-row segments lrows[0..7] and the
  // tile's lane-interleaved workspace wtile (k * kDowndateLanes doubles).
  void (*downdate_tile)(double* const* lrows, double* wtile,
                        const double* p, const double* g, int width, int k);
};

// The table for the active dispatch level. First call resolves the level
// (CPU detection + SRDA_CPU_LEVEL override) and records it in the obs
// runtime info and the simd.dispatch_level gauge.
const KernelTable& Dispatch();

// Level the table currently points at (resolves dispatch if needed).
CpuLevel ActiveLevel();

// True when `level` is both compiled into this binary and usable on this
// CPU. kScalar is always supported.
bool LevelSupported(CpuLevel level);

// All supported levels, ascending (always starts with kScalar).
std::vector<CpuLevel> SupportedLevels();

// Forces the table to `level`. Returns false (table unchanged) when the
// level is unsupported. Test/bench hook — not thread-safe against
// concurrent kernel calls.
bool SetDispatchLevel(CpuLevel level);

// "scalar" / "avx2" / "avx512" / "neon".
const char* CpuLevelName(CpuLevel level);

}  // namespace simd
}  // namespace srda

#endif  // SRDA_MATRIX_SIMD_SIMD_H_
