// 256-bit (ymm) kernel bodies, included by kernels_avx2.cc and — for the
// kernels where 512-bit registers buy nothing extra — kernels_avx512.cc.
// Each including TU wraps these in its own anonymous namespace and is
// compiled with AVX2-capable flags plus -ffp-contract=off.
//
// Lane discipline (the whole determinism argument in one paragraph): a
// ymm register always holds FOUR DIFFERENT OUTPUT ELEMENTS, never four
// partial terms of one element. Every k step broadcasts one scalar,
// multiplies with _mm256_mul_pd and accumulates with _mm256_add_pd —
// separate instructions, no FMA — so lane q executes exactly the scalar
// sequence `acc += a[k] * b[k]` in ascending k. Horizontal operations
// never appear. Remainder rows/columns delegate to the generic:: kernels
// on the leftover rectangle, which compute the same per-element chains.
//
// IEEE-754 multiplication is commutative bit-for-bit, so kernels may swap
// mul operand order relative to the scalar text when a broadcast is
// cheaper on the other operand.

// Transposes a 4x4 block held as four row registers into four column
// registers: out0 = {r0[0], r1[0], r2[0], r3[0]}, etc. Pure data
// movement — no arithmetic, no effect on chains.
inline void Transpose4x4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                         __m256d* out0, __m256d* out1, __m256d* out2,
                         __m256d* out3) {
  const __m256d lo01 = _mm256_unpacklo_pd(r0, r1);
  const __m256d hi01 = _mm256_unpackhi_pd(r0, r1);
  const __m256d lo23 = _mm256_unpacklo_pd(r2, r3);
  const __m256d hi23 = _mm256_unpackhi_pd(r2, r3);
  *out0 = _mm256_permute2f128_pd(lo01, lo23, 0x20);
  *out1 = _mm256_permute2f128_pd(hi01, hi23, 0x20);
  *out2 = _mm256_permute2f128_pd(lo01, lo23, 0x31);
  *out3 = _mm256_permute2f128_pd(hi01, hi23, 0x31);
}

// gemm_tile, 4 rows x 8 columns per iteration (8 ymm accumulators = 32
// C elements in flight).
inline void GemmTileYmm(const double* panel, int panel_stride, int kk,
                        const double* b, int b_stride, int k0, double* c,
                        int c_stride, int i0, int i1, int j0, int j1) {
  const double* bbase = b + static_cast<size_t>(k0) * b_stride;
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* p0 = panel + static_cast<size_t>(i - i0) * panel_stride;
    const double* p1 = p0 + panel_stride;
    const double* p2 = p1 + panel_stride;
    const double* p3 = p2 + panel_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    double* c2 = c1 + c_stride;
    double* c3 = c2 + c_stride;
    int j = j0;
    for (; j + 8 <= j1; j += 8) {
      __m256d a00 = _mm256_loadu_pd(c0 + j);
      __m256d a01 = _mm256_loadu_pd(c0 + j + 4);
      __m256d a10 = _mm256_loadu_pd(c1 + j);
      __m256d a11 = _mm256_loadu_pd(c1 + j + 4);
      __m256d a20 = _mm256_loadu_pd(c2 + j);
      __m256d a21 = _mm256_loadu_pd(c2 + j + 4);
      __m256d a30 = _mm256_loadu_pd(c3 + j);
      __m256d a31 = _mm256_loadu_pd(c3 + j + 4);
      const double* brow = bbase + j;
      for (int k = 0; k < kk; ++k, brow += b_stride) {
        const __m256d b0 = _mm256_loadu_pd(brow);
        const __m256d b1 = _mm256_loadu_pd(brow + 4);
        __m256d v = _mm256_set1_pd(p0[k]);
        a00 = _mm256_add_pd(a00, _mm256_mul_pd(v, b0));
        a01 = _mm256_add_pd(a01, _mm256_mul_pd(v, b1));
        v = _mm256_set1_pd(p1[k]);
        a10 = _mm256_add_pd(a10, _mm256_mul_pd(v, b0));
        a11 = _mm256_add_pd(a11, _mm256_mul_pd(v, b1));
        v = _mm256_set1_pd(p2[k]);
        a20 = _mm256_add_pd(a20, _mm256_mul_pd(v, b0));
        a21 = _mm256_add_pd(a21, _mm256_mul_pd(v, b1));
        v = _mm256_set1_pd(p3[k]);
        a30 = _mm256_add_pd(a30, _mm256_mul_pd(v, b0));
        a31 = _mm256_add_pd(a31, _mm256_mul_pd(v, b1));
      }
      _mm256_storeu_pd(c0 + j, a00);
      _mm256_storeu_pd(c0 + j + 4, a01);
      _mm256_storeu_pd(c1 + j, a10);
      _mm256_storeu_pd(c1 + j + 4, a11);
      _mm256_storeu_pd(c2 + j, a20);
      _mm256_storeu_pd(c2 + j + 4, a21);
      _mm256_storeu_pd(c3 + j, a30);
      _mm256_storeu_pd(c3 + j + 4, a31);
    }
    for (; j + 4 <= j1; j += 4) {
      __m256d a0 = _mm256_loadu_pd(c0 + j);
      __m256d a1 = _mm256_loadu_pd(c1 + j);
      __m256d a2 = _mm256_loadu_pd(c2 + j);
      __m256d a3 = _mm256_loadu_pd(c3 + j);
      const double* brow = bbase + j;
      for (int k = 0; k < kk; ++k, brow += b_stride) {
        const __m256d bv = _mm256_loadu_pd(brow);
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_set1_pd(p0[k]), bv));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_set1_pd(p1[k]), bv));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_set1_pd(p2[k]), bv));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_set1_pd(p3[k]), bv));
      }
      _mm256_storeu_pd(c0 + j, a0);
      _mm256_storeu_pd(c1 + j, a1);
      _mm256_storeu_pd(c2 + j, a2);
      _mm256_storeu_pd(c3 + j, a3);
    }
    if (j < j1) {
      srda::simd::generic::GemmTile(p0, panel_stride, kk, b, b_stride, k0, c,
                                    c_stride, i, i + 4, j, j1);
    }
  }
  if (i < i1) {
    srda::simd::generic::GemmTile(
        panel + static_cast<size_t>(i - i0) * panel_stride, panel_stride, kk,
        b, b_stride, k0, c, c_stride, i, i1, j0, j1);
  }
}

// dot_tile, 2 rows x 4 columns: B's four row segments are transposed 4x4
// so each k step is a broadcast-mul-add across four output columns. The
// k remainder gathers the column with set_pd — still one mul+add per
// element per k.
inline void DotTileYmm(const double* a, int a_stride, const double* b,
                       int b_stride, int k0, int kk, double* c, int c_stride,
                       int i0, int i1, int j0, int j1) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * a_stride + k0;
    const double* a1 = a0 + a_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    int j = j0;
    for (; j + 4 <= j1; j += 4) {
      const double* b0 = b + static_cast<size_t>(j) * b_stride + k0;
      const double* b1 = b0 + b_stride;
      const double* b2 = b1 + b_stride;
      const double* b3 = b2 + b_stride;
      __m256d s0 = _mm256_loadu_pd(c0 + j);
      __m256d s1 = _mm256_loadu_pd(c1 + j);
      int k = 0;
      for (; k + 4 <= kk; k += 4) {
        __m256d t0, t1, t2, t3;
        Transpose4x4(_mm256_loadu_pd(b0 + k), _mm256_loadu_pd(b1 + k),
                     _mm256_loadu_pd(b2 + k), _mm256_loadu_pd(b3 + k), &t0,
                     &t1, &t2, &t3);
        s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k]), t0));
        s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k + 1]), t1));
        s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k + 2]), t2));
        s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k + 3]), t3));
        s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k]), t0));
        s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k + 1]), t1));
        s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k + 2]), t2));
        s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k + 3]), t3));
      }
      for (; k < kk; ++k) {
        const __m256d t = _mm256_set_pd(b3[k], b2[k], b1[k], b0[k]);
        s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k]), t));
        s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k]), t));
      }
      _mm256_storeu_pd(c0 + j, s0);
      _mm256_storeu_pd(c1 + j, s1);
    }
    if (j < j1) {
      srda::simd::generic::DotTile(a, a_stride, b, b_stride, k0, kk, c,
                                   c_stride, i, i + 2, j, j1);
    }
  }
  if (i < i1) {
    srda::simd::generic::DotTile(a, a_stride, b, b_stride, k0, kk, c,
                                 c_stride, i, i1, j0, j1);
  }
}

// syrk_row: four output columns per iteration, same transpose trick as
// DotTileYmm; each column's dot is a fresh ascending-k chain folded into
// one subtraction, exactly the scalar shape.
inline void SyrkRowYmm(double* l, int stride, int i, int p0, int kk, int j0,
                       int jend) {
  const double* rowi = l + static_cast<size_t>(i) * stride + p0;
  double* crow = l + static_cast<size_t>(i) * stride;
  int j = j0;
  for (; j + 4 <= jend; j += 4) {
    const double* r0 = l + static_cast<size_t>(j) * stride + p0;
    const double* r1 = r0 + stride;
    const double* r2 = r1 + stride;
    const double* r3 = r2 + stride;
    __m256d s = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= kk; k += 4) {
      __m256d t0, t1, t2, t3;
      Transpose4x4(_mm256_loadu_pd(r0 + k), _mm256_loadu_pd(r1 + k),
                   _mm256_loadu_pd(r2 + k), _mm256_loadu_pd(r3 + k), &t0, &t1,
                   &t2, &t3);
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(rowi[k]), t0));
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(rowi[k + 1]), t1));
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(rowi[k + 2]), t2));
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(rowi[k + 3]), t3));
    }
    for (; k < kk; ++k) {
      const __m256d t = _mm256_set_pd(r3[k], r2[k], r1[k], r0[k]);
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_set1_pd(rowi[k]), t));
    }
    _mm256_storeu_pd(crow + j, _mm256_sub_pd(_mm256_loadu_pd(crow + j), s));
  }
  if (j < jend) {
    srda::simd::generic::SyrkRow(l, stride, i, p0, kk, j, jend);
  }
}

// trsm_rows: four factor rows advance in lockstep through the panel
// columns. As column j completes, its four row values are parked
// lane-interleaved in `scratch` (scratch[4 * jj + lane]) so later
// columns' subtractions read them as one vector — the same final values
// the scalar code re-reads from the factor.
inline void TrsmRowsYmm(double* l, int stride, int p0, int p1,
                        const double* inv_diag, int i, int rows,
                        double* scratch) {
  int r = 0;
  for (; r + 4 <= rows; r += 4) {
    double* l0 = l + static_cast<size_t>(i + r) * stride;
    double* l1 = l0 + stride;
    double* l2 = l1 + stride;
    double* l3 = l2 + stride;
    for (int j = p0; j < p1; ++j) {
      const int jj = j - p0;
      const double* lrow_j = l + static_cast<size_t>(j) * stride + p0;
      __m256d acc = _mm256_set_pd(l3[j], l2[j], l1[j], l0[j]);
      for (int k = 0; k < jj; ++k) {
        const __m256d prev = _mm256_loadu_pd(scratch + 4 * k);
        acc = _mm256_sub_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(lrow_j[k]), prev));
      }
      acc = _mm256_mul_pd(acc, _mm256_set1_pd(inv_diag[jj]));
      _mm256_storeu_pd(scratch + 4 * jj, acc);
      double out[4];
      _mm256_storeu_pd(out, acc);
      l0[j] = out[0];
      l1[j] = out[1];
      l2[j] = out[2];
      l3[j] = out[3];
    }
  }
  if (r < rows) {
    srda::simd::generic::TrsmRows(l, stride, p0, p1, inv_diag, i + r,
                                  rows - r, scratch);
  }
}

// downdate_tile: the 8 workspace lanes are two ymm registers; each
// rotation step is the two-op recurrence w ← w − p·l, l ← l + γ·w with
// explicit mul/sub/add — identical to the scalar lane arithmetic.
inline void DowndateTileYmm(double* const* lrows, double* wtile,
                            const double* p, const double* g, int width,
                            int k) {
  static_assert(srda::simd::kDowndateLanes == 8,
                "ymm downdate kernel assumes 8 lanes");
  for (int j = 0; j < width; ++j) {
    const double* pj = p + static_cast<size_t>(j) * k;
    const double* gj = g + static_cast<size_t>(j) * k;
    __m256d lv0 =
        _mm256_set_pd(lrows[3][j], lrows[2][j], lrows[1][j], lrows[0][j]);
    __m256d lv1 =
        _mm256_set_pd(lrows[7][j], lrows[6][j], lrows[5][j], lrows[4][j]);
    for (int r = 0; r < k; ++r) {
      const __m256d pr = _mm256_set1_pd(pj[r]);
      const __m256d gr = _mm256_set1_pd(gj[r]);
      double* wr = wtile + r * 8;
      __m256d w0 = _mm256_loadu_pd(wr);
      __m256d w1 = _mm256_loadu_pd(wr + 4);
      w0 = _mm256_sub_pd(w0, _mm256_mul_pd(pr, lv0));
      w1 = _mm256_sub_pd(w1, _mm256_mul_pd(pr, lv1));
      lv0 = _mm256_add_pd(lv0, _mm256_mul_pd(gr, w0));
      lv1 = _mm256_add_pd(lv1, _mm256_mul_pd(gr, w1));
      _mm256_storeu_pd(wr, w0);
      _mm256_storeu_pd(wr + 4, w1);
    }
    double out[8];
    _mm256_storeu_pd(out, lv0);
    _mm256_storeu_pd(out + 4, lv1);
    for (int q = 0; q < 8; ++q) lrows[q][j] = out[q];
  }
}
