// AVX-512 kernel table. Compiled with -mavx512f -ffp-contract=off; only
// entered when __builtin_cpu_supports("avx512f") said yes. The zmm
// kernels widen the axpy-form GEMM tile (4 rows x 16 columns), run the
// 8-lane downdate step in a single register, and push TRSM to 8 rows in
// lockstep; the dot-form kernels reuse the ymm bodies, whose 4x4
// transpose shape does not benefit from wider registers. Remainder
// regions delegate to the ymm or generic kernels — same per-element
// chains, so the choice of width never shows up in the bits.

#include "matrix/simd/tables.h"

#ifdef SRDA_SIMD_HAVE_AVX512

#include <immintrin.h>

#include <cstddef>

#include "matrix/simd/kernel_impl.h"

namespace srda {
namespace simd {
namespace internal {
namespace {

#include "matrix/simd/kernels_x86_ymm.inl"

// gemm_tile, 4 rows x 16 columns (8 zmm accumulators = 64 C elements).
void GemmTileZmm(const double* panel, int panel_stride, int kk,
                 const double* b, int b_stride, int k0, double* c,
                 int c_stride, int i0, int i1, int j0, int j1) {
  const double* bbase = b + static_cast<size_t>(k0) * b_stride;
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* p0 = panel + static_cast<size_t>(i - i0) * panel_stride;
    const double* p1 = p0 + panel_stride;
    const double* p2 = p1 + panel_stride;
    const double* p3 = p2 + panel_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    double* c2 = c1 + c_stride;
    double* c3 = c2 + c_stride;
    int j = j0;
    for (; j + 16 <= j1; j += 16) {
      __m512d a00 = _mm512_loadu_pd(c0 + j);
      __m512d a01 = _mm512_loadu_pd(c0 + j + 8);
      __m512d a10 = _mm512_loadu_pd(c1 + j);
      __m512d a11 = _mm512_loadu_pd(c1 + j + 8);
      __m512d a20 = _mm512_loadu_pd(c2 + j);
      __m512d a21 = _mm512_loadu_pd(c2 + j + 8);
      __m512d a30 = _mm512_loadu_pd(c3 + j);
      __m512d a31 = _mm512_loadu_pd(c3 + j + 8);
      const double* brow = bbase + j;
      for (int k = 0; k < kk; ++k, brow += b_stride) {
        const __m512d b0 = _mm512_loadu_pd(brow);
        const __m512d b1 = _mm512_loadu_pd(brow + 8);
        __m512d v = _mm512_set1_pd(p0[k]);
        a00 = _mm512_add_pd(a00, _mm512_mul_pd(v, b0));
        a01 = _mm512_add_pd(a01, _mm512_mul_pd(v, b1));
        v = _mm512_set1_pd(p1[k]);
        a10 = _mm512_add_pd(a10, _mm512_mul_pd(v, b0));
        a11 = _mm512_add_pd(a11, _mm512_mul_pd(v, b1));
        v = _mm512_set1_pd(p2[k]);
        a20 = _mm512_add_pd(a20, _mm512_mul_pd(v, b0));
        a21 = _mm512_add_pd(a21, _mm512_mul_pd(v, b1));
        v = _mm512_set1_pd(p3[k]);
        a30 = _mm512_add_pd(a30, _mm512_mul_pd(v, b0));
        a31 = _mm512_add_pd(a31, _mm512_mul_pd(v, b1));
      }
      _mm512_storeu_pd(c0 + j, a00);
      _mm512_storeu_pd(c0 + j + 8, a01);
      _mm512_storeu_pd(c1 + j, a10);
      _mm512_storeu_pd(c1 + j + 8, a11);
      _mm512_storeu_pd(c2 + j, a20);
      _mm512_storeu_pd(c2 + j + 8, a21);
      _mm512_storeu_pd(c3 + j, a30);
      _mm512_storeu_pd(c3 + j + 8, a31);
    }
    if (j < j1) {
      GemmTileYmm(p0, panel_stride, kk, b, b_stride, k0, c, c_stride, i,
                  i + 4, j, j1);
    }
  }
  if (i < i1) {
    GemmTileYmm(panel + static_cast<size_t>(i - i0) * panel_stride,
                panel_stride, kk, b, b_stride, k0, c, c_stride, i, i1, j0,
                j1);
  }
}

// trsm_rows, 8 factor rows in lockstep; scratch[8 * jj + lane] parks the
// finished column values (uses the full kTrsmMaxLanes scratch width).
void TrsmRowsZmm(double* l, int stride, int p0, int p1,
                 const double* inv_diag, int i, int rows, double* scratch) {
  int r = 0;
  for (; r + 8 <= rows; r += 8) {
    double* lr[8];
    lr[0] = l + static_cast<size_t>(i + r) * stride;
    for (int q = 1; q < 8; ++q) lr[q] = lr[q - 1] + stride;
    for (int j = p0; j < p1; ++j) {
      const int jj = j - p0;
      const double* lrow_j = l + static_cast<size_t>(j) * stride + p0;
      __m512d acc =
          _mm512_set_pd(lr[7][j], lr[6][j], lr[5][j], lr[4][j], lr[3][j],
                        lr[2][j], lr[1][j], lr[0][j]);
      for (int k = 0; k < jj; ++k) {
        const __m512d prev = _mm512_loadu_pd(scratch + 8 * k);
        acc = _mm512_sub_pd(
            acc, _mm512_mul_pd(_mm512_set1_pd(lrow_j[k]), prev));
      }
      acc = _mm512_mul_pd(acc, _mm512_set1_pd(inv_diag[jj]));
      _mm512_storeu_pd(scratch + 8 * jj, acc);
      double out[8];
      _mm512_storeu_pd(out, acc);
      for (int q = 0; q < 8; ++q) lr[q][j] = out[q];
    }
  }
  if (r < rows) {
    TrsmRowsYmm(l, stride, p0, p1, inv_diag, i + r, rows - r, scratch);
  }
}

// downdate_tile: all 8 lanes in one zmm register per rotation step.
void DowndateTileZmm(double* const* lrows, double* wtile, const double* p,
                     const double* g, int width, int k) {
  static_assert(kDowndateLanes == 8, "zmm downdate kernel assumes 8 lanes");
  for (int j = 0; j < width; ++j) {
    const double* pj = p + static_cast<size_t>(j) * k;
    const double* gj = g + static_cast<size_t>(j) * k;
    __m512d lv = _mm512_set_pd(lrows[7][j], lrows[6][j], lrows[5][j],
                               lrows[4][j], lrows[3][j], lrows[2][j],
                               lrows[1][j], lrows[0][j]);
    for (int r = 0; r < k; ++r) {
      const __m512d pr = _mm512_set1_pd(pj[r]);
      const __m512d gr = _mm512_set1_pd(gj[r]);
      double* wr = wtile + r * 8;
      __m512d w = _mm512_loadu_pd(wr);
      w = _mm512_sub_pd(w, _mm512_mul_pd(pr, lv));
      lv = _mm512_add_pd(lv, _mm512_mul_pd(gr, w));
      _mm512_storeu_pd(wr, w);
    }
    double out[8];
    _mm512_storeu_pd(out, lv);
    for (int q = 0; q < 8; ++q) lrows[q][j] = out[q];
  }
}

}  // namespace

const KernelTable& Avx512Table() {
  static const KernelTable table = {
      &GemmTileZmm, &DotTileYmm, &SyrkRowYmm, &TrsmRowsZmm, &DowndateTileZmm,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace srda

#endif  // SRDA_SIMD_HAVE_AVX512
