// Generic (autovectorized) micro-kernel implementations — the portable
// source of truth every vector translation unit is measured against.
//
// The arithmetic here is the blocked-kernel code that previously lived
// inline in matrix/blas.cc, linalg/cholesky.cc, and
// linalg/cholesky_update.cc, lifted to raw-pointer signatures. Each
// output element owns exactly one accumulator chain that advances k
// strictly ascending; unrolling (4x4 register tile, 2x2 dot tile, the
// 8-lane downdate tile) only multiplies the number of *concurrent*
// elements. The vector kernels in kernels_avx2.cc / kernels_avx512.cc /
// kernels_neon.cc reproduce these chains lane-for-lane, which is what
// makes every dispatch level bitwise identical.

#ifndef SRDA_MATRIX_SIMD_KERNEL_IMPL_H_
#define SRDA_MATRIX_SIMD_KERNEL_IMPL_H_

#include <cstddef>

#include "matrix/simd/simd.h"

namespace srda {
namespace simd {
namespace generic {

// C[i0:i1, j0:j1] += P * B, 4x4 register tile (see KernelTable::gemm_tile
// for the layout contract). Seeding the sixteen accumulators from C and
// folding the whole K-panel before storing back is the same addition
// chain per element as updating memory each step.
inline void GemmTile(const double* panel, int panel_stride, int kk,
                     const double* b, int b_stride, int k0, double* c,
                     int c_stride, int i0, int i1, int j0, int j1) {
  const double* bbase = b + static_cast<size_t>(k0) * b_stride;
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* p0 = panel + static_cast<size_t>(i - i0) * panel_stride;
    const double* p1 = p0 + panel_stride;
    const double* p2 = p1 + panel_stride;
    const double* p3 = p2 + panel_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    double* c2 = c1 + c_stride;
    double* c3 = c2 + c_stride;
    int j = j0;
    for (; j + 4 <= j1; j += 4) {
      double a00 = c0[j], a01 = c0[j + 1], a02 = c0[j + 2], a03 = c0[j + 3];
      double a10 = c1[j], a11 = c1[j + 1], a12 = c1[j + 2], a13 = c1[j + 3];
      double a20 = c2[j], a21 = c2[j + 1], a22 = c2[j + 2], a23 = c2[j + 3];
      double a30 = c3[j], a31 = c3[j + 1], a32 = c3[j + 2], a33 = c3[j + 3];
      const double* brow = bbase + j;
      for (int k = 0; k < kk; ++k, brow += b_stride) {
        const double b0 = brow[0];
        const double b1 = brow[1];
        const double b2 = brow[2];
        const double b3 = brow[3];
        const double v0 = p0[k];
        const double v1 = p1[k];
        const double v2 = p2[k];
        const double v3 = p3[k];
        a00 += v0 * b0; a01 += v0 * b1; a02 += v0 * b2; a03 += v0 * b3;
        a10 += v1 * b0; a11 += v1 * b1; a12 += v1 * b2; a13 += v1 * b3;
        a20 += v2 * b0; a21 += v2 * b1; a22 += v2 * b2; a23 += v2 * b3;
        a30 += v3 * b0; a31 += v3 * b1; a32 += v3 * b2; a33 += v3 * b3;
      }
      c0[j] = a00; c0[j + 1] = a01; c0[j + 2] = a02; c0[j + 3] = a03;
      c1[j] = a10; c1[j + 1] = a11; c1[j + 2] = a12; c1[j + 3] = a13;
      c2[j] = a20; c2[j + 1] = a21; c2[j + 2] = a22; c2[j + 3] = a23;
      c3[j] = a30; c3[j + 1] = a31; c3[j + 2] = a32; c3[j + 3] = a33;
    }
    for (; j < j1; ++j) {
      double a0 = c0[j], a1 = c1[j], a2 = c2[j], a3 = c3[j];
      const double* bk = bbase + j;
      for (int k = 0; k < kk; ++k, bk += b_stride) {
        const double bv = *bk;
        a0 += p0[k] * bv;
        a1 += p1[k] * bv;
        a2 += p2[k] * bv;
        a3 += p3[k] * bv;
      }
      c0[j] = a0;
      c1[j] = a1;
      c2[j] = a2;
      c3[j] = a3;
    }
  }
  for (; i < i1; ++i) {
    const double* prow = panel + static_cast<size_t>(i - i0) * panel_stride;
    double* crow = c + static_cast<size_t>(i) * c_stride;
    int j = j0;
    for (; j + 4 <= j1; j += 4) {
      double a0 = crow[j], a1 = crow[j + 1], a2 = crow[j + 2],
             a3 = crow[j + 3];
      const double* brow = bbase + j;
      for (int k = 0; k < kk; ++k, brow += b_stride) {
        const double v = prow[k];
        a0 += v * brow[0];
        a1 += v * brow[1];
        a2 += v * brow[2];
        a3 += v * brow[3];
      }
      crow[j] = a0;
      crow[j + 1] = a1;
      crow[j + 2] = a2;
      crow[j + 3] = a3;
    }
    for (; j < j1; ++j) {
      double acc = crow[j];
      const double* bk = bbase + j;
      for (int k = 0; k < kk; ++k, bk += b_stride) acc += prow[k] * *bk;
      crow[j] = acc;
    }
  }
}

// C[i0:i1, j0:j1] += A * B^T in dot form, 2x2-unrolled (four independent
// accumulator chains, one per output element).
inline void DotTile(const double* a, int a_stride, const double* b,
                    int b_stride, int k0, int kk, double* c, int c_stride,
                    int i0, int i1, int j0, int j1) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * a_stride + k0;
    const double* a1 = a0 + a_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    int j = j0;
    for (; j + 2 <= j1; j += 2) {
      const double* b0 = b + static_cast<size_t>(j) * b_stride + k0;
      const double* b1 = b0 + b_stride;
      double s00 = c0[j];
      double s01 = c0[j + 1];
      double s10 = c1[j];
      double s11 = c1[j + 1];
      for (int k = 0; k < kk; ++k) {
        const double av0 = a0[k];
        const double av1 = a1[k];
        s00 += av0 * b0[k];
        s01 += av0 * b1[k];
        s10 += av1 * b0[k];
        s11 += av1 * b1[k];
      }
      c0[j] = s00;
      c0[j + 1] = s01;
      c1[j] = s10;
      c1[j + 1] = s11;
    }
    for (; j < j1; ++j) {
      const double* brow = b + static_cast<size_t>(j) * b_stride + k0;
      double s0 = c0[j];
      double s1 = c1[j];
      for (int k = 0; k < kk; ++k) {
        s0 += a0[k] * brow[k];
        s1 += a1[k] * brow[k];
      }
      c0[j] = s0;
      c1[j] = s1;
    }
  }
  for (; i < i1; ++i) {
    const double* arow = a + static_cast<size_t>(i) * a_stride + k0;
    double* crow = c + static_cast<size_t>(i) * c_stride;
    for (int j = j0; j < j1; ++j) {
      const double* brow = b + static_cast<size_t>(j) * b_stride + k0;
      double sum = crow[j];
      for (int k = 0; k < kk; ++k) sum += arow[k] * brow[k];
      crow[j] = sum;
    }
  }
}

// Blocked-Cholesky SYRK inner loop for factor row i: subtract the panel
// outer product from columns [j0, jend). Two-wide unroll, each element a
// fresh ascending-k dot.
inline void SyrkRow(double* l, int stride, int i, int p0, int kk, int j0,
                    int jend) {
  const double* rowi = l + static_cast<size_t>(i) * stride + p0;
  double* crow = l + static_cast<size_t>(i) * stride;
  int j = j0;
  for (; j + 2 <= jend; j += 2) {
    const double* rj0 = l + static_cast<size_t>(j) * stride + p0;
    const double* rj1 = rj0 + stride;
    double s0 = 0.0;
    double s1 = 0.0;
    for (int k = 0; k < kk; ++k) {
      const double v = rowi[k];
      s0 += v * rj0[k];
      s1 += v * rj1[k];
    }
    crow[j] -= s0;
    crow[j + 1] -= s1;
  }
  for (; j < jend; ++j) {
    const double* rowj = l + static_cast<size_t>(j) * stride + p0;
    double sum = 0.0;
    for (int k = 0; k < kk; ++k) sum += rowi[k] * rowj[k];
    crow[j] -= sum;
  }
}

// Blocked-Cholesky TRSM for rows [i, i + rows): finish panel columns
// [p0, p1). Row r only reads rows < p1 (final) and its own earlier
// columns, so rows are independent; `scratch` is unused here.
inline void TrsmRows(double* l, int stride, int p0, int p1,
                     const double* inv_diag, int i, int rows,
                     double* scratch) {
  (void)scratch;
  for (int r = 0; r < rows; ++r) {
    double* lrow_i = l + static_cast<size_t>(i + r) * stride;
    for (int j = p0; j < p1; ++j) {
      const double* lrow_j = l + static_cast<size_t>(j) * stride;
      double sum = lrow_i[j];
      for (int k = p0; k < j; ++k) sum -= lrow_i[k] * lrow_j[k];
      lrow_i[j] = sum * inv_diag[j - p0];
    }
  }
}

// Downdate sweep full-tile kernel: kDowndateLanes rows advance in
// lockstep through the panel's scaled rotations. Per (element, vector)
// step: w ← w − p·l, l ← l + γ·w, column-outer / vector-inner — the
// classical one-column-at-a-time order.
inline void DowndateTile(double* const* lrows, double* wtile,
                         const double* p, const double* g, int width,
                         int k) {
  constexpr int kLanes = kDowndateLanes;
  for (int j = 0; j < width; ++j) {
    const double* pj = p + static_cast<size_t>(j) * k;
    const double* gj = g + static_cast<size_t>(j) * k;
    double lv[kLanes];
    for (int q = 0; q < kLanes; ++q) lv[q] = lrows[q][j];
    for (int r = 0; r < k; ++r) {
      const double pr = pj[r];
      const double gr = gj[r];
      double* wr = wtile + r * kLanes;
      for (int q = 0; q < kLanes; ++q) {
        const double wq = wr[q] - pr * lv[q];
        lv[q] += gr * wq;
        wr[q] = wq;
      }
    }
    for (int q = 0; q < kLanes; ++q) lrows[q][j] = lv[q];
  }
}

}  // namespace generic
}  // namespace simd
}  // namespace srda

#endif  // SRDA_MATRIX_SIMD_KERNEL_IMPL_H_
