#include "matrix/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "matrix/simd/tables.h"
#include "obs/metrics.h"
#include "obs/runtime_info.h"

namespace srda {
namespace simd {
namespace {

// Table lookup for a level this binary compiled in; null otherwise.
const KernelTable* TableFor(CpuLevel level) {
  switch (level) {
    case CpuLevel::kScalar:
      return &internal::ScalarTable();
    case CpuLevel::kAvx2:
#ifdef SRDA_SIMD_HAVE_AVX2
      return &internal::Avx2Table();
#else
      return nullptr;
#endif
    case CpuLevel::kAvx512:
#ifdef SRDA_SIMD_HAVE_AVX512
      return &internal::Avx512Table();
#else
      return nullptr;
#endif
    case CpuLevel::kNeon:
#ifdef SRDA_SIMD_HAVE_NEON
      return &internal::NeonTable();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

// Does the CPU we are running on execute this level's instructions?
// (Compiled-in availability is TableFor's job.) __builtin_cpu_supports
// performs the CPUID + XGETBV dance internally on x86-64; aarch64's NEON
// is architecturally guaranteed, no getauxval probe needed.
bool CpuExecutes(CpuLevel level) {
  switch (level) {
    case CpuLevel::kScalar:
      return true;
    case CpuLevel::kAvx2:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case CpuLevel::kAvx512:
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case CpuLevel::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

// Best level this binary can both encode and execute.
CpuLevel DetectBest() {
  if (LevelSupported(CpuLevel::kAvx512)) return CpuLevel::kAvx512;
  if (LevelSupported(CpuLevel::kAvx2)) return CpuLevel::kAvx2;
  if (LevelSupported(CpuLevel::kNeon)) return CpuLevel::kNeon;
  return CpuLevel::kScalar;
}

// SRDA_CPU_LEVEL override. Unknown names and unsupported levels fall back
// to the detected best silently — same contract as SRDA_BLOCK_* (a bad
// value never aborts a run, it just doesn't apply).
CpuLevel ResolveLevel() {
  CpuLevel level = DetectBest();
  const char* env = std::getenv("SRDA_CPU_LEVEL");
  if (env != nullptr && *env != '\0') {
    const CpuLevel named[] = {CpuLevel::kScalar, CpuLevel::kAvx2,
                              CpuLevel::kAvx512, CpuLevel::kNeon};
    for (const CpuLevel candidate : named) {
      if (std::strcmp(env, CpuLevelName(candidate)) == 0 &&
          LevelSupported(candidate)) {
        level = candidate;
        break;
      }
    }
  }
  return level;
}

// Publishes the active level where the reporting layers can see it.
void PublishLevel(CpuLevel level) {
  obs::SetRuntimeInfo("simd.level", CpuLevelName(level));
  MetricsRegistry::Global()
      .gauge("simd.dispatch_level")
      ->Set(static_cast<double>(level));
}

struct DispatchState {
  std::atomic<const KernelTable*> table{nullptr};
  std::atomic<CpuLevel> level{CpuLevel::kScalar};
};

DispatchState& State() {
  static DispatchState state;
  // Resolution runs exactly once (thread-safe local-static init of the
  // tag); later SetDispatchLevel calls swap the pointers atomically.
  static const bool resolved = [] {
    const CpuLevel level = ResolveLevel();
    PublishLevel(level);
    state.table.store(TableFor(level), std::memory_order_release);
    state.level.store(level, std::memory_order_release);
    return true;
  }();
  (void)resolved;
  return state;
}

}  // namespace

const KernelTable& Dispatch() {
  return *State().table.load(std::memory_order_acquire);
}

CpuLevel ActiveLevel() {
  return State().level.load(std::memory_order_acquire);
}

bool LevelSupported(CpuLevel level) {
  return TableFor(level) != nullptr && CpuExecutes(level);
}

std::vector<CpuLevel> SupportedLevels() {
  std::vector<CpuLevel> levels;
  const CpuLevel all[] = {CpuLevel::kScalar, CpuLevel::kAvx2,
                          CpuLevel::kAvx512, CpuLevel::kNeon};
  for (const CpuLevel level : all) {
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

bool SetDispatchLevel(CpuLevel level) {
  if (!LevelSupported(level)) return false;
  DispatchState& state = State();
  state.table.store(TableFor(level), std::memory_order_release);
  state.level.store(level, std::memory_order_release);
  PublishLevel(level);
  return true;
}

const char* CpuLevelName(CpuLevel level) {
  switch (level) {
    case CpuLevel::kScalar:
      return "scalar";
    case CpuLevel::kAvx2:
      return "avx2";
    case CpuLevel::kAvx512:
      return "avx512";
    case CpuLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

}  // namespace simd
}  // namespace srda
