// Internal: per-level kernel tables, one per translation unit so each can
// be compiled with its own ISA flags. Only dispatch.cc includes this; the
// SRDA_SIMD_HAVE_* macros are target-private compile definitions set by
// src/matrix/CMakeLists.txt when the matching TU is built.

#ifndef SRDA_MATRIX_SIMD_TABLES_H_
#define SRDA_MATRIX_SIMD_TABLES_H_

#include "matrix/simd/simd.h"

namespace srda {
namespace simd {
namespace internal {

const KernelTable& ScalarTable();

#ifdef SRDA_SIMD_HAVE_AVX2
const KernelTable& Avx2Table();
#endif

#ifdef SRDA_SIMD_HAVE_AVX512
const KernelTable& Avx512Table();
#endif

#ifdef SRDA_SIMD_HAVE_NEON
const KernelTable& NeonTable();
#endif

}  // namespace internal
}  // namespace simd
}  // namespace srda

#endif  // SRDA_MATRIX_SIMD_TABLES_H_
