// NEON (aarch64 baseline) kernel table: 128-bit float64x2 lanes. Uses
// separate vmulq/vaddq/vsubq — never vfmaq, which would fuse the
// mul-add and break bitwise identity with the scalar chains — and the TU
// is additionally compiled with -ffp-contract=off so the compiler cannot
// re-fuse them. Remainders delegate to the generic kernels.

#include "matrix/simd/tables.h"

#ifdef SRDA_SIMD_HAVE_NEON

#include <arm_neon.h>

#include <cstddef>

#include "matrix/simd/kernel_impl.h"

namespace srda {
namespace simd {
namespace internal {
namespace {

// gemm_tile, 4 rows x 4 columns (eight q-register accumulators).
void GemmTileNeon(const double* panel, int panel_stride, int kk,
                  const double* b, int b_stride, int k0, double* c,
                  int c_stride, int i0, int i1, int j0, int j1) {
  const double* bbase = b + static_cast<size_t>(k0) * b_stride;
  int i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* p0 = panel + static_cast<size_t>(i - i0) * panel_stride;
    const double* p1 = p0 + panel_stride;
    const double* p2 = p1 + panel_stride;
    const double* p3 = p2 + panel_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    double* c2 = c1 + c_stride;
    double* c3 = c2 + c_stride;
    int j = j0;
    for (; j + 4 <= j1; j += 4) {
      float64x2_t a00 = vld1q_f64(c0 + j);
      float64x2_t a01 = vld1q_f64(c0 + j + 2);
      float64x2_t a10 = vld1q_f64(c1 + j);
      float64x2_t a11 = vld1q_f64(c1 + j + 2);
      float64x2_t a20 = vld1q_f64(c2 + j);
      float64x2_t a21 = vld1q_f64(c2 + j + 2);
      float64x2_t a30 = vld1q_f64(c3 + j);
      float64x2_t a31 = vld1q_f64(c3 + j + 2);
      const double* brow = bbase + j;
      for (int k = 0; k < kk; ++k, brow += b_stride) {
        const float64x2_t b0 = vld1q_f64(brow);
        const float64x2_t b1 = vld1q_f64(brow + 2);
        float64x2_t v = vdupq_n_f64(p0[k]);
        a00 = vaddq_f64(a00, vmulq_f64(v, b0));
        a01 = vaddq_f64(a01, vmulq_f64(v, b1));
        v = vdupq_n_f64(p1[k]);
        a10 = vaddq_f64(a10, vmulq_f64(v, b0));
        a11 = vaddq_f64(a11, vmulq_f64(v, b1));
        v = vdupq_n_f64(p2[k]);
        a20 = vaddq_f64(a20, vmulq_f64(v, b0));
        a21 = vaddq_f64(a21, vmulq_f64(v, b1));
        v = vdupq_n_f64(p3[k]);
        a30 = vaddq_f64(a30, vmulq_f64(v, b0));
        a31 = vaddq_f64(a31, vmulq_f64(v, b1));
      }
      vst1q_f64(c0 + j, a00);
      vst1q_f64(c0 + j + 2, a01);
      vst1q_f64(c1 + j, a10);
      vst1q_f64(c1 + j + 2, a11);
      vst1q_f64(c2 + j, a20);
      vst1q_f64(c2 + j + 2, a21);
      vst1q_f64(c3 + j, a30);
      vst1q_f64(c3 + j + 2, a31);
    }
    if (j < j1) {
      generic::GemmTile(p0, panel_stride, kk, b, b_stride, k0, c, c_stride,
                        i, i + 4, j, j1);
    }
  }
  if (i < i1) {
    generic::GemmTile(panel + static_cast<size_t>(i - i0) * panel_stride,
                      panel_stride, kk, b, b_stride, k0, c, c_stride, i, i1,
                      j0, j1);
  }
}

// dot_tile, 2 rows x 2 columns: B's two row segments are zipped into
// column vectors so each k step broadcasts one A value across two output
// columns.
void DotTileNeon(const double* a, int a_stride, const double* b,
                 int b_stride, int k0, int kk, double* c, int c_stride,
                 int i0, int i1, int j0, int j1) {
  int i = i0;
  for (; i + 2 <= i1; i += 2) {
    const double* a0 = a + static_cast<size_t>(i) * a_stride + k0;
    const double* a1 = a0 + a_stride;
    double* c0 = c + static_cast<size_t>(i) * c_stride;
    double* c1 = c0 + c_stride;
    int j = j0;
    for (; j + 2 <= j1; j += 2) {
      const double* b0 = b + static_cast<size_t>(j) * b_stride + k0;
      const double* b1 = b0 + b_stride;
      float64x2_t s0 = vld1q_f64(c0 + j);
      float64x2_t s1 = vld1q_f64(c1 + j);
      int k = 0;
      for (; k + 2 <= kk; k += 2) {
        const float64x2_t r0 = vld1q_f64(b0 + k);
        const float64x2_t r1 = vld1q_f64(b1 + k);
        const float64x2_t t0 = vzip1q_f64(r0, r1);  // {b0[k], b1[k]}
        const float64x2_t t1 = vzip2q_f64(r0, r1);  // {b0[k+1], b1[k+1]}
        s0 = vaddq_f64(s0, vmulq_f64(vdupq_n_f64(a0[k]), t0));
        s0 = vaddq_f64(s0, vmulq_f64(vdupq_n_f64(a0[k + 1]), t1));
        s1 = vaddq_f64(s1, vmulq_f64(vdupq_n_f64(a1[k]), t0));
        s1 = vaddq_f64(s1, vmulq_f64(vdupq_n_f64(a1[k + 1]), t1));
      }
      for (; k < kk; ++k) {
        float64x2_t t = vdupq_n_f64(b0[k]);
        t = vsetq_lane_f64(b1[k], t, 1);
        s0 = vaddq_f64(s0, vmulq_f64(vdupq_n_f64(a0[k]), t));
        s1 = vaddq_f64(s1, vmulq_f64(vdupq_n_f64(a1[k]), t));
      }
      vst1q_f64(c0 + j, s0);
      vst1q_f64(c1 + j, s1);
    }
    if (j < j1) {
      generic::DotTile(a, a_stride, b, b_stride, k0, kk, c, c_stride, i,
                       i + 2, j, j1);
    }
  }
  if (i < i1) {
    generic::DotTile(a, a_stride, b, b_stride, k0, kk, c, c_stride, i, i1,
                     j0, j1);
  }
}

// syrk_row: two output columns per iteration.
void SyrkRowNeon(double* l, int stride, int i, int p0, int kk, int j0,
                 int jend) {
  const double* rowi = l + static_cast<size_t>(i) * stride + p0;
  double* crow = l + static_cast<size_t>(i) * stride;
  int j = j0;
  for (; j + 2 <= jend; j += 2) {
    const double* r0 = l + static_cast<size_t>(j) * stride + p0;
    const double* r1 = r0 + stride;
    float64x2_t s = vdupq_n_f64(0.0);
    int k = 0;
    for (; k + 2 <= kk; k += 2) {
      const float64x2_t q0 = vld1q_f64(r0 + k);
      const float64x2_t q1 = vld1q_f64(r1 + k);
      const float64x2_t t0 = vzip1q_f64(q0, q1);
      const float64x2_t t1 = vzip2q_f64(q0, q1);
      s = vaddq_f64(s, vmulq_f64(vdupq_n_f64(rowi[k]), t0));
      s = vaddq_f64(s, vmulq_f64(vdupq_n_f64(rowi[k + 1]), t1));
    }
    for (; k < kk; ++k) {
      float64x2_t t = vdupq_n_f64(r0[k]);
      t = vsetq_lane_f64(r1[k], t, 1);
      s = vaddq_f64(s, vmulq_f64(vdupq_n_f64(rowi[k]), t));
    }
    vst1q_f64(crow + j, vsubq_f64(vld1q_f64(crow + j), s));
  }
  if (j < jend) {
    generic::SyrkRow(l, stride, i, p0, kk, j, jend);
  }
}

// trsm_rows: two factor rows in lockstep, scratch[2 * jj + lane].
void TrsmRowsNeon(double* l, int stride, int p0, int p1,
                  const double* inv_diag, int i, int rows, double* scratch) {
  int r = 0;
  for (; r + 2 <= rows; r += 2) {
    double* l0 = l + static_cast<size_t>(i + r) * stride;
    double* l1 = l0 + stride;
    for (int j = p0; j < p1; ++j) {
      const int jj = j - p0;
      const double* lrow_j = l + static_cast<size_t>(j) * stride + p0;
      float64x2_t acc = vdupq_n_f64(l0[j]);
      acc = vsetq_lane_f64(l1[j], acc, 1);
      for (int k = 0; k < jj; ++k) {
        const float64x2_t prev = vld1q_f64(scratch + 2 * k);
        acc = vsubq_f64(acc, vmulq_f64(vdupq_n_f64(lrow_j[k]), prev));
      }
      acc = vmulq_f64(acc, vdupq_n_f64(inv_diag[jj]));
      vst1q_f64(scratch + 2 * jj, acc);
      l0[j] = vgetq_lane_f64(acc, 0);
      l1[j] = vgetq_lane_f64(acc, 1);
    }
  }
  if (r < rows) {
    generic::TrsmRows(l, stride, p0, p1, inv_diag, i + r, rows - r, scratch);
  }
}

// downdate_tile: the 8 lanes are four q registers.
void DowndateTileNeon(double* const* lrows, double* wtile, const double* p,
                      const double* g, int width, int k) {
  static_assert(kDowndateLanes == 8, "neon downdate kernel assumes 8 lanes");
  for (int j = 0; j < width; ++j) {
    const double* pj = p + static_cast<size_t>(j) * k;
    const double* gj = g + static_cast<size_t>(j) * k;
    double seed[8];
    for (int q = 0; q < 8; ++q) seed[q] = lrows[q][j];
    float64x2_t lv0 = vld1q_f64(seed);
    float64x2_t lv1 = vld1q_f64(seed + 2);
    float64x2_t lv2 = vld1q_f64(seed + 4);
    float64x2_t lv3 = vld1q_f64(seed + 6);
    for (int r = 0; r < k; ++r) {
      const float64x2_t pr = vdupq_n_f64(pj[r]);
      const float64x2_t gr = vdupq_n_f64(gj[r]);
      double* wr = wtile + r * 8;
      float64x2_t w0 = vld1q_f64(wr);
      float64x2_t w1 = vld1q_f64(wr + 2);
      float64x2_t w2 = vld1q_f64(wr + 4);
      float64x2_t w3 = vld1q_f64(wr + 6);
      w0 = vsubq_f64(w0, vmulq_f64(pr, lv0));
      w1 = vsubq_f64(w1, vmulq_f64(pr, lv1));
      w2 = vsubq_f64(w2, vmulq_f64(pr, lv2));
      w3 = vsubq_f64(w3, vmulq_f64(pr, lv3));
      lv0 = vaddq_f64(lv0, vmulq_f64(gr, w0));
      lv1 = vaddq_f64(lv1, vmulq_f64(gr, w1));
      lv2 = vaddq_f64(lv2, vmulq_f64(gr, w2));
      lv3 = vaddq_f64(lv3, vmulq_f64(gr, w3));
      vst1q_f64(wr, w0);
      vst1q_f64(wr + 2, w1);
      vst1q_f64(wr + 4, w2);
      vst1q_f64(wr + 6, w3);
    }
    double out[8];
    vst1q_f64(out, lv0);
    vst1q_f64(out + 2, lv1);
    vst1q_f64(out + 4, lv2);
    vst1q_f64(out + 6, lv3);
    for (int q = 0; q < 8; ++q) lrows[q][j] = out[q];
  }
}

}  // namespace

const KernelTable& NeonTable() {
  static const KernelTable table = {
      &GemmTileNeon, &DotTileNeon, &SyrkRowNeon, &TrsmRowsNeon,
      &DowndateTileNeon,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace srda

#endif  // SRDA_SIMD_HAVE_NEON
