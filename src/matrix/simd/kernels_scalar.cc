// Scalar (autovec) kernel table: the generic implementations compiled at
// the project baseline, exactly what the blocked kernels ran before the
// explicit vector paths existed. Always compiled, at every architecture —
// this is both the fallback and the reference the vector tables are
// tested bitwise against.

#include "matrix/simd/kernel_impl.h"
#include "matrix/simd/tables.h"

namespace srda {
namespace simd {
namespace internal {

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      &generic::GemmTile,     &generic::DotTile,      &generic::SyrkRow,
      &generic::TrsmRows,     &generic::DowndateTile,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace srda
