// AVX2 kernel table. Compiled with -mavx2 -ffp-contract=off (see
// src/matrix/CMakeLists.txt); only dispatch.cc calls in here, and only
// after __builtin_cpu_supports("avx2") said yes.

#include "matrix/simd/tables.h"

#ifdef SRDA_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <cstddef>

#include "matrix/simd/kernel_impl.h"

namespace srda {
namespace simd {
namespace internal {
namespace {

#include "matrix/simd/kernels_x86_ymm.inl"

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      &GemmTileYmm, &DotTileYmm, &SyrkRowYmm, &TrsmRowsYmm, &DowndateTileYmm,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace srda

#endif  // SRDA_SIMD_HAVE_AVX2
