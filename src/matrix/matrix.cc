#include "matrix/matrix.h"

namespace srda {

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  SRDA_CHECK(rows >= 0 && cols >= 0)
      << "negative matrix shape " << rows << " x " << cols;
  values_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
}

Matrix::Matrix(int rows, int cols, double fill) : Matrix(rows, cols) {
  Fill(fill);
}

Matrix Matrix::Identity(int n) {
  Matrix eye(n, n);
  for (int i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const int num_rows = static_cast<int>(rows.size());
  SRDA_CHECK(num_rows > 0) << "FromRows needs at least one row";
  const int num_cols = static_cast<int>(rows.begin()->size());
  Matrix result(num_rows, num_cols);
  int i = 0;
  for (const auto& row : rows) {
    SRDA_CHECK_EQ(static_cast<int>(row.size()), num_cols)
        << "ragged rows in FromRows";
    int j = 0;
    for (double value : row) result(i, j++) = value;
    ++i;
  }
  return result;
}

void Matrix::Fill(double value) {
  for (double& x : values_) x = value;
}

Matrix Matrix::Transposed() const {
  Matrix result(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (int j = 0; j < cols_; ++j) result(j, i) = row[j];
  }
  return result;
}

Vector Matrix::Row(int i) const {
  SRDA_CHECK(i >= 0 && i < rows_) << "row " << i << " out of " << rows_;
  Vector v(cols_);
  const double* row = RowPtr(i);
  for (int j = 0; j < cols_; ++j) v[j] = row[j];
  return v;
}

Vector Matrix::Col(int j) const {
  SRDA_CHECK(j >= 0 && j < cols_) << "col " << j << " out of " << cols_;
  Vector v(rows_);
  for (int i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::SetRow(int i, const Vector& v) {
  SRDA_CHECK(i >= 0 && i < rows_) << "row " << i << " out of " << rows_;
  SRDA_CHECK_EQ(v.size(), cols_) << "SetRow length mismatch";
  double* row = RowPtr(i);
  for (int j = 0; j < cols_; ++j) row[j] = v[j];
}

void Matrix::SetCol(int j, const Vector& v) {
  SRDA_CHECK(j >= 0 && j < cols_) << "col " << j << " out of " << cols_;
  SRDA_CHECK_EQ(v.size(), rows_) << "SetCol length mismatch";
  for (int i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::Block(int row, int col, int num_rows, int num_cols) const {
  SRDA_CHECK(row >= 0 && col >= 0 && num_rows >= 0 && num_cols >= 0);
  SRDA_CHECK(row + num_rows <= rows_ && col + num_cols <= cols_)
      << "block (" << row << "+" << num_rows << ", " << col << "+" << num_cols
      << ") out of " << rows_ << " x " << cols_;
  Matrix result(num_rows, num_cols);
  for (int i = 0; i < num_rows; ++i) {
    const double* src = RowPtr(row + i) + col;
    double* dst = result.RowPtr(i);
    for (int j = 0; j < num_cols; ++j) dst[j] = src[j];
  }
  return result;
}

}  // namespace srda
