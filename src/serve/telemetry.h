// Live telemetry endpoints for a serving process.
//
// TelemetryServer wires the obs layer into an embedded HTTP listener so a
// running srda_serve can be observed from outside the process:
//
//   /metrics       Prometheus text exposition: every cumulative counter,
//                  gauge, and histogram in the global registry plus the
//                  trailing-window serving instruments (QPS, batch size,
//                  latency p50/p99 over the last window_s seconds).
//   /metrics.json  The same snapshot as one JSON object.
//   /healthz       200 "ok" once SetReady(true) — i.e. after the model is
//                  loaded and the service can answer — 503 before that and
//                  after SetReady(false). Load balancers key on this.
//   /buildz        JSON build/provenance info: compiler, build date, plus
//                  any key/value pairs the tool registers (model path,
//                  model shape, flags).
//
// The server binds loopback only and handles scrapes serially on one
// background thread (obs/http.h); it never touches the serving hot path —
// a scrape reads the same lock-free instruments the dispatcher writes.

#ifndef SRDA_SERVE_TELEMETRY_H_
#define SRDA_SERVE_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/http.h"

namespace srda {
namespace serve {

class TelemetryServer {
 public:
  // window_s: trailing window for the windowed rows on /metrics.
  explicit TelemetryServer(int window_s = 10);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Binds 127.0.0.1:port (0 = ephemeral) and starts serving. Returns
  // false on bind failure.
  bool Start(int port);
  void Stop();

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  // /healthz readiness. Starts false; flip true after the model loads.
  void SetReady(bool ready) {
    ready_.store(ready, std::memory_order_relaxed);
  }
  bool ready() const { return ready_.load(std::memory_order_relaxed); }

  // Adds a key/value row to /buildz (call before or after Start).
  void SetBuildInfo(const std::string& key, const std::string& value);

  int64_t scrapes() const { return http_.requests_served(); }

 private:
  std::string BuildzJson() const;

  const int window_s_;
  std::atomic<bool> ready_{false};
  mutable std::mutex build_info_mutex_;
  std::vector<std::pair<std::string, std::string>> build_info_;
  obs::HttpServer http_;
};

}  // namespace serve
}  // namespace srda

#endif  // SRDA_SERVE_TELEMETRY_H_
