#include "serve/telemetry.h"

#include <utility>

#include "obs/exporter.h"
#include "obs/json_check.h"
#include "obs/metrics.h"

namespace srda {
namespace serve {

TelemetryServer::TelemetryServer(int window_s) : window_s_(window_s) {
  build_info_.emplace_back("compiler", __VERSION__);
  build_info_.emplace_back("build_date", __DATE__);
  http_.Handle("/metrics", [this](const std::string&) {
    obs::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        obs::PrometheusText(MetricsRegistry::Global(), window_s_);
    return response;
  });
  http_.Handle("/metrics.json", [this](const std::string&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = obs::MetricsJson(MetricsRegistry::Global(), window_s_);
    return response;
  });
  http_.Handle("/healthz", [this](const std::string&) {
    obs::HttpResponse response;
    if (ready()) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      response.body = "not ready\n";
    }
    return response;
  });
  http_.Handle("/buildz", [this](const std::string&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = BuildzJson();
    return response;
  });
}

TelemetryServer::~TelemetryServer() { Stop(); }

bool TelemetryServer::Start(int port) { return http_.Start(port); }

void TelemetryServer::Stop() { http_.Stop(); }

void TelemetryServer::SetBuildInfo(const std::string& key,
                                   const std::string& value) {
  std::lock_guard<std::mutex> lock(build_info_mutex_);
  for (auto& [existing_key, existing_value] : build_info_) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  build_info_.emplace_back(key, value);
}

std::string TelemetryServer::BuildzJson() const {
  std::lock_guard<std::mutex> lock(build_info_mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : build_info_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(key) + "\":\"" + JsonEscape(value) + '"';
  }
  out += '}';
  return out;
}

}  // namespace serve
}  // namespace srda
