// Micro-batching prediction serving: the "millions of users" path.
//
// A PredictionService owns a queue of in-flight prediction requests and one
// dispatcher thread that drains it in micro-batches: a batch closes as soon
// as `max_batch` queries are pending or the oldest pending query has waited
// `max_delay_ms`, whichever comes first. Each batch is embedded with one
// blocked GEMM (LinearEmbedding::Transform) and scored with one batched
// Scorer call (classify/classifiers.h), so server throughput rides the
// level-3 kernels and the common/parallel.h pool instead of paying a gemv
// per query. Because per-row scoring is independent of the batch a row
// lands in, the service returns exactly the predictions a single-pass
// srda_predict run produces, regardless of traffic interleaving.
//
// Clients are threads calling Predict() with a block of raw feature rows
// (or one row); the call blocks until every row's raw label is back.
// Blocks from concurrent clients coalesce into shared batches.
//
// Observability: every batch runs under a `serve.batch` span (rows +
// wait-us args); the registry carries serve.requests / serve.batches
// counters and serve.batch_size / serve.latency_us histograms, so p50/p99
// latency and throughput flow through the obs layer into run summaries and
// BENCH_serving.json.

#ifndef SRDA_SERVE_SERVING_H_
#define SRDA_SERVE_SERVING_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "classify/classifiers.h"
#include "matrix/matrix.h"
#include "model/model.h"

namespace srda {
namespace serve {

struct ServeOptions {
  // A batch closes when this many queries are pending...
  int max_batch = 256;
  // ...or when the oldest pending query has waited this long.
  double max_delay_ms = 0.2;
  // Record one latency sample (enqueue -> completion, microseconds) per
  // request for exact percentiles. ~8 bytes/request; disable for unbounded
  // runs (the serve.latency_us histogram still aggregates).
  bool record_latencies = true;
};

// Aggregate counters since construction. Latencies are per-request
// enqueue -> completion times in microseconds, unordered.
struct ServeStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int max_batch_seen = 0;
  std::vector<double> latencies_us;

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

// Quantile of a latency sample (q in [0, 1]; nearest-rank). 0 when empty.
double LatencyQuantile(std::vector<double> latencies_us, double q);

class PredictionService {
 public:
  // `model` must outlive the service. Spawns the dispatcher thread.
  PredictionService(const model::SrdaModel* model,
                    const ServeOptions& options = {});

  // Drains outstanding requests, then stops the dispatcher.
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  // Scores every row of `queries` (raw feature space, one query per row)
  // through the micro-batcher and returns one RAW label per row (the
  // model's raw_labels map applied to the predicted class). Blocks until
  // all rows complete; rows from concurrent Predict calls share batches.
  std::vector<int> Predict(const Matrix& queries);

  // Single-query convenience: `features` points at input_dim() doubles.
  int Predict(const double* features);

  int input_dim() const { return model_->input_dim(); }

  // Snapshot of the counters (thread-safe).
  ServeStats Stats();

 private:
  struct Request {
    const double* features = nullptr;  // input_dim doubles, caller-owned
    int result = 0;                    // raw label, valid once done
    bool done = false;
    int64_t enqueue_ns = 0;
  };

  void DispatcherLoop();
  // Scores one closed batch outside the lock; returns raw labels.
  std::vector<int> ScoreBatch(const std::vector<Request*>& batch) const;

  const model::SrdaModel* const model_;
  const ServeOptions options_;
  CentroidClassifier scorer_;

  std::mutex mutex_;
  std::condition_variable pending_cv_;  // dispatcher waits for work
  std::condition_variable done_cv_;     // clients wait for completion
  std::vector<Request*> pending_;
  bool stopping_ = false;

  ServeStats stats_;  // guarded by mutex_

  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace srda

#endif  // SRDA_SERVE_SERVING_H_
