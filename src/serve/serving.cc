#include "serve/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace serve {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double LatencyQuantile(std::vector<double> latencies_us, double q) {
  SRDA_CHECK(q >= 0.0 && q <= 1.0) << "quantile out of [0, 1]";
  if (latencies_us.empty()) return 0.0;
  const size_t rank = std::min(
      latencies_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
  std::nth_element(latencies_us.begin(),
                   latencies_us.begin() + static_cast<ptrdiff_t>(rank),
                   latencies_us.end());
  return latencies_us[rank];
}

PredictionService::PredictionService(const model::SrdaModel* model,
                                     const ServeOptions& options)
    : model_(model), options_(options) {
  SRDA_CHECK(model_ != nullptr) << "serving needs a model";
  model_->Validate();
  SRDA_CHECK_GT(options_.max_batch, 0) << "max_batch must be positive";
  SRDA_CHECK_GE(options_.max_delay_ms, 0.0)
      << "max_delay_ms must be non-negative";
  scorer_.SetCentroids(model_->centroids);
  obs::Event("serve.start")
      .Num("max_batch", options_.max_batch)
      .Num("max_delay_ms", options_.max_delay_ms)
      .Num("input_dim", model_->input_dim());
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

PredictionService::~PredictionService() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  pending_cv_.notify_all();
  dispatcher_.join();
  obs::Event("serve.stop")
      .Num("requests", stats_.requests)
      .Num("batches", stats_.batches);
}

std::vector<int> PredictionService::ScoreBatch(
    const std::vector<Request*>& batch) const {
  Matrix block(static_cast<int>(batch.size()), model_->input_dim());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(block.RowPtr(static_cast<int>(i)), batch[i]->features,
                static_cast<size_t>(model_->input_dim()) * sizeof(double));
  }
  const Matrix embedded = model_->embedding.Transform(block);
  return model_->ToRawLabels(scorer_.ScoreBatch(embedded));
}

void PredictionService::DispatcherLoop() {
  static Counter* const requests_counter =
      MetricsRegistry::Global().counter("serve.requests");
  static Counter* const batches_counter =
      MetricsRegistry::Global().counter("serve.batches");
  static Histogram* const batch_size_hist =
      MetricsRegistry::Global().histogram("serve.batch_size");
  static Histogram* const latency_hist =
      MetricsRegistry::Global().histogram("serve.latency_us");
  // Windowed twins of the cumulative instruments (same names, separate
  // registry namespace): the live-scrape view behind /metrics.
  static WindowedCounter* const requests_window =
      MetricsRegistry::Global().windowed_counter("serve.requests");
  static WindowedHistogram* const batch_size_window =
      MetricsRegistry::Global().windowed_histogram("serve.batch_size");
  static WindowedHistogram* const latency_window =
      MetricsRegistry::Global().windowed_histogram("serve.latency_us");

  const auto max_delay = std::chrono::nanoseconds(
      static_cast<int64_t>(options_.max_delay_ms * 1e6));
  std::vector<Request*> batch;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    pending_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) return;
      continue;
    }
    // The batch closes at max_batch pending or when the oldest query's
    // max_delay budget expires — whichever happens first. Stopping flushes
    // immediately so the destructor never strands a client.
    const auto deadline =
        std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(pending_.front()->enqueue_ns)) +
        max_delay;
    pending_cv_.wait_until(lock, deadline, [this] {
      return stopping_ ||
             static_cast<int>(pending_.size()) >= options_.max_batch;
    });
    batch.clear();
    const int take =
        std::min(static_cast<int>(pending_.size()), options_.max_batch);
    batch.assign(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);

    lock.unlock();
    std::vector<int> results;
    {
      TraceSpan span("serve.batch");
      if (span.recording()) {
        span.AddArg("rows", static_cast<double>(batch.size()));
        span.AddArg(
            "wait_us",
            static_cast<double>(NowNs() - batch.front()->enqueue_ns) * 1e-3);
      }
      results = ScoreBatch(batch);
    }
    const int64_t done_ns = NowNs();
    requests_counter->Add(static_cast<double>(batch.size()));
    batches_counter->Increment();
    batch_size_hist->Observe(static_cast<double>(batch.size()));
    requests_window->Add(static_cast<double>(batch.size()));
    batch_size_window->Observe(static_cast<double>(batch.size()));

    lock.lock();
    stats_.requests += static_cast<int64_t>(batch.size());
    stats_.batches += 1;
    stats_.max_batch_seen =
        std::max(stats_.max_batch_seen, static_cast<int>(batch.size()));
    for (size_t i = 0; i < batch.size(); ++i) {
      const double latency_us =
          static_cast<double>(done_ns - batch[i]->enqueue_ns) * 1e-3;
      latency_hist->Observe(latency_us);
      latency_window->Observe(latency_us);
      if (options_.record_latencies) {
        stats_.latencies_us.push_back(latency_us);
      }
      batch[i]->result = results[i];
      batch[i]->done = true;
    }
    done_cv_.notify_all();
  }
}

std::vector<int> PredictionService::Predict(const Matrix& queries) {
  SRDA_CHECK_EQ(queries.cols(), model_->input_dim())
      << "query width does not match the model";
  SRDA_CHECK_GT(queries.rows(), 0) << "empty query block";
  std::vector<Request> requests(static_cast<size_t>(queries.rows()));
  {
    std::unique_lock<std::mutex> lock(mutex_);
    SRDA_CHECK(!stopping_) << "Predict on a stopped service";
    const int64_t now = NowNs();
    for (int i = 0; i < queries.rows(); ++i) {
      Request& request = requests[static_cast<size_t>(i)];
      request.features = queries.RowPtr(i);
      request.enqueue_ns = now;
      pending_.push_back(&request);
    }
  }
  pending_cv_.notify_all();
  std::vector<int> predictions(static_cast<size_t>(queries.rows()));
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&requests] {
      for (const Request& request : requests) {
        if (!request.done) return false;
      }
      return true;
    });
    for (size_t i = 0; i < requests.size(); ++i) {
      predictions[i] = requests[i].result;
    }
  }
  return predictions;
}

int PredictionService::Predict(const double* features) {
  Matrix query(1, model_->input_dim());
  std::memcpy(query.RowPtr(0), features,
              static_cast<size_t>(model_->input_dim()) * sizeof(double));
  return Predict(query)[0];
}

ServeStats PredictionService::Stats() {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace srda
