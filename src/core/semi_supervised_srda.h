// Semi-supervised spectral regression discriminant analysis.
//
// Implements the generalization sketched in Section III of the paper (its
// references [12], [15], [16]): build the graph matrix W from BOTH the
// labels (the class-block graph of Eqn. 6) and an unsupervised kNN affinity
// graph over all samples (labeled and unlabeled), extract the top graph
// embedding responses from the generalized eigenproblem W y = lambda D y,
// and regress them onto the features with a ridge penalty — the same
// regression step as supervised SRDA, so the cost stays linear.

#ifndef SRDA_CORE_SEMI_SUPERVISED_SRDA_H_
#define SRDA_CORE_SEMI_SUPERVISED_SRDA_H_

#include <vector>

#include "core/embedding.h"
#include "graph/knn_graph.h"
#include "matrix/matrix.h"
#include "sparse/sparse_matrix.h"

namespace srda {

// Marks a sample as unlabeled in the labels vector.
inline constexpr int kUnlabeled = -1;

struct SemiSupervisedSrdaOptions {
  // Ridge penalty of the regression step. alpha == 0 is accepted but the
  // dense path reports converged == false when the data is rank-deficient
  // (same contract as SRDA).
  double alpha = 1.0;
  // Relative weight of the unsupervised kNN graph against the label graph.
  double graph_weight = 0.2;
  // kNN graph construction (the dense path; the sparse path uses cosine
  // similarity with graph.num_neighbors).
  KnnGraphOptions graph;
  // LSQR budget for the sparse regression step.
  int lsqr_iterations = 20;
  // Eigenvalues of the normalized graph at or below this are dropped.
  double eigen_tolerance = 1e-9;
};

struct SemiSupervisedSrdaModel {
  LinearEmbedding embedding;
  int num_directions = 0;
  bool converged = false;
};

// Trains on `x` (all samples, rows) where labels[i] is a class id in
// [0, num_classes) or kUnlabeled. Every class must have at least one labeled
// sample; at least two samples total. The spectral step eigendecomposes an
// m x m dense matrix, so this trainer targets m up to a few thousand.
SemiSupervisedSrdaModel FitSemiSupervisedSrda(
    const Matrix& x, const std::vector<int>& labels, int num_classes,
    const SemiSupervisedSrdaOptions& options = {});

// Sparse-data variant (text): cosine-similarity kNN graph, LSQR for the
// regression step — the data is never densified or centered (same spectral
// step cost caveat: m x m dense eigendecomposition).
SemiSupervisedSrdaModel FitSemiSupervisedSrda(
    const SparseMatrix& x, const std::vector<int>& labels, int num_classes,
    const SemiSupervisedSrdaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_SEMI_SUPERVISED_SRDA_H_
