#include "core/ksrda.h"

#include <utility>

#include "common/check.h"
#include "core/responses.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {

Matrix KsrdaModel::Transform(const Matrix& queries) const {
  SRDA_CHECK(converged_) << "Transform on an untrained KSRDA model";
  SRDA_CHECK_EQ(queries.cols(), train_points_.cols())
      << "query dimension mismatch";
  // K_q (queries x m) times the dual coefficients.
  const Matrix cross = KernelCrossMatrix(*kernel_, queries, train_points_);
  return Multiply(cross, coefficients_);
}

KsrdaModel FitKsrda(const Matrix& x, const std::vector<int>& labels,
                    int num_classes, std::shared_ptr<const Kernel> kernel,
                    const KsrdaOptions& options) {
  SRDA_CHECK(kernel != nullptr) << "null kernel";
  SRDA_CHECK_GT(options.alpha, 0.0)
      << "KSRDA requires alpha > 0 (the kernel matrix is dense and easily "
         "singular)";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";

  KsrdaModel model;
  const Matrix responses = GenerateSrdaResponses(labels, num_classes);

  // (K + alpha I) C = Ybar through the shared engine (base = K, shift =
  // alpha).
  RidgeSolver solver = RidgeSolver::FromGram(KernelMatrix(*kernel, x));
  RidgeSolution solution = solver.Solve(responses, options.alpha);
  if (!solution.ok) {
    return model;  // converged_ stays false.
  }
  model.coefficients_ = std::move(solution.coefficients);
  model.train_points_ = x;
  model.kernel_ = std::move(kernel);
  model.converged_ = true;
  return model;
}

}  // namespace srda
