// The classical two-stage PCA+LDA pipeline ("Fisherfaces", Belhumeur et al.
// 1997, the paper's reference [5]).
//
// Section II-A of the paper derives why this works: the SVD/PCA stage maps
// the data into the span where the total scatter is nonsingular, after which
// ordinary LDA applies. This module composes the two embeddings into one
// affine map so the result is directly comparable with the other trainers.

#ifndef SRDA_CORE_FISHERFACES_H_
#define SRDA_CORE_FISHERFACES_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {

struct FisherfacesOptions {
  // PCA components kept before LDA (0 = m - c, the classical choice that
  // makes the reduced within-class scatter nonsingular).
  int pca_components = 0;
  // Forwarded to the LDA stage.
  double eigen_tolerance = 1e-9;
};

struct FisherfacesModel {
  LinearEmbedding embedding;  // composed PCA -> LDA map
  int pca_components_used = 0;
  int num_directions = 0;
  bool converged = false;
};

// Trains PCA+LDA on dense data (rows are samples).
FisherfacesModel FitFisherfaces(const Matrix& x,
                                const std::vector<int>& labels,
                                int num_classes,
                                const FisherfacesOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_FISHERFACES_H_
