// Incremental SRDA: stream samples one at a time and re-solve cheaply.
//
// The paper compares against IDR/QR precisely because that baseline is
// *incremental*; SRDA's normal-equations formulation supports the same
// mode naturally. The trainer maintains the Cholesky factor of the
// augmented Gram matrix [X 1]^T [X 1] + alpha*I via O(n^2) rank-1 updates
// per sample, plus per-class feature sums, so adding a sample costs O(n^2)
// and producing the current embedding costs O(c n^2) back-substitutions —
// no pass over past data is ever needed.
//
// The solution is exactly the batch augmented ridge regression
//   min ||[X 1] [a; b] - ybar||^2 + alpha (||a||^2 + b^2),
// i.e. the same problem SRDA's LSQR path solves (the bias is damped too).

#ifndef SRDA_CORE_INCREMENTAL_SRDA_H_
#define SRDA_CORE_INCREMENTAL_SRDA_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

class IncrementalSrda {
 public:
  // `alpha` > 0 keeps the streamed Gram matrix positive definite from the
  // first sample on.
  IncrementalSrda(int num_features, int num_classes, double alpha);

  // Streams one labeled sample; O((n+1)^2).
  void AddSample(const Vector& features, int label);

  // Streams a whole shard of rows at once via a blocked rank-k Cholesky
  // update; O(k (n+1)^2) but with far better locality than k AddSample
  // calls. This is the bulk-load half of the out-of-core story: fit the
  // history through RowShardReader shards, then keep streaming new samples
  // with AddSample. The factor equals the k successive rank-1 updates up
  // to rounding (the blocked update reassociates the rotations), so
  // results agree to solver tolerance, not bitwise.
  void AddShard(const Matrix& features, const std::vector<int>& labels);

  int num_samples() const { return total_count_; }
  int num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  // True once every class has at least one sample (the embedding is only
  // defined then).
  bool ready() const;

  // Solves for the current discriminant embedding; O(c (n+1)^2).
  LinearEmbedding Solve() const;

 private:
  int num_features_;
  int num_classes_;
  int total_count_ = 0;
  Matrix chol_factor_;       // (n+1) x (n+1) factor of [X 1]^T [X 1] + aI
  Matrix class_sums_;        // c x n feature sums per class
  std::vector<int> counts_;  // samples per class
};

}  // namespace srda

#endif  // SRDA_CORE_INCREMENTAL_SRDA_H_
