#include "core/srda.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "core/responses.h"
#include "linalg/linear_operator.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace {

void ValidateOptions(const SrdaOptions& options) {
  SRDA_CHECK_GE(options.alpha, 0.0) << "alpha must be non-negative";
  SRDA_CHECK_GT(options.lsqr_iterations, 0);
}

}  // namespace

SrdaModel FitSrda(RidgeSolver* solver, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options) {
  ValidateOptions(options);
  SRDA_CHECK(solver != nullptr);

  SrdaModel model;
  const Matrix responses = GenerateSrdaResponses(labels, num_classes);
  model.num_responses = responses.cols();

  RidgeSolveOptions solve_options;
  // Preconditioning only exists on the LSQR path, so it implies the solver.
  const bool use_lsqr = options.solver == SrdaSolver::kLsqr ||
                        options.sketch.mode == SketchMode::kPrecondition;
  solve_options.method =
      use_lsqr ? RidgeMethod::kLsqr : RidgeMethod::kNormalEquations;
  solve_options.lsqr_iterations = options.lsqr_iterations;
  solve_options.lsqr_atol = options.lsqr_atol;
  solve_options.lsqr_btol = options.lsqr_btol;
  // Unconditional so a reused solver drops sketching when the options do.
  solver->SetSketch(options.sketch);

  RidgeSolution solution =
      solver->Solve(responses, options.alpha, solve_options);
  if (!solution.ok) {
    model.converged = false;
    return model;
  }
  model.total_lsqr_iterations = solution.total_lsqr_iterations;
  model.lsqr_diagnostics = std::move(solution.lsqr);
  model.sketch_error_bounds = std::move(solution.sketch_error_bounds);
  model.embedding = LinearEmbedding(std::move(solution.coefficients),
                                    std::move(solution.bias));
  model.converged = true;
  return model;
}

SrdaModel FitSrda(const Matrix& x, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";
  RidgeSolver solver(&x);
  return FitSrda(&solver, labels, num_classes, options);
}

SrdaModel FitSrda(const SparseMatrix& x, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";
  const SparseOperator data(&x);
  RidgeSolver solver(&data);
  // Sparse data always trains matrix-free, whatever options.solver says.
  SrdaOptions adjusted = options;
  adjusted.solver = SrdaSolver::kLsqr;
  return FitSrda(&solver, labels, num_classes, adjusted);
}

}  // namespace srda
