#include "core/srda.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/responses.h"
#include "linalg/cholesky.h"
#include "linalg/linear_operator.h"
#include "linalg/lsqr.h"
#include "matrix/blas.h"

namespace srda {
namespace {

void ValidateOptions(const SrdaOptions& options) {
  SRDA_CHECK_GE(options.alpha, 0.0) << "alpha must be non-negative";
  SRDA_CHECK_GT(options.lsqr_iterations, 0);
}

// Dense normal-equations path (Section III-C1). Returns false only if the
// Cholesky factorization fails (alpha == 0 on rank-deficient data).
bool SolveNormalEquations(const Matrix& x, const Matrix& responses,
                          double alpha, Matrix* projection, Vector* bias) {
  const int m = x.rows();
  const int n = x.cols();
  const int d = responses.cols();

  // With responses orthogonal to the ones vector, centering the data makes
  // the optimal regression bias zero, so we solve on the centered matrix and
  // fold the mean into the embedding bias afterwards.
  const Vector mean = ColumnMeans(x);
  Matrix centered = x;
  SubtractRowVector(mean, &centered);

  Cholesky chol;
  if (n <= m) {
    // Primal: (X^T X + alpha I) A = X^T Y.
    Matrix gram = Gram(centered);
    AddDiagonal(alpha, &gram);
    if (!chol.Factor(gram)) return false;
    *projection = chol.SolveMatrix(MultiplyTransposedA(centered, responses));
  } else {
    // Dual (the paper's Eqn. 21, exact for ridge at any alpha > 0):
    // A = X^T (X X^T + alpha I)^{-1} Y.
    Matrix gram = OuterGram(centered);
    AddDiagonal(alpha, &gram);
    if (!chol.Factor(gram)) return false;
    const Matrix dual = chol.SolveMatrix(responses);  // m x d
    *projection = MultiplyTransposedA(centered, dual);
  }

  *bias = Vector(d);
  const Vector mean_projected = MultiplyTransposed(*projection, mean);
  for (int j = 0; j < d; ++j) (*bias)[j] = -mean_projected[j];
  return true;
}

// LSQR path shared by dense and sparse data (Section III-C2). The paper's
// objective (Eq. 15) regularizes only the projection a, never the bias b,
// so the damped solve runs against the implicitly centered operator
// (A - 1 mean^T): the responses are orthogonal to the ones vector, which
// makes the optimal bias of the centered problem exactly zero, and the
// embedding bias is recovered as b = -mean^T a afterwards — the same
// convention as the normal-equations path. The c-1 regressions share only
// read-only data (operator, mean, responses), so they run in parallel; each
// solve is the unchanged serial recurrence, keeping results bitwise
// identical at any thread count.
void SolveWithLsqr(const LinearOperator& data, const Matrix& responses,
                   const SrdaOptions& options, Matrix* projection,
                   Vector* bias, int* total_iterations) {
  const int m = data.rows();
  const int n = data.cols();
  const int d = responses.cols();

  // Column means through the operator itself (A^T 1 / m): works for dense
  // and sparse data without densifying either.
  Vector mean = data.ApplyTransposed(Vector(m, 1.0));
  Scale(1.0 / m, &mean);
  const CenterColumnsOperator centered(&data, &mean);

  LsqrOptions lsqr_options;
  lsqr_options.max_iterations = options.lsqr_iterations;
  lsqr_options.damp = std::sqrt(options.alpha);
  lsqr_options.atol = options.lsqr_atol;
  lsqr_options.btol = options.lsqr_btol;

  *projection = Matrix(n, d);
  *bias = Vector(d);
  std::vector<int> iterations(static_cast<size_t>(d), 0);
  Matrix& proj = *projection;
  Vector& bias_out = *bias;
  ParallelFor(0, d, [&](int col_begin, int col_end) {
    for (int j = col_begin; j < col_end; ++j) {
      const LsqrResult result =
          Lsqr(centered, responses.Col(j), lsqr_options);
      iterations[static_cast<size_t>(j)] = result.iterations;
      for (int i = 0; i < n; ++i) proj(i, j) = result.x[i];
      bias_out[j] = -Dot(mean, result.x);
    }
  });
  *total_iterations = 0;
  for (int j = 0; j < d; ++j) {
    *total_iterations += iterations[static_cast<size_t>(j)];
  }
}

}  // namespace

SrdaModel FitSrda(const Matrix& x, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options) {
  ValidateOptions(options);
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";

  SrdaModel model;
  const Matrix responses = GenerateSrdaResponses(labels, num_classes);
  model.num_responses = responses.cols();

  Matrix projection;
  Vector bias;
  if (options.solver == SrdaSolver::kNormalEquations) {
    if (!SolveNormalEquations(x, responses, options.alpha, &projection,
                              &bias)) {
      model.converged = false;
      return model;
    }
  } else {
    const DenseOperator data(&x);
    SolveWithLsqr(data, responses, options, &projection, &bias,
                  &model.total_lsqr_iterations);
  }
  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

SrdaModel FitSrda(const SparseMatrix& x, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options) {
  ValidateOptions(options);
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";

  SrdaModel model;
  const Matrix responses = GenerateSrdaResponses(labels, num_classes);
  model.num_responses = responses.cols();

  Matrix projection;
  Vector bias;
  const SparseOperator data(&x);
  SolveWithLsqr(data, responses, options, &projection, &bias,
                &model.total_lsqr_iterations);
  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
