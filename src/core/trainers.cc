#include "core/trainers.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/fisherfaces.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "core/semi_supervised_srda.h"

namespace srda {

const std::vector<std::string>& DenseTrainerNames() {
  static const std::vector<std::string>* const names =
      new std::vector<std::string>{"srda",        "lda",         "rlda",
                                   "idr_qr",      "fisherfaces", "semi_srda"};
  return *names;
}

bool IsDenseTrainer(const std::string& name) {
  const std::vector<std::string>& names = DenseTrainerNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

TrainResult TrainDenseByName(const std::string& name, const Matrix& x,
                             const std::vector<int>& labels, int num_classes,
                             const TrainerOptions& options) {
  TrainResult result;
  if (name == "srda") {
    SrdaOptions srda_options;
    srda_options.alpha = options.alpha;
    srda_options.solver = options.solver;
    srda_options.lsqr_iterations = options.lsqr_iterations;
    srda_options.sketch = options.sketch;
    SrdaModel model = FitSrda(x, labels, num_classes, srda_options);
    SRDA_CHECK(model.converged) << "SRDA training failed";
    result.embedding = std::move(model.embedding);
    result.total_lsqr_iterations = model.total_lsqr_iterations;
    result.lsqr_diagnostics = std::move(model.lsqr_diagnostics);
    result.sketch_error_bounds = std::move(model.sketch_error_bounds);
    return result;
  }
  SRDA_CHECK(options.sketch.mode == SketchMode::kOff)
      << "sketching supports the srda trainer only";
  if (name == "lda") {
    LdaModel model = FitLda(x, labels, num_classes);
    SRDA_CHECK(model.converged) << "LDA training failed";
    result.embedding = std::move(model.embedding);
    return result;
  }
  if (name == "rlda") {
    RldaOptions rlda_options;
    rlda_options.alpha = options.alpha;
    RldaModel model = FitRlda(x, labels, num_classes, rlda_options);
    SRDA_CHECK(model.converged) << "RLDA training failed";
    result.embedding = std::move(model.embedding);
    return result;
  }
  if (name == "idr_qr") {
    IdrQrModel model = FitIdrQr(x, labels, num_classes);
    SRDA_CHECK(model.converged) << "IDR/QR training failed";
    result.embedding = std::move(model.embedding);
    return result;
  }
  if (name == "fisherfaces") {
    FisherfacesModel model = FitFisherfaces(x, labels, num_classes);
    SRDA_CHECK(model.converged) << "Fisherfaces training failed";
    result.embedding = std::move(model.embedding);
    return result;
  }
  if (name == "semi_srda") {
    SemiSupervisedSrdaOptions semi_options;
    semi_options.alpha = options.alpha;
    SemiSupervisedSrdaModel model =
        FitSemiSupervisedSrda(x, labels, num_classes, semi_options);
    SRDA_CHECK(model.converged) << "semi-supervised SRDA training failed";
    result.embedding = std::move(model.embedding);
    return result;
  }
  SRDA_CHECK(false) << "unknown trainer '" << name << "'";
  return result;
}

}  // namespace srda
