// Classical Linear Discriminant Analysis, solved exactly as analysed in
// Section II of the paper: SVD of the centered data matrix (via the
// cross-product trick) to handle the singular total scatter, followed by a
// small c x c eigenproblem for the between-class structure.
//
// Cost is O(m n t + t^3) time and O(m n + (m + n) t) memory with
// t = min(m, n) — the cubic baseline that SRDA is measured against.

#ifndef SRDA_CORE_LDA_H_
#define SRDA_CORE_LDA_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {

enum class SvdMethod {
  // The paper's route (Section II-B): eigendecompose the smaller Gram
  // matrix. Fast, but resolves singular values only to ~sqrt(eps).
  kCrossProduct,
  // Golub-Reinsch bidiagonalization: backward stable to ~eps, a few times
  // slower. Use when the data may have meaningful tiny singular values.
  kGolubReinsch,
};

struct LdaOptions {
  // Which SVD backs the PCA stage.
  SvdMethod svd_method = SvdMethod::kCrossProduct;
  // Relative truncation threshold for the data SVD (numerical rank of the
  // centered data matrix). The cross-product SVD resolves singular values
  // only down to ~sqrt(eps) * sigma_max ~ 1e-8, so the default keeps a safe
  // margin above that floor; anything tighter lets pure round-off directions
  // into the basis, which the 1/sigma weighting then amplifies
  // catastrophically.
  double svd_rank_tolerance = 1e-6;
  // Between-class eigenvalues at or below this are treated as zero; LDA
  // yields at most c-1 directions.
  double eigen_tolerance = 1e-9;
};

struct LdaModel {
  LinearEmbedding embedding;
  // Numerical rank of the centered training data.
  int data_rank = 0;
  // Number of discriminant directions kept (<= c-1).
  int num_directions = 0;
  // False if an eigensolver failed to converge (practically never).
  bool converged = false;
};

// Trains LDA on dense data (rows are samples). Directions satisfy
// a^T S_t a = lambda (whitened up to a sqrt(lambda) length, the
// optimal-scoring-equivalent metric shared by all trainers here).
LdaModel FitLda(const Matrix& x, const std::vector<int>& labels,
                int num_classes, const LdaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_LDA_H_
