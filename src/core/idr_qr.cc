#include "core/idr_qr.h"

#include <cmath>

#include "common/check.h"
#include "dataset/dataset.h"
#include "linalg/cholesky.h"
#include "linalg/qr.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"

namespace srda {

IdrQrModel FitIdrQr(const Matrix& x, const std::vector<int>& labels,
                    int num_classes, const IdrQrOptions& options) {
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_GE(options.regularization, 0.0);
  const int m = x.rows();
  const int n = x.cols();
  SRDA_CHECK_GE(n, num_classes) << "IDR/QR needs at least c features";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), m) << "label count mismatch";
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no samples";
  }

  IdrQrModel model;

  // Class centroids (c x n) and global mean.
  Matrix centroids(num_classes, n);
  for (int i = 0; i < m; ++i) {
    const double* row = x.RowPtr(i);
    double* centroid = centroids.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < n; ++j) centroid[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv = 1.0 / counts[static_cast<size_t>(k)];
    double* centroid = centroids.RowPtr(k);
    for (int j = 0; j < n; ++j) centroid[j] *= inv;
  }
  const Vector mean = ColumnMeans(x);

  // Stage 1: orthonormal basis Q (n x c) of the centroid span via QR.
  const QrResult qr = ThinQr(centroids.Transposed());
  const Matrix& q = qr.q;

  // Stage 2: project the centered data into the reduced space (m x c).
  Matrix centered = x;
  SubtractRowVector(mean, &centered);
  const Matrix z = Multiply(centered, q);

  // Reduced scatters: S_t' = Z^T Z; S_b' from the projected centroid
  // deviations; S_w' = S_t' - S_b'.
  const Matrix st_reduced = Gram(z);
  const Vector mean_reduced = MultiplyTransposed(q, mean);
  Matrix hb(num_classes, num_classes);  // sqrt(m_k) * (nu_k - nu)
  for (int k = 0; k < num_classes; ++k) {
    const Vector centroid_reduced = MultiplyTransposed(q, centroids.Row(k));
    const double scale = std::sqrt(
        static_cast<double>(counts[static_cast<size_t>(k)]));
    for (int j = 0; j < num_classes; ++j) {
      hb(k, j) = scale * (centroid_reduced[j] - mean_reduced[j]);
    }
  }
  const Matrix sb_reduced = Gram(hb);
  Matrix sw_reduced = st_reduced;
  for (int i = 0; i < num_classes; ++i) {
    for (int j = 0; j < num_classes; ++j) sw_reduced(i, j) -= sb_reduced(i, j);
  }

  // Stage 3: generalized eigenproblem S_b' v = lambda (S_w' + eps I) v via
  // Cholesky reduction to a standard symmetric problem.
  AddDiagonal(options.regularization +
                  1e-12 * (1.0 + std::fabs(sw_reduced(0, 0))),
              &sw_reduced);
  Cholesky chol;
  if (!chol.Factor(sw_reduced)) {
    model.converged = false;
    return model;
  }
  // K = L^{-1} S_b' L^{-T}: columns solve L k = S_b' e, then once more.
  const int c = num_classes;
  Matrix k_matrix(c, c);
  {
    // First L^{-1} S_b'.
    Matrix tmp(c, c);
    for (int j = 0; j < c; ++j) {
      tmp.SetCol(j, ForwardSubstitute(chol.factor(), sb_reduced.Col(j)));
    }
    // Then (L^{-1} (L^{-1} S_b')^T)^T = L^{-1} S_b' L^{-T} by symmetry.
    const Matrix tmp_t = tmp.Transposed();
    for (int j = 0; j < c; ++j) {
      k_matrix.SetCol(j, ForwardSubstitute(chol.factor(), tmp_t.Col(j)));
    }
  }
  const SymmetricEigenResult eigen = SymmetricEigen(k_matrix);
  if (!eigen.converged) {
    model.converged = false;
    return model;
  }

  int num_directions = 0;
  for (int j = c - 1; j >= 0; --j) {
    if (eigen.eigenvalues[j] <= options.eigen_tolerance) break;
    if (num_directions == c - 1) break;
    ++num_directions;
  }
  model.num_directions = num_directions;

  // v = L^{-T} q_small; final direction = Q v.
  Matrix v_small(c, num_directions);
  for (int d = 0; d < num_directions; ++d) {
    const int src = c - 1 - d;
    Vector direction =
        BackSubstituteTransposed(chol.factor(), eigen.eigenvectors.Col(src));
    // sqrt(lambda) scaling, consistent with the other eigen-based trainers.
    Scale(std::sqrt(eigen.eigenvalues[src]), &direction);
    v_small.SetCol(d, direction);
  }
  Matrix projection = Multiply(q, v_small);  // n x d

  Vector bias(num_directions);
  const Vector mean_projected = MultiplyTransposed(projection, mean);
  for (int d = 0; d < num_directions; ++d) bias[d] = -mean_projected[d];

  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
