#include "core/lda.h"

#include <cmath>

#include "common/check.h"
#include "dataset/dataset.h"
#include "linalg/golub_reinsch_svd.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"

namespace srda {

LdaModel FitLda(const Matrix& x, const std::vector<int>& labels,
                int num_classes, const LdaOptions& options) {
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  const int m = x.rows();
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), m) << "label count mismatch";
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no samples";
  }

  LdaModel model;

  // Center the data; the SVD of the centered matrix is the PCA step that
  // resolves the singularity of S_t (Section II-A of the paper).
  const Vector mean = ColumnMeans(x);
  Matrix centered = x;
  SubtractRowVector(mean, &centered);

  const SvdResult svd =
      options.svd_method == SvdMethod::kGolubReinsch
          ? ThinSvdGolubReinsch(centered, options.svd_rank_tolerance)
          : ThinSvd(centered, options.svd_rank_tolerance);
  model.data_rank = svd.rank;
  if (!svd.converged || svd.rank == 0) {
    model.converged = false;
    return model;
  }
  const int r = svd.rank;

  // In the SVD basis the total scatter is the identity, and the between-class
  // scatter becomes M = H^T H where row k of H (c x r) is the scaled sum of
  // the class-k rows of U: h_k = (1/sqrt(m_k)) sum_{i in k} U_i. Following
  // the paper's trick we eigendecompose the small side G = H H^T (c x c) and
  // recover the r-dimensional eigenvectors b = H^T q / sqrt(lambda).
  Matrix h(num_classes, r);
  for (int i = 0; i < m; ++i) {
    const double* u_row = svd.u.RowPtr(i);
    double* h_row = h.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < r; ++j) h_row[j] += u_row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv_sqrt = 1.0 / std::sqrt(
        static_cast<double>(counts[static_cast<size_t>(k)]));
    double* h_row = h.RowPtr(k);
    for (int j = 0; j < r; ++j) h_row[j] *= inv_sqrt;
  }

  const Matrix g = OuterGram(h);  // c x c
  const SymmetricEigenResult eigen = SymmetricEigen(g);
  if (!eigen.converged) {
    model.converged = false;
    return model;
  }

  // Keep eigenvalues above tolerance, at most c-1 of them, largest first.
  int num_directions = 0;
  for (int j = num_classes - 1; j >= 0; --j) {
    if (eigen.eigenvalues[j] <= options.eigen_tolerance) break;
    if (num_directions == num_classes - 1) break;
    ++num_directions;
  }
  model.num_directions = num_directions;

  // b_j = H^T q_j (so that ||b_j|| = sqrt(lambda_j)); a_j = V Sigma^{-1} b_j.
  // The sqrt(lambda) length makes the embedding metrically equivalent to the
  // optimal-scoring / spectral-regression form (each whitened direction is
  // weighted by its discriminative strength), which is what lets SRDA and
  // the eigen-based solvers agree in nearest-centroid accuracy.
  Matrix b(r, num_directions);
  for (int d = 0; d < num_directions; ++d) {
    const int src = num_classes - 1 - d;
    for (int k = 0; k < num_classes; ++k) {
      const double weight = eigen.eigenvectors(k, src);
      if (weight == 0.0) continue;
      const double* h_row = h.RowPtr(k);
      for (int j = 0; j < r; ++j) b(j, d) += weight * h_row[j];
    }
  }
  // Scale rows of b by 1/sigma, then map through V.
  for (int j = 0; j < r; ++j) {
    const double inv_sigma = 1.0 / svd.singular_values[j];
    for (int d = 0; d < num_directions; ++d) b(j, d) *= inv_sigma;
  }
  Matrix projection = Multiply(svd.v, b);  // n x d

  // Bias recenters embeddings: y = P^T (x - mean).
  Vector bias(num_directions);
  const Vector mean_projected = MultiplyTransposed(projection, mean);
  for (int d = 0; d < num_directions; ++d) bias[d] = -mean_projected[d];

  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
