// Exact (regularized) Kernel Discriminant Analysis — the O(m^3) baseline
// that Kernel SRDA (ksrda.h) accelerates, mirroring the comparison in the
// paper's reference [14].
//
// In coefficient space the kernel Fisher criterion becomes the generalized
// eigenproblem  (K Ybar)(K Ybar)^T c = lambda (K K + rho K + eps I) c,
// where Ybar are the spectral responses (the between-class structure) and
// the right-hand side is the regularized kernel total scatter. The rank of
// the numerator is c-1, so after one Cholesky factorization the problem
// collapses to (c-1) x (c-1) — but forming K K alone is already O(m^3),
// which is exactly the cost KSRDA avoids by regressing instead.

#ifndef SRDA_CORE_KDA_H_
#define SRDA_CORE_KDA_H_

#include <memory>
#include <vector>

#include "kernel/kernel.h"
#include "matrix/matrix.h"

namespace srda {

struct KdaOptions {
  // Regularizer rho on the kernel scatter (rho * K term).
  double alpha = 0.01;
  // Small absolute ridge keeping the right-hand side positive definite.
  double epsilon = 1e-8;
};

// A trained exact-KDA model; same interface shape as KsrdaModel.
class KdaModel {
 public:
  KdaModel() = default;

  bool converged() const { return converged_; }
  int output_dim() const { return coefficients_.cols(); }

  // Embeds each row of `queries` into the discriminant space.
  Matrix Transform(const Matrix& queries) const;

  const Matrix& coefficients() const { return coefficients_; }

 private:
  friend KdaModel FitKda(const Matrix&, const std::vector<int>&, int,
                         std::shared_ptr<const Kernel>, const KdaOptions&);

  std::shared_ptr<const Kernel> kernel_;
  Matrix train_points_;
  Matrix coefficients_;  // m x (c-1)
  bool converged_ = false;
};

// Trains exact KDA on dense data (rows are samples).
KdaModel FitKda(const Matrix& x, const std::vector<int>& labels,
                int num_classes, std::shared_ptr<const Kernel> kernel,
                const KdaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_KDA_H_
