// SRDA regularization path: solutions for a whole grid of ridge parameters
// from a single SVD.
//
// Figure 5 of the paper sweeps alpha over a grid and retrains SRDA at every
// point. With the thin SVD Xc = U S V^T computed once, the ridge solution
// for ANY alpha is
//
//   A(alpha) = V diag(s_k / (s_k^2 + alpha)) U^T Ybar,
//
// so each additional alpha costs only O(t * (c-1)) after the O(m n t)
// factorization — the whole Figure 5 curve for roughly the price of one
// training run.

#ifndef SRDA_CORE_SRDA_PATH_H_
#define SRDA_CORE_SRDA_PATH_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {

struct SrdaPathOptions {
  // Relative truncation threshold for the data SVD.
  double svd_rank_tolerance = 1e-10;
};

// Precomputes the SVD of the centered data and the projected responses, then
// produces the exact primal-ridge SRDA embedding for any alpha on demand.
class SrdaRegularizationPath {
 public:
  SrdaRegularizationPath() = default;

  // Factorizes the problem. Returns false if the SVD fails (practically
  // never) — the object is unusable then.
  bool Fit(const Matrix& x, const std::vector<int>& labels, int num_classes,
           const SrdaPathOptions& options = {});

  bool fitted() const { return fitted_; }

  // The embedding at ridge parameter `alpha` > 0 (or alpha == 0 if the data
  // has full column rank). Equal to FitSrda's normal-equations solution.
  LinearEmbedding EmbeddingAt(double alpha) const;

  // Rank of the centered data used by the factorization.
  int data_rank() const { return rank_; }

 private:
  Matrix v_;                 // n x r right singular vectors
  Vector singular_values_;   // r
  Matrix projected_;         // r x (c-1): U^T Ybar
  Vector mean_;              // feature means
  int rank_ = 0;
  bool fitted_ = false;
};

}  // namespace srda

#endif  // SRDA_CORE_SRDA_PATH_H_
