// SRDA regularization path: solutions for a whole grid of ridge parameters
// from one cached Gram factorization base.
//
// Figure 5 of the paper sweeps alpha over a grid and retrains SRDA at every
// point. The alpha-independent work — centering and the Gram product X̄ᵀX̄
// (or the dual X̄X̄ᵀ) — is computed once at Fit time and cached inside a
// RidgeSolver; every EmbeddingAt(alpha) then costs one Cholesky
// refactorization plus back-substitutions (§III-C: the O(m n²) Gram build
// dominates the O(n³/3) factor at paper shapes, so the whole Figure 5 curve
// comes out close to the price of one training run).

#ifndef SRDA_CORE_SRDA_PATH_H_
#define SRDA_CORE_SRDA_PATH_H_

#include <memory>
#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"
#include "solver/ridge_solver.h"

namespace srda {

// Precomputes the responses and the solver's Gram cache, then produces the
// exact ridge SRDA embedding for any alpha on demand. Because EmbeddingAt
// reuses and refreshes the internal factor cache, instances are not
// thread-safe; share one per thread instead.
class SrdaRegularizationPath {
 public:
  SrdaRegularizationPath() = default;
  SrdaRegularizationPath(const SrdaRegularizationPath&) = delete;
  SrdaRegularizationPath& operator=(const SrdaRegularizationPath&) = delete;

  // Copies the data and generates the responses; the Gram cache is built on
  // the first EmbeddingAt call and reused by all subsequent ones. Always
  // returns true (argument misuse aborts via SRDA_CHECK).
  bool Fit(const Matrix& x, const std::vector<int>& labels, int num_classes);

  bool fitted() const { return fitted_; }

  // The embedding at ridge parameter `alpha` >= 0. Bitwise equal to
  // FitSrda's normal-equations solution at the same alpha; aborts if
  // alpha == 0 makes the regularized Gram singular (rank-deficient data).
  LinearEmbedding EmbeddingAt(double alpha) const;

 private:
  Matrix x_;          // owned copy the solver is bound to
  Matrix responses_;  // m x (c-1)
  mutable std::unique_ptr<RidgeSolver> solver_;
  bool fitted_ = false;
};

}  // namespace srda

#endif  // SRDA_CORE_SRDA_PATH_H_
