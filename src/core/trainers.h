// By-name dispatch over the dense discriminant trainers.
//
// Every trainer in src/core fits the same shape of artifact — a
// LinearEmbedding — but each exposes its own Fit function, options struct,
// and model type. This registry collapses the six dense trainers behind one
// entry point so the tools and the model store (src/model) handle "an
// algorithm" as a string: srda, lda, rlda, idr_qr, fisherfaces, semi_srda.
// (PCA is excluded: it is an unsupervised preprocessor, not a discriminant
// trainer, and produces no class structure to hang a classifier head on.)
//
// The srda entry carries its solver diagnostics (LSQR convergence records,
// sketch-solve error bounds) through TrainResult so callers keep the
// reporting the dedicated FitSrda path had.

#ifndef SRDA_CORE_TRAINERS_H_
#define SRDA_CORE_TRAINERS_H_

#include <string>
#include <vector>

#include "core/embedding.h"
#include "core/srda.h"
#include "matrix/matrix.h"

namespace srda {

// Options shared across every dense trainer; fields that do not apply to a
// given trainer are ignored (alpha feeds srda/rlda/semi_srda, the solver
// knobs and sketch feed srda only).
struct TrainerOptions {
  double alpha = 1.0;
  SrdaSolver solver = SrdaSolver::kNormalEquations;
  int lsqr_iterations = 20;
  SketchConfig sketch;
};

struct TrainResult {
  LinearEmbedding embedding;
  // SRDA solver diagnostics; empty/zero for every other trainer.
  int total_lsqr_iterations = 0;
  std::vector<RidgeRhsDiagnostics> lsqr_diagnostics;
  std::vector<double> sketch_error_bounds;
};

// The registered trainer names, in canonical order.
const std::vector<std::string>& DenseTrainerNames();

// True when `name` names a registered dense trainer.
bool IsDenseTrainer(const std::string& name);

// Fits trainer `name` on dense data (rows are samples, labels compact in
// [0, num_classes)). Aborts on an unknown name or a failed fit; use
// IsDenseTrainer to validate user input first.
TrainResult TrainDenseByName(const std::string& name, const Matrix& x,
                             const std::vector<int>& labels, int num_classes,
                             const TrainerOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_TRAINERS_H_
