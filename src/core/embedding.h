// The result of training any discriminant method: an affine map from the
// input feature space to the low-dimensional discriminant space.

#ifndef SRDA_CORE_EMBEDDING_H_
#define SRDA_CORE_EMBEDDING_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"
#include "sparse/sparse_matrix.h"

namespace srda {

// An affine embedding y = W^T x + b with W (n x d) and b (d). All four
// algorithms in this library (LDA, RLDA, SRDA, IDR/QR) produce one of these;
// downstream classification is identical regardless of the trainer.
class LinearEmbedding {
 public:
  LinearEmbedding() = default;

  // `projection` is n x d (one column per discriminant direction); `bias`
  // has d entries.
  LinearEmbedding(Matrix projection, Vector bias);

  int input_dim() const { return projection_.rows(); }
  int output_dim() const { return projection_.cols(); }

  // Embeds each row of `x` (m x n) into the discriminant space (m x d).
  Matrix Transform(const Matrix& x) const;

  // Same for sparse inputs; never densifies `x`.
  Matrix Transform(const SparseMatrix& x) const;

  const Matrix& projection() const { return projection_; }
  const Vector& bias() const { return bias_; }

 private:
  Matrix projection_;
  Vector bias_;
};

}  // namespace srda

#endif  // SRDA_CORE_EMBEDDING_H_
