#include "core/embedding.h"

#include "common/check.h"
#include "matrix/blas.h"

namespace srda {

LinearEmbedding::LinearEmbedding(Matrix projection, Vector bias)
    : projection_(std::move(projection)), bias_(std::move(bias)) {
  SRDA_CHECK_EQ(bias_.size(), projection_.cols())
      << "bias dimension must match the number of projection columns";
}

Matrix LinearEmbedding::Transform(const Matrix& x) const {
  SRDA_CHECK_EQ(x.cols(), projection_.rows())
      << "input dimension " << x.cols() << " does not match embedding "
      << projection_.rows();
  Matrix embedded = Multiply(x, projection_);
  for (int i = 0; i < embedded.rows(); ++i) {
    double* row = embedded.RowPtr(i);
    for (int j = 0; j < embedded.cols(); ++j) row[j] += bias_[j];
  }
  return embedded;
}

Matrix LinearEmbedding::Transform(const SparseMatrix& x) const {
  SRDA_CHECK_EQ(x.cols(), projection_.rows())
      << "input dimension " << x.cols() << " does not match embedding "
      << projection_.rows();
  Matrix embedded = x.MultiplyDense(projection_);
  for (int i = 0; i < embedded.rows(); ++i) {
    double* row = embedded.RowPtr(i);
    for (int j = 0; j < embedded.cols(); ++j) row[j] += bias_[j];
  }
  return embedded;
}

}  // namespace srda
