// Principal Component Analysis via the cross-product thin SVD.
//
// Section II-A of the paper notes that the SVD of the centered data matrix
// "is exactly the same as the PCA", and uses this to justify the classical
// two-stage PCA+LDA pipeline (Belhumeur et al.'s Fisherfaces); see
// fisherfaces.h for that pipeline built on top of this module.

#ifndef SRDA_CORE_PCA_H_
#define SRDA_CORE_PCA_H_

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {

struct PcaOptions {
  // Keep at most this many components (0 = keep all up to the numerical
  // rank).
  int max_components = 0;
  // Keep the smallest number of components explaining at least this fraction
  // of the total variance (applied after max_components; 1.0 disables).
  double variance_to_keep = 1.0;
  // Relative singular-value truncation threshold.
  double rank_tolerance = 1e-10;
};

struct PcaModel {
  LinearEmbedding embedding;
  // Per-component explained variance (descending), length = output_dim.
  Vector explained_variance;
  // Fraction of total variance captured by the kept components.
  double captured_variance_ratio = 0.0;
  bool converged = false;
};

// Fits PCA on dense data (rows are samples). The embedding maps x to the
// centered principal coordinates: y = V^T (x - mean).
PcaModel FitPca(const Matrix& x, const PcaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_PCA_H_
