#include "core/srda_path.h"

#include <cmath>

#include "common/check.h"
#include "core/responses.h"
#include "linalg/svd.h"
#include "matrix/blas.h"

namespace srda {

bool SrdaRegularizationPath::Fit(const Matrix& x,
                                 const std::vector<int>& labels,
                                 int num_classes,
                                 const SrdaPathOptions& options) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";
  fitted_ = false;

  const Matrix responses = GenerateSrdaResponses(labels, num_classes);

  mean_ = ColumnMeans(x);
  Matrix centered = x;
  SubtractRowVector(mean_, &centered);

  const SvdResult svd = ThinSvd(centered, options.svd_rank_tolerance);
  if (!svd.converged || svd.rank == 0) return false;
  rank_ = svd.rank;
  v_ = svd.v;
  singular_values_ = svd.singular_values;
  projected_ = MultiplyTransposedA(svd.u, responses);  // r x (c-1)
  fitted_ = true;
  return true;
}

LinearEmbedding SrdaRegularizationPath::EmbeddingAt(double alpha) const {
  SRDA_CHECK(fitted_) << "EmbeddingAt before a successful Fit";
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";

  // Filtered coefficients in the SVD basis: s / (s^2 + alpha) per direction.
  Matrix filtered = projected_;
  for (int k = 0; k < rank_; ++k) {
    const double s = singular_values_[k];
    const double factor = s / (s * s + alpha);
    SRDA_CHECK(std::isfinite(factor))
        << "alpha == 0 on rank-deficient data";
    for (int j = 0; j < filtered.cols(); ++j) filtered(k, j) *= factor;
  }
  Matrix projection = Multiply(v_, filtered);  // n x (c-1)

  Vector bias(projection.cols());
  const Vector mean_projected = MultiplyTransposed(projection, mean_);
  for (int j = 0; j < bias.size(); ++j) bias[j] = -mean_projected[j];
  return LinearEmbedding(std::move(projection), std::move(bias));
}

}  // namespace srda
