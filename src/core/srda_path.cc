#include "core/srda_path.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "core/responses.h"

namespace srda {

bool SrdaRegularizationPath::Fit(const Matrix& x,
                                 const std::vector<int>& labels,
                                 int num_classes) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";
  fitted_ = false;
  solver_.reset();  // must not outlive the old x_

  responses_ = GenerateSrdaResponses(labels, num_classes);
  x_ = x;
  solver_ = std::make_unique<RidgeSolver>(&x_);
  fitted_ = true;
  return true;
}

LinearEmbedding SrdaRegularizationPath::EmbeddingAt(double alpha) const {
  SRDA_CHECK(fitted_) << "EmbeddingAt before a successful Fit";
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";

  RidgeSolution solution = solver_->Solve(responses_, alpha);
  SRDA_CHECK(solution.ok) << "alpha == 0 on rank-deficient data";
  return LinearEmbedding(std::move(solution.coefficients),
                         std::move(solution.bias));
}

}  // namespace srda
