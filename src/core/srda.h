// Spectral Regression Discriminant Analysis — the paper's contribution.
//
// SRDA replaces LDA's dense eigendecomposition with (1) closed-form spectral
// responses of the class graph matrix and (2) one ridge regression per
// response (Section III). Two solvers are provided, matching Section III-C:
//
//  * Normal equations (dense data): factor X^T X + alpha I once by Cholesky
//    (or the exact m x m dual X X^T + alpha I when n > m) and back-solve for
//    each of the c-1 responses. O(m n t) time — up to 9x cheaper than LDA.
//  * LSQR (dense or sparse data): matrix-free damped least squares. Each
//    iteration costs two matrix-vector products, so sparse data trains in
//    O(k c m s) — linear in everything, the paper's headline result.
//
// The regression bias is kept out of the ridge penalty (Eq. 15 regularizes
// only the projection): the LSQR path solves against an implicitly centered
// operator (A - 1 mean^T, a matrix-free rank-1 correction) and recovers
// b = -mean^T a, so sparse inputs are never explicitly centered or
// densified. The c-1 independent regressions and the underlying kernels run
// on the parallel execution layer (common/parallel.h) with results bitwise
// independent of the thread count.
//
// Both solves are delegated to the shared RidgeSolver engine
// (solver/ridge_solver.h). The solver-taking overload below exposes the
// engine's Gram cache: bind one solver to the training data and sweep the
// alpha grid at factor-only cost per point (model selection, Figure 5).

#ifndef SRDA_CORE_SRDA_H_
#define SRDA_CORE_SRDA_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"
#include "solver/ridge_solver.h"
#include "sparse/sparse_matrix.h"

namespace srda {

enum class SrdaSolver {
  kNormalEquations,
  kLsqr,
};

struct SrdaOptions {
  // Ridge penalty; the paper sets 1 by default and studies sensitivity in
  // its Figure 5. Must be > 0 for a unique solution when n > m.
  double alpha = 1.0;
  // Solver for the regularized least-squares problems (dense data only;
  // sparse data always uses LSQR).
  SrdaSolver solver = SrdaSolver::kNormalEquations;
  // LSQR iteration cap; the paper uses 15-20.
  int lsqr_iterations = 20;
  // LSQR early-stopping tolerances.
  double lsqr_atol = 1e-10;
  double lsqr_btol = 1e-10;
  // Randomized sketching (solver/ridge_solver.h): kOff trains exactly as
  // before; kPrecondition runs LSQR with the factored sketched Gram as a
  // right preconditioner (exact solutions, fewer iterations; forces the
  // LSQR solver); kSolve returns the sketched solution directly with
  // per-response error bounds (SrdaModel::sketch_error_bounds).
  SketchConfig sketch;
};

struct SrdaModel {
  LinearEmbedding embedding;
  // Number of responses regressed (= c-1).
  int num_responses = 0;
  // Total LSQR iterations across all responses (0 for normal equations).
  int total_lsqr_iterations = 0;
  // Per-response LSQR convergence record (iterations, final residual, stop
  // reason); empty on the normal-equations path.
  std::vector<RidgeRhsDiagnostics> lsqr_diagnostics;
  // Upper bounds on the distance from each response's coefficients to the
  // exact ridge solution; filled by SketchMode::kSolve fits only.
  std::vector<double> sketch_error_bounds;
  bool converged = false;
};

// Trains SRDA on dense data (rows are samples).
SrdaModel FitSrda(const Matrix& x, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options = {});

// Trains SRDA on sparse data with LSQR; the data matrix is only touched
// through A*x / A^T*x products.
SrdaModel FitSrda(const SparseMatrix& x, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options = {});

// Trains SRDA through a caller-provided RidgeSolver already bound to the
// training data. Consecutive calls with different alphas reuse the solver's
// cached Gram, so an alpha sweep pays only one Cholesky refactorization per
// grid point. The solver must be bound to the same samples the labels
// describe.
SrdaModel FitSrda(RidgeSolver* solver, const std::vector<int>& labels,
                  int num_classes, const SrdaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_SRDA_H_
