#include "core/incremental_srda.h"

#include <cmath>

#include "common/check.h"
#include "linalg/cholesky.h"
#include "linalg/cholesky_update.h"

namespace srda {
namespace {

// Orthonormalizes the class-value columns [1, e_1, .., e_c] under the
// weighted inner product <u, v> = sum_k count_k u_k v_k — the compressed
// form of the response generation of responses.cc, exact because every
// response is constant within a class. Returns the c x (c-1) class-value
// matrix V: response j assigns value V(k, j) to samples of class k.
Matrix ClassResponseValues(const std::vector<int>& counts) {
  const int c = static_cast<int>(counts.size());
  // Columns: ones, then the c indicators.
  Matrix basis(c, c + 1);
  for (int k = 0; k < c; ++k) {
    basis(k, 0) = 1.0;
    basis(k, 1 + k) = 1.0;
  }
  auto weighted_dot = [&](int col_a, int col_b) {
    double sum = 0.0;
    for (int k = 0; k < c; ++k) {
      sum += counts[static_cast<size_t>(k)] * basis(k, col_a) *
             basis(k, col_b);
    }
    return sum;
  };

  std::vector<int> kept;
  for (int j = 0; j < c + 1; ++j) {
    const double original_norm = std::sqrt(weighted_dot(j, j));
    for (int pass = 0; pass < 2; ++pass) {
      for (int kept_col : kept) {
        const double proj = weighted_dot(kept_col, j);
        for (int k = 0; k < c; ++k) basis(k, j) -= proj * basis(k, kept_col);
      }
    }
    const double residual_norm = std::sqrt(weighted_dot(j, j));
    if (original_norm == 0.0 || residual_norm <= 1e-10 * original_norm) {
      continue;
    }
    const double inv = 1.0 / residual_norm;
    for (int k = 0; k < c; ++k) basis(k, j) *= inv;
    kept.push_back(j);
  }
  SRDA_CHECK_EQ(static_cast<int>(kept.size()), c)
      << "unexpected rank in compressed response generation";

  // Drop the ones vector (always kept first).
  Matrix values(c, c - 1);
  for (int out = 1; out < c; ++out) {
    for (int k = 0; k < c; ++k) values(k, out - 1) = basis(k, kept[out]);
  }
  return values;
}

}  // namespace

IncrementalSrda::IncrementalSrda(int num_features, int num_classes,
                                 double alpha)
    : num_features_(num_features), num_classes_(num_classes) {
  SRDA_CHECK_GT(num_features, 0);
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_GT(alpha, 0.0)
      << "incremental SRDA needs alpha > 0 to stay positive definite";
  // Factor of alpha * I: sqrt(alpha) on the diagonal.
  chol_factor_ = Matrix(num_features + 1, num_features + 1);
  const double sqrt_alpha = std::sqrt(alpha);
  for (int i = 0; i <= num_features; ++i) chol_factor_(i, i) = sqrt_alpha;
  class_sums_ = Matrix(num_classes, num_features);
  counts_.assign(static_cast<size_t>(num_classes), 0);
}

void IncrementalSrda::AddSample(const Vector& features, int label) {
  SRDA_CHECK_EQ(features.size(), num_features_) << "feature size mismatch";
  SRDA_CHECK(label >= 0 && label < num_classes_)
      << "label " << label << " outside [0, " << num_classes_ << ")";
  // Augmented sample [x; 1].
  Vector augmented(num_features_ + 1);
  for (int j = 0; j < num_features_; ++j) augmented[j] = features[j];
  augmented[num_features_] = 1.0;
  CholeskyRank1Update(&chol_factor_, std::move(augmented));

  double* sums = class_sums_.RowPtr(label);
  for (int j = 0; j < num_features_; ++j) sums[j] += features[j];
  ++counts_[static_cast<size_t>(label)];
  ++total_count_;
}

void IncrementalSrda::AddShard(const Matrix& features,
                               const std::vector<int>& labels) {
  const int k = features.rows();
  SRDA_CHECK_GT(k, 0) << "empty shard";
  SRDA_CHECK_EQ(features.cols(), num_features_) << "feature size mismatch";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), k)
      << "label count mismatch";
  // Augmented shard [X 1]; one blocked rank-k update of the factor.
  Matrix augmented(k, num_features_ + 1);
  for (int i = 0; i < k; ++i) {
    const int label = labels[static_cast<size_t>(i)];
    SRDA_CHECK(label >= 0 && label < num_classes_)
        << "label " << label << " outside [0, " << num_classes_ << ")";
    const double* src = features.RowPtr(i);
    double* dst = augmented.RowPtr(i);
    for (int j = 0; j < num_features_; ++j) dst[j] = src[j];
    dst[num_features_] = 1.0;
  }
  CholeskyRankKUpdate(&chol_factor_, augmented);
  for (int i = 0; i < k; ++i) {
    const double* src = features.RowPtr(i);
    double* sums = class_sums_.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < num_features_; ++j) sums[j] += src[j];
    ++counts_[static_cast<size_t>(labels[static_cast<size_t>(i)])];
  }
  total_count_ += k;
}

bool IncrementalSrda::ready() const {
  for (int count : counts_) {
    if (count == 0) return false;
  }
  return true;
}

LinearEmbedding IncrementalSrda::Solve() const {
  SRDA_CHECK(ready()) << "Solve before every class has a sample";
  const Matrix values = ClassResponseValues(counts_);
  const int d = num_classes_ - 1;

  // RHS column j: [sum_k V(k,j) class_sum_k ; sum_k V(k,j) count_k].
  Matrix projection(num_features_, d);
  Vector bias(d);
  for (int j = 0; j < d; ++j) {
    Vector rhs(num_features_ + 1);
    for (int k = 0; k < num_classes_; ++k) {
      const double weight = values(k, j);
      const double* sums = class_sums_.RowPtr(k);
      for (int f = 0; f < num_features_; ++f) rhs[f] += weight * sums[f];
      rhs[num_features_] += weight * counts_[static_cast<size_t>(k)];
    }
    const Vector solution = BackSubstituteTransposed(
        chol_factor_, ForwardSubstitute(chol_factor_, rhs));
    for (int f = 0; f < num_features_; ++f) projection(f, j) = solution[f];
    bias[j] = solution[num_features_];
  }
  return LinearEmbedding(std::move(projection), std::move(bias));
}

}  // namespace srda
