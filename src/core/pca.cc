#include "core/pca.h"

#include "common/check.h"
#include "linalg/svd.h"
#include "matrix/blas.h"

namespace srda {

PcaModel FitPca(const Matrix& x, const PcaOptions& options) {
  SRDA_CHECK_GT(x.rows(), 1) << "PCA needs at least two samples";
  SRDA_CHECK_GE(options.max_components, 0);
  SRDA_CHECK(options.variance_to_keep > 0.0 &&
             options.variance_to_keep <= 1.0)
      << "variance_to_keep must be in (0, 1]";

  PcaModel model;
  const Vector mean = ColumnMeans(x);
  Matrix centered = x;
  SubtractRowVector(mean, &centered);

  const SvdResult svd = ThinSvd(centered, options.rank_tolerance);
  if (!svd.converged) return model;

  // Explained variance of component k is sigma_k^2 / (m - 1).
  const double inv_dof = 1.0 / (x.rows() - 1);
  double total_variance = 0.0;
  for (int k = 0; k < svd.rank; ++k) {
    total_variance +=
        svd.singular_values[k] * svd.singular_values[k] * inv_dof;
  }

  int keep = svd.rank;
  if (options.max_components > 0) {
    keep = std::min(keep, options.max_components);
  }
  if (options.variance_to_keep < 1.0 && total_variance > 0.0) {
    double cumulative = 0.0;
    int needed = 0;
    while (needed < keep) {
      cumulative += svd.singular_values[needed] *
                    svd.singular_values[needed] * inv_dof;
      ++needed;
      if (cumulative >= options.variance_to_keep * total_variance) break;
    }
    keep = needed;
  }

  Matrix projection(x.cols(), keep);
  model.explained_variance = Vector(keep);
  double captured = 0.0;
  for (int k = 0; k < keep; ++k) {
    for (int j = 0; j < x.cols(); ++j) projection(j, k) = svd.v(j, k);
    const double variance =
        svd.singular_values[k] * svd.singular_values[k] * inv_dof;
    model.explained_variance[k] = variance;
    captured += variance;
  }
  model.captured_variance_ratio =
      total_variance > 0.0 ? captured / total_variance : 0.0;

  Vector bias(keep);
  const Vector mean_projected = MultiplyTransposed(projection, mean);
  for (int k = 0; k < keep; ++k) bias[k] = -mean_projected[k];
  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
