#include "core/semi_supervised_srda.h"

#include <cmath>

#include "common/check.h"
#include "linalg/gram_schmidt.h"
#include "linalg/linear_operator.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace {

// The label-block graph of the paper's Eqn. 6, restricted to labeled
// samples: w_ij = 1/m_k when i and j are both labeled with class k.
Matrix LabelGraph(const std::vector<int>& labels, int num_classes) {
  const int m = static_cast<int>(labels.size());
  std::vector<int> counts(static_cast<size_t>(num_classes), 0);
  for (int label : labels) {
    if (label == kUnlabeled) continue;
    SRDA_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
    ++counts[static_cast<size_t>(label)];
  }
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no labeled samples";
  }
  Matrix w(m, m);
  for (int i = 0; i < m; ++i) {
    if (labels[static_cast<size_t>(i)] == kUnlabeled) continue;
    const int k = labels[static_cast<size_t>(i)];
    const double weight = 1.0 / counts[static_cast<size_t>(k)];
    for (int j = 0; j < m; ++j) {
      if (labels[static_cast<size_t>(j)] == k) w(i, j) = weight;
    }
  }
  return w;
}

// Adds a weighted sparse affinity graph into the dense combined graph.
void AccumulateGraph(const SparseMatrix& affinity, double weight, Matrix* w) {
  for (int i = 0; i < affinity.rows(); ++i) {
    const int* cols = affinity.RowIndices(i);
    const double* values = affinity.RowValues(i);
    for (int e = 0; e < affinity.RowNonZeros(i); ++e) {
      (*w)(i, cols[e]) += weight * values[e];
    }
  }
}

// Spectral step shared by both data layouts: solves W y = lambda D y on the
// combined graph and returns up to c-1 response vectors orthogonal to the
// ones vector (empty matrix on failure).
Matrix SpectralResponses(Matrix w, int num_classes, double eigen_tolerance) {
  const int m = w.rows();
  Vector degrees(m);
  for (int i = 0; i < m; ++i) {
    double sum = 0.0;
    const double* row = w.RowPtr(i);
    for (int j = 0; j < m; ++j) sum += row[j];
    // Isolated vertices get a unit degree so normalization stays defined.
    degrees[i] = sum > 0.0 ? sum : 1.0;
  }
  Matrix normalized(m, m);
  for (int i = 0; i < m; ++i) {
    const double di = 1.0 / std::sqrt(degrees[i]);
    for (int j = 0; j < m; ++j) {
      normalized(i, j) = di * w(i, j) / std::sqrt(degrees[j]);
    }
  }

  const SymmetricEigenResult eigen = SymmetricEigen(normalized);
  if (!eigen.converged) return Matrix();

  // Top eigenvectors; the very top one is the trivial constant-like vector
  // (D^{1/2} 1 direction), so request c vectors and remove the span of ones
  // afterwards with Gram-Schmidt, exactly as the supervised recipe does.
  const int take = std::min(num_classes, m);
  Matrix responses(m, take + 1);
  for (int i = 0; i < m; ++i) responses(i, 0) = 1.0;  // ones first
  for (int r = 0; r < take; ++r) {
    const int src = m - 1 - r;
    if (eigen.eigenvalues[src] <= eigen_tolerance) break;
    for (int i = 0; i < m; ++i) {
      responses(i, r + 1) =
          eigen.eigenvectors(i, src) / std::sqrt(degrees[i]);
    }
  }
  const int kept = ModifiedGramSchmidt(&responses);
  if (kept <= 1) return Matrix();  // Only the trivial vector survived.
  const int num_responses = std::min(kept - 1, num_classes - 1);
  Matrix result(m, num_responses);
  for (int j = 0; j < num_responses; ++j) {
    for (int i = 0; i < m; ++i) result(i, j) = responses(i, j + 1);
  }
  return result;
}

}  // namespace

SemiSupervisedSrdaModel FitSemiSupervisedSrda(
    const Matrix& x, const std::vector<int>& labels, int num_classes,
    const SemiSupervisedSrdaOptions& options) {
  const int m = x.rows();
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), m) << "label count mismatch";
  SRDA_CHECK_GT(m, 1) << "need at least two samples";
  SRDA_CHECK_GE(options.alpha, 0.0) << "alpha must be non-negative";
  SRDA_CHECK_GE(options.graph_weight, 0.0);

  SemiSupervisedSrdaModel model;

  // Combined graph: label blocks + weighted kNN affinity.
  Matrix w = LabelGraph(labels, num_classes);
  if (options.graph_weight > 0.0) {
    AccumulateGraph(BuildKnnGraph(x, options.graph), options.graph_weight,
                    &w);
  }
  const Matrix responses =
      SpectralResponses(std::move(w), num_classes, options.eigen_tolerance);
  if (responses.cols() == 0) return model;
  model.num_directions = responses.cols();

  // Regression step on implicitly centered data (identical to supervised
  // SRDA's normal-equations path; the engine picks primal vs dual by shape).
  // A failed factorization — alpha == 0 on rank-deficient data — leaves
  // converged == false.
  RidgeSolver solver(&x);
  RidgeSolution solution = solver.Solve(responses, options.alpha);
  if (!solution.ok) return model;

  model.embedding = LinearEmbedding(std::move(solution.coefficients),
                                    std::move(solution.bias));
  model.converged = true;
  return model;
}

SemiSupervisedSrdaModel FitSemiSupervisedSrda(
    const SparseMatrix& x, const std::vector<int>& labels, int num_classes,
    const SemiSupervisedSrdaOptions& options) {
  const int m = x.rows();
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), m) << "label count mismatch";
  SRDA_CHECK_GT(m, 1) << "need at least two samples";
  SRDA_CHECK_GE(options.alpha, 0.0) << "alpha must be non-negative";
  SRDA_CHECK_GE(options.graph_weight, 0.0);
  SRDA_CHECK_GT(options.lsqr_iterations, 0);

  SemiSupervisedSrdaModel model;

  Matrix w = LabelGraph(labels, num_classes);
  if (options.graph_weight > 0.0) {
    AccumulateGraph(BuildCosineKnnGraph(x, options.graph.num_neighbors),
                    options.graph_weight, &w);
  }
  const Matrix responses =
      SpectralResponses(std::move(w), num_classes, options.eigen_tolerance);
  if (responses.cols() == 0) return model;
  model.num_directions = responses.cols();

  // Regression step by batched damped LSQR against [X 1]: bias absorbed,
  // the sparse matrix never centered or densified (the paper's Section
  // III-B trick), one matrix pass per iteration for all responses.
  const SparseOperator data(&x);
  RidgeSolver solver(&data, RidgeBias::kAugmentedOnes);
  RidgeSolveOptions solve_options;
  solve_options.lsqr_iterations = options.lsqr_iterations;
  RidgeSolution solution =
      solver.Solve(responses, options.alpha, solve_options);
  SRDA_CHECK(solution.ok);

  model.embedding = LinearEmbedding(std::move(solution.coefficients),
                                    std::move(solution.bias));
  model.converged = true;
  return model;
}

}  // namespace srda
