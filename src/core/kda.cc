#include "core/kda.h"

#include <cmath>

#include "common/check.h"
#include "core/responses.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {

Matrix KdaModel::Transform(const Matrix& queries) const {
  SRDA_CHECK(converged_) << "Transform on an untrained KDA model";
  SRDA_CHECK_EQ(queries.cols(), train_points_.cols())
      << "query dimension mismatch";
  const Matrix cross = KernelCrossMatrix(*kernel_, queries, train_points_);
  return Multiply(cross, coefficients_);
}

KdaModel FitKda(const Matrix& x, const std::vector<int>& labels,
                int num_classes, std::shared_ptr<const Kernel> kernel,
                const KdaOptions& options) {
  SRDA_CHECK(kernel != nullptr) << "null kernel";
  SRDA_CHECK_GT(options.alpha, 0.0) << "KDA requires alpha > 0";
  SRDA_CHECK_GT(options.epsilon, 0.0) << "KDA requires epsilon > 0";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";

  KdaModel model;
  const int m = x.rows();
  const Matrix responses = GenerateSrdaResponses(labels, num_classes);
  const int d = responses.cols();

  const Matrix k = KernelMatrix(*kernel, x);

  // Right-hand side N = K K + alpha K + eps I (SPD). Forming K K is the
  // O(m^3) step that makes exact KDA expensive. The epsilon shift and the
  // factorization go through the shared engine (base = K K + alpha K,
  // diagonal shift = epsilon).
  Matrix n_matrix = Multiply(k, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) n_matrix(i, j) += options.alpha * k(i, j);
  }
  RidgeSolver solver = RidgeSolver::FromGram(std::move(n_matrix));

  // Numerator is (K Ybar)(K Ybar)^T with rank d = c-1: collapse to d x d.
  const Matrix m_block = Multiply(k, responses);  // m x d
  RidgeSolution ridge = solver.Solve(m_block, options.epsilon);
  if (!ridge.ok) return model;
  const Matrix& solved = ridge.coefficients;  // N^{-1} (K Ybar)
  const Matrix small = MultiplyTransposedA(m_block, solved);  // d x d
  const SymmetricEigenResult eigen = SymmetricEigen(small);
  if (!eigen.converged) return model;

  // c_j = N^{-1} (K Ybar) q_j. Its N-norm is already sqrt(lambda_j), the
  // optimal-scoring-equivalent convention the other eigen trainers use.
  Matrix coefficients(m, d);
  for (int out = 0; out < d; ++out) {
    const int src = d - 1 - out;
    if (eigen.eigenvalues[src] <= 0.0) continue;
    for (int q_index = 0; q_index < d; ++q_index) {
      const double weight = eigen.eigenvectors(q_index, src);
      if (weight == 0.0) continue;
      for (int i = 0; i < m; ++i) {
        coefficients(i, out) += weight * solved(i, q_index);
      }
    }
  }

  model.coefficients_ = std::move(coefficients);
  model.train_points_ = x;
  model.kernel_ = std::move(kernel);
  model.converged_ = true;
  return model;
}

}  // namespace srda
