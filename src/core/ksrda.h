// Kernel Spectral Regression Discriminant Analysis (the paper's cited
// extension [14], Cai et al., "Efficient kernel discriminant analysis via
// spectral regression", ICDM'07).
//
// Same two steps as SRDA, with the ridge regression replaced by kernel ridge
// regression: generate the c-1 spectral responses from the labels, then
// solve (K + alpha I) a_k = ybar_k once per response after one Cholesky
// factorization of the m x m kernel matrix. Embedding a query x evaluates
// y_d(x) = sum_i a_d(i) k(x_i, x).

#ifndef SRDA_CORE_KSRDA_H_
#define SRDA_CORE_KSRDA_H_

#include <memory>
#include <vector>

#include "kernel/kernel.h"
#include "matrix/matrix.h"

namespace srda {

struct KsrdaOptions {
  // Ridge penalty on the kernel coefficients.
  double alpha = 0.01;
};

// A trained kernel discriminant model. Holds the training points (needed to
// evaluate the kernel against queries) and the dual coefficients.
class KsrdaModel {
 public:
  KsrdaModel() = default;

  // True if training succeeded.
  bool converged() const { return converged_; }

  // Number of discriminant coordinates (c - 1).
  int output_dim() const { return coefficients_.cols(); }

  // Embeds each row of `queries` into the discriminant space.
  Matrix Transform(const Matrix& queries) const;

  const Matrix& coefficients() const { return coefficients_; }

 private:
  friend KsrdaModel FitKsrda(const Matrix&, const std::vector<int>&, int,
                             std::shared_ptr<const Kernel>,
                             const KsrdaOptions&);

  std::shared_ptr<const Kernel> kernel_;
  Matrix train_points_;
  Matrix coefficients_;  // m x (c-1)
  bool converged_ = false;
};

// Trains KSRDA on dense data (rows are samples) with the given kernel.
KsrdaModel FitKsrda(const Matrix& x, const std::vector<int>& labels,
                    int num_classes, std::shared_ptr<const Kernel> kernel,
                    const KsrdaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_KSRDA_H_
