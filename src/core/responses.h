// SRDA step 1: responses generation (Section III-B of the paper).
//
// The graph matrix W of LDA has c eigenvectors with eigenvalue 1 — the
// class-indicator vectors. Taking the all-ones vector first and Gram-Schmidt
// orthogonalizing the indicators against it yields exactly c-1 response
// vectors, each orthogonal to the ones vector (so the later regressions have
// zero optimal bias on centered data) and constant within each class.

#ifndef SRDA_CORE_RESPONSES_H_
#define SRDA_CORE_RESPONSES_H_

#include <vector>

#include "matrix/matrix.h"

namespace srda {

// Returns the m x (c-1) matrix of orthonormal SRDA response vectors for the
// given labels. Every class in [0, num_classes) must appear at least once.
Matrix GenerateSrdaResponses(const std::vector<int>& labels, int num_classes);

}  // namespace srda

#endif  // SRDA_CORE_RESPONSES_H_
