#include "core/fisherfaces.h"

#include "common/check.h"
#include "core/lda.h"
#include "core/pca.h"
#include "dataset/dataset.h"
#include "matrix/blas.h"

namespace srda {

FisherfacesModel FitFisherfaces(const Matrix& x,
                                const std::vector<int>& labels,
                                int num_classes,
                                const FisherfacesOptions& options) {
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";
  SRDA_CHECK_GE(options.pca_components, 0);

  FisherfacesModel model;

  // Stage 1: PCA to m - c dimensions (or the caller's choice), which is the
  // classical recipe making the reduced S_w nonsingular.
  PcaOptions pca_options;
  pca_options.max_components = options.pca_components > 0
                                   ? options.pca_components
                                   : std::max(1, x.rows() - num_classes);
  const PcaModel pca = FitPca(x, pca_options);
  if (!pca.converged || pca.embedding.output_dim() == 0) return model;
  model.pca_components_used = pca.embedding.output_dim();

  // Stage 2: LDA in the PCA space.
  const Matrix reduced = pca.embedding.Transform(x);
  LdaOptions lda_options;
  lda_options.eigen_tolerance = options.eigen_tolerance;
  const LdaModel lda = FitLda(reduced, labels, num_classes, lda_options);
  if (!lda.converged) return model;
  model.num_directions = lda.num_directions;

  // Compose: y = W_lda^T (W_pca^T x + b_pca) + b_lda
  //            = (W_pca W_lda)^T x + (W_lda^T b_pca + b_lda).
  Matrix projection =
      Multiply(pca.embedding.projection(), lda.embedding.projection());
  Vector bias =
      MultiplyTransposed(lda.embedding.projection(), pca.embedding.bias());
  for (int d = 0; d < bias.size(); ++d) bias[d] += lda.embedding.bias()[d];

  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
