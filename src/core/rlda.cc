#include "core/rlda.h"

#include <cmath>

#include "common/check.h"
#include "dataset/dataset.h"
#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"

namespace srda {
namespace {

// Shared context computed from the training data.
struct RldaContext {
  Vector mean;
  Matrix hd;  // c x n, S_b = hd^T hd
  Cholesky chol;  // factor of S_t + alpha I
};

// Builds mean, class-sum matrix and the regularized-scatter factorization.
// Returns false if the Cholesky factorization fails.
bool PrepareContext(const Matrix& x, const std::vector<int>& labels,
                    int num_classes, double alpha, RldaContext* context) {
  const int m = x.rows();
  const int n = x.cols();
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no samples";
  }

  context->mean = ColumnMeans(x);
  Matrix centered = x;
  SubtractRowVector(context->mean, &centered);

  context->hd = Matrix(num_classes, n);
  for (int i = 0; i < m; ++i) {
    const double* row = centered.RowPtr(i);
    double* h_row = context->hd.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < n; ++j) h_row[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv_sqrt = 1.0 / std::sqrt(
        static_cast<double>(counts[static_cast<size_t>(k)]));
    double* h_row = context->hd.RowPtr(k);
    for (int j = 0; j < n; ++j) h_row[j] *= inv_sqrt;
  }

  Matrix st = Gram(centered);
  AddDiagonal(alpha, &st);
  return context->chol.Factor(st);
}

// Extracts the top eigenpairs (descending) above tolerance, at most c-1.
int CountDirections(const SymmetricEigenResult& eigen, int num_classes,
                    double tolerance) {
  const int size = eigen.eigenvalues.size();
  int num_directions = 0;
  for (int j = size - 1; j >= 0; --j) {
    if (eigen.eigenvalues[j] <= tolerance) break;
    if (num_directions == num_classes - 1) break;
    ++num_directions;
  }
  return num_directions;
}

}  // namespace

RldaModel FitRlda(const Matrix& x, const std::vector<int>& labels,
                  int num_classes, const RldaOptions& options) {
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_GT(options.alpha, 0.0) << "RLDA requires alpha > 0";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";

  RldaModel model;
  const int n = x.cols();

  RldaContext context;
  if (!PrepareContext(x, labels, num_classes, options.alpha, &context)) {
    model.converged = false;
    return model;
  }
  const Matrix& l = context.chol.factor();

  Matrix projection;
  if (options.exploit_low_rank) {
    // Y = (S_t + alpha I)^{-1} Hd^T (n x c); C = Hd Y (c x c). Eigenvectors
    // q of C give generalized eigenvectors a = Y q; like LDA, directions are
    // left with sqrt(lambda) length (optimal-scoring-equivalent metric).
    const Matrix y = context.chol.SolveMatrix(context.hd.Transposed());
    const Matrix c_small = Multiply(context.hd, y);
    const SymmetricEigenResult eigen = SymmetricEigen(c_small);
    if (!eigen.converged) {
      model.converged = false;
      return model;
    }
    const int num_directions =
        CountDirections(eigen, num_classes, options.eigen_tolerance);
    model.num_directions = num_directions;
    projection = Matrix(n, num_directions);
    for (int d = 0; d < num_directions; ++d) {
      const int src = num_classes - 1 - d;
      for (int k = 0; k < num_classes; ++k) {
        const double weight = eigen.eigenvectors(k, src);
        if (weight == 0.0) continue;
        for (int j = 0; j < n; ++j) projection(j, d) += weight * y(j, k);
      }
    }
  } else {
    // Faithful full-size path: K = L^{-1} S_b L^{-T} (n x n), standard
    // symmetric eigendecomposition, a = L^{-T} q. This is the O(n^3) dense
    // eigensolve the paper's RLDA timings reflect.
    // Form G = Hd L^{-T} (c x n): column-wise forward substitution on Hd^T.
    Matrix g(num_classes, n);
    {
      const Matrix hd_t = context.hd.Transposed();  // n x c
      for (int k = 0; k < num_classes; ++k) {
        const Vector solved = ForwardSubstitute(l, hd_t.Col(k));
        for (int j = 0; j < n; ++j) g(k, j) = solved[j];
      }
    }
    const Matrix k_matrix = Gram(g);  // n x n = G^T G = L^-1 Sb L^-T
    const SymmetricEigenResult eigen = SymmetricEigen(k_matrix);
    if (!eigen.converged) {
      model.converged = false;
      return model;
    }
    const int num_directions =
        CountDirections(eigen, num_classes, options.eigen_tolerance);
    model.num_directions = num_directions;
    projection = Matrix(n, num_directions);
    for (int d = 0; d < num_directions; ++d) {
      const int src = n - 1 - d;
      const double scale = std::sqrt(eigen.eigenvalues[src]);
      const Vector a = BackSubstituteTransposed(l, eigen.eigenvectors.Col(src));
      for (int j = 0; j < n; ++j) projection(j, d) = scale * a[j];
    }
  }

  Vector bias(model.num_directions);
  const Vector mean_projected = MultiplyTransposed(projection, context.mean);
  for (int d = 0; d < model.num_directions; ++d) {
    bias[d] = -mean_projected[d];
  }
  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
