#include "core/rlda.h"

#include <cmath>

#include "common/check.h"
#include "dataset/dataset.h"
#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace {

// Class-sum matrix Hd (c x n, S_b = Hd^T Hd) from the centered data.
Matrix BuildClassSums(const Matrix& centered, const std::vector<int>& labels,
                      int num_classes, const std::vector<int>& counts) {
  const int m = centered.rows();
  const int n = centered.cols();
  Matrix hd(num_classes, n);
  for (int i = 0; i < m; ++i) {
    const double* row = centered.RowPtr(i);
    double* h_row = hd.RowPtr(labels[static_cast<size_t>(i)]);
    for (int j = 0; j < n; ++j) h_row[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    const double inv_sqrt = 1.0 / std::sqrt(
        static_cast<double>(counts[static_cast<size_t>(k)]));
    double* h_row = hd.RowPtr(k);
    for (int j = 0; j < n; ++j) h_row[j] *= inv_sqrt;
  }
  return hd;
}

// Extracts the top eigenpairs (descending) above tolerance, at most c-1.
int CountDirections(const SymmetricEigenResult& eigen, int num_classes,
                    double tolerance) {
  const int size = eigen.eigenvalues.size();
  int num_directions = 0;
  for (int j = size - 1; j >= 0; --j) {
    if (eigen.eigenvalues[j] <= tolerance) break;
    if (num_directions == num_classes - 1) break;
    ++num_directions;
  }
  return num_directions;
}

}  // namespace

RldaModel FitRlda(const Matrix& x, const std::vector<int>& labels,
                  int num_classes, const RldaOptions& options) {
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  SRDA_CHECK_GE(options.alpha, 0.0) << "alpha must be non-negative";
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), x.rows())
      << "label count mismatch";

  RldaModel model;
  const int n = x.cols();

  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no samples";
  }

  // RLDA needs the n x n scatter factor itself (for the whitening
  // substitutions below), so the solver is pinned to the primal Gram even
  // when n > m. Factorization failure means alpha == 0 on rank-deficient
  // data, reported as converged == false like every other trainer.
  RidgeSolver solver(&x, GramSide::kPrimal);
  const Matrix hd = BuildClassSums(solver.centered(), labels, num_classes,
                                   counts);
  const Cholesky* chol = solver.FactorAt(options.alpha);
  if (chol == nullptr) {
    model.converged = false;
    return model;
  }
  const Matrix& l = chol->factor();

  Matrix projection;
  if (options.exploit_low_rank) {
    // Y = (S_t + alpha I)^{-1} Hd^T (n x c); C = Hd Y (c x c). Eigenvectors
    // q of C give generalized eigenvectors a = Y q; like LDA, directions are
    // left with sqrt(lambda) length (optimal-scoring-equivalent metric).
    const Matrix y = chol->SolveMatrix(hd.Transposed());
    const Matrix c_small = Multiply(hd, y);
    const SymmetricEigenResult eigen = SymmetricEigen(c_small);
    if (!eigen.converged) {
      model.converged = false;
      return model;
    }
    const int num_directions =
        CountDirections(eigen, num_classes, options.eigen_tolerance);
    model.num_directions = num_directions;
    projection = Matrix(n, num_directions);
    for (int d = 0; d < num_directions; ++d) {
      const int src = num_classes - 1 - d;
      for (int k = 0; k < num_classes; ++k) {
        const double weight = eigen.eigenvectors(k, src);
        if (weight == 0.0) continue;
        for (int j = 0; j < n; ++j) projection(j, d) += weight * y(j, k);
      }
    }
  } else {
    // Faithful full-size path: K = L^{-1} S_b L^{-T} (n x n), standard
    // symmetric eigendecomposition, a = L^{-T} q. This is the O(n^3) dense
    // eigensolve the paper's RLDA timings reflect.
    // Form G = Hd L^{-T} (c x n): column-wise forward substitution on Hd^T.
    Matrix g(num_classes, n);
    {
      const Matrix hd_t = hd.Transposed();  // n x c
      for (int k = 0; k < num_classes; ++k) {
        const Vector solved = ForwardSubstitute(l, hd_t.Col(k));
        for (int j = 0; j < n; ++j) g(k, j) = solved[j];
      }
    }
    const Matrix k_matrix = Gram(g);  // n x n = G^T G = L^-1 Sb L^-T
    const SymmetricEigenResult eigen = SymmetricEigen(k_matrix);
    if (!eigen.converged) {
      model.converged = false;
      return model;
    }
    const int num_directions =
        CountDirections(eigen, num_classes, options.eigen_tolerance);
    model.num_directions = num_directions;
    projection = Matrix(n, num_directions);
    for (int d = 0; d < num_directions; ++d) {
      const int src = n - 1 - d;
      const double scale = std::sqrt(eigen.eigenvalues[src]);
      const Vector a = BackSubstituteTransposed(l, eigen.eigenvectors.Col(src));
      for (int j = 0; j < n; ++j) projection(j, d) = scale * a[j];
    }
  }

  Vector bias(model.num_directions);
  const Vector mean_projected = MultiplyTransposed(projection, solver.mean());
  for (int d = 0; d < model.num_directions; ++d) {
    bias[d] = -mean_projected[d];
  }
  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  model.converged = true;
  return model;
}

}  // namespace srda
