// IDR/QR (Ye et al., KDD'04) — the fast LDA variant the paper compares
// against. Instead of an SVD of the full data, IDR/QR:
//   1. QR-decomposes the n x c class-centroid matrix (cheap: n x c),
//   2. projects the data onto the c-dimensional centroid span,
//   3. solves a small c x c discriminant eigenproblem there.
// Cost is O(m n c + n c^2): as fast as SRDA, but — as the paper stresses —
// without a theoretical connection to the LDA objective, which shows up as
// consistently worse accuracy in Tables III-IX.

#ifndef SRDA_CORE_IDR_QR_H_
#define SRDA_CORE_IDR_QR_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {

struct IdrQrOptions {
  // Ridge added to the reduced within-class scatter before inversion.
  double regularization = 1e-8;
  // Eigenvalues at or below this are treated as zero.
  double eigen_tolerance = 1e-12;
};

struct IdrQrModel {
  LinearEmbedding embedding;
  int num_directions = 0;
  bool converged = false;
};

// Trains IDR/QR on dense data (rows are samples). Requires n >= c.
IdrQrModel FitIdrQr(const Matrix& x, const std::vector<int>& labels,
                    int num_classes, const IdrQrOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_IDR_QR_H_
