// Regularized LDA (Friedman, 1989) — the RLDA baseline from the paper's
// experiments: solve the generalized eigenproblem S_b a = lambda (S_t + aI) a.
//
// Two solution paths:
//  * Faithful (default): reduce to a standard symmetric eigenproblem on the
//    full n x n matrix L^{-1} S_b L^{-T} and eigendecompose it — this is the
//    textbook approach whose O(n^3)-with-a-large-constant cost the paper's
//    Tables IV/VI/VIII measure (RLDA is as slow as or slower than LDA).
//  * Low-rank (exploit_low_rank = true): use rank(S_b) <= c-1 to collapse
//    the eigenproblem to c x c after one Cholesky solve. Same answer, far
//    cheaper — included to show the baseline could be accelerated, and
//    ablated in bench_ablation_srda.

#ifndef SRDA_CORE_RLDA_H_
#define SRDA_CORE_RLDA_H_

#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {

struct RldaOptions {
  // Tikhonov regularizer added to the total scatter diagonal. alpha == 0 is
  // accepted but reports converged == false when the scatter is
  // rank-deficient (same contract as SRDA).
  double alpha = 1.0;
  // Eigenvalues at or below this are treated as zero.
  double eigen_tolerance = 1e-9;
  // Collapse the eigenproblem to c x c using the low rank of S_b. Off by
  // default so timings reproduce the paper's RLDA cost profile.
  bool exploit_low_rank = false;
};

struct RldaModel {
  LinearEmbedding embedding;
  int num_directions = 0;
  bool converged = false;
};

// Trains RLDA on dense data (rows are samples). Directions satisfy
// a^T (S_t + alpha I) a = lambda (sqrt(lambda)-scaled whitening, the
// optimal-scoring-equivalent metric shared by all trainers here).
RldaModel FitRlda(const Matrix& x, const std::vector<int>& labels,
                  int num_classes, const RldaOptions& options = {});

}  // namespace srda

#endif  // SRDA_CORE_RLDA_H_
