#include "core/responses.h"

#include "common/check.h"
#include "dataset/dataset.h"
#include "linalg/gram_schmidt.h"

namespace srda {

Matrix GenerateSrdaResponses(const std::vector<int>& labels, int num_classes) {
  const int m = static_cast<int>(labels.size());
  SRDA_CHECK_GT(num_classes, 1) << "need at least two classes";
  const std::vector<int> counts = ClassCounts(labels, num_classes);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(counts[static_cast<size_t>(k)], 0)
        << "class " << k << " has no samples";
  }

  // Columns: [all-ones, indicator of class 0, ..., indicator of class c-1].
  Matrix basis(m, num_classes + 1);
  for (int i = 0; i < m; ++i) {
    basis(i, 0) = 1.0;
    basis(i, 1 + labels[static_cast<size_t>(i)]) = 1.0;
  }

  // The indicators sum to the ones vector, so exactly one column is dropped
  // and c orthonormal vectors remain, the first being ones/sqrt(m).
  const int kept = ModifiedGramSchmidt(&basis);
  SRDA_CHECK_EQ(kept, num_classes)
      << "unexpected rank from response orthogonalization";

  // Remove the ones vector; the remaining c-1 columns are the responses.
  Matrix responses(m, num_classes - 1);
  for (int j = 0; j < num_classes - 1; ++j) {
    for (int i = 0; i < m; ++i) responses(i, j) = basis(i, j + 1);
  }
  return responses;
}

}  // namespace srda
