// Lightweight runtime assertion macros used throughout the SRDA library.
//
// SRDA_CHECK remains active in all build modes (including release): the
// library validates caller-supplied shapes and options with it, and silent
// corruption in a numerics library is far worse than an abort. On failure the
// macro prints the failing condition, an optional streamed message, and the
// source location, then calls std::abort().
//
// Example:
//   SRDA_CHECK(a.cols() == b.rows()) << "gemm shape mismatch: " << a.cols()
//                                    << " vs " << b.rows();

#ifndef SRDA_COMMON_CHECK_H_
#define SRDA_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace srda {
namespace internal_check {

// Accumulates the streamed message for a failed check and aborts when
// destroyed. Constructed only on the failure path, so the fast path costs a
// single branch.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "SRDA_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace srda

// The switch wrapper makes the macro a single statement immune to dangling
// else; the message stream is only evaluated on failure.
#define SRDA_CHECK(condition)                            \
  switch (0)                                             \
  case 0:                                                \
  default:                                               \
    if (condition) {                                     \
    } else /* NOLINT */                                  \
      ::srda::internal_check::CheckFailureStream(        \
          #condition, __FILE__, __LINE__)

#define SRDA_CHECK_EQ(a, b) SRDA_CHECK((a) == (b))
#define SRDA_CHECK_NE(a, b) SRDA_CHECK((a) != (b))
#define SRDA_CHECK_LT(a, b) SRDA_CHECK((a) < (b))
#define SRDA_CHECK_LE(a, b) SRDA_CHECK((a) <= (b))
#define SRDA_CHECK_GT(a, b) SRDA_CHECK((a) > (b))
#define SRDA_CHECK_GE(a, b) SRDA_CHECK((a) >= (b))

#endif  // SRDA_COMMON_CHECK_H_
