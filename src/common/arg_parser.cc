#include "common/arg_parser.h"

#include <cstdlib>

#include "common/check.h"

namespace srda {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t equals = body.find('=');
    if (equals == std::string::npos) {
      values_[body] = "";
      read_[body] = false;
    } else {
      values_[body.substr(0, equals)] = body.substr(equals + 1);
      read_[body.substr(0, equals)] = false;
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  read_[name] = true;
  return true;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  read_[name] = true;
  return it->second;
}

int ArgParser::GetInt(const std::string& name, int default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  read_[name] = true;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  SRDA_CHECK(end != it->second.c_str() && *end == '\0')
      << "--" << name << "=" << it->second << " is not an integer";
  return static_cast<int>(value);
}

double ArgParser::GetDouble(const std::string& name,
                            double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  read_[name] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  SRDA_CHECK(end != it->second.c_str() && *end == '\0')
      << "--" << name << "=" << it->second << " is not a number";
  return value;
}

bool ArgParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  read_[name] = true;
  const std::string& value = it->second;
  if (value.empty() || value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  SRDA_CHECK(false) << "--" << name << "=" << value << " is not a boolean";
  return default_value;
}

std::vector<std::string> ArgParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, was_read] : read_) {
    if (!was_read) unused.push_back(name);
  }
  return unused;
}

}  // namespace srda
