// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports "--key=value" and boolean "--flag" arguments. Unknown or
// positional arguments are collected and can be rejected by the caller.

#ifndef SRDA_COMMON_ARG_PARSER_H_
#define SRDA_COMMON_ARG_PARSER_H_

#include <map>
#include <string>
#include <vector>

namespace srda {

// Parses argv into a key/value map.
//
// Example:
//   ArgParser args(argc, argv);
//   const std::string path = args.GetString("data", "");
//   const double alpha = args.GetDouble("alpha", 1.0);
//   if (args.GetBool("help")) { ... }
//   SRDA_CHECK(args.UnusedFlags().empty());
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  // True if "--name" or "--name=..." was passed.
  bool Has(const std::string& name) const;

  // Typed getters; return the default when absent. Abort (via SRDA_CHECK)
  // on malformed numeric values.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  // "--name" or "--name=true/1" is true; "--name=false/0" is false.
  bool GetBool(const std::string& name, bool default_value = false) const;

  // Positional (non --) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Flags present on the command line but never read by any getter; use to
  // reject typos.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace srda

#endif  // SRDA_COMMON_ARG_PARSER_H_
