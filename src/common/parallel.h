// Parallel execution layer: a persistent thread pool and ParallelFor.
//
// Every hot kernel in the library (dense BLAS, sparse products, the c-1
// independent ridge regressions of SRDA) is data-parallel over disjoint
// output ranges. This module provides the one primitive they need: split
// [begin, end) into contiguous chunks with a deterministic static partition
// and run a callback per chunk on a persistent pool of worker threads.
//
// Determinism contract: chunk *boundaries* are a pure function of the range
// and the pool's thread count; which worker executes a chunk is not
// specified. Kernels that write disjoint outputs per index are therefore
// bitwise reproducible for a fixed thread count, and the kernels in this
// library are additionally written so each output element's accumulation
// order never depends on the partition at all — making 1-thread and
// N-thread results bitwise identical (see DESIGN.md, "Threading model").
// Cross-chunk reductions must combine fixed-size per-chunk partials in
// chunk-index order; FixedChunkCount supports that pattern.
//
// Thread count resolution: ThreadPoolOptions.num_threads > 0 wins; 0 reads
// the SRDA_NUM_THREADS environment variable, falling back to
// std::thread::hardware_concurrency(). A pool with one thread runs
// everything inline on the calling thread (serial fallback). ParallelFor
// calls issued from inside a pool worker also run inline, so nested
// parallel kernels (e.g. a sparse product inside a pooled LSQR solve)
// neither deadlock nor oversubscribe.
//
// Pinning (SRDA_PIN_THREADS=1, or ThreadPoolOptions.pin_threads): worker
// threads are pinned round-robin over the process's allowed CPUs, and
// chunk assignment switches from the first-come atomic cursor to a fixed
// residue mapping — chunk c always runs on participant c mod N (the
// caller is participant 0 and stays unpinned). Combined with the
// first-touch allocation of packed panels (matrix::PanelScratch inside
// chunk lambdas), repeated kernels touch the same pages from the same
// CPU, which keeps panels node-local on NUMA hosts. Chunk *boundaries*
// are identical in both modes, and the kernels are partition-invariant,
// so pinning never changes results — only placement.

#ifndef SRDA_COMMON_PARALLEL_H_
#define SRDA_COMMON_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace srda {

struct ThreadPoolOptions {
  // Number of worker threads. 0 resolves SRDA_NUM_THREADS from the
  // environment and falls back to the hardware concurrency.
  int num_threads = 0;
  // Chunk→thread pinning: 1 on, 0 off, -1 resolves SRDA_PIN_THREADS from
  // the environment (off unless the variable is exactly "1").
  int pin_threads = -1;
};

// Resolves ThreadPoolOptions to a concrete thread count (>= 1).
int ResolveThreadCount(const ThreadPoolOptions& options);

// Resolves ThreadPoolOptions.pin_threads (consulting SRDA_PIN_THREADS).
bool ResolvePinning(const ThreadPoolOptions& options);

// A persistent pool of worker threads executing ParallelFor chunks.
// ParallelFor blocks until every chunk has run; the calling thread
// participates, so a busy pool can never stall a caller indefinitely.
// Exceptions thrown by the callback are captured and the first one is
// rethrown on the calling thread after all chunks finish.
class ThreadPool {
 public:
  explicit ThreadPool(const ThreadPoolOptions& options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // True when this pool runs with chunk→thread pinning.
  bool pinned() const { return pinned_; }

  // Invokes fn(chunk_begin, chunk_end) over contiguous chunks covering
  // [begin, end) exactly once. Chunk boundaries are deterministic for a
  // given (range, num_threads). Runs fn(begin, end) inline when the pool
  // has one thread, the range has one element, or the caller is itself a
  // pool worker.
  void ParallelFor(int begin, int end,
                   const std::function<void(int, int)>& fn);

 private:
  struct Job;

  void WorkerLoop(int worker_index);
  // Removes `job` from the queue if still present. Requires mutex_ held.
  void EraseJob(const std::shared_ptr<Job>& job);

  const int num_threads_;
  const bool pinned_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

// The process-wide pool used by the library kernels. Created on first use
// from ThreadPoolOptions{} (i.e. SRDA_NUM_THREADS / hardware concurrency).
ThreadPool& GlobalThreadPool();

// Current worker count of the global pool (creates it if needed).
int GlobalThreadCount();

// Replaces the global pool with one of `num_threads` workers (0 = re-resolve
// from the environment). Must not race with in-flight ParallelFor calls;
// intended for benchmarks and tests sweeping thread counts.
void SetGlobalThreadCount(int num_threads);

// ParallelFor on the global pool.
void ParallelFor(int begin, int end, const std::function<void(int, int)>& fn);

// Number of fixed-size chunks covering `count` items, independent of the
// thread count. Reductions partition their input with this, accumulate one
// partial per chunk, and fold partials in chunk-index order so results do
// not depend on how many threads ran.
inline int FixedChunkCount(int count, int chunk_size) {
  return count <= 0 ? 0 : (count + chunk_size - 1) / chunk_size;
}

}  // namespace srda

#endif  // SRDA_COMMON_PARALLEL_H_
