#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace srda {
namespace {

// splitmix64: expands a 64-bit seed into well-mixed state words.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  SRDA_CHECK(lo <= hi) << "invalid uniform range [" << lo << ", " << hi << ")";
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) {
  SRDA_CHECK(stddev >= 0.0) << "negative stddev " << stddev;
  return mean + stddev * NextGaussian();
}

uint64_t Rng::NextUint64Bounded(uint64_t bound) {
  SRDA_CHECK(bound > 0) << "bound must be positive";
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t draw = NextUint64();
    if (draw >= threshold) return draw % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  SRDA_CHECK(lo <= hi) << "invalid int range [" << lo << ", " << hi << "]";
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextUint64Bounded(span));
}

Rng Rng::Split() { return Rng(NextUint64()); }

ZipfTable::ZipfTable(int n, double s) {
  SRDA_CHECK(n > 0) << "ZipfTable needs at least one item";
  SRDA_CHECK(s > 0.0) << "Zipf exponent must be positive, got " << s;
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // Guard against round-off at the top end.
}

int ZipfTable::Sample(Rng* rng) const {
  SRDA_CHECK(rng != nullptr);
  const double u = rng->NextDouble();
  // Binary search for the first CDF entry >= u.
  int lo = 0;
  int hi = static_cast<int>(cdf_.size()) - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace srda
