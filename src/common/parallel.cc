#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/runtime_info.h"
#include "obs/trace.h"

namespace srda {
namespace {

// True on threads owned by any ThreadPool; ParallelFor from such a thread
// runs inline to avoid deadlock and oversubscription.
thread_local bool tls_pool_worker = false;

// Pool accounting, recorded only while tracing is enabled: wall time spent
// running chunks vs. parked on the work cv, summed over every worker and
// the calling thread. The imbalance of a kernel shows up as busy spread in
// the pool.chunk_us histogram.
struct PoolInstruments {
  Counter* busy_ns;
  Counter* idle_ns;
  Counter* jobs;
  Counter* chunks;
  Histogram* chunk_us;
};

const PoolInstruments& PoolMetrics() {
  static const PoolInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return PoolInstruments{
        registry.counter("pool.busy_ns"), registry.counter("pool.idle_ns"),
        registry.counter("pool.jobs"), registry.counter("pool.chunks"),
        registry.histogram("pool.chunk_us")};
  }();
  return instruments;
}

// Over-decomposition factor: more chunks than threads lets fast workers
// steal the remaining chunks of imbalanced kernels (e.g. the triangular
// Gram loops) without affecting results, since chunk boundaries stay fixed.
constexpr int kChunksPerThread = 4;

int EnvThreadCount() {
  const char* env = std::getenv("SRDA_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<int>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

// Pins `thread` to one CPU of the process's allowed set, round-robin by
// worker slot. Best-effort: any failure (or a non-Linux platform) leaves
// the thread under OS placement, which only costs locality, never
// correctness.
void PinThreadToCpuSlot(std::thread& thread, int slot) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return;
  int matching = -1;
  int target_cpu = -1;
  const int total = CPU_COUNT(&allowed);
  if (total <= 0) return;
  const int wanted = slot % total;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (++matching == wanted) {
      target_cpu = cpu;
      break;
    }
  }
  if (target_cpu < 0) return;
  cpu_set_t target;
  CPU_ZERO(&target);
  CPU_SET(target_cpu, &target);
  pthread_setaffinity_np(thread.native_handle(), sizeof(target), &target);
#else
  (void)thread;
  (void)slot;
#endif
}

}  // namespace

int ResolveThreadCount(const ThreadPoolOptions& options) {
  SRDA_CHECK_GE(options.num_threads, 0) << "negative thread count";
  return options.num_threads > 0 ? options.num_threads : EnvThreadCount();
}

bool ResolvePinning(const ThreadPoolOptions& options) {
  if (options.pin_threads >= 0) return options.pin_threads != 0;
  const char* env = std::getenv("SRDA_PIN_THREADS");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

// One ParallelFor call in flight: a statically partitioned chunk range that
// workers (and the calling thread) claim through an atomic cursor — or,
// in pinned mode, through the fixed residue mapping chunk c → participant
// c mod `participants` (the caller is participant 0, worker w is
// participant w). Chunk boundaries are identical in both modes.
struct ThreadPool::Job {
  std::function<void(int, int)> fn;
  int begin = 0;
  int chunk_base = 0;   // floor(count / num_chunks)
  int chunk_extra = 0;  // first chunk_extra chunks get one extra element
  int num_chunks = 0;
  std::atomic<int> next_chunk{0};
  std::atomic<int> finished_chunks{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception, guarded by `mutex`

  // Pinned mode only; all three guarded by the pool's mutex_.
  bool pinned = false;
  int participants = 0;
  std::vector<char> residue_claimed;
  int residues_finished = 0;

  // Deterministic chunk c -> [ChunkBegin(c), ChunkBegin(c + 1)).
  int ChunkBegin(int c) const {
    return begin + c * chunk_base + std::min(c, chunk_extra);
  }

  // Pinned mode: runs every chunk of one participant's residue class.
  void RunResidue(int residue) {
    for (int c = residue; c < num_chunks; c += participants) RunChunk(c);
  }

  void RunChunk(int c) {
    const bool tracing = TraceEnabled();
    const int64_t start_ns = tracing ? TraceRecorder::Global().NowNs() : 0;
    try {
      fn(ChunkBegin(c), ChunkBegin(c + 1));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!error) error = std::current_exception();
    }
    if (tracing) {
      TraceRecorder& recorder = TraceRecorder::Global();
      const int64_t duration_ns = recorder.NowNs() - start_ns;
      recorder.RecordComplete("pool.chunk", start_ns, duration_ns);
      PoolMetrics().busy_ns->Add(static_cast<double>(duration_ns));
      PoolMetrics().chunk_us->Observe(static_cast<double>(duration_ns) / 1e3);
    }
    if (finished_chunks.fetch_add(1) + 1 == num_chunks) {
      std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : num_threads_(ResolveThreadCount(options)),
      pinned_(ResolvePinning(options)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  // The calling thread participates in every ParallelFor, so a pool of N
  // threads owns N - 1 workers. Worker i is participant i in pinned mode.
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
    if (pinned_) PinThreadToCpuSlot(workers_.back(), i);
  }
  obs::SetRuntimeInfo("pool.pinning", pinned_ ? "pinned" : "free");
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::EraseJob(const std::shared_ptr<Job>& job) {
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (*it == job) {
      jobs_.erase(it);
      return;
    }
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Oldest job this worker can still help. A pinned job is claimable at
    // most once per participant, and the queue can hold a newer job behind
    // a pinned one whose caller is blocked inside a nested ParallelFor —
    // scanning past served jobs (instead of only inspecting the front) is
    // what keeps that nesting deadlock-free.
    std::shared_ptr<Job> job;
    const auto ready = [this, worker_index, &job] {
      if (stop_) return true;
      for (const std::shared_ptr<Job>& candidate : jobs_) {
        if (!candidate->pinned ||
            !candidate->residue_claimed[static_cast<size_t>(worker_index)]) {
          job = candidate;
          return true;
        }
      }
      return false;
    };
    if (TraceEnabled()) {
      // Time spent parked (or re-checking for work) is the worker's idle
      // share; busy time accrues in RunChunk. Together they account for the
      // worker's wall clock while tracing.
      TraceRecorder& recorder = TraceRecorder::Global();
      const int64_t idle_start = recorder.NowNs();
      work_cv_.wait(lock, ready);
      PoolMetrics().idle_ns->Add(
          static_cast<double>(recorder.NowNs() - idle_start));
    } else {
      work_cv_.wait(lock, ready);
    }
    if (stop_) return;
    if (job->pinned) {
      job->residue_claimed[static_cast<size_t>(worker_index)] = 1;
      lock.unlock();
      job->RunResidue(worker_index);
      lock.lock();
      if (++job->residues_finished == job->participants) EraseJob(job);
      continue;
    }
    const int chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) {
      // Exhausted: retire it and look for the next job.
      EraseJob(job);
      continue;
    }
    lock.unlock();
    job->RunChunk(chunk);
    lock.lock();
  }
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int, int)>& fn) {
  SRDA_CHECK_LE(begin, end) << "ParallelFor range is inverted";
  const int count = end - begin;
  if (count == 0) return;
  if (num_threads_ == 1 || count == 1 || tls_pool_worker) {
    fn(begin, end);
    return;
  }

  TraceSpan span("pool.parallel_for");
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->begin = begin;
  job->num_chunks = std::min(count, num_threads_ * kChunksPerThread);
  job->chunk_base = count / job->num_chunks;
  job->chunk_extra = count % job->num_chunks;
  if (span.recording()) {
    span.AddArg("count", static_cast<double>(count));
    span.AddArg("chunks", static_cast<double>(job->num_chunks));
    PoolMetrics().jobs->Increment();
    PoolMetrics().chunks->Add(static_cast<double>(job->num_chunks));
  }
  if (pinned_) {
    job->pinned = true;
    job->participants = num_threads_;
    job->residue_claimed.assign(static_cast<size_t>(num_threads_), 0);
    job->residue_claimed[0] = 1;  // The caller is participant 0.
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  if (pinned_) {
    // The caller runs its own residue class; workers run theirs. The job
    // stays queued until every participant (including those whose residue
    // class is empty) has claimed and finished it.
    job->RunResidue(0);
    std::lock_guard<std::mutex> lock(mutex_);
    if (++job->residues_finished == job->participants) EraseJob(job);
  } else {
    // The caller claims chunks alongside the workers.
    while (true) {
      const int chunk = job->next_chunk.fetch_add(1);
      if (chunk >= job->num_chunks) break;
      job->RunChunk(chunk);
    }
    // Retire the job if no worker got to it after the caller drained it.
    std::lock_guard<std::mutex> lock(mutex_);
    EraseJob(job);
  }
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&job] {
      return job->finished_chunks.load() == job->num_chunks;
    });
    if (job->error) std::rethrow_exception(job->error);
  }
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_unique<ThreadPool>();
  return *pool;
}

int GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

void SetGlobalThreadCount(int num_threads) {
  ThreadPoolOptions options;
  options.num_threads = num_threads;
  const int resolved = ResolveThreadCount(options);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool && pool->num_threads() == resolved) return;
  pool = std::make_unique<ThreadPool>(options);
}

void ParallelFor(int begin, int end, const std::function<void(int, int)>& fn) {
  GlobalThreadPool().ParallelFor(begin, end, fn);
}

}  // namespace srda
