#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// True on threads owned by any ThreadPool; ParallelFor from such a thread
// runs inline to avoid deadlock and oversubscription.
thread_local bool tls_pool_worker = false;

// Pool accounting, recorded only while tracing is enabled: wall time spent
// running chunks vs. parked on the work cv, summed over every worker and
// the calling thread. The imbalance of a kernel shows up as busy spread in
// the pool.chunk_us histogram.
struct PoolInstruments {
  Counter* busy_ns;
  Counter* idle_ns;
  Counter* jobs;
  Counter* chunks;
  Histogram* chunk_us;
};

const PoolInstruments& PoolMetrics() {
  static const PoolInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return PoolInstruments{
        registry.counter("pool.busy_ns"), registry.counter("pool.idle_ns"),
        registry.counter("pool.jobs"), registry.counter("pool.chunks"),
        registry.histogram("pool.chunk_us")};
  }();
  return instruments;
}

// Over-decomposition factor: more chunks than threads lets fast workers
// steal the remaining chunks of imbalanced kernels (e.g. the triangular
// Gram loops) without affecting results, since chunk boundaries stay fixed.
constexpr int kChunksPerThread = 4;

int EnvThreadCount() {
  const char* env = std::getenv("SRDA_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<int>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace

int ResolveThreadCount(const ThreadPoolOptions& options) {
  SRDA_CHECK_GE(options.num_threads, 0) << "negative thread count";
  return options.num_threads > 0 ? options.num_threads : EnvThreadCount();
}

// One ParallelFor call in flight: a statically partitioned chunk range that
// workers (and the calling thread) claim through an atomic cursor.
struct ThreadPool::Job {
  std::function<void(int, int)> fn;
  int begin = 0;
  int chunk_base = 0;   // floor(count / num_chunks)
  int chunk_extra = 0;  // first chunk_extra chunks get one extra element
  int num_chunks = 0;
  std::atomic<int> next_chunk{0};
  std::atomic<int> finished_chunks{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception, guarded by `mutex`

  // Deterministic chunk c -> [ChunkBegin(c), ChunkBegin(c + 1)).
  int ChunkBegin(int c) const {
    return begin + c * chunk_base + std::min(c, chunk_extra);
  }

  void RunChunk(int c) {
    const bool tracing = TraceEnabled();
    const int64_t start_ns = tracing ? TraceRecorder::Global().NowNs() : 0;
    try {
      fn(ChunkBegin(c), ChunkBegin(c + 1));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!error) error = std::current_exception();
    }
    if (tracing) {
      TraceRecorder& recorder = TraceRecorder::Global();
      const int64_t duration_ns = recorder.NowNs() - start_ns;
      recorder.RecordComplete("pool.chunk", start_ns, duration_ns);
      PoolMetrics().busy_ns->Add(static_cast<double>(duration_ns));
      PoolMetrics().chunk_us->Observe(static_cast<double>(duration_ns) / 1e3);
    }
    if (finished_chunks.fetch_add(1) + 1 == num_chunks) {
      std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : num_threads_(ResolveThreadCount(options)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  // The calling thread participates in every ParallelFor, so a pool of N
  // threads owns N - 1 workers.
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (TraceEnabled()) {
      // Time spent parked (or re-checking for work) is the worker's idle
      // share; busy time accrues in RunChunk. Together they account for the
      // worker's wall clock while tracing.
      TraceRecorder& recorder = TraceRecorder::Global();
      const int64_t idle_start = recorder.NowNs();
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      PoolMetrics().idle_ns->Add(
          static_cast<double>(recorder.NowNs() - idle_start));
    } else {
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    }
    if (stop_) return;
    std::shared_ptr<Job> job = jobs_.front();
    const int chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) {
      // Exhausted: retire it and look for the next job.
      if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
      continue;
    }
    lock.unlock();
    job->RunChunk(chunk);
    lock.lock();
  }
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int, int)>& fn) {
  SRDA_CHECK_LE(begin, end) << "ParallelFor range is inverted";
  const int count = end - begin;
  if (count == 0) return;
  if (num_threads_ == 1 || count == 1 || tls_pool_worker) {
    fn(begin, end);
    return;
  }

  TraceSpan span("pool.parallel_for");
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->begin = begin;
  job->num_chunks = std::min(count, num_threads_ * kChunksPerThread);
  job->chunk_base = count / job->num_chunks;
  job->chunk_extra = count % job->num_chunks;
  if (span.recording()) {
    span.AddArg("count", static_cast<double>(count));
    span.AddArg("chunks", static_cast<double>(job->num_chunks));
    PoolMetrics().jobs->Increment();
    PoolMetrics().chunks->Add(static_cast<double>(job->num_chunks));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  // The caller claims chunks alongside the workers.
  while (true) {
    const int chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) break;
    job->RunChunk(chunk);
  }
  {
    // Retire the job if no worker got to it after the caller drained it.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == job) {
        jobs_.erase(it);
        break;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&job] {
      return job->finished_chunks.load() == job->num_chunks;
    });
    if (job->error) std::rethrow_exception(job->error);
  }
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_unique<ThreadPool>();
  return *pool;
}

int GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

void SetGlobalThreadCount(int num_threads) {
  ThreadPoolOptions options;
  options.num_threads = num_threads;
  const int resolved = ResolveThreadCount(options);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool && pool->num_threads() == resolved) return;
  pool = std::make_unique<ThreadPool>(options);
}

void ParallelFor(int begin, int end, const std::function<void(int, int)>& fn) {
  GlobalThreadPool().ParallelFor(begin, end, fn);
}

}  // namespace srda
