// Deterministic pseudo-random number generation for the SRDA library.
//
// Every stochastic component (dataset generators, train/test splits,
// algorithm tie-breaking) draws from an explicitly seeded Rng so experiments
// reproduce bit-for-bit across runs and platforms. The generator is
// xoshiro256** seeded through splitmix64, a well-studied combination with
// 256 bits of state and no observable linear artifacts at the sizes we use.

#ifndef SRDA_COMMON_RNG_H_
#define SRDA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace srda {

// A small, fast, deterministic PRNG (xoshiro256**).
//
// Not thread-safe: use one Rng per thread. Copyable, so a generator can be
// forked to create reproducible independent sub-streams via Split().
class Rng {
 public:
  // Seeds the full 256-bit state from `seed` using splitmix64.
  explicit Rng(uint64_t seed);

  // Next raw 64-bit draw.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal draw (Box–Muller with caching of the second variate).
  double NextGaussian();

  // Normal with the given mean and standard deviation (`stddev` >= 0).
  double NextGaussian(double mean, double stddev);

  // Uniform integer in [0, bound), `bound` > 0. Uses rejection sampling, so
  // there is no modulo bias.
  uint64_t NextUint64Bounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive, lo <= hi.
  int NextInt(int lo, int hi);

  // Draws from a Zipf distribution over {0, .., n-1} with exponent `s` > 0
  // (rank-frequency: P(k) proportional to 1/(k+1)^s). Used by the text
  // generator. O(log n) per draw after O(n) setup done by the caller via
  // ZipfTable.
  // (See ZipfTable below.)

  // Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextUint64Bounded(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Returns a new generator seeded from this one; the parent stream advances.
  // Sub-streams are independent for practical purposes.
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Precomputed cumulative table for Zipf-distributed draws over n items with
// exponent s. Sampling is a binary search over the CDF: O(log n).
class ZipfTable {
 public:
  ZipfTable(int n, double s);

  // Draws an item index in [0, n) with Zipf(s) rank probabilities.
  int Sample(Rng* rng) const;

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace srda

#endif  // SRDA_COMMON_RNG_H_
