#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace srda {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SRDA_CHECK(!header_.empty()) << "table needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SRDA_CHECK_EQ(row.size(), header_.size())
      << "row width does not match header";
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t j = 0; j < header_.size(); ++j) widths[j] = header_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t j = 0; j < row.size(); ++j) {
      out << row[j] << std::string(widths[j] - row[j].size(), ' ');
      out << (j + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatMeanStd(double mean, double stddev) {
  return FormatDouble(mean, 1) + " +- " + FormatDouble(stddev, 1);
}

}  // namespace srda
