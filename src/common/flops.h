// Analytic operation-count (flam) model from Table I of the paper.
//
// The paper measures cost in "flam" (one floating-point addition plus one
// multiplication, Stewart 1998). These functions evaluate the paper's
// dominant-term formulas so benchmarks can print predicted cost next to
// measured wall time and verify the predicted LDA/SRDA speedup (maximum 9x
// at m == n for the normal-equations solver) and SRDA's linearity in m and n.
//
// Notation follows the paper: m samples, n features, c classes,
// t = min(m, n), k LSQR iterations, s average non-zeros per sample.

#ifndef SRDA_COMMON_FLOPS_H_
#define SRDA_COMMON_FLOPS_H_

#include <cstdint>

namespace srda {

// Predicted flam and memory (in doubles) for one training run.
struct CostEstimate {
  double flam = 0.0;
  double memory_doubles = 0.0;
};

// LDA via cross-product SVD (Section II-B):
//   time  = (3/2) m n t + (9/2) t^3   (dominant terms)
//   memory = m n + n t + m t
CostEstimate LdaCost(int64_t m, int64_t n, int64_t c);

// SRDA solving the regularized normal equations (Section III-C1):
//   time  = (1/2) m n t + (1/6) t^3 + c m n   (plus lower-order m c^2)
//   memory = m n + t^2 + c n
// At m == n this is 9x cheaper than LDA, matching the paper's claim.
CostEstimate SrdaNormalEquationsCost(int64_t m, int64_t n, int64_t c);

// SRDA with LSQR on dense data (Section III-C2):
//   time  = (c-1) k (2 m n + 3 n + 5 m) + m c^2
//   memory = m n + (2 c + 3) n
CostEstimate SrdaLsqrDenseCost(int64_t m, int64_t n, int64_t c, int64_t k);

// SRDA with LSQR on sparse data with s non-zeros per sample on average:
//   time  = (c-1) k (2 m s + 3 n + 5 m) + m c^2
//   memory = m s + (2 c + 3) n
CostEstimate SrdaLsqrSparseCost(int64_t m, int64_t n, int64_t c, int64_t k,
                                double s);

// ---- Runtime flop accounting ----
//
// Complementing the analytic model above, the dense kernels report their
// flop counts (2 flops per multiply-add) to a process-wide counter as they
// execute. Benches snapshot the counter around a timed region and divide by
// wall time to report achieved GFLOP/s next to latency, so BENCH_*.json
// rows track kernel efficiency, not just speed. Each kernel adds once per
// call from the calling thread — a single relaxed atomic update, invisible
// in profiles.

// Adds `flops` to the process-wide counter.
void AddFlops(double flops);

// Total flops reported since process start (or the last ResetFlopCount).
double FlopCount();

// Resets the counter to zero. Benches that prefer deltas can instead diff
// two FlopCount() snapshots and never reset.
void ResetFlopCount();

}  // namespace srda

#endif  // SRDA_COMMON_FLOPS_H_
