#include "common/flops.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace srda {
namespace {

double Min3(double a, double b) { return std::min(a, b); }

std::atomic<double>& FlopCounter() {
  static std::atomic<double> counter{0.0};
  return counter;
}

}  // namespace

void AddFlops(double flops) {
  // CAS loop instead of fetch_add: atomic<double>::fetch_add is C++20 but
  // not yet universal across standard libraries.
  std::atomic<double>& counter = FlopCounter();
  double current = counter.load(std::memory_order_relaxed);
  while (!counter.compare_exchange_weak(current, current + flops,
                                        std::memory_order_relaxed)) {
  }
}

double FlopCount() { return FlopCounter().load(std::memory_order_relaxed); }

void ResetFlopCount() {
  FlopCounter().store(0.0, std::memory_order_relaxed);
}

CostEstimate LdaCost(int64_t m, int64_t n, int64_t c) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double t = Min3(dm, dn);
  CostEstimate cost;
  cost.flam = 1.5 * dm * dn * t + 4.5 * t * t * t + dm * dn * dc;
  cost.memory_doubles = dm * dn + dn * t + dm * t;
  return cost;
}

CostEstimate SrdaNormalEquationsCost(int64_t m, int64_t n, int64_t c) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double t = Min3(dm, dn);
  CostEstimate cost;
  cost.flam = 0.5 * dm * dn * t + t * t * t / 6.0 + dc * dm * dn + dm * dc * dc;
  cost.memory_doubles = dm * dn + t * t + dc * dn;
  return cost;
}

CostEstimate SrdaLsqrDenseCost(int64_t m, int64_t n, int64_t c, int64_t k) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0 && k > 0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double dk = static_cast<double>(k);
  CostEstimate cost;
  cost.flam = (dc - 1.0) * dk * (2.0 * dm * dn + 3.0 * dn + 5.0 * dm) +
              dm * dc * dc;
  cost.memory_doubles = dm * dn + (2.0 * dc + 3.0) * dn;
  return cost;
}

CostEstimate SrdaLsqrSparseCost(int64_t m, int64_t n, int64_t c, int64_t k,
                                double s) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0 && k > 0);
  SRDA_CHECK(s >= 0.0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double dk = static_cast<double>(k);
  CostEstimate cost;
  cost.flam = (dc - 1.0) * dk * (2.0 * dm * s + 3.0 * dn + 5.0 * dm) +
              dm * dc * dc;
  cost.memory_doubles = dm * s + (2.0 * dc + 3.0) * dn;
  return cost;
}

}  // namespace srda
