#include "common/flops.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace srda {
namespace {

double Min3(double a, double b) { return std::min(a, b); }

// The runtime flop counter now lives in the metrics registry so a run
// summary shows it next to bytes touched, iteration counts, etc. The
// pointer is stable for the process lifetime.
Counter* FlopCounter() {
  static Counter* counter = MetricsRegistry::Global().counter("flops.total");
  return counter;
}

}  // namespace

void AddFlops(double flops) { FlopCounter()->Add(flops); }

double FlopCount() { return FlopCounter()->value(); }

void ResetFlopCount() { FlopCounter()->Reset(); }

CostEstimate LdaCost(int64_t m, int64_t n, int64_t c) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double t = Min3(dm, dn);
  CostEstimate cost;
  cost.flam = 1.5 * dm * dn * t + 4.5 * t * t * t + dm * dn * dc;
  cost.memory_doubles = dm * dn + dn * t + dm * t;
  return cost;
}

CostEstimate SrdaNormalEquationsCost(int64_t m, int64_t n, int64_t c) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double t = Min3(dm, dn);
  CostEstimate cost;
  cost.flam = 0.5 * dm * dn * t + t * t * t / 6.0 + dc * dm * dn + dm * dc * dc;
  cost.memory_doubles = dm * dn + t * t + dc * dn;
  return cost;
}

CostEstimate SrdaLsqrDenseCost(int64_t m, int64_t n, int64_t c, int64_t k) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0 && k > 0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double dk = static_cast<double>(k);
  CostEstimate cost;
  cost.flam = (dc - 1.0) * dk * (2.0 * dm * dn + 3.0 * dn + 5.0 * dm) +
              dm * dc * dc;
  cost.memory_doubles = dm * dn + (2.0 * dc + 3.0) * dn;
  return cost;
}

CostEstimate SrdaLsqrSparseCost(int64_t m, int64_t n, int64_t c, int64_t k,
                                double s) {
  SRDA_CHECK(m > 0 && n > 0 && c > 0 && k > 0);
  SRDA_CHECK(s >= 0.0);
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dc = static_cast<double>(c);
  const double dk = static_cast<double>(k);
  CostEstimate cost;
  cost.flam = (dc - 1.0) * dk * (2.0 * dm * s + 3.0 * dn + 5.0 * dm) +
              dm * dc * dc;
  cost.memory_doubles = dm * s + (2.0 * dc + 3.0) * dn;
  return cost;
}

}  // namespace srda
