// Plain-text table formatting for the benchmark harnesses.
//
// The bench binaries print results in the same row/column layout as the
// paper's tables (e.g. "Train Size | LDA | RLDA | SRDA | IDR/QR"); this class
// handles alignment so each harness focuses on the numbers.

#ifndef SRDA_COMMON_TABLE_PRINTER_H_
#define SRDA_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace srda {

// Accumulates a header row and data rows of strings, then prints them with
// columns padded to the widest cell.
//
// Example:
//   TablePrinter table({"Train Size", "LDA", "SRDA"});
//   table.AddRow({"10 x 68", "31.8 +- 1.1", "19.5 +- 1.3"});
//   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  // Writes the table with a separator line under the header.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats "mean +- std" with one decimal place, e.g. "31.8 +- 1.1".
std::string FormatMeanStd(double mean, double stddev);

// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int decimals);

}  // namespace srda

#endif  // SRDA_COMMON_TABLE_PRINTER_H_
