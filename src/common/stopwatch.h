// Wall-clock timing used by the benchmark harnesses.

#ifndef SRDA_COMMON_STOPWATCH_H_
#define SRDA_COMMON_STOPWATCH_H_

#include <chrono>

namespace srda {

// Measures elapsed wall time in seconds. Starts running on construction.
//
// Example:
//   Stopwatch watch;
//   TrainModel();
//   double seconds = watch.ElapsedSeconds();
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the measurement from now.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    const auto delta = Clock::now() - start_;
    return std::chrono::duration<double>(delta).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace srda

#endif  // SRDA_COMMON_STOPWATCH_H_
