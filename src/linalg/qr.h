// Thin Householder QR decomposition.
//
// Needed by the IDR/QR baseline (Ye et al., KDD'04), which replaces LDA's
// SVD with a QR decomposition of the small class-centroid matrix.

#ifndef SRDA_LINALG_QR_H_
#define SRDA_LINALG_QR_H_

#include "matrix/matrix.h"

namespace srda {

// A = Q R with Q (m x n) having orthonormal columns and R (n x n) upper
// triangular. Requires m >= n.
struct QrResult {
  Matrix q;
  Matrix r;
};

// Householder QR of `a` (m x n, m >= n).
QrResult ThinQr(const Matrix& a);

}  // namespace srda

#endif  // SRDA_LINALG_QR_H_
