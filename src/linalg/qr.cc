#include "linalg/qr.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace srda {

QrResult ThinQr(const Matrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  SRDA_CHECK_GE(m, n) << "ThinQr requires rows >= cols";
  SRDA_CHECK_GT(n, 0) << "ThinQr of an empty matrix";

  // Work on a copy. After the loop, column k of `work` below (and including)
  // the diagonal stores the Householder vector v_k; the R diagonal is kept in
  // `r_diag` and the strictly upper triangle of `work` is R's off-diagonal.
  Matrix work = a;
  std::vector<double> betas(static_cast<size_t>(n), 0.0);
  std::vector<double> r_diag(static_cast<size_t>(n), 0.0);

  for (int k = 0; k < n; ++k) {
    double norm_sq = 0.0;
    for (int i = k; i < m; ++i) norm_sq += work(i, k) * work(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      // Column already zero below the diagonal; no reflector needed.
      r_diag[static_cast<size_t>(k)] = 0.0;
      continue;
    }
    const double alpha = work(k, k) >= 0.0 ? -norm : norm;
    r_diag[static_cast<size_t>(k)] = alpha;
    const double vk = work(k, k) - alpha;
    double v_norm_sq = vk * vk;
    for (int i = k + 1; i < m; ++i) v_norm_sq += work(i, k) * work(i, k);
    if (v_norm_sq == 0.0) continue;  // x was already alpha * e_k.
    const double beta = 2.0 / v_norm_sq;
    betas[static_cast<size_t>(k)] = beta;
    work(k, k) = vk;

    // Apply (I - beta v v^T) to the remaining columns.
    for (int j = k + 1; j < n; ++j) {
      double dot = 0.0;
      for (int i = k; i < m; ++i) dot += work(i, k) * work(i, j);
      const double scale = beta * dot;
      for (int i = k; i < m; ++i) work(i, j) -= scale * work(i, k);
    }
  }

  QrResult result;
  result.r = Matrix(n, n);
  for (int i = 0; i < n; ++i) {
    result.r(i, i) = r_diag[static_cast<size_t>(i)];
    for (int j = i + 1; j < n; ++j) result.r(i, j) = work(i, j);
  }

  // Accumulate thin Q = H_0 H_1 ... H_{n-1} * [I_n; 0] by applying the
  // reflectors to the identity columns in reverse order.
  result.q = Matrix(m, n);
  for (int j = 0; j < n; ++j) result.q(j, j) = 1.0;
  for (int k = n - 1; k >= 0; --k) {
    const double beta = betas[static_cast<size_t>(k)];
    if (beta == 0.0) continue;
    for (int j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int i = k; i < m; ++i) dot += work(i, k) * result.q(i, j);
      const double scale = beta * dot;
      for (int i = k; i < m; ++i) result.q(i, j) -= scale * work(i, k);
    }
  }
  return result;
}

}  // namespace srda
