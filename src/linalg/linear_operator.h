// Abstract matrix-free linear operator.
//
// LSQR (and any other iterative solver) only needs the two products A*x and
// A^T*y. Expressing that as an interface lets the same solver run on dense
// matrices, CSR matrices, and the paper's "append a constant 1 feature"
// bias-absorption trick (Section III-B) without ever materializing an
// augmented or centered matrix.

#ifndef SRDA_LINALG_LINEAR_OPERATOR_H_
#define SRDA_LINALG_LINEAR_OPERATOR_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"
#include "sparse/sparse_matrix.h"

namespace srda {

// Interface for an m x n linear map. Implementations must be thread-
// compatible (const methods only read).
//
// The multi-RHS products ApplyMulti / ApplyTransposedMulti exist so batched
// solvers (LsqrBatch) can make one pass over the underlying data for all
// right-hand sides. Overrides must keep each output column bitwise identical
// to the corresponding single-vector product — the default implementations
// guarantee this by delegating column by column.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual int rows() const = 0;
  virtual int cols() const = 0;

  // y = A * x; x.size() == cols(), result.size() == rows().
  virtual Vector Apply(const Vector& x) const = 0;

  // y = A^T * x; x.size() == rows(), result.size() == cols().
  virtual Vector ApplyTransposed(const Vector& x) const = 0;

  // Y = A * X; X is cols() x k, result is rows() x k. Column j of the
  // result is bitwise equal to Apply(column j of X).
  virtual Matrix ApplyMulti(const Matrix& x) const;

  // Y = A^T * X; X is rows() x k, result is cols() x k. Column j of the
  // result is bitwise equal to ApplyTransposed(column j of X).
  virtual Matrix ApplyTransposedMulti(const Matrix& x) const;
};

// Wraps a dense matrix (not owned; must outlive the operator).
class DenseOperator final : public LinearOperator {
 public:
  explicit DenseOperator(const Matrix* matrix);

  int rows() const override;
  int cols() const override;
  Vector Apply(const Vector& x) const override;
  Vector ApplyTransposed(const Vector& x) const override;
  Matrix ApplyMulti(const Matrix& x) const override;
  Matrix ApplyTransposedMulti(const Matrix& x) const override;

  // The wrapped matrix. Lets row-level consumers (linalg/sketch.h) reach
  // the concrete storage through a dynamic_cast instead of the generic
  // operator products.
  const Matrix* matrix() const { return matrix_; }

 private:
  const Matrix* matrix_;
};

// Wraps a CSR matrix (not owned; must outlive the operator).
class SparseOperator final : public LinearOperator {
 public:
  explicit SparseOperator(const SparseMatrix* matrix);

  int rows() const override;
  int cols() const override;
  Vector Apply(const Vector& x) const override;
  Vector ApplyTransposed(const Vector& x) const override;
  Matrix ApplyMulti(const Matrix& x) const override;
  Matrix ApplyTransposedMulti(const Matrix& x) const override;

  // The wrapped CSR matrix (see DenseOperator::matrix()).
  const SparseMatrix* matrix() const { return matrix_; }

 private:
  const SparseMatrix* matrix_;
};

// Implicitly centers the columns of a base operator: (A - 1 mean^T) without
// materializing the dense rank-1 correction, so sparse data stays sparse.
// The SRDA LSQR path solves against this so ridge damping penalizes only
// the projection — the paper's objective (Eq. 15) leaves the bias
// unregularized — and recovers the bias as b = -mean^T a afterwards,
// exactly like the normal-equations path. Neither pointer is owned; both
// must outlive the operator, and mean->size() must equal base->cols().
class CenterColumnsOperator final : public LinearOperator {
 public:
  CenterColumnsOperator(const LinearOperator* base, const Vector* mean);

  int rows() const override;
  int cols() const override;
  Vector Apply(const Vector& x) const override;
  Vector ApplyTransposed(const Vector& x) const override;
  Matrix ApplyMulti(const Matrix& x) const override;
  Matrix ApplyTransposedMulti(const Matrix& x) const override;

 private:
  const LinearOperator* base_;
  const Vector* mean_;
};

// Augments a base operator with one trailing all-ones column: [A 1]. This is
// the paper's trick for absorbing the regression bias so sparse data never
// needs explicit centering — note that combining it with LSQR damping also
// (incorrectly, w.r.t. Eq. 15) penalizes the bias coefficient; prefer
// CenterColumnsOperator when the right-hand sides are mean-free. The base
// operator is not owned.
class AppendOnesColumnOperator final : public LinearOperator {
 public:
  explicit AppendOnesColumnOperator(const LinearOperator* base);

  int rows() const override;
  int cols() const override;  // base->cols() + 1
  Vector Apply(const Vector& x) const override;
  Vector ApplyTransposed(const Vector& x) const override;
  Matrix ApplyMulti(const Matrix& x) const override;
  Matrix ApplyTransposedMulti(const Matrix& x) const override;

 private:
  const LinearOperator* base_;
};

}  // namespace srda

#endif  // SRDA_LINALG_LINEAR_OPERATOR_H_
