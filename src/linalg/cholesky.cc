#include "linalg/cholesky.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace srda {

bool Cholesky::Factor(const Matrix& a) {
  SRDA_CHECK_EQ(a.rows(), a.cols()) << "Cholesky needs a square matrix";
  const int n = a.rows();
  ok_ = false;
  l_ = Matrix(n, n);
  // Pivots below this relative threshold indicate a numerically singular
  // matrix; round-off can leave them slightly positive, so an exact <= 0
  // test would let garbage factors through.
  double max_diag = 0.0;
  for (int j = 0; j < n; ++j) {
    if (!std::isfinite(a(j, j))) return false;
    max_diag = std::max(max_diag, std::fabs(a(j, j)));
  }
  const double pivot_floor = 1e-14 * max_diag;
  for (int j = 0; j < n; ++j) {
    // Diagonal element.
    double diag = a(j, j);
    const double* lrow_j = l_.RowPtr(j);
    for (int k = 0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
    if (diag <= pivot_floor || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    // Column below the diagonal.
    const double inv = 1.0 / ljj;
    for (int i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      const double* lrow_i = l_.RowPtr(i);
      for (int k = 0; k < j; ++k) sum -= lrow_i[k] * lrow_j[k];
      l_(i, j) = sum * inv;
    }
  }
  ok_ = true;
  return true;
}

Vector Cholesky::Solve(const Vector& b) const {
  SRDA_CHECK(ok_) << "Cholesky::Solve called without a successful Factor()";
  Vector y = ForwardSubstitute(l_, b);
  return BackSubstituteTransposed(l_, y);
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  SRDA_CHECK(ok_) << "Cholesky::SolveMatrix without a successful Factor()";
  SRDA_CHECK_EQ(b.rows(), l_.rows()) << "SolveMatrix shape mismatch";
  Matrix x(b.rows(), b.cols());
  // The columns (one per SRDA response) are independent triangular solves
  // against the shared read-only factor.
  ParallelFor(0, b.cols(), [&](int col_begin, int col_end) {
    for (int j = col_begin; j < col_end; ++j) {
      x.SetCol(j, Solve(b.Col(j)));
    }
  });
  return x;
}

const Matrix& Cholesky::factor() const {
  SRDA_CHECK(ok_) << "Cholesky::factor without a successful Factor()";
  return l_;
}

void CholeskyRank1Update(Matrix* l, Vector v) {
  SRDA_CHECK(l != nullptr);
  SRDA_CHECK_EQ(l->rows(), l->cols()) << "factor must be square";
  SRDA_CHECK_EQ(v.size(), l->rows()) << "update vector size mismatch";
  Matrix& factor = *l;
  const int n = factor.rows();
  // Sequence of Givens rotations zeroing v against the diagonal.
  for (int k = 0; k < n; ++k) {
    const double lkk = factor(k, k);
    SRDA_CHECK_GT(lkk, 0.0) << "invalid Cholesky factor at " << k;
    const double r = std::hypot(lkk, v[k]);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    factor(k, k) = r;
    for (int i = k + 1; i < n; ++i) {
      factor(i, k) = (factor(i, k) + s * v[i]) / c;
      v[i] = c * v[i] - s * factor(i, k);
    }
  }
}

Vector ForwardSubstitute(const Matrix& l, const Vector& b) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.size(), l.rows()) << "triangular solve shape mismatch";
  const int n = l.rows();
  Vector x(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = l.RowPtr(i);
    for (int k = 0; k < i; ++k) sum -= row[k] * x[k];
    SRDA_CHECK_NE(row[i], 0.0) << "singular triangular matrix at " << i;
    x[i] = sum / row[i];
  }
  return x;
}

Vector BackSubstituteTransposed(const Matrix& l, const Vector& b) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.size(), l.rows()) << "triangular solve shape mismatch";
  const int n = l.rows();
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    // L^T(i, k) = L(k, i) for k > i.
    for (int k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    SRDA_CHECK_NE(l(i, i), 0.0) << "singular triangular matrix at " << i;
    x[i] = sum / l(i, i);
  }
  return x;
}

Vector BackSubstitute(const Matrix& r, const Vector& b) {
  SRDA_CHECK_EQ(r.rows(), r.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.size(), r.rows()) << "triangular solve shape mismatch";
  const int n = r.rows();
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    const double* row = r.RowPtr(i);
    for (int k = i + 1; k < n; ++k) sum -= row[k] * x[k];
    SRDA_CHECK_NE(row[i], 0.0) << "singular triangular matrix at " << i;
    x[i] = sum / row[i];
  }
  return x;
}

}  // namespace srda
