#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "matrix/blocking.h"
#include "matrix/simd/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Factors the diagonal block l[p0:p1, p0:p1] in place. The trailing
// updates of earlier panels have already been applied, so only the
// within-panel columns [p0, j) remain in each sum. Returns false on a
// pivot at or below `pivot_floor`.
bool FactorDiagonalBlock(Matrix* l, int p0, int p1, double pivot_floor) {
  for (int j = p0; j < p1; ++j) {
    double* lrow_j = l->RowPtr(j);
    double diag = lrow_j[j];
    for (int k = p0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
    if (diag <= pivot_floor || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    lrow_j[j] = ljj;
    const double inv = 1.0 / ljj;
    for (int i = j + 1; i < p1; ++i) {
      double* lrow_i = l->RowPtr(i);
      double sum = lrow_i[j];
      for (int k = p0; k < j; ++k) sum -= lrow_i[k] * lrow_j[k];
      lrow_i[j] = sum * inv;
    }
  }
  return true;
}

}  // namespace

bool Cholesky::Factor(const Matrix& a) {
  SRDA_CHECK_EQ(a.rows(), a.cols()) << "Cholesky needs a square matrix";
  const int n = a.rows();
  TraceSpan span("cholesky.factor");
  if (span.recording()) {
    span.AddArg("n", static_cast<double>(n));
    span.AddArg("flops", static_cast<double>(n) * n * n / 3.0);
    static Counter* refactors =
        MetricsRegistry::Global().counter("cholesky.refactors");
    refactors->Increment();
  }
  ok_ = false;
  l_ = Matrix(n, n);
  // Pivots below this relative threshold indicate a numerically singular
  // matrix; round-off can leave them slightly positive, so an exact <= 0
  // test would let garbage factors through.
  double max_diag = 0.0;
  for (int j = 0; j < n; ++j) {
    if (!std::isfinite(a(j, j))) return false;
    max_diag = std::max(max_diag, std::fabs(a(j, j)));
  }
  const double pivot_floor = 1e-14 * max_diag;
  AddFlops(static_cast<double>(n) * n * n / 3.0);
  // Work on a copy of the lower triangle; the upper stays zero.
  ParallelFor(0, n, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const double* arow = a.RowPtr(i);
      double* lrow = l_.RowPtr(i);
      std::copy(arow, arow + i + 1, lrow);
    }
  });
  const BlockConfig& blk = GetBlockConfig();
  const simd::KernelTable& kt = simd::Dispatch();
  for (int p0 = 0; p0 < n; p0 += blk.nb) {
    const int p1 = std::min(p0 + blk.nb, n);
    const int kk = p1 - p0;
    if (!FactorDiagonalBlock(&l_, p0, p1, pivot_floor)) return false;
    if (p1 == n) break;
    std::vector<double> inv_diag(kk);
    for (int j = 0; j < kk; ++j) inv_diag[j] = 1.0 / l_(p0 + j, p0 + j);
    // TRSM: finish the panel's columns in the rows below the block. Row i
    // only reads rows < p1 (final) and its own earlier columns, so rows
    // are independent. The kernel scratch is chunk-local, allocated and
    // first-touched by the worker that uses it.
    ParallelFor(p1, n, [&](int row_begin, int row_end) {
      PanelScratch scratch;
      double* s = scratch.Acquire(
          static_cast<size_t>(simd::kTrsmMaxLanes) * kk);
      kt.trsm_rows(l_.data(), n, p0, p1, inv_diag.data(), row_begin,
                   row_end - row_begin, s);
    });
    // SYRK: subtract the panel's outer product from the trailing lower
    // triangle. Row i writes columns [p1, i] and reads only panel columns
    // [p0, p1) — already final — so the row partition is race-free, and
    // each element's k-chain (ascending within the panel, panels in
    // order) is independent of the partition: bitwise-deterministic at
    // any thread count.
    ParallelFor(p1, n, [&](int row_begin, int row_end) {
      for (int i0 = row_begin; i0 < row_end; i0 += blk.mc) {
        const int i1 = std::min(i0 + blk.mc, row_end);
        for (int j0 = p1; j0 < i1; j0 += blk.nc) {
          const int j1 = std::min(j0 + blk.nc, i1);
          for (int i = std::max(i0, j0); i < i1; ++i) {
            kt.syrk_row(l_.data(), n, i, p0, kk, j0, std::min(j1, i + 1));
          }
        }
      }
    });
  }
  ok_ = true;
  return true;
}

Vector Cholesky::Solve(const Vector& b) const {
  SRDA_CHECK(ok_) << "Cholesky::Solve called without a successful Factor()";
  Vector y = ForwardSubstitute(l_, b);
  return BackSubstituteTransposed(l_, y);
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  SRDA_CHECK(ok_) << "Cholesky::SolveMatrix without a successful Factor()";
  SRDA_CHECK_EQ(b.rows(), l_.rows()) << "SolveMatrix shape mismatch";
  const int n = l_.rows();
  TraceSpan span("cholesky.solve");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(b.cols()));
    span.AddArg("flops", 2.0 * n * n * b.cols());
  }
  AddFlops(2.0 * n * n * b.cols());
  Matrix x = b;
  // Both substitution sweeps read each factor row once and apply it to a
  // whole stripe of columns, so the factor streams through cache once per
  // sweep no matter how many right-hand sides there are. Each column's
  // update chain matches the single-vector Solve exactly and never
  // depends on the stripe boundaries, so any thread count produces the
  // same bits.
  ParallelFor(0, b.cols(), [&](int col_begin, int col_end) {
    const int cb = col_begin;
    const int width = col_end - col_begin;
    // Forward: L y = b, rows top-down.
    for (int i = 0; i < n; ++i) {
      const double* lrow = l_.RowPtr(i);
      double* xrow_i = x.RowPtr(i) + cb;
      for (int k = 0; k < i; ++k) {
        const double lik = lrow[k];
        if (lik == 0.0) continue;
        const double* xrow_k = x.RowPtr(k) + cb;
        for (int j = 0; j < width; ++j) xrow_i[j] -= lik * xrow_k[j];
      }
      SRDA_CHECK_NE(lrow[i], 0.0) << "singular triangular matrix at " << i;
      const double inv = 1.0 / lrow[i];
      for (int j = 0; j < width; ++j) xrow_i[j] *= inv;
    }
    // Backward: L^T x = y, rows bottom-up, scattering row i's solution
    // into the rows above it (row-wise reads of L, no strided column
    // walk).
    for (int i = n - 1; i >= 0; --i) {
      const double* lrow = l_.RowPtr(i);
      double* xrow_i = x.RowPtr(i) + cb;
      const double inv = 1.0 / lrow[i];
      for (int j = 0; j < width; ++j) xrow_i[j] *= inv;
      for (int k = 0; k < i; ++k) {
        const double lik = lrow[k];
        if (lik == 0.0) continue;
        double* xrow_k = x.RowPtr(k) + cb;
        for (int j = 0; j < width; ++j) xrow_k[j] -= lik * xrow_i[j];
      }
    }
  });
  return x;
}

const Matrix& Cholesky::factor() const {
  SRDA_CHECK(ok_) << "Cholesky::factor without a successful Factor()";
  return l_;
}

void Cholesky::SetFactor(Matrix l) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "factor must be square";
  for (int j = 0; j < l.rows(); ++j) {
    SRDA_CHECK_GT(l(j, j), 0.0) << "factor needs a positive diagonal at " << j;
  }
  l_ = std::move(l);
  ok_ = true;
}

void CholeskyRank1Update(Matrix* l, Vector v) {
  SRDA_CHECK(l != nullptr);
  SRDA_CHECK_EQ(l->rows(), l->cols()) << "factor must be square";
  SRDA_CHECK_EQ(v.size(), l->rows()) << "update vector size mismatch";
  Matrix& factor = *l;
  const int n = factor.rows();
  // Sequence of Givens rotations zeroing v against the diagonal.
  for (int k = 0; k < n; ++k) {
    const double lkk = factor(k, k);
    SRDA_CHECK_GT(lkk, 0.0) << "invalid Cholesky factor at " << k;
    const double r = std::hypot(lkk, v[k]);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    factor(k, k) = r;
    for (int i = k + 1; i < n; ++i) {
      factor(i, k) = (factor(i, k) + s * v[i]) / c;
      v[i] = c * v[i] - s * factor(i, k);
    }
  }
}

Vector ForwardSubstitute(const Matrix& l, const Vector& b) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.size(), l.rows()) << "triangular solve shape mismatch";
  const int n = l.rows();
  AddFlops(static_cast<double>(n) * n);
  Vector x(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = l.RowPtr(i);
    for (int k = 0; k < i; ++k) sum -= row[k] * x[k];
    SRDA_CHECK_NE(row[i], 0.0) << "singular triangular matrix at " << i;
    x[i] = sum / row[i];
  }
  return x;
}

Vector BackSubstituteTransposed(const Matrix& l, const Vector& b) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.size(), l.rows()) << "triangular solve shape mismatch";
  const int n = l.rows();
  AddFlops(static_cast<double>(n) * n);
  // Scatter form: once x[i] is known, subtract its contribution from every
  // earlier equation using row i of L. The gather form this replaced read
  // L^T(i, k) = L(k, i), a column walk striding n doubles per element; the
  // scatter reads each row of L contiguously, exactly once.
  Vector x = b;
  for (int i = n - 1; i >= 0; --i) {
    const double* row = l.RowPtr(i);
    SRDA_CHECK_NE(row[i], 0.0) << "singular triangular matrix at " << i;
    const double xi = x[i] / row[i];
    x[i] = xi;
    for (int k = 0; k < i; ++k) x[k] -= xi * row[k];
  }
  return x;
}

Matrix ForwardSubstituteMatrix(const Matrix& l, const Matrix& b) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.rows(), l.rows()) << "triangular solve shape mismatch";
  const int n = l.rows();
  AddFlops(static_cast<double>(n) * n * b.cols());
  Matrix x = b;
  // Mirrors the vector ForwardSubstitute per column: same subtraction chain
  // (no zero-skip) and a per-row division, so each column is bitwise equal
  // to the vector routine regardless of the stripe partition.
  ParallelFor(0, b.cols(), [&](int col_begin, int col_end) {
    const int width = col_end - col_begin;
    for (int i = 0; i < n; ++i) {
      const double* lrow = l.RowPtr(i);
      double* xrow_i = x.RowPtr(i) + col_begin;
      for (int k = 0; k < i; ++k) {
        const double lik = lrow[k];
        const double* xrow_k = x.RowPtr(k) + col_begin;
        for (int j = 0; j < width; ++j) xrow_i[j] -= lik * xrow_k[j];
      }
      SRDA_CHECK_NE(lrow[i], 0.0) << "singular triangular matrix at " << i;
      const double diag = lrow[i];
      for (int j = 0; j < width; ++j) xrow_i[j] /= diag;
    }
  });
  return x;
}

Matrix BackSubstituteTransposedMatrix(const Matrix& l, const Matrix& b) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.rows(), l.rows()) << "triangular solve shape mismatch";
  const int n = l.rows();
  AddFlops(static_cast<double>(n) * n * b.cols());
  Matrix x = b;
  // Scatter form per column, matching the vector BackSubstituteTransposed
  // bit for bit: x_i /= l_ii first, then row i of L is scattered into the
  // rows above.
  ParallelFor(0, b.cols(), [&](int col_begin, int col_end) {
    const int width = col_end - col_begin;
    for (int i = n - 1; i >= 0; --i) {
      const double* lrow = l.RowPtr(i);
      SRDA_CHECK_NE(lrow[i], 0.0) << "singular triangular matrix at " << i;
      const double diag = lrow[i];
      double* xrow_i = x.RowPtr(i) + col_begin;
      for (int j = 0; j < width; ++j) xrow_i[j] /= diag;
      for (int k = 0; k < i; ++k) {
        const double lik = lrow[k];
        double* xrow_k = x.RowPtr(k) + col_begin;
        for (int j = 0; j < width; ++j) xrow_k[j] -= lik * xrow_i[j];
      }
    }
  });
  return x;
}

Vector BackSubstitute(const Matrix& r, const Vector& b) {
  SRDA_CHECK_EQ(r.rows(), r.cols()) << "triangular solve needs square matrix";
  SRDA_CHECK_EQ(b.size(), r.rows()) << "triangular solve shape mismatch";
  const int n = r.rows();
  AddFlops(static_cast<double>(n) * n);
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    const double* row = r.RowPtr(i);
    for (int k = i + 1; k < n; ++k) sum -= row[k] * x[k];
    SRDA_CHECK_NE(row[i], 0.0) << "singular triangular matrix at " << i;
    x[i] = sum / row[i];
  }
  return x;
}

namespace naive {

bool CholeskyFactor(const Matrix& a, Matrix* l) {
  SRDA_CHECK(l != nullptr);
  SRDA_CHECK_EQ(a.rows(), a.cols()) << "Cholesky needs a square matrix";
  const int n = a.rows();
  *l = Matrix(n, n);
  double max_diag = 0.0;
  for (int j = 0; j < n; ++j) {
    if (!std::isfinite(a(j, j))) return false;
    max_diag = std::max(max_diag, std::fabs(a(j, j)));
  }
  const double pivot_floor = 1e-14 * max_diag;
  AddFlops(static_cast<double>(n) * n * n / 3.0);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* lrow_j = l->RowPtr(j);
    for (int k = 0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
    if (diag <= pivot_floor || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    (*l)(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (int i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      const double* lrow_i = l->RowPtr(i);
      for (int k = 0; k < j; ++k) sum -= lrow_i[k] * lrow_j[k];
      (*l)(i, j) = sum * inv;
    }
  }
  return true;
}

}  // namespace naive

}  // namespace srda
