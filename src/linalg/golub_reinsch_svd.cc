#include "linalg/golub_reinsch_svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace srda {
namespace {

constexpr double kEps = 2.3e-16;
constexpr int kMaxIterations = 60;

double SameSign(double magnitude, double sign) {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

// Golub-Reinsch SVD of an m x n matrix with m >= n, operating in place:
// on exit `u` holds the left singular vectors (m x n), `w` the unsorted
// singular values, `v` the right singular vectors (n x n). Returns false if
// the QR iteration fails to converge.
bool GolubReinschCore(Matrix* u_matrix, Vector* w_vector, Matrix* v_matrix) {
  Matrix& a = *u_matrix;
  Vector& w = *w_vector;
  Matrix& v = *v_matrix;
  const int m = a.rows();
  const int n = a.cols();
  Vector rv1(n);

  // Householder reduction to bidiagonal form.
  double g = 0.0;
  double scale = 0.0;
  double anorm = 0.0;
  int l = 0;
  for (int i = 0; i < n; ++i) {
    l = i + 1;
    rv1[i] = scale * g;
    g = 0.0;
    double s = 0.0;
    scale = 0.0;
    if (i < m) {
      for (int k = i; k < m; ++k) scale += std::fabs(a(k, i));
      if (scale != 0.0) {
        for (int k = i; k < m; ++k) {
          a(k, i) /= scale;
          s += a(k, i) * a(k, i);
        }
        double f = a(i, i);
        g = -SameSign(std::sqrt(s), f);
        const double h = f * g - s;
        a(i, i) = f - g;
        for (int j = l; j < n; ++j) {
          s = 0.0;
          for (int k = i; k < m; ++k) s += a(k, i) * a(k, j);
          f = s / h;
          for (int k = i; k < m; ++k) a(k, j) += f * a(k, i);
        }
        for (int k = i; k < m; ++k) a(k, i) *= scale;
      }
    }
    w[i] = scale * g;
    g = 0.0;
    s = 0.0;
    scale = 0.0;
    if (i < m && i != n - 1) {
      for (int k = l; k < n; ++k) scale += std::fabs(a(i, k));
      if (scale != 0.0) {
        for (int k = l; k < n; ++k) {
          a(i, k) /= scale;
          s += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        g = -SameSign(std::sqrt(s), f);
        const double h = f * g - s;
        a(i, l) = f - g;
        for (int k = l; k < n; ++k) rv1[k] = a(i, k) / h;
        for (int j = l; j < m; ++j) {
          s = 0.0;
          for (int k = l; k < n; ++k) s += a(j, k) * a(i, k);
          for (int k = l; k < n; ++k) a(j, k) += s * rv1[k];
        }
        for (int k = l; k < n; ++k) a(i, k) *= scale;
      }
    }
    anorm = std::max(anorm, std::fabs(w[i]) + std::fabs(rv1[i]));
  }

  // Accumulate right-hand transformations.
  for (int i = n - 1; i >= 0; --i) {
    if (i < n - 1) {
      if (g != 0.0) {
        for (int j = l; j < n; ++j) v(j, i) = (a(i, j) / a(i, l)) / g;
        for (int j = l; j < n; ++j) {
          double s = 0.0;
          for (int k = l; k < n; ++k) s += a(i, k) * v(k, j);
          for (int k = l; k < n; ++k) v(k, j) += s * v(k, i);
        }
      }
      for (int j = l; j < n; ++j) {
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    }
    v(i, i) = 1.0;
    g = rv1[i];
    l = i;
  }

  // Accumulate left-hand transformations.
  for (int i = std::min(m, n) - 1; i >= 0; --i) {
    l = i + 1;
    g = w[i];
    for (int j = l; j < n; ++j) a(i, j) = 0.0;
    if (g != 0.0) {
      g = 1.0 / g;
      for (int j = l; j < n; ++j) {
        double s = 0.0;
        for (int k = l; k < m; ++k) s += a(k, i) * a(k, j);
        const double f = (s / a(i, i)) * g;
        for (int k = i; k < m; ++k) a(k, j) += f * a(k, i);
      }
      for (int j = i; j < m; ++j) a(j, i) *= g;
    } else {
      for (int j = i; j < m; ++j) a(j, i) = 0.0;
    }
    a(i, i) += 1.0;
  }

  // Diagonalize the bidiagonal form by implicit-shift QR.
  for (int k = n - 1; k >= 0; --k) {
    for (int iteration = 1; iteration <= kMaxIterations; ++iteration) {
      bool flag = true;
      int nm = 0;
      int split = 0;
      for (split = k; split >= 0; --split) {
        nm = split - 1;
        if (std::fabs(rv1[split]) <= kEps * anorm) {
          flag = false;
          break;
        }
        if (nm >= 0 && std::fabs(w[nm]) <= kEps * anorm) break;
      }
      if (flag) {
        // Cancel rv1[split] with rotations from the left.
        double c = 0.0;
        double s = 1.0;
        for (int i = split; i <= k; ++i) {
          const double f = s * rv1[i];
          rv1[i] = c * rv1[i];
          if (std::fabs(f) <= kEps * anorm) break;
          g = w[i];
          double h = std::hypot(f, g);
          w[i] = h;
          h = 1.0 / h;
          c = g * h;
          s = -f * h;
          for (int j = 0; j < m; ++j) {
            const double y = a(j, nm);
            const double z = a(j, i);
            a(j, nm) = y * c + z * s;
            a(j, i) = z * c - y * s;
          }
        }
      }
      const double z_value = w[k];
      if (split == k) {
        if (z_value < 0.0) {  // Make the singular value non-negative.
          w[k] = -z_value;
          for (int j = 0; j < n; ++j) v(j, k) = -v(j, k);
        }
        break;
      }
      if (iteration == kMaxIterations) return false;

      // Shift from the bottom 2x2 minor.
      double x = w[split];
      nm = k - 1;
      double y = w[nm];
      g = rv1[nm];
      double h = rv1[k];
      double f =
          ((y - z_value) * (y + z_value) + (g - h) * (g + h)) / (2.0 * h * y);
      g = std::hypot(f, 1.0);
      f = ((x - z_value) * (x + z_value) +
           h * ((y / (f + SameSign(g, f))) - h)) /
          x;
      // QR transformation.
      double c = 1.0;
      double s = 1.0;
      for (int j = split; j <= nm; ++j) {
        const int i = j + 1;
        g = rv1[i];
        y = w[i];
        h = s * g;
        g = c * g;
        double z = std::hypot(f, h);
        rv1[j] = z;
        c = f / z;
        s = h / z;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        for (int jj = 0; jj < n; ++jj) {
          x = v(jj, j);
          z = v(jj, i);
          v(jj, j) = x * c + z * s;
          v(jj, i) = z * c - x * s;
        }
        z = std::hypot(f, h);
        w[j] = z;
        if (z != 0.0) {
          z = 1.0 / z;
          c = f * z;
          s = h * z;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        for (int jj = 0; jj < m; ++jj) {
          y = a(jj, j);
          z = a(jj, i);
          a(jj, j) = y * c + z * s;
          a(jj, i) = z * c - y * s;
        }
      }
      rv1[split] = 0.0;
      rv1[k] = f;
      w[k] = x;
    }
  }
  return true;
}

}  // namespace

SvdResult ThinSvdGolubReinsch(const Matrix& a, double rank_tolerance) {
  SRDA_CHECK(a.rows() > 0 && a.cols() > 0) << "SVD of an empty matrix";
  SRDA_CHECK(rank_tolerance >= 0.0);

  // The core requires m >= n; transpose otherwise and swap factors.
  const bool transposed = a.rows() < a.cols();
  Matrix work = transposed ? a.Transposed() : a;
  const int n_small = work.cols();
  Vector w(n_small);
  Matrix v(n_small, n_small);

  SvdResult result;
  if (!GolubReinschCore(&work, &w, &v)) {
    result.converged = false;
    return result;
  }

  // Sort singular values descending and truncate by tolerance.
  std::vector<int> order(static_cast<size_t>(n_small));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int lhs, int rhs) { return w[lhs] > w[rhs]; });
  const double sigma_max = w[order[0]];
  const double threshold = sigma_max * rank_tolerance;
  int rank = 0;
  for (int index : order) {
    if (w[index] <= threshold || w[index] == 0.0) break;
    ++rank;
  }
  result.rank = rank;
  result.singular_values = Vector(rank);
  Matrix left(work.rows(), rank);
  Matrix right(n_small, rank);
  for (int out = 0; out < rank; ++out) {
    const int src = order[static_cast<size_t>(out)];
    result.singular_values[out] = w[src];
    for (int i = 0; i < work.rows(); ++i) left(i, out) = work(i, src);
    for (int i = 0; i < n_small; ++i) right(i, out) = v(i, src);
  }
  if (transposed) {
    result.u = std::move(right);
    result.v = std::move(left);
  } else {
    result.u = std::move(left);
    result.v = std::move(right);
  }
  result.converged = true;
  return result;
}

}  // namespace srda
