// Rank-k symmetric update/downdate of a Cholesky factor.
//
// Given the lower-triangular factor L of an SPD matrix G, these routines
// compute the factor of G + VᵀV (update) or G − VᵀV (downdate) in O(n²k)
// instead of the O(mn² + n³) rebuild-and-refactor, where the k rows of V
// are the vectors being added or removed. Internally the factor is scaled
// to LDLᵀ form and swept with "fast" (scaled) plane rotations — method C1
// of Gill, Golub, Murray & Saunders — two fused multiply-adds per
// element·vector, the hyperbolic variant falling out of the same
// recurrence with a negative running sigma. This is the engine behind RidgeSolver::ExcludeRows: a
// cross-validation fold's Gram X̄_trᵀX̄_tr + αI is exactly the full-data
// factor downdated by the fold's centered rows plus one mean-correction
// vector, so k-fold CV can factor once and derive every fold (DESIGN.md
// §4e).
//
// The rank-k sweep is panel-blocked: for each panel of factor columns the
// k rotation coefficients per column are formed once (serial, triangular
// head), then the whole panel's coefficient table is applied to every row
// below it in one cache-resident pass, eight rows interleaved to hide the
// rotation recurrence's latency. The rows are partitioned over the thread
// pool; every element's rotation chain runs in a fixed (column-ascending,
// vector-ascending) order independent of the partition and the row
// grouping, so — like the rest of the library — results are bitwise
// identical at any thread count.
//
// Downdates can be ill-posed: when G − VᵀV approaches singularity a
// downdating rotation's norm amplification 1/ρ blows up and the computed
// factor loses all accuracy. CholeskyRankKDowndate monitors the pivot
// shrink ratio d̄_j/d_j (the rotation's ρ²) at every step and returns
// false (condition fallback) instead of producing a garbage factor;
// callers are expected to refactor from scratch in that case (RidgeSolver
// does).

#ifndef SRDA_LINALG_CHOLESKY_UPDATE_H_
#define SRDA_LINALG_CHOLESKY_UPDATE_H_

#include <vector>

#include "matrix/matrix.h"

namespace srda {

// Rank-k update, in place: given L with G = LLᵀ, computes L' with
// L'L'ᵀ = G + VᵀV. `v` is k x n; each row is one update vector.
// Equivalent to k successive CholeskyRank1Update sweeps (up to rounding —
// the scaled-rotation form evaluates the same chain with different
// intermediate scalings), at one pass over the factor.
void CholeskyRankKUpdate(Matrix* l, const Matrix& v);

// Rank-k downdate, in place: computes L' with L'L'ᵀ = G − VᵀV. Returns
// false — leaving *l in an unspecified state — when a rotation approaches
// singularity (ρ² at or below an internal floor) or meets a non-finite
// value, i.e. G − VᵀV is not safely positive definite at working
// precision. Emits the `cholesky.downdate` trace span.
bool CholeskyRankKDowndate(Matrix* l, const Matrix& v);

// Factor of the principal submatrix: given L with G = LLᵀ, returns the
// factor of G with the rows AND columns in `indices` removed (indices
// sorted ascending, unique, in range). Each deletion splices the factor
// and repairs the trailing block with one Givens rank-1 update
// ("choldelete"); O(Σ (n − i)²) total. This is the dual-side half of the
// fold API: deleting a fold's rows from the factor of X̄X̄ᵀ + αI yields the
// factor of the held-in rows' outer Gram, still shifted by α.
Matrix CholeskyDeleteRowsCols(const Matrix& l,
                              const std::vector<int>& indices);

}  // namespace srda

#endif  // SRDA_LINALG_CHOLESKY_UPDATE_H_
