// Full-accuracy thin SVD via Golub-Reinsch bidiagonalization.
//
// The cross-product SVD (svd.h) is what the paper's LDA analysis assumes and
// what the cost model measures, but it resolves singular values only down to
// ~sqrt(eps) * sigma_max. This alternative path — Householder
// bidiagonalization followed by implicit-shift QR on the bidiagonal — is the
// classical backward-stable algorithm, accurate to ~eps * sigma_max. LDA can
// opt into it (LdaOptions::svd_method) when trustworthy small singular
// values matter more than speed.

#ifndef SRDA_LINALG_GOLUB_REINSCH_SVD_H_
#define SRDA_LINALG_GOLUB_REINSCH_SVD_H_

#include "linalg/svd.h"
#include "matrix/matrix.h"

namespace srda {

// Computes the thin, rank-truncated SVD of `a` with the Golub-Reinsch
// algorithm. Result layout matches ThinSvd: U (m x r), singular values
// descending, V (n x r), singular values at or below
// sigma_max * rank_tolerance truncated.
SvdResult ThinSvdGolubReinsch(const Matrix& a, double rank_tolerance = 1e-12);

}  // namespace srda

#endif  // SRDA_LINALG_GOLUB_REINSCH_SVD_H_
