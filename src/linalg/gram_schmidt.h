// Modified Gram-Schmidt orthonormalization.
//
// SRDA's "responses generation" step (Section III-B, step 1) orthogonalizes
// the class-indicator vectors against the all-ones vector; modified
// Gram-Schmidt with re-orthogonalization keeps the result orthogonal to
// working precision.

#ifndef SRDA_LINALG_GRAM_SCHMIDT_H_
#define SRDA_LINALG_GRAM_SCHMIDT_H_

#include "matrix/matrix.h"

namespace srda {

// Orthonormalizes the columns of `basis` in place, left to right, using
// modified Gram-Schmidt with one re-orthogonalization pass. Columns whose
// residual norm drops below `tolerance` times their original norm are deemed
// linearly dependent and dropped; surviving columns are compacted leftwards
// and `basis` is shrunk to the new column count.
//
// Returns the number of orthonormal columns kept.
int ModifiedGramSchmidt(Matrix* basis, double tolerance = 1e-10);

}  // namespace srda

#endif  // SRDA_LINALG_GRAM_SCHMIDT_H_
