// Cholesky factorization and triangular solves.
//
// SRDA's normal-equations path factors the symmetric positive-definite
// matrix X^T X + alpha*I once and back-solves for each of the c-1 responses
// (Section III-C1 of the paper).
//
// The factorization is blocked and right-looking (POTRF-style): each
// panel's diagonal block is factored serially, then the panel below it is
// solved (TRSM) and the trailing matrix updated (SYRK) on the thread pool,
// with the panel width taken from matrix/blocking.h (SRDA_BLOCK_NB).
// Every element's update chain runs over the reduction index in one fixed
// ascending order regardless of the ParallelFor partition, so — like the
// rest of the library — 1-thread and N-thread factors are bitwise
// identical.

#ifndef SRDA_LINALG_CHOLESKY_H_
#define SRDA_LINALG_CHOLESKY_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// Lower-triangular Cholesky factor of a symmetric positive-definite matrix:
// A = L L^T.
//
// Example:
//   Cholesky chol;
//   SRDA_CHECK(chol.Factor(gram)) << "matrix not positive definite";
//   Vector x = chol.Solve(rhs);
class Cholesky {
 public:
  Cholesky() = default;

  // Factors `a` (square, symmetric; only the lower triangle is read).
  // Returns false if a non-positive pivot is met, i.e. `a` is not numerically
  // positive definite; the object is then unusable until the next Factor().
  bool Factor(const Matrix& a);

  // Solves A x = b using the stored factor. Requires a successful Factor().
  Vector Solve(const Vector& b) const;

  // Solves A X = B for all k columns of B at once (B is n x k). The
  // substitution sweeps run over column stripes in parallel, touching each
  // factor row once per sweep instead of once per column — no per-column
  // Col()/SetCol() copies.
  Matrix SolveMatrix(const Matrix& b) const;

  // The lower-triangular factor L. Requires a successful Factor().
  const Matrix& factor() const;

  // Adopts `l` as the factor, as if Factor() had produced it. The lower
  // triangle is trusted as-is (square, positive diagonal); used by the
  // rank-k update engine (linalg/cholesky_update.h) to install a
  // downdated factor without paying a refactorization.
  void SetFactor(Matrix l);

  bool ok() const { return ok_; }

 private:
  Matrix l_;
  bool ok_ = false;
};

// Rank-1 update of a lower-triangular Cholesky factor, in place:
// given L with A = L L^T, computes L' with L' L'^T = A + v v^T.
// O(n^2) — the building block of incremental SRDA training.
void CholeskyRank1Update(Matrix* l, Vector v);

// Solves L x = b for lower-triangular L (forward substitution).
Vector ForwardSubstitute(const Matrix& l, const Vector& b);

// Solves L^T x = b for lower-triangular L (back substitution on the
// transpose).
Vector BackSubstituteTransposed(const Matrix& l, const Vector& b);

// Solves R x = b for upper-triangular R (back substitution). Used by the QR
// based IDR/QR baseline.
Vector BackSubstitute(const Matrix& r, const Vector& b);

// Batched forms of ForwardSubstitute / BackSubstituteTransposed: solve
// L X = B (resp. L^T X = B) for all k columns of B (n x k) at once, column
// stripes in parallel. Each column's arithmetic is EXACTLY the single-vector
// routine's (per-row division, no zero-skip), so column j of the result is
// bitwise identical to ForwardSubstitute(l, B.Col(j)) at any thread count.
// The preconditioned LSQR path leans on that contract to keep batched and
// serial preconditioned solves bitwise equal.
Matrix ForwardSubstituteMatrix(const Matrix& l, const Matrix& b);
Matrix BackSubstituteTransposedMatrix(const Matrix& l, const Matrix& b);

// Reference implementation: the serial column-by-column factorization the
// blocked Cholesky replaced. Writes the lower-triangular factor into `l`
// and returns false on a non-positive pivot, like Cholesky::Factor. Kept
// for agreement tests and the blocked-vs-naive bench sweep; not for
// production call sites.
namespace naive {
bool CholeskyFactor(const Matrix& a, Matrix* l);
}  // namespace naive

}  // namespace srda

#endif  // SRDA_LINALG_CHOLESKY_H_
