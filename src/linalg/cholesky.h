// Cholesky factorization and triangular solves.
//
// SRDA's normal-equations path factors the symmetric positive-definite
// matrix X^T X + alpha*I once and back-solves for each of the c-1 responses
// (Section III-C1 of the paper).

#ifndef SRDA_LINALG_CHOLESKY_H_
#define SRDA_LINALG_CHOLESKY_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// Lower-triangular Cholesky factor of a symmetric positive-definite matrix:
// A = L L^T.
//
// Example:
//   Cholesky chol;
//   SRDA_CHECK(chol.Factor(gram)) << "matrix not positive definite";
//   Vector x = chol.Solve(rhs);
class Cholesky {
 public:
  Cholesky() = default;

  // Factors `a` (square, symmetric; only the lower triangle is read).
  // Returns false if a non-positive pivot is met, i.e. `a` is not numerically
  // positive definite; the object is then unusable until the next Factor().
  bool Factor(const Matrix& a);

  // Solves A x = b using the stored factor. Requires a successful Factor().
  Vector Solve(const Vector& b) const;

  // Solves A X = B column-wise; B is n x k.
  Matrix SolveMatrix(const Matrix& b) const;

  // The lower-triangular factor L. Requires a successful Factor().
  const Matrix& factor() const;

  bool ok() const { return ok_; }

 private:
  Matrix l_;
  bool ok_ = false;
};

// Rank-1 update of a lower-triangular Cholesky factor, in place:
// given L with A = L L^T, computes L' with L' L'^T = A + v v^T.
// O(n^2) — the building block of incremental SRDA training.
void CholeskyRank1Update(Matrix* l, Vector v);

// Solves L x = b for lower-triangular L (forward substitution).
Vector ForwardSubstitute(const Matrix& l, const Vector& b);

// Solves L^T x = b for lower-triangular L (back substitution on the
// transpose).
Vector BackSubstituteTransposed(const Matrix& l, const Vector& b);

// Solves R x = b for upper-triangular R (back substitution). Used by the QR
// based IDR/QR baseline.
Vector BackSubstitute(const Matrix& r, const Vector& b);

}  // namespace srda

#endif  // SRDA_LINALG_CHOLESKY_H_
