#include "linalg/lsqr.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "linalg/cholesky.h"
#include "matrix/blas.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Iteration accounting, recorded while tracing: the counter totals
// iterations across every solve, the histogram shows the per-RHS spread.
struct LsqrInstruments {
  Counter* iterations;
  Histogram* iterations_per_rhs;
};

const LsqrInstruments& LsqrMetrics() {
  static const LsqrInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return LsqrInstruments{registry.counter("lsqr.iterations"),
                           registry.histogram("lsqr.iterations_per_rhs")};
  }();
  return instruments;
}

void RecordLsqrMetrics(const LsqrResult& result) {
  if (!TraceEnabled()) return;
  LsqrMetrics().iterations->Add(static_cast<double>(result.iterations));
  LsqrMetrics().iterations_per_rhs->Observe(
      static_cast<double>(result.iterations));
}

// Iterations spent inside right-preconditioned solves. Together with the
// lsqr.iterations total this lets the phase summary split preconditioned
// from plain iteration counts (obs/report.cc).
void RecordPrecondIterations(int iterations) {
  if (!TraceEnabled()) return;
  static Counter* precond =
      MetricsRegistry::Global().counter("lsqr.precond_iterations");
  precond->Add(static_cast<double>(iterations));
}

// The right-preconditioned damped operator B = [A; damp I] L^{-T}. The
// damp rows are made explicit (rather than left to LSQR's own damping)
// because damping acts on the SOLVE variable: damping z would penalize
// ||z|| = ||L^T x||, not ||x||. With the rows folded in, the inner solve
// runs undamped and minimizes the original damped objective exactly.
//
// Bitwise contract: every product applies the matrix triangular-solve
// routines (whose columns are bitwise equal to the vector routines) and the
// base operator's Multi products (same contract), so column j of a Multi
// product is bitwise identical to the single-vector product on column j —
// preconditioned LsqrBatch stays bitwise equal to serial preconditioned
// Lsqr, at any thread count.
class PrecondDampedOperator final : public LinearOperator {
 public:
  PrecondDampedOperator(const LinearOperator* base, const Matrix* l,
                        double damp)
      : base_(base),
        l_(l),
        damp_(damp),
        rows_(base->rows() + (damp > 0.0 ? base->cols() : 0)) {}

  int rows() const override { return rows_; }
  int cols() const override { return base_->cols(); }

  Vector Apply(const Vector& z) const override {
    TraceSpan span("sketch.apply");
    const Vector x = BackSubstituteTransposed(*l_, z);
    Vector top = base_->Apply(x);
    if (damp_ == 0.0) return top;
    const int m = base_->rows();
    const int n = base_->cols();
    Vector out(rows_);
    for (int i = 0; i < m; ++i) out[i] = top[i];
    for (int i = 0; i < n; ++i) out[m + i] = damp_ * x[i];
    return out;
  }

  Vector ApplyTransposed(const Vector& y) const override {
    TraceSpan span("sketch.apply");
    const int m = base_->rows();
    const int n = base_->cols();
    Vector top(m);
    for (int i = 0; i < m; ++i) top[i] = y[i];
    Vector t = base_->ApplyTransposed(top);
    if (damp_ > 0.0) {
      for (int i = 0; i < n; ++i) t[i] += damp_ * y[m + i];
    }
    return ForwardSubstitute(*l_, t);
  }

  Matrix ApplyMulti(const Matrix& z) const override {
    TraceSpan span("sketch.apply");
    const Matrix x = BackSubstituteTransposedMatrix(*l_, z);
    Matrix top = base_->ApplyMulti(x);
    if (damp_ == 0.0) return top;
    const int m = base_->rows();
    const int n = base_->cols();
    const int k = z.cols();
    Matrix out(rows_, k);
    for (int i = 0; i < m; ++i) {
      const double* src = top.RowPtr(i);
      double* dst = out.RowPtr(i);
      for (int j = 0; j < k; ++j) dst[j] = src[j];
    }
    for (int i = 0; i < n; ++i) {
      const double* src = x.RowPtr(i);
      double* dst = out.RowPtr(m + i);
      for (int j = 0; j < k; ++j) dst[j] = damp_ * src[j];
    }
    return out;
  }

  Matrix ApplyTransposedMulti(const Matrix& y) const override {
    TraceSpan span("sketch.apply");
    const int m = base_->rows();
    const int n = base_->cols();
    const int k = y.cols();
    Matrix top(m, k);
    for (int i = 0; i < m; ++i) {
      const double* src = y.RowPtr(i);
      double* dst = top.RowPtr(i);
      for (int j = 0; j < k; ++j) dst[j] = src[j];
    }
    Matrix t = base_->ApplyTransposedMulti(top);
    if (damp_ > 0.0) {
      for (int i = 0; i < n; ++i) {
        const double* src = y.RowPtr(m + i);
        double* dst = t.RowPtr(i);
        for (int j = 0; j < k; ++j) dst[j] += damp_ * src[j];
      }
    }
    return ForwardSubstituteMatrix(*l_, t);
  }

 private:
  const LinearOperator* base_;
  const Matrix* l_;
  const double damp_;
  const int rows_;
};

// Inner options of a preconditioned solve: the preconditioner moves into
// the operator, damping moves into the explicit damp rows.
LsqrOptions InnerOptions(const LsqrOptions& options) {
  LsqrOptions inner = options;
  inner.right_precond = nullptr;
  inner.damp = 0.0;
  return inner;
}

}  // namespace

const char* LsqrStopName(LsqrStop stop) {
  switch (stop) {
    case LsqrStop::kIterationLimit:
      return "iteration_limit";
    case LsqrStop::kRhsZero:
      return "rhs_zero";
    case LsqrStop::kNormalZero:
      return "normal_zero";
    case LsqrStop::kResidualTol:
      return "residual_tol";
    case LsqrStop::kNormalResidualTol:
      return "normal_residual_tol";
    case LsqrStop::kBreakdown:
      return "breakdown";
  }
  return "unknown";
}

LsqrResult Lsqr(const LinearOperator& a, const Vector& b,
                const LsqrOptions& options) {
  SRDA_CHECK_EQ(b.size(), a.rows()) << "LSQR rhs size mismatch";
  SRDA_CHECK_GT(options.max_iterations, 0);
  SRDA_CHECK_GE(options.damp, 0.0);
  if (options.right_precond != nullptr) {
    const Matrix& l = *options.right_precond;
    SRDA_CHECK_EQ(l.rows(), a.cols()) << "right_precond shape mismatch";
    SRDA_CHECK_EQ(l.cols(), a.cols()) << "right_precond must be square";
    PrecondDampedOperator pre(&a, &l, options.damp);
    Vector rhs(pre.rows());  // [b; 0]: the damp rows carry a zero target.
    for (int i = 0; i < b.size(); ++i) rhs[i] = b[i];
    LsqrResult result = Lsqr(pre, rhs, InnerOptions(options));
    result.x = BackSubstituteTransposed(l, result.x);
    RecordPrecondIterations(result.iterations);
    return result;
  }

  const int n = a.cols();
  TraceSpan span("lsqr.solve");
  if (span.recording()) {
    span.AddArg("max_iterations",
                static_cast<double>(options.max_iterations));
  }
  LsqrResult result;
  result.x = Vector(n);

  // Golub-Kahan bidiagonalization starting vectors.
  Vector u = b;
  double beta = Norm2(u);
  if (beta == 0.0) {
    // b == 0: the minimizer is x == 0.
    result.converged = true;
    result.stop = LsqrStop::kRhsZero;
    RecordLsqrMetrics(result);
    return result;
  }
  Scale(1.0 / beta, &u);
  Vector v = a.ApplyTransposed(u);
  double alpha = Norm2(v);
  if (alpha == 0.0) {
    // A^T b == 0: x == 0 is already the normal-equations solution.
    result.residual_norm = beta;
    result.converged = true;
    result.stop = LsqrStop::kNormalZero;
    RecordLsqrMetrics(result);
    return result;
  }
  Scale(1.0 / alpha, &v);

  Vector w = v;
  double phibar = beta;
  double rhobar = alpha;
  const double bnorm = beta;
  double anorm_sq = 0.0;  // Frobenius-norm estimate of [A; damp I].
  double res_normal = alpha * beta;
  // Paige-Saunders damped residual: ||[b; 0] - [A; damp I] x_k||^2 ==
  // phibar_k^2 + sum_{i<=k} psi_i^2, so the psi^2 terms accumulate across
  // iterations rather than being read off the current one.
  double psi_sq_sum = 0.0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    TraceSpan iter_span("lsqr.iteration");
    // Continue the bidiagonalization: beta_{k+1} u_{k+1} = A v_k - alpha_k u_k.
    Vector au = a.Apply(v);
    for (int i = 0; i < au.size(); ++i) au[i] -= alpha * u[i];
    u = std::move(au);
    beta = Norm2(u);
    if (beta > 0.0) {
      Scale(1.0 / beta, &u);
      Vector atv = a.ApplyTransposed(u);
      for (int i = 0; i < n; ++i) atv[i] -= beta * v[i];
      v = std::move(atv);
      alpha = Norm2(v);
      if (alpha > 0.0) Scale(1.0 / alpha, &v);
    } else {
      alpha = 0.0;
    }
    anorm_sq += alpha * alpha + beta * beta + options.damp * options.damp;

    // Eliminate the damping entry with a first rotation.
    const double rhobar1 = std::hypot(rhobar, options.damp);
    const double c1 = rhobar / rhobar1;
    const double s1 = options.damp / rhobar1;
    const double psi = s1 * phibar;
    psi_sq_sum += psi * psi;
    phibar = c1 * phibar;

    // Plane rotation annihilating beta.
    const double rho = std::hypot(rhobar1, beta);
    const double c = rhobar1 / rho;
    const double s = beta / rho;
    const double theta = s * alpha;
    rhobar = -c * alpha;
    const double phi = c * phibar;
    phibar = s * phibar;

    // Update the iterate and the search direction.
    const double t1 = phi / rho;
    const double t2 = -theta / rho;
    for (int i = 0; i < n; ++i) {
      result.x[i] += t1 * w[i];
      w[i] = v[i] + t2 * w[i];
    }

    result.iterations = iter;
    // With damp == 0 every psi is 0 and this reduces to |phibar| exactly.
    result.residual_norm = psi_sq_sum == 0.0
                               ? std::fabs(phibar)
                               : std::sqrt(phibar * phibar + psi_sq_sum);
    res_normal = std::fabs(phibar) * alpha * std::fabs(c);
    result.normal_residual_norm = res_normal;
    if (iter_span.recording()) {
      iter_span.AddArg("iter", static_cast<double>(iter));
      iter_span.AddArg("residual", result.residual_norm);
    }

    // Paige-Saunders stopping rules 1 and 2.
    const double anorm = std::sqrt(anorm_sq);
    const double xnorm = Norm2(result.x);
    if (result.residual_norm <=
        options.btol * bnorm + options.atol * anorm * xnorm) {
      result.converged = true;
      result.stop = LsqrStop::kResidualTol;
      break;
    }
    if (anorm > 0.0 && result.residual_norm > 0.0 &&
        res_normal / (anorm * result.residual_norm) <= options.atol) {
      result.converged = true;
      result.stop = LsqrStop::kNormalResidualTol;
      break;
    }
    if (alpha == 0.0) {  // Exact breakdown: solution reached.
      result.converged = true;
      result.stop = LsqrStop::kBreakdown;
      break;
    }
  }
  RecordLsqrMetrics(result);
  return result;
}

namespace {

// Per-column bidiagonalization state for LsqrBatch. Mirrors the local
// variables of Lsqr exactly; `active` is false once a stopping rule fired
// (the column's iterate is then frozen and it drops out of the batched
// operator passes).
struct LsqrColumnState {
  Vector u, v, w;
  double alpha = 0.0;
  double beta = 0.0;
  double phibar = 0.0;
  double rhobar = 0.0;
  double bnorm = 0.0;
  double anorm_sq = 0.0;
  double psi_sq_sum = 0.0;
  bool active = false;
};

}  // namespace

std::vector<LsqrResult> LsqrBatch(const LinearOperator& a, const Matrix& b,
                                  const LsqrOptions& options) {
  SRDA_CHECK_EQ(b.rows(), a.rows()) << "LSQR batch rhs size mismatch";
  SRDA_CHECK_GT(options.max_iterations, 0);
  SRDA_CHECK_GE(options.damp, 0.0);
  if (options.right_precond != nullptr) {
    const Matrix& l = *options.right_precond;
    SRDA_CHECK_EQ(l.rows(), a.cols()) << "right_precond shape mismatch";
    SRDA_CHECK_EQ(l.cols(), a.cols()) << "right_precond must be square";
    PrecondDampedOperator pre(&a, &l, options.damp);
    Matrix rhs(pre.rows(), b.cols());  // [b; 0] per column.
    for (int i = 0; i < b.rows(); ++i) {
      const double* src = b.RowPtr(i);
      double* dst = rhs.RowPtr(i);
      for (int j = 0; j < b.cols(); ++j) dst[j] = src[j];
    }
    std::vector<LsqrResult> results = LsqrBatch(pre, rhs, InnerOptions(options));
    // One batched back-substitution maps every column's z back to x; per
    // column it is bitwise the vector BackSubstituteTransposed the serial
    // preconditioned Lsqr applies.
    Matrix z(a.cols(), b.cols());
    for (int j = 0; j < b.cols(); ++j) {
      z.SetCol(j, results[static_cast<size_t>(j)].x);
    }
    const Matrix x = BackSubstituteTransposedMatrix(l, z);
    for (int j = 0; j < b.cols(); ++j) {
      results[static_cast<size_t>(j)].x = x.Col(j);
      RecordPrecondIterations(results[static_cast<size_t>(j)].iterations);
    }
    return results;
  }

  const int m = a.rows();
  const int n = a.cols();
  const int d = b.cols();
  TraceSpan span("lsqr.batch");
  if (span.recording()) {
    span.AddArg("rhs", static_cast<double>(d));
    span.AddArg("max_iterations",
                static_cast<double>(options.max_iterations));
  }
  std::vector<LsqrResult> results(static_cast<size_t>(d));
  std::vector<LsqrColumnState> state(static_cast<size_t>(d));

  // Start the bidiagonalization: u_j = b_j / ||b_j||. Columns with b_j == 0
  // converge immediately at x == 0, as in the serial solver.
  std::vector<int> pending;
  for (int j = 0; j < d; ++j) {
    results[j].x = Vector(n);
    LsqrColumnState& st = state[static_cast<size_t>(j)];
    st.u = b.Col(j);
    st.beta = Norm2(st.u);
    if (st.beta == 0.0) {
      results[j].converged = true;
      results[j].stop = LsqrStop::kRhsZero;
      continue;
    }
    Scale(1.0 / st.beta, &st.u);
    pending.push_back(j);
  }

  // One batched transposed pass seeds every surviving column's v.
  if (!pending.empty()) {
    Matrix packed(m, static_cast<int>(pending.size()));
    for (size_t t = 0; t < pending.size(); ++t) {
      packed.SetCol(static_cast<int>(t), state[pending[t]].u);
    }
    const Matrix seeded = a.ApplyTransposedMulti(packed);
    for (size_t t = 0; t < pending.size(); ++t) {
      const int j = pending[t];
      LsqrColumnState& st = state[static_cast<size_t>(j)];
      st.v = seeded.Col(static_cast<int>(t));
      st.alpha = Norm2(st.v);
      if (st.alpha == 0.0) {
        // A^T b_j == 0: x == 0 already solves the normal equations.
        results[j].residual_norm = st.beta;
        results[j].converged = true;
        results[j].stop = LsqrStop::kNormalZero;
        continue;
      }
      Scale(1.0 / st.alpha, &st.v);
      st.w = st.v;
      st.phibar = st.beta;
      st.rhobar = st.alpha;
      st.bnorm = st.beta;
      st.active = true;
    }
  }

  std::vector<int> active;
  for (int j = 0; j < d; ++j) {
    if (state[static_cast<size_t>(j)].active) active.push_back(j);
  }

  for (int iter = 1; iter <= options.max_iterations && !active.empty();
       ++iter) {
    TraceSpan iter_span("lsqr.iteration");
    if (iter_span.recording()) {
      iter_span.AddArg("iter", static_cast<double>(iter));
      iter_span.AddArg("active", static_cast<double>(active.size()));
    }
    // One forward pass covers every active column's A v_k.
    Matrix packed_v(n, static_cast<int>(active.size()));
    for (size_t t = 0; t < active.size(); ++t) {
      packed_v.SetCol(static_cast<int>(t), state[active[t]].v);
    }
    const Matrix av = a.ApplyMulti(packed_v);

    // beta_{k+1} u_{k+1} = A v_k - alpha_k u_k, independently per column.
    ParallelFor(0, static_cast<int>(active.size()), [&](int tb, int te) {
      for (int t = tb; t < te; ++t) {
        LsqrColumnState& st = state[static_cast<size_t>(active[t])];
        Vector au = av.Col(t);
        for (int i = 0; i < m; ++i) au[i] -= st.alpha * st.u[i];
        st.u = std::move(au);
        st.beta = Norm2(st.u);
        if (st.beta > 0.0) Scale(1.0 / st.beta, &st.u);
      }
    });

    // One transposed pass covers the columns whose beta stayed positive.
    std::vector<int> slot(active.size(), -1);
    std::vector<int> transposed;
    for (size_t t = 0; t < active.size(); ++t) {
      if (state[active[t]].beta > 0.0) {
        slot[t] = static_cast<int>(transposed.size());
        transposed.push_back(active[t]);
      }
    }
    Matrix atv;
    if (!transposed.empty()) {
      Matrix packed_u(m, static_cast<int>(transposed.size()));
      for (size_t t = 0; t < transposed.size(); ++t) {
        packed_u.SetCol(static_cast<int>(t), state[transposed[t]].u);
      }
      atv = a.ApplyTransposedMulti(packed_u);
    }

    // Finish the iteration per column: v/alpha update, the two plane
    // rotations, the iterate update, and the stopping rules — verbatim the
    // serial recurrence.
    ParallelFor(0, static_cast<int>(active.size()), [&](int tb, int te) {
      for (int t = tb; t < te; ++t) {
        const int j = active[t];
        LsqrColumnState& st = state[static_cast<size_t>(j)];
        LsqrResult& res = results[static_cast<size_t>(j)];
        if (st.beta > 0.0) {
          Vector nv = atv.Col(slot[t]);
          for (int i = 0; i < n; ++i) nv[i] -= st.beta * st.v[i];
          st.v = std::move(nv);
          st.alpha = Norm2(st.v);
          if (st.alpha > 0.0) Scale(1.0 / st.alpha, &st.v);
        } else {
          st.alpha = 0.0;
        }
        st.anorm_sq += st.alpha * st.alpha + st.beta * st.beta +
                       options.damp * options.damp;

        const double rhobar1 = std::hypot(st.rhobar, options.damp);
        const double c1 = st.rhobar / rhobar1;
        const double s1 = options.damp / rhobar1;
        const double psi = s1 * st.phibar;
        st.psi_sq_sum += psi * psi;
        st.phibar = c1 * st.phibar;

        const double rho = std::hypot(rhobar1, st.beta);
        const double c = rhobar1 / rho;
        const double s = st.beta / rho;
        const double theta = s * st.alpha;
        st.rhobar = -c * st.alpha;
        const double phi = c * st.phibar;
        st.phibar = s * st.phibar;

        const double t1 = phi / rho;
        const double t2 = -theta / rho;
        for (int i = 0; i < n; ++i) {
          res.x[i] += t1 * st.w[i];
          st.w[i] = st.v[i] + t2 * st.w[i];
        }

        res.iterations = iter;
        res.residual_norm =
            st.psi_sq_sum == 0.0
                ? std::fabs(st.phibar)
                : std::sqrt(st.phibar * st.phibar + st.psi_sq_sum);
        res.normal_residual_norm = std::fabs(st.phibar) * st.alpha *
                                   std::fabs(c);

        const double anorm = std::sqrt(st.anorm_sq);
        const double xnorm = Norm2(res.x);
        if (res.residual_norm <=
            options.btol * st.bnorm + options.atol * anorm * xnorm) {
          res.converged = true;
          res.stop = LsqrStop::kResidualTol;
          st.active = false;
        } else if (anorm > 0.0 && res.residual_norm > 0.0 &&
                   res.normal_residual_norm / (anorm * res.residual_norm) <=
                       options.atol) {
          res.converged = true;
          res.stop = LsqrStop::kNormalResidualTol;
          st.active = false;
        } else if (st.alpha == 0.0) {  // Exact breakdown: solution reached.
          res.converged = true;
          res.stop = LsqrStop::kBreakdown;
          st.active = false;
        }
      }
    });

    std::vector<int> still_active;
    for (const int j : active) {
      if (state[static_cast<size_t>(j)].active) still_active.push_back(j);
    }
    active = std::move(still_active);
  }
  for (const LsqrResult& result : results) RecordLsqrMetrics(result);
  return results;
}

}  // namespace srda
