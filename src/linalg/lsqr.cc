#include "linalg/lsqr.h"

#include <cmath>

#include "common/check.h"
#include "matrix/blas.h"

namespace srda {

LsqrResult Lsqr(const LinearOperator& a, const Vector& b,
                const LsqrOptions& options) {
  SRDA_CHECK_EQ(b.size(), a.rows()) << "LSQR rhs size mismatch";
  SRDA_CHECK_GT(options.max_iterations, 0);
  SRDA_CHECK_GE(options.damp, 0.0);

  const int n = a.cols();
  LsqrResult result;
  result.x = Vector(n);

  // Golub-Kahan bidiagonalization starting vectors.
  Vector u = b;
  double beta = Norm2(u);
  if (beta == 0.0) {
    // b == 0: the minimizer is x == 0.
    result.converged = true;
    return result;
  }
  Scale(1.0 / beta, &u);
  Vector v = a.ApplyTransposed(u);
  double alpha = Norm2(v);
  if (alpha == 0.0) {
    // A^T b == 0: x == 0 is already the normal-equations solution.
    result.residual_norm = beta;
    result.converged = true;
    return result;
  }
  Scale(1.0 / alpha, &v);

  Vector w = v;
  double phibar = beta;
  double rhobar = alpha;
  const double bnorm = beta;
  double anorm_sq = 0.0;  // Frobenius-norm estimate of [A; damp I].
  double res_normal = alpha * beta;
  // Paige-Saunders damped residual: ||[b; 0] - [A; damp I] x_k||^2 ==
  // phibar_k^2 + sum_{i<=k} psi_i^2, so the psi^2 terms accumulate across
  // iterations rather than being read off the current one.
  double psi_sq_sum = 0.0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Continue the bidiagonalization: beta_{k+1} u_{k+1} = A v_k - alpha_k u_k.
    Vector au = a.Apply(v);
    for (int i = 0; i < au.size(); ++i) au[i] -= alpha * u[i];
    u = std::move(au);
    beta = Norm2(u);
    if (beta > 0.0) {
      Scale(1.0 / beta, &u);
      Vector atv = a.ApplyTransposed(u);
      for (int i = 0; i < n; ++i) atv[i] -= beta * v[i];
      v = std::move(atv);
      alpha = Norm2(v);
      if (alpha > 0.0) Scale(1.0 / alpha, &v);
    } else {
      alpha = 0.0;
    }
    anorm_sq += alpha * alpha + beta * beta + options.damp * options.damp;

    // Eliminate the damping entry with a first rotation.
    const double rhobar1 = std::hypot(rhobar, options.damp);
    const double c1 = rhobar / rhobar1;
    const double s1 = options.damp / rhobar1;
    const double psi = s1 * phibar;
    psi_sq_sum += psi * psi;
    phibar = c1 * phibar;

    // Plane rotation annihilating beta.
    const double rho = std::hypot(rhobar1, beta);
    const double c = rhobar1 / rho;
    const double s = beta / rho;
    const double theta = s * alpha;
    rhobar = -c * alpha;
    const double phi = c * phibar;
    phibar = s * phibar;

    // Update the iterate and the search direction.
    const double t1 = phi / rho;
    const double t2 = -theta / rho;
    for (int i = 0; i < n; ++i) {
      result.x[i] += t1 * w[i];
      w[i] = v[i] + t2 * w[i];
    }

    result.iterations = iter;
    // With damp == 0 every psi is 0 and this reduces to |phibar| exactly.
    result.residual_norm = psi_sq_sum == 0.0
                               ? std::fabs(phibar)
                               : std::sqrt(phibar * phibar + psi_sq_sum);
    res_normal = std::fabs(phibar) * alpha * std::fabs(c);
    result.normal_residual_norm = res_normal;

    // Paige-Saunders stopping rules 1 and 2.
    const double anorm = std::sqrt(anorm_sq);
    const double xnorm = Norm2(result.x);
    if (result.residual_norm <=
        options.btol * bnorm + options.atol * anorm * xnorm) {
      result.converged = true;
      break;
    }
    if (anorm > 0.0 && result.residual_norm > 0.0 &&
        res_normal / (anorm * result.residual_norm) <= options.atol) {
      result.converged = true;
      break;
    }
    if (alpha == 0.0) {  // Exact breakdown: solution reached.
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace srda
