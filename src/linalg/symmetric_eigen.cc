#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace srda {
namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

double SameSign(double magnitude, double sign) {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

// Householder reduction of the symmetric matrix stored in `z` to tridiagonal
// form. On exit `z` holds the accumulated orthogonal transformation, `d` the
// diagonal and `e` the subdiagonal (e[0] unused). Classical tred2.
void Tred2(Matrix* z, Vector* d, Vector* e) {
  Matrix& a = *z;
  const int n = a.rows();
  for (int i = n - 1; i >= 1; --i) {
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        (*e)[i] = a(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        (*e)[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (int k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          (*e)[j] = g / h;
          f += (*e)[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = a(i, j);
          g = (*e)[j] - hh * f;
          (*e)[j] = g;
          for (int k = 0; k <= j; ++k) {
            a(j, k) -= f * (*e)[k] + g * a(i, k);
          }
        }
      }
    } else {
      (*e)[i] = a(i, l);
    }
    (*d)[i] = h;
  }
  (*d)[0] = 0.0;
  (*e)[0] = 0.0;
  // Accumulate the transformation matrix.
  for (int i = 0; i < n; ++i) {
    const int l = i - 1;
    if ((*d)[i] != 0.0) {
      for (int j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (int k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    (*d)[i] = a(i, i);
    a(i, i) = 1.0;
    for (int j = 0; j <= l; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal matrix (d, e), rotating the
// columns of `z` along. Returns false if some eigenvalue fails to converge.
bool Tql2(Vector* d, Vector* e, Matrix* z) {
  const int n = d->size();
  constexpr int kMaxIterations = 64;
  for (int i = 1; i < n; ++i) (*e)[i - 1] = (*e)[i];
  (*e)[n - 1] = 0.0;
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = 0;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs((*d)[m]) + std::fabs((*d)[m + 1]);
        if (std::fabs((*e)[m]) <= 1e-300 ||
            std::fabs((*e)[m]) <= 2.3e-16 * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == kMaxIterations) return false;
        double g = ((*d)[l + 1] - (*d)[l]) / (2.0 * (*e)[l]);
        double r = Hypot(g, 1.0);
        g = (*d)[m] - (*d)[l] + (*e)[l] / (g + SameSign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * (*e)[i];
          const double b = c * (*e)[i];
          r = Hypot(f, g);
          (*e)[i + 1] = r;
          if (r == 0.0) {
            (*d)[i + 1] -= p;
            (*e)[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = (*d)[i + 1] - p;
          r = ((*d)[i] - g) * s + 2.0 * c * b;
          p = s * r;
          (*d)[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            f = (*z)(k, i + 1);
            (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
            (*z)(k, i) = c * (*z)(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        (*d)[l] -= p;
        (*e)[l] = g;
        (*e)[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

SymmetricEigenResult SymmetricEigen(const Matrix& a) {
  SRDA_CHECK_EQ(a.rows(), a.cols()) << "SymmetricEigen needs a square matrix";
  const int n = a.rows();
  SymmetricEigenResult result;
  result.eigenvalues = Vector(n);
  result.eigenvectors = Matrix(n, n);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Symmetrize from the lower triangle so callers may pass matrices with
  // round-off asymmetry.
  Matrix z(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      z(i, j) = a(i, j);
      z(j, i) = a(i, j);
    }
  }

  Vector d(n);
  Vector e(n);
  if (n == 1) {
    result.eigenvalues[0] = z(0, 0);
    result.eigenvectors(0, 0) = 1.0;
    result.converged = true;
    return result;
  }

  Tred2(&z, &d, &e);
  result.converged = Tql2(&d, &e, &z);

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int lhs, int rhs) { return d[lhs] < d[rhs]; });
  for (int j = 0; j < n; ++j) {
    const int src = order[static_cast<size_t>(j)];
    result.eigenvalues[j] = d[src];
    for (int i = 0; i < n; ++i) result.eigenvectors(i, j) = z(i, src);
  }
  return result;
}

}  // namespace srda
