#include "linalg/cholesky_update.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "matrix/simd/simd.h"
#include "matrix/vector.h"
#include "obs/trace.h"

// No-aliasing qualifier for the hot sweep kernels; GCC and Clang both
// accept the double-underscore spelling in C++.
#define SRDA_RESTRICT __restrict

namespace srda {
namespace {

// A downdate rotation that shrinks its pivot by this factor or more
// (d̄_j / d_j at or below the floor, the ρ² of the equivalent hyperbolic
// rotation) amplifies rounding error by ≥ ~3e4 and signals that G − VᵀV
// is numerically singular; we bail out to a full refactor instead of
// finishing with garbage digits.
constexpr double kDowndateRho2Floor = 1e-9;

// Columns per panel. Bounds the rotation-coefficient tables at
// 2 * kPanelColumns * k doubles so phase 2 streams them from cache while
// the factor and workspace rows stream from memory exactly once per panel.
constexpr int kPanelColumns = 16;

// Rows of the workspace are grouped into tiles of kLanes rows stored
// lane-interleaved ([tile][r][lane]), so the tile kernel's inner step is a
// contiguous kLanes-wide data-parallel operation. The lane count is owned
// by the simd layer (one zmm register at AVX-512), which supplies the
// full-tile kernel through simd::Dispatch().
constexpr int kLanes = simd::kDowndateLanes;

// Applies one panel's scaled rotations (columns [0, width) of the
// coefficient tables) to a single row of the unit-lower factor: `lseg` is
// the row's factor segment under the panel, `wlane` its k workspace
// entries at stride kLanes (one lane of a workspace tile). Per (element,
// vector) step the C1 recurrence is two fused multiply-adds:
// w ← w − p·l,  l ← l + γ·w.  The chain runs r-inner / column-outer in a
// fixed order, so the result never depends on how rows were grouped or
// partitioned — the bitwise-determinism contract.
inline void ApplyPanelRow(double* SRDA_RESTRICT lseg,
                          double* SRDA_RESTRICT wlane,
                          const double* SRDA_RESTRICT p,
                          const double* SRDA_RESTRICT g, int width, int k) {
  for (int j = 0; j < width; ++j) {
    const double* pj = p + j * k;
    const double* gj = g + j * k;
    double lij = lseg[j];
    for (int r = 0; r < k; ++r) {
      const double wr = wlane[r * kLanes] - pj[r] * lij;
      lij += gj[r] * wr;
      wlane[r * kLanes] = wr;
    }
    lseg[j] = lij;
  }
}

// The full-tile variant (apply the panel to kLanes rows at once, all
// lanes advancing in lockstep) is the dispatch table's downdate_tile
// kernel: each lane computes exactly the ApplyPanelRow arithmetic, so
// every dispatch level produces the bits of the scalar sweep.

// Blocked one-pass rank-k sweep over the factor in LDLᵀ form, shared by
// the update (sigma = +1) and downdate (sigma = −1). This is method C1 of
// Gill, Golub, Murray & Saunders applied to k vectors at once: per factor
// column j and vector r,
//
//   p = w_r[j],  d̄ = d + b_r p²,  γ = b_r p / d̄,  b_r ← b_r d / d̄,  d ← d̄
//
// and each trailing element takes the two-FMA step above — "fast"
// (scaled) rotations, 4 flops per element·vector against 6 for rotations
// on the LLᵀ factor. `l` is unit-lower (diagonal entries unread), `d` the
// diagonal, and `w` holds the k vectors transposed to n x k so every
// row's chain walks contiguous memory.
//
// Per panel: phase 1 (serial, triangular head) brings each panel row up
// to date against the panel's earlier columns and forms that column's k
// coefficient pairs (p, γ) from the running diagonal; phase 2 applies the
// whole panel's tables to every row below it, parallel over rows, eight
// rows interleaved. Each (row, column) element accumulates its rotations
// in the fixed (column-ascending, vector-ascending) order of the
// classical one-column-at-a-time sweep — the same dependency DAG,
// reordered for locality — so results are bitwise identical at any thread
// count and any row grouping.
//
// Returns false (factor left unspecified) when a downdated pivot hits the
// condition floor or a non-finite value appears.
template <bool kDowndate>
bool RankKSweep(Matrix* l, std::vector<double>* w, int k,
                std::vector<double>* diag) {
  Matrix& factor = *l;
  const int n = factor.rows();
  // Lane of row i inside its workspace tile.
  auto lane_ptr = [&](int i) {
    return w->data() +
           static_cast<size_t>(i / kLanes) * k * kLanes + i % kLanes;
  };
  const size_t table = static_cast<size_t>(kPanelColumns) * k;
  std::vector<double> p(table);
  std::vector<double> g(table);
  std::vector<double> b(static_cast<size_t>(k), kDowndate ? -1.0 : 1.0);
  for (int p0 = 0; p0 < n; p0 += kPanelColumns) {
    const int p1 = std::min(p0 + kPanelColumns, n);
    for (int j = p0; j < p1; ++j) {
      double* lrow = factor.RowPtr(j);
      double* wlane = lane_ptr(j);
      ApplyPanelRow(lrow + p0, wlane, p.data(), g.data(), j - p0, k);
      double dj = (*diag)[j];
      double* pj = p.data() + static_cast<size_t>(j - p0) * k;
      double* gj = g.data() + static_cast<size_t>(j - p0) * k;
      for (int r = 0; r < k; ++r) {
        const double pr = wlane[r * kLanes];
        const double dbar = dj + b[r] * pr * pr;
        if (kDowndate) {
          // catches NaN too
          if (!(dbar > kDowndateRho2Floor * dj)) return false;
        }
        pj[r] = pr;
        gj[r] = b[r] * pr / dbar;
        b[r] *= dj / dbar;
        dj = dbar;
      }
      if (!std::isfinite(dj)) return false;
      (*diag)[j] = dj;
    }
    const int width = p1 - p0;
    // Phase 2 walks workspace tiles. The head tile straddling the panel
    // boundary (and a ragged tail tile) go lane by lane; full tiles take
    // the SIMD-width kernel. Tile membership is fixed by row index, never
    // by thread partition, so the arithmetic per row is invariant.
    const int full_begin = (p1 + kLanes - 1) / kLanes;
    const int full_end = std::max(full_begin, n / kLanes);
    for (int i = p1; i < std::min(full_begin * kLanes, n); ++i) {
      ApplyPanelRow(factor.RowPtr(i) + p0, lane_ptr(i), p.data(), g.data(),
                    width, k);
    }
    const simd::KernelTable& kt = simd::Dispatch();
    ParallelFor(full_begin, full_end, [&](int tile_begin, int tile_end) {
      for (int t = tile_begin; t < tile_end; ++t) {
        double* lrows[kLanes];
        for (int q = 0; q < kLanes; ++q) {
          lrows[q] = factor.RowPtr(t * kLanes + q) + p0;
        }
        kt.downdate_tile(lrows,
                         w->data() + static_cast<size_t>(t) * k * kLanes,
                         p.data(), g.data(), width, k);
      }
    });
    for (int i = std::max(p1, full_end * kLanes); i < n; ++i) {
      ApplyPanelRow(factor.RowPtr(i) + p0, lane_ptr(i), p.data(), g.data(),
                    width, k);
    }
  }
  return true;
}

// Scales the LLᵀ factor into unit-lower columns plus a separate diagonal
// (the LDLᵀ form the sweep works in): d_j = L²_jj, column j divided by
// L_jj. The strict lower triangle is scaled in place, row by row.
void ToUnitLower(Matrix* l, std::vector<double>* diag) {
  Matrix& factor = *l;
  const int n = factor.rows();
  diag->resize(static_cast<size_t>(n));
  std::vector<double> inv(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double ljj = factor(j, j);
    SRDA_CHECK_GT(ljj, 0.0) << "invalid Cholesky factor at " << j;
    (*diag)[j] = ljj * ljj;
    inv[j] = 1.0 / ljj;
  }
  for (int i = 1; i < n; ++i) {
    double* row = factor.RowPtr(i);
    for (int j = 0; j < i; ++j) row[j] *= inv[j];
  }
}

// Inverse of ToUnitLower with the (updated) diagonal: column j scaled by
// sqrt(d_j), diagonal entries overwritten with sqrt(d_j).
void FromUnitLower(Matrix* l, const std::vector<double>& diag) {
  Matrix& factor = *l;
  const int n = factor.rows();
  std::vector<double> root(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) root[j] = std::sqrt(diag[static_cast<size_t>(j)]);
  for (int i = 0; i < n; ++i) {
    double* row = factor.RowPtr(i);
    for (int j = 0; j < i; ++j) row[j] *= root[j];
    row[i] = root[i];
  }
}

// Scatters the k x n vector block into the lane-interleaved sweep
// workspace: element (i, r) lives at tile i / kLanes, offset
// r * kLanes + i % kLanes.
std::vector<double> BuildTiledWorkspace(const Matrix& v) {
  const int k = v.rows();
  const int n = v.cols();
  const size_t tiles = static_cast<size_t>((n + kLanes - 1) / kLanes);
  std::vector<double> w(tiles * k * kLanes, 0.0);
  for (int r = 0; r < k; ++r) {
    const double* src = v.RowPtr(r);
    for (int i = 0; i < n; ++i) {
      w[static_cast<size_t>(i / kLanes) * k * kLanes + r * kLanes +
        i % kLanes] = src[i];
    }
  }
  return w;
}

void CheckShapes(const Matrix& l, const Matrix& v) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "factor must be square";
  SRDA_CHECK_EQ(v.cols(), l.rows()) << "update vectors must have n entries";
  SRDA_CHECK_GT(v.rows(), 0) << "need at least one update vector";
}

// Rank-1 Givens update restricted to the trailing block [begin, end) of
// `l`, with v indexed from the block origin. The splice step of each
// choldelete repairs the factor below the deleted index with this.
void Rank1UpdateBlock(Matrix* l, int begin, int end, Vector* v) {
  Matrix& factor = *l;
  Vector& u = *v;
  for (int d = begin; d < end; ++d) {
    const double ldd = factor(d, d);
    SRDA_CHECK_GT(ldd, 0.0) << "invalid Cholesky factor at " << d;
    const double vd = u[d - begin];
    const double rr = std::hypot(ldd, vd);
    const double c = rr / ldd;
    const double s = vd / ldd;
    factor(d, d) = rr;
    for (int i = d + 1; i < end; ++i) {
      const double lid = (factor(i, d) + s * u[i - begin]) / c;
      u[i - begin] = c * u[i - begin] - s * lid;
      factor(i, d) = lid;
    }
  }
}

}  // namespace

void CholeskyRankKUpdate(Matrix* l, const Matrix& v) {
  SRDA_CHECK(l != nullptr);
  CheckShapes(*l, v);
  const int n = l->rows();
  const int k = v.rows();
  TraceSpan span("cholesky.update");
  if (span.recording()) {
    span.AddArg("k", static_cast<double>(k));
    span.AddArg("flops", 2.0 * n * n * k);
  }
  AddFlops(2.0 * n * n * k);
  std::vector<double> w = BuildTiledWorkspace(v);
  std::vector<double> diag;
  ToUnitLower(l, &diag);
  const bool ok = RankKSweep<false>(l, &w, k, &diag);
  SRDA_CHECK(ok) << "rank-k update met a non-finite value";
  FromUnitLower(l, diag);
}

bool CholeskyRankKDowndate(Matrix* l, const Matrix& v) {
  SRDA_CHECK(l != nullptr);
  CheckShapes(*l, v);
  const int n = l->rows();
  const int k = v.rows();
  TraceSpan span("cholesky.downdate");
  if (span.recording()) {
    span.AddArg("k", static_cast<double>(k));
    span.AddArg("flops", 2.0 * n * n * k);
  }
  AddFlops(2.0 * n * n * k);
  std::vector<double> w = BuildTiledWorkspace(v);
  std::vector<double> diag;
  ToUnitLower(l, &diag);
  if (!RankKSweep<true>(l, &w, k, &diag)) return false;
  FromUnitLower(l, diag);
  return true;
}

Matrix CholeskyDeleteRowsCols(const Matrix& l,
                              const std::vector<int>& indices) {
  SRDA_CHECK_EQ(l.rows(), l.cols()) << "factor must be square";
  const int n = l.rows();
  SRDA_CHECK_LT(static_cast<int>(indices.size()), n)
      << "cannot delete every row of the factor";
  for (size_t j = 0; j < indices.size(); ++j) {
    SRDA_CHECK_GE(indices[j], 0) << "index out of range";
    SRDA_CHECK_LT(indices[j], n) << "index out of range";
    if (j > 0) {
      SRDA_CHECK_GT(indices[j], indices[j - 1])
          << "indices must be sorted ascending and unique";
    }
  }
  TraceSpan span("cholesky.delete_rows");
  if (span.recording()) {
    span.AddArg("k", static_cast<double>(indices.size()));
  }
  Matrix work = l;
  int ncur = n;
  // Descending order keeps the not-yet-deleted (smaller) indices valid as
  // the matrix shrinks: splicing out `idx` only moves rows/cols above it.
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    const int idx = *it;
    const int tail = ncur - idx - 1;
    // The deleted column's sub-diagonal entries are exactly the rank-1
    // contribution the trailing factor loses with the splice.
    Vector v(tail);
    for (int i = 0; i < tail; ++i) v[i] = work(idx + 1 + i, idx);
    for (int i = idx + 1; i < ncur; ++i) {
      const double* src = work.RowPtr(i);
      double* dst = work.RowPtr(i - 1);
      std::copy(src, src + idx, dst);
      std::copy(src + idx + 1, src + i + 1, dst + idx);
    }
    --ncur;
    AddFlops(4.0 * tail * tail);
    Rank1UpdateBlock(&work, idx, ncur, &v);
  }
  Matrix out(ncur, ncur);
  for (int i = 0; i < ncur; ++i) {
    const double* src = work.RowPtr(i);
    std::copy(src, src + i + 1, out.RowPtr(i));
  }
  return out;
}

}  // namespace srda

#undef SRDA_RESTRICT
