// Thin singular value decomposition via the cross-product trick.
//
// Section II of the paper analyses LDA's cost assuming exactly this SVD
// strategy: form the Gram matrix of the smaller side (A^T A if m >= n, A A^T
// otherwise), eigendecompose it, and recover the other singular factor with
// one extra multiplication (U = A V Sigma^{-1} or V = A^T U Sigma^{-1}).
// Accuracy degrades for singular values near sqrt(eps) * sigma_max, which is
// acceptable here because LDA only consumes the numerically significant part
// of the spectrum (rank truncation below).

#ifndef SRDA_LINALG_SVD_H_
#define SRDA_LINALG_SVD_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// A = U diag(s) V^T with U (m x r), s (r, descending, positive), V (n x r),
// where r is the numerical rank: singular values below
// `rank_tolerance` * s_max are truncated.
struct SvdResult {
  Matrix u;
  Vector singular_values;
  Matrix v;
  int rank = 0;
  bool converged = false;
};

// Computes the thin, rank-truncated SVD of `a`.
// `rank_tolerance` is relative to the largest singular value; values at or
// below s_max * rank_tolerance are treated as zero.
SvdResult ThinSvd(const Matrix& a, double rank_tolerance = 1e-10);

}  // namespace srda

#endif  // SRDA_LINALG_SVD_H_
