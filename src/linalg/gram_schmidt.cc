#include "linalg/gram_schmidt.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace srda {
namespace {

double ColumnNorm(const Matrix& m, int j) {
  double sum = 0.0;
  for (int i = 0; i < m.rows(); ++i) sum += m(i, j) * m(i, j);
  return std::sqrt(sum);
}

double ColumnDot(const Matrix& m, int a, int b) {
  double sum = 0.0;
  for (int i = 0; i < m.rows(); ++i) sum += m(i, a) * m(i, b);
  return sum;
}

}  // namespace

int ModifiedGramSchmidt(Matrix* basis, double tolerance) {
  SRDA_CHECK(basis != nullptr);
  SRDA_CHECK(tolerance >= 0.0);
  Matrix& b = *basis;
  const int rows = b.rows();
  const int cols = b.cols();

  std::vector<int> kept;
  for (int j = 0; j < cols; ++j) {
    const double original_norm = ColumnNorm(b, j);
    // Two orthogonalization passes against the columns kept so far; the
    // second pass removes the round-off reintroduced by the first.
    for (int pass = 0; pass < 2; ++pass) {
      for (int kept_col : kept) {
        const double proj = ColumnDot(b, kept_col, j);
        for (int i = 0; i < rows; ++i) b(i, j) -= proj * b(i, kept_col);
      }
    }
    const double residual_norm = ColumnNorm(b, j);
    if (original_norm == 0.0 || residual_norm <= tolerance * original_norm) {
      continue;  // Linearly dependent on the kept columns; drop.
    }
    const double inv = 1.0 / residual_norm;
    for (int i = 0; i < rows; ++i) b(i, j) *= inv;
    kept.push_back(j);
  }

  // Compact surviving columns to the left.
  Matrix compacted(rows, static_cast<int>(kept.size()));
  for (size_t out = 0; out < kept.size(); ++out) {
    for (int i = 0; i < rows; ++i) {
      compacted(i, static_cast<int>(out)) = b(i, kept[out]);
    }
  }
  *basis = std::move(compacted);
  return basis->cols();
}

}  // namespace srda
