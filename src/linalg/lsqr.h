// LSQR iterative solver for sparse least squares (Paige & Saunders, 1982).
//
// Solves min_x ||A x - b||^2 + damp^2 ||x||^2 using only the products A*x
// and A^T*y, which is what gives SRDA its linear-time sparse path (Section
// III-C2 of the paper: each iteration costs 2*nnz + O(m + n) flam, and 15-20
// iterations suffice in the paper's experiments).

#ifndef SRDA_LINALG_LSQR_H_
#define SRDA_LINALG_LSQR_H_

#include <vector>

#include "linalg/linear_operator.h"
#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

struct LsqrOptions {
  // Hard iteration cap. The paper fixes 15-20 iterations for SRDA.
  int max_iterations = 20;
  // Tikhonov damping: solves the ridge problem with penalty damp^2.
  double damp = 0.0;
  // Relative tolerances for the Paige-Saunders stopping rules; iteration
  // also stops early when the estimated residual is compatible with these.
  double atol = 1e-10;
  double btol = 1e-10;
  // Optional right preconditioner: the lower-triangular Cholesky factor L
  // of an approximation to A^T A + damp^2 I (e.g. a sketched ridge Gram,
  // linalg/sketch.h). When set, LSQR runs on the change of variable
  // z = L^T x: it solves min_z ||[A; damp I] L^{-T} z - [b; 0]|| with no
  // inner damping (the damp rows are folded into the operator) and
  // back-substitutes x = L^{-T} z at the end. The better L L^T approximates
  // A^T A + damp^2 I, the closer the preconditioned operator is to an
  // isometry and the fewer iterations the solve takes. Each iteration adds
  // two O(n^2) triangular solves on top of the base operator products.
  // Not owned; must be a.cols() x a.cols() and outlive the call.
  //
  // Result semantics under preconditioning: residual_norm is still the
  // damped residual ||[A; damp I] x - [b; 0]|| of the ORIGINAL problem
  // (the change of variable preserves it), but normal_residual_norm and the
  // atol/btol stopping rules act in the preconditioned variable.
  const Matrix* right_precond = nullptr;
};

// Why the iteration stopped. kIterationLimit is the only non-converged
// outcome; everything else means the iterate satisfies a stopping rule.
enum class LsqrStop {
  kIterationLimit,     // hit max_iterations without meeting a tolerance
  kRhsZero,            // b == 0, so x == 0 is exact
  kNormalZero,         // A^T b == 0, x == 0 solves the normal equations
  kResidualTol,        // Paige-Saunders rule 1: residual below btol/atol mix
  kNormalResidualTol,  // Paige-Saunders rule 2: normal residual below atol
  kBreakdown,          // alpha == 0 mid-iteration: exact solution reached
};

// Stable short name ("residual_tol", "iteration_limit", ...) for reports.
const char* LsqrStopName(LsqrStop stop);

struct LsqrResult {
  Vector x;
  int iterations = 0;
  // Estimated ||[A; damp*I] x - [b; 0]||.
  double residual_norm = 0.0;
  // Estimated ||A^T r - damp^2 x|| (normal-equations residual).
  double normal_residual_norm = 0.0;
  // True if a stopping rule fired before the iteration cap.
  bool converged = false;
  // Which rule ended the iteration (kIterationLimit when none fired).
  LsqrStop stop = LsqrStop::kIterationLimit;
};

// Runs LSQR on the (possibly damped) least-squares problem.
// b.size() must equal a.rows(); the solution has a.cols() entries.
LsqrResult Lsqr(const LinearOperator& a, const Vector& b,
                const LsqrOptions& options = {});

// Batched multi-RHS LSQR: solves the damped problem independently for every
// column of b (a.rows() x d), sharing the operator passes — one ApplyMulti
// and one ApplyTransposedMulti per iteration cover all still-active columns,
// so sparse data is traversed once per iteration instead of once per RHS.
// The per-column scalar recurrences run on the thread pool. Column j's
// result is bitwise identical to Lsqr(a, column j of b, options): each
// column follows exactly the serial recurrence, and columns that hit a
// stopping rule are frozen and dropped from subsequent passes.
std::vector<LsqrResult> LsqrBatch(const LinearOperator& a, const Matrix& b,
                                  const LsqrOptions& options = {});

}  // namespace srda

#endif  // SRDA_LINALG_LSQR_H_
