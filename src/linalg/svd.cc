#include "linalg/svd.h"

#include <cmath>

#include "common/check.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"

namespace srda {

SvdResult ThinSvd(const Matrix& a, double rank_tolerance) {
  SRDA_CHECK(a.rows() > 0 && a.cols() > 0) << "ThinSvd of an empty matrix";
  SRDA_CHECK(rank_tolerance >= 0.0);
  const int m = a.rows();
  const int n = a.cols();
  const bool tall = m >= n;

  // Eigendecompose the smaller Gram matrix. Its eigenvalues are the squared
  // singular values; its eigenvectors are the corresponding singular vectors
  // of that side.
  const Matrix gram = tall ? Gram(a) : OuterGram(a);
  SymmetricEigenResult eigen = SymmetricEigen(gram);

  SvdResult result;
  result.converged = eigen.converged;
  const int t = gram.rows();

  // Eigenvalues come back ascending; walk them from the top.
  const double max_eigenvalue = std::max(eigen.eigenvalues[t - 1], 0.0);
  const double sigma_max = std::sqrt(max_eigenvalue);
  const double threshold = sigma_max * rank_tolerance;

  int rank = 0;
  for (int j = t - 1; j >= 0; --j) {
    const double lambda = eigen.eigenvalues[j];
    if (lambda <= 0.0) break;
    if (std::sqrt(lambda) <= threshold) break;
    ++rank;
  }
  result.rank = rank;
  result.singular_values = Vector(rank);
  Matrix small_side(t, rank);
  for (int k = 0; k < rank; ++k) {
    const int src = t - 1 - k;  // descending order
    result.singular_values[k] = std::sqrt(eigen.eigenvalues[src]);
    for (int i = 0; i < t; ++i) {
      small_side(i, k) = eigen.eigenvectors(i, src);
    }
  }

  // Recover the other factor: the paper's "recover U from V" step.
  if (tall) {
    result.v = std::move(small_side);
    result.u = Multiply(a, result.v);  // m x r
    for (int k = 0; k < rank; ++k) {
      const double inv = 1.0 / result.singular_values[k];
      for (int i = 0; i < m; ++i) result.u(i, k) *= inv;
    }
  } else {
    result.u = std::move(small_side);
    result.v = MultiplyTransposedA(a, result.u);  // n x r
    for (int k = 0; k < rank; ++k) {
      const double inv = 1.0 / result.singular_values[k];
      for (int i = 0; i < n; ++i) result.v(i, k) *= inv;
    }
  }
  return result;
}

}  // namespace srda
