#include "linalg/linear_operator.h"

#include "common/check.h"
#include "matrix/blas.h"

namespace srda {

Matrix LinearOperator::ApplyMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), cols()) << "A*X shape mismatch";
  Matrix y(rows(), x.cols());
  for (int j = 0; j < x.cols(); ++j) y.SetCol(j, Apply(x.Col(j)));
  return y;
}

Matrix LinearOperator::ApplyTransposedMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), rows()) << "A^T*X shape mismatch";
  Matrix y(cols(), x.cols());
  for (int j = 0; j < x.cols(); ++j) y.SetCol(j, ApplyTransposed(x.Col(j)));
  return y;
}

DenseOperator::DenseOperator(const Matrix* matrix) : matrix_(matrix) {
  SRDA_CHECK(matrix != nullptr);
}

int DenseOperator::rows() const { return matrix_->rows(); }
int DenseOperator::cols() const { return matrix_->cols(); }

Vector DenseOperator::Apply(const Vector& x) const {
  return Multiply(*matrix_, x);
}

Vector DenseOperator::ApplyTransposed(const Vector& x) const {
  return MultiplyTransposed(*matrix_, x);
}

Matrix DenseOperator::ApplyMulti(const Matrix& x) const {
  // The blocked GEMM folds each output element's k-terms in one ascending
  // chain, exactly like the gemv dot product, so columns match Apply bitwise.
  return Multiply(*matrix_, x);
}

Matrix DenseOperator::ApplyTransposedMulti(const Matrix& x) const {
  return MultiplyTransposedA(*matrix_, x);
}

SparseOperator::SparseOperator(const SparseMatrix* matrix) : matrix_(matrix) {
  SRDA_CHECK(matrix != nullptr);
}

int SparseOperator::rows() const { return matrix_->rows(); }
int SparseOperator::cols() const { return matrix_->cols(); }

Vector SparseOperator::Apply(const Vector& x) const {
  return matrix_->Multiply(x);
}

Vector SparseOperator::ApplyTransposed(const Vector& x) const {
  return matrix_->MultiplyTransposed(x);
}

Matrix SparseOperator::ApplyMulti(const Matrix& x) const {
  return matrix_->MultiplyDense(x);
}

Matrix SparseOperator::ApplyTransposedMulti(const Matrix& x) const {
  return matrix_->MultiplyTransposedDense(x);
}

CenterColumnsOperator::CenterColumnsOperator(const LinearOperator* base,
                                             const Vector* mean)
    : base_(base), mean_(mean) {
  SRDA_CHECK(base != nullptr);
  SRDA_CHECK(mean != nullptr);
  SRDA_CHECK_EQ(mean->size(), base->cols())
      << "column-mean size mismatch";
}

int CenterColumnsOperator::rows() const { return base_->rows(); }
int CenterColumnsOperator::cols() const { return base_->cols(); }

Vector CenterColumnsOperator::Apply(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), cols()) << "(A - 1 mean^T)*x shape mismatch";
  Vector y = base_->Apply(x);
  const double shift = Dot(*mean_, x);
  for (int i = 0; i < y.size(); ++i) y[i] -= shift;
  return y;
}

Vector CenterColumnsOperator::ApplyTransposed(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), rows()) << "(A - 1 mean^T)^T*x shape mismatch";
  Vector y = base_->ApplyTransposed(x);
  double ones_dot = 0.0;
  for (int i = 0; i < x.size(); ++i) ones_dot += x[i];
  const double* pm = mean_->data();
  for (int j = 0; j < y.size(); ++j) y[j] -= ones_dot * pm[j];
  return y;
}

Matrix CenterColumnsOperator::ApplyMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), cols()) << "(A - 1 mean^T)*X shape mismatch";
  Matrix y = base_->ApplyMulti(x);
  const int d = x.cols();
  // Per-column shifts accumulate over features in ascending order — the
  // same chain as Dot(mean, x_j) in the single-vector path.
  Vector shifts(d);
  double* ps = shifts.data();
  const double* pm = mean_->data();
  for (int f = 0; f < x.rows(); ++f) {
    const double* xrow = x.RowPtr(f);
    for (int j = 0; j < d; ++j) ps[j] += pm[f] * xrow[j];
  }
  for (int i = 0; i < y.rows(); ++i) {
    double* yrow = y.RowPtr(i);
    for (int j = 0; j < d; ++j) yrow[j] -= ps[j];
  }
  return y;
}

Matrix CenterColumnsOperator::ApplyTransposedMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), rows()) << "(A - 1 mean^T)^T*X shape mismatch";
  Matrix y = base_->ApplyTransposedMulti(x);
  const int d = x.cols();
  Vector ones_dot(d);
  double* po = ones_dot.data();
  for (int i = 0; i < x.rows(); ++i) {
    const double* xrow = x.RowPtr(i);
    for (int j = 0; j < d; ++j) po[j] += xrow[j];
  }
  const double* pm = mean_->data();
  for (int f = 0; f < y.rows(); ++f) {
    double* yrow = y.RowPtr(f);
    for (int j = 0; j < d; ++j) yrow[j] -= po[j] * pm[f];
  }
  return y;
}

AppendOnesColumnOperator::AppendOnesColumnOperator(const LinearOperator* base)
    : base_(base) {
  SRDA_CHECK(base != nullptr);
}

int AppendOnesColumnOperator::rows() const { return base_->rows(); }
int AppendOnesColumnOperator::cols() const { return base_->cols() + 1; }

Vector AppendOnesColumnOperator::Apply(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), cols()) << "[A 1]*x shape mismatch";
  // Split x into the base part and the bias coefficient.
  Vector base_x(base_->cols());
  for (int j = 0; j < base_->cols(); ++j) base_x[j] = x[j];
  const double bias = x[base_->cols()];
  Vector y = base_->Apply(base_x);
  for (int i = 0; i < y.size(); ++i) y[i] += bias;
  return y;
}

Vector AppendOnesColumnOperator::ApplyTransposed(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), rows()) << "[A 1]^T*x shape mismatch";
  Vector base_y = base_->ApplyTransposed(x);
  double ones_dot = 0.0;
  for (int i = 0; i < x.size(); ++i) ones_dot += x[i];
  Vector y(cols());
  for (int j = 0; j < base_y.size(); ++j) y[j] = base_y[j];
  y[base_->cols()] = ones_dot;
  return y;
}

Matrix AppendOnesColumnOperator::ApplyMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), cols()) << "[A 1]*X shape mismatch";
  const int d = x.cols();
  const Matrix base_x = x.Block(0, 0, base_->cols(), d);
  const double* bias = x.RowPtr(base_->cols());
  Matrix y = base_->ApplyMulti(base_x);
  for (int i = 0; i < y.rows(); ++i) {
    double* yrow = y.RowPtr(i);
    for (int j = 0; j < d; ++j) yrow[j] += bias[j];
  }
  return y;
}

Matrix AppendOnesColumnOperator::ApplyTransposedMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), rows()) << "[A 1]^T*X shape mismatch";
  const int d = x.cols();
  const Matrix base_y = base_->ApplyTransposedMulti(x);
  Matrix y(cols(), d);
  for (int j2 = 0; j2 < base_y.rows(); ++j2) {
    const double* src = base_y.RowPtr(j2);
    double* dst = y.RowPtr(j2);
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
  double* last = y.RowPtr(base_->cols());
  for (int i = 0; i < x.rows(); ++i) {
    const double* xrow = x.RowPtr(i);
    for (int j = 0; j < d; ++j) last[j] += xrow[j];
  }
  return y;
}

}  // namespace srda
