#include "linalg/linear_operator.h"

#include "common/check.h"
#include "matrix/blas.h"

namespace srda {

DenseOperator::DenseOperator(const Matrix* matrix) : matrix_(matrix) {
  SRDA_CHECK(matrix != nullptr);
}

int DenseOperator::rows() const { return matrix_->rows(); }
int DenseOperator::cols() const { return matrix_->cols(); }

Vector DenseOperator::Apply(const Vector& x) const {
  return Multiply(*matrix_, x);
}

Vector DenseOperator::ApplyTransposed(const Vector& x) const {
  return MultiplyTransposed(*matrix_, x);
}

SparseOperator::SparseOperator(const SparseMatrix* matrix) : matrix_(matrix) {
  SRDA_CHECK(matrix != nullptr);
}

int SparseOperator::rows() const { return matrix_->rows(); }
int SparseOperator::cols() const { return matrix_->cols(); }

Vector SparseOperator::Apply(const Vector& x) const {
  return matrix_->Multiply(x);
}

Vector SparseOperator::ApplyTransposed(const Vector& x) const {
  return matrix_->MultiplyTransposed(x);
}

CenterColumnsOperator::CenterColumnsOperator(const LinearOperator* base,
                                             const Vector* mean)
    : base_(base), mean_(mean) {
  SRDA_CHECK(base != nullptr);
  SRDA_CHECK(mean != nullptr);
  SRDA_CHECK_EQ(mean->size(), base->cols())
      << "column-mean size mismatch";
}

int CenterColumnsOperator::rows() const { return base_->rows(); }
int CenterColumnsOperator::cols() const { return base_->cols(); }

Vector CenterColumnsOperator::Apply(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), cols()) << "(A - 1 mean^T)*x shape mismatch";
  Vector y = base_->Apply(x);
  const double shift = Dot(*mean_, x);
  for (int i = 0; i < y.size(); ++i) y[i] -= shift;
  return y;
}

Vector CenterColumnsOperator::ApplyTransposed(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), rows()) << "(A - 1 mean^T)^T*x shape mismatch";
  Vector y = base_->ApplyTransposed(x);
  double ones_dot = 0.0;
  for (int i = 0; i < x.size(); ++i) ones_dot += x[i];
  const double* pm = mean_->data();
  for (int j = 0; j < y.size(); ++j) y[j] -= ones_dot * pm[j];
  return y;
}

AppendOnesColumnOperator::AppendOnesColumnOperator(const LinearOperator* base)
    : base_(base) {
  SRDA_CHECK(base != nullptr);
}

int AppendOnesColumnOperator::rows() const { return base_->rows(); }
int AppendOnesColumnOperator::cols() const { return base_->cols() + 1; }

Vector AppendOnesColumnOperator::Apply(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), cols()) << "[A 1]*x shape mismatch";
  // Split x into the base part and the bias coefficient.
  Vector base_x(base_->cols());
  for (int j = 0; j < base_->cols(); ++j) base_x[j] = x[j];
  const double bias = x[base_->cols()];
  Vector y = base_->Apply(base_x);
  for (int i = 0; i < y.size(); ++i) y[i] += bias;
  return y;
}

Vector AppendOnesColumnOperator::ApplyTransposed(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), rows()) << "[A 1]^T*x shape mismatch";
  Vector base_y = base_->ApplyTransposed(x);
  double ones_dot = 0.0;
  for (int i = 0; i < x.size(); ++i) ones_dot += x[i];
  Vector y(cols());
  for (int j = 0; j < base_y.size(); ++j) y[j] = base_y[j];
  y[base_->cols()] = ones_dot;
  return y;
}

}  // namespace srda
