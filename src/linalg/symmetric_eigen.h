// Dense symmetric eigendecomposition.
//
// Two classical stages: Householder reduction to tridiagonal form with
// accumulated transformations (EISPACK tred2) followed by the implicit-shift
// QL iteration (EISPACK tql2). O(n^3) with a small constant — this is the
// dense eigensolver whose cost dominates classical LDA, the baseline the
// paper's SRDA avoids.

#ifndef SRDA_LINALG_SYMMETRIC_EIGEN_H_
#define SRDA_LINALG_SYMMETRIC_EIGEN_H_

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

// Eigenvalues in ascending order; eigenvectors(:, j) is the unit eigenvector
// for eigenvalues[j]. `converged` is false if the QL iteration failed for
// some eigenvalue (practically never for symmetric input).
struct SymmetricEigenResult {
  Vector eigenvalues;
  Matrix eigenvectors;
  bool converged = false;
};

// Decomposes the symmetric matrix `a` (only its values are read; symmetry is
// assumed, the strictly-upper triangle is mirrored from the lower one).
SymmetricEigenResult SymmetricEigen(const Matrix& a);

}  // namespace srda

#endif  // SRDA_LINALG_SYMMETRIC_EIGEN_H_
