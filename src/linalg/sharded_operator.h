// Row-shard streaming: the out-of-core counterpart of Dense/SparseOperator.
//
// A RowShardSource yields the rows of an m x n matrix as consecutive
// contiguous blocks ("shards"), each presented as a small dense Matrix or
// CSR SparseMatrix that stays valid only until the next shard is fetched.
// ShardedOperator adapts such a source to the LinearOperator interface by
// making one streaming pass over the shards per product, holding one shard
// plus O(n) accumulator state in memory at a time.
//
// Determinism: every product is bitwise identical to the in-RAM kernel on
// the concatenated matrix, at any shard size and thread count.
//  * A*x / A*X compute disjoint output rows per shard — the per-row chains
//    are untouched by the partition.
//  * Dense A^T*x / A^T*X continue each output element's ascending-k
//    accumulation chain across shards via the chain-continuing blas
//    kernels (MultiplyTransposedAccumulate / MultiplyTransposedAAccumulate).
//  * Sparse A^T*x / A^T*X replicate the global kSparseTransposeChunkRows
//    reduction grid of SparseMatrix::MultiplyTransposed{,Dense}: rows
//    accumulate into the current chunk's partial (carried across shard
//    boundaries when a shard splits a chunk) and partials fold in ascending
//    chunk order, reproducing the in-RAM fold exactly.
//
// Unlike the other LinearOperators, a ShardedOperator is NOT thread-
// compatible: each product Reset()s and drains the source's cursor, so only
// one caller may use it at a time (LSQR's serial product sequence is fine).

#ifndef SRDA_LINALG_SHARDED_OPERATOR_H_
#define SRDA_LINALG_SHARDED_OPERATOR_H_

#include "linalg/linear_operator.h"
#include "matrix/matrix.h"
#include "matrix/vector.h"
#include "sparse/sparse_matrix.h"

namespace srda {

// One contiguous block of rows. Exactly one of `dense` / `sparse` is set;
// the pointee is owned by the source and valid until its next Next/Reset.
struct RowShard {
  int first_row = 0;
  const Matrix* dense = nullptr;
  const SparseMatrix* sparse = nullptr;

  int rows() const {
    if (dense != nullptr) return dense->rows();
    if (sparse != nullptr) return sparse->rows();
    return 0;
  }
};

// A restartable stream of row shards covering rows [0, rows()) in order.
// Implementations: DenseMatrixShardSource / SparseMatrixShardSource (in-RAM,
// for tests) and io/RowShardReader (files).
class RowShardSource {
 public:
  virtual ~RowShardSource() = default;

  virtual int rows() const = 0;
  virtual int cols() const = 0;
  // True when Next yields sparse shards, false for dense shards.
  virtual bool sparse() const = 0;

  // Rewinds the stream to the first shard.
  virtual void Reset() = 0;

  // Fetches the next shard; false at end of stream. Shards arrive in row
  // order with no gaps or overlaps.
  virtual bool Next(RowShard* shard) = 0;
};

// LinearOperator over a shard stream; see the file comment. The source is
// not owned and must outlive the operator.
class ShardedOperator final : public LinearOperator {
 public:
  explicit ShardedOperator(RowShardSource* source);

  int rows() const override;
  int cols() const override;
  Vector Apply(const Vector& x) const override;
  Vector ApplyTransposed(const Vector& x) const override;
  Matrix ApplyMulti(const Matrix& x) const override;
  Matrix ApplyTransposedMulti(const Matrix& x) const override;

 private:
  RowShardSource* source_;
};

// In-RAM shard sources: stream an existing matrix as blocks of `shard_rows`
// rows, copying each block into a private buffer so consumers exercise the
// real transient-shard contract. The matrix is not owned.
class DenseMatrixShardSource final : public RowShardSource {
 public:
  DenseMatrixShardSource(const Matrix* matrix, int shard_rows);

  int rows() const override;
  int cols() const override;
  bool sparse() const override { return false; }
  void Reset() override { next_row_ = 0; }
  bool Next(RowShard* shard) override;

 private:
  const Matrix* matrix_;
  int shard_rows_;
  int next_row_ = 0;
  Matrix buffer_;
};

class SparseMatrixShardSource final : public RowShardSource {
 public:
  SparseMatrixShardSource(const SparseMatrix* matrix, int shard_rows);

  int rows() const override;
  int cols() const override;
  bool sparse() const override { return true; }
  void Reset() override { next_row_ = 0; }
  bool Next(RowShard* shard) override;

 private:
  const SparseMatrix* matrix_;
  int shard_rows_;
  int next_row_ = 0;
  SparseMatrix buffer_;
};

}  // namespace srda

#endif  // SRDA_LINALG_SHARDED_OPERATOR_H_
