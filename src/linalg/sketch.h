// Randomized row sketches: compress an m x n design matrix to an s x n
// sketch S*X in one data pass, with E[(SX)^T(SX)] = X^T X.
//
// The sketched Gram (SX)^T(SX) + alpha I, factored by the existing blocked
// Cholesky, is the right preconditioner the LSQR path uses on
// ill-conditioned runs ("Randomized Iterative Algorithms for Fisher
// Discriminant Analysis", Chowdhury/Yang/Drineas): LSQR on the
// preconditioned operator [A; sqrt(alpha) I] L^{-T} converges in a handful
// of iterations because the preconditioned Gram is close to the identity.
// The same sketch also supports a pure sketch-solve mode that returns the
// minimizer of the sketched objective directly (solver/ridge_solver.h).
//
// Two sketch kinds:
//  * kCountSketch — each input row i is added, with a pseudo-random sign,
//    to one pseudo-random sketch row h(i). One pass, O(nnz) work, the
//    right choice for sparse data and large m.
//  * kGaussian — S = G / sqrt(s) with i.i.d. standard normal G. O(m s n)
//    work; tighter embedding at equal s, affordable only for small n.
//
// Determinism contract: the bucket/sign (and Gaussian row) draws are a pure
// function of (options.seed, global row index) — never of thread count,
// shard size, or traversal order. Every kernel accumulates each output
// element over input rows in ascending order (threads partition output
// COLUMNS), so for a fixed seed the sketch is bitwise identical at any
// thread count, and streaming row blocks top-to-bottom through
// SketchAccumulate reproduces the one-shot sketch bit for bit — the
// out-of-core path sketches while streaming and matches the in-RAM sketch
// exactly.

#ifndef SRDA_LINALG_SKETCH_H_
#define SRDA_LINALG_SKETCH_H_

#include <cstdint>

#include "linalg/cholesky.h"
#include "linalg/linear_operator.h"
#include "linalg/sharded_operator.h"
#include "matrix/matrix.h"
#include "matrix/vector.h"
#include "sparse/sparse_matrix.h"

namespace srda {

enum class SketchKind {
  kCountSketch,
  kGaussian,
};

struct SketchOptions {
  // Sketch rows s (the compressed sample count). Must be positive. Larger s
  // gives a better subspace embedding; s in [2n, 4n] is the usual
  // preconditioning regime (beyond s >= m the sketch stops compressing).
  int sketch_rows = 0;
  SketchKind kind = SketchKind::kCountSketch;
  // Seed of the per-row hash/sign (and Gaussian) draws. Same seed => same
  // sketch operator, bitwise, at any thread count and shard size.
  uint64_t seed = 0x5eedc0deULL;
};

// Adds the contribution of the rows of `x` — which occupy global rows
// [row_offset, row_offset + x.rows()) of the full design — to `sketch`
// (pre-sized sketch_rows x x.cols()). Streaming consecutive row blocks in
// ascending order through this is bitwise identical to one SketchRows call
// on the concatenated matrix.
void SketchAccumulate(const Matrix& x, int row_offset,
                      const SketchOptions& options, Matrix* sketch);
void SketchAccumulate(const SparseMatrix& x, int row_offset,
                      const SketchOptions& options, Matrix* sketch);

// One-shot sketches S*X of an in-RAM matrix (emits a `sketch.build` span).
Matrix SketchRows(const Matrix& x, const SketchOptions& options);
Matrix SketchRows(const SparseMatrix& x, const SketchOptions& options);

// Sketches an out-of-core shard stream in ONE streaming pass (Reset + drain;
// the source's cursor is exclusively owned for the duration). Bitwise
// identical to SketchRows on the concatenated matrix.
Matrix SketchShards(RowShardSource* source, const SketchOptions& options);

// Generic fallback for operators without row access: materializes S^T
// (rows x s, dense) and computes (S A)^T = A^T S^T in one batched
// ApplyTransposedMulti pass. Same sketch operator S as the row kernels, but
// the accumulation order follows the operator's transposed product, so the
// result is NOT bitwise identical to SketchRows on the same data — prefer
// the row kernels whenever the concrete type is known.
Matrix SketchOperator(const LinearOperator& a, const SketchOptions& options);

// S * 1 (the sketch of the all-ones column). Lets callers sketch implicitly
// centered or ones-augmented operators without touching the data again:
//   sketch(A - 1 mean^T) = sketch(A) - (S 1) mean^T
//   sketch([A 1])        = [sketch(A), S 1]
Vector SketchOnes(int rows, const SketchOptions& options);

// Factors the sketched ridge Gram (sketch^T sketch + alpha I) with the
// blocked Cholesky (emits a `sketch.factor` span). Returns false when the
// shifted Gram is not numerically positive definite — possible only at
// alpha == 0 with a rank-deficient sketch; callers then fall back to the
// unpreconditioned path.
bool FactorSketchedGram(const Matrix& sketch, double alpha, Cholesky* chol);

}  // namespace srda

#endif  // SRDA_LINALG_SKETCH_H_
