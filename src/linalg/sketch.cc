#include "linalg/sketch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "matrix/blas.h"
#include "obs/trace.h"

namespace srda {
namespace {

void ValidateOptions(const SketchOptions& options) {
  SRDA_CHECK_GT(options.sketch_rows, 0) << "sketch_rows must be positive";
}

// Seed of row i's private draw stream. The golden-ratio multiply decorrelates
// consecutive rows before splitmix64 expands the value into Rng state; the
// +1 keeps row 0 from colliding with the bare seed.
uint64_t RowSeed(uint64_t seed, int global_row) {
  return seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(global_row + 1);
}

struct CountSketchDraw {
  int bucket;
  double sign;
};

// Count-sketch hash of one global row: a bucket in [0, s) and a +-1 sign,
// both pure functions of (seed, row). Rejection-sampled bucket, so every
// s divides the draw space evenly.
CountSketchDraw DrawCountSketch(const SketchOptions& options, int global_row) {
  Rng rng(RowSeed(options.seed, global_row));
  CountSketchDraw draw;
  draw.bucket = static_cast<int>(
      rng.NextUint64Bounded(static_cast<uint64_t>(options.sketch_rows)));
  draw.sign = (rng.NextUint64() & 1) ? 1.0 : -1.0;
  return draw;
}

// Fills `g` with row `global_row` of the Gaussian sketch operator
// S = G / sqrt(s) (s entries).
void DrawGaussianRow(const SketchOptions& options, int global_row,
                     std::vector<double>* g) {
  Rng rng(RowSeed(options.seed, global_row));
  const double scale = 1.0 / std::sqrt(static_cast<double>(options.sketch_rows));
  for (double& value : *g) value = rng.NextGaussian() * scale;
}

}  // namespace

void SketchAccumulate(const Matrix& x, int row_offset,
                      const SketchOptions& options, Matrix* sketch) {
  ValidateOptions(options);
  SRDA_CHECK(sketch != nullptr);
  SRDA_CHECK_EQ(sketch->rows(), options.sketch_rows) << "sketch row mismatch";
  SRDA_CHECK_EQ(sketch->cols(), x.cols()) << "sketch column mismatch";
  SRDA_CHECK_GE(row_offset, 0);
  const int m = x.rows();
  const int n = x.cols();
  const int s = options.sketch_rows;
  if (m == 0 || n == 0) return;
  // Threads own disjoint COLUMN stripes; every thread walks the input rows
  // in ascending order, so each sketch element's accumulation chain is the
  // serial ascending-row chain no matter how the stripes land. The per-row
  // draws are regenerated per stripe — a few splitmix64 steps, cheap next
  // to the row traffic.
  if (options.kind == SketchKind::kCountSketch) {
    AddFlops(2.0 * m * n);
    ParallelFor(0, n, [&](int col_begin, int col_end) {
      for (int i = 0; i < m; ++i) {
        const CountSketchDraw draw = DrawCountSketch(options, row_offset + i);
        const double* src = x.RowPtr(i);
        double* out = sketch->RowPtr(draw.bucket);
        if (draw.sign > 0.0) {
          for (int j = col_begin; j < col_end; ++j) out[j] += src[j];
        } else {
          for (int j = col_begin; j < col_end; ++j) out[j] -= src[j];
        }
      }
    });
    return;
  }
  AddFlops(2.0 * m * static_cast<double>(s) * n);
  ParallelFor(0, n, [&](int col_begin, int col_end) {
    std::vector<double> g(static_cast<size_t>(s));
    for (int i = 0; i < m; ++i) {
      DrawGaussianRow(options, row_offset + i, &g);
      const double* src = x.RowPtr(i);
      for (int t = 0; t < s; ++t) {
        const double gt = g[static_cast<size_t>(t)];
        double* out = sketch->RowPtr(t);
        for (int j = col_begin; j < col_end; ++j) out[j] += gt * src[j];
      }
    }
  });
}

void SketchAccumulate(const SparseMatrix& x, int row_offset,
                      const SketchOptions& options, Matrix* sketch) {
  ValidateOptions(options);
  SRDA_CHECK(sketch != nullptr);
  SRDA_CHECK_EQ(sketch->rows(), options.sketch_rows) << "sketch row mismatch";
  SRDA_CHECK_EQ(sketch->cols(), x.cols()) << "sketch column mismatch";
  SRDA_CHECK_GE(row_offset, 0);
  const int m = x.rows();
  const int n = x.cols();
  const int s = options.sketch_rows;
  if (m == 0 || n == 0) return;
  const bool count_sketch = options.kind == SketchKind::kCountSketch;
  AddFlops((count_sketch ? 2.0 : 2.0 * s) *
           static_cast<double>(x.NumNonZeros()));
  // Same column-stripe partition as the dense kernel; each stripe
  // binary-searches its entry range inside every row's sorted indices.
  ParallelFor(0, n, [&](int col_begin, int col_end) {
    std::vector<double> g;
    if (!count_sketch) g.resize(static_cast<size_t>(s));
    for (int i = 0; i < m; ++i) {
      const int nnz = x.RowNonZeros(i);
      if (nnz == 0) continue;
      const int* indices = x.RowIndices(i);
      const double* values = x.RowValues(i);
      const int* begin =
          std::lower_bound(indices, indices + nnz, col_begin);
      if (count_sketch) {
        const CountSketchDraw draw = DrawCountSketch(options, row_offset + i);
        double* out = sketch->RowPtr(draw.bucket);
        for (const int* p = begin; p != indices + nnz && *p < col_end; ++p) {
          out[*p] += draw.sign * values[p - indices];
        }
      } else {
        DrawGaussianRow(options, row_offset + i, &g);
        for (const int* p = begin; p != indices + nnz && *p < col_end; ++p) {
          const double value = values[p - indices];
          const int col = *p;
          for (int t = 0; t < s; ++t) {
            (*sketch)(t, col) += g[static_cast<size_t>(t)] * value;
          }
        }
      }
    }
  });
}

namespace {

// TraceSpan is scope-bound, so call sites construct it and hand it here for
// the shared args (a span carries at most two).
void AddBuildArgs(TraceSpan* span, int rows, const SketchOptions& options) {
  if (!span->recording()) return;
  span->AddArg("rows", static_cast<double>(rows));
  span->AddArg("sketch_rows", static_cast<double>(options.sketch_rows));
}

}  // namespace

Matrix SketchRows(const Matrix& x, const SketchOptions& options) {
  ValidateOptions(options);
  TraceSpan span("sketch.build");
  AddBuildArgs(&span, x.rows(), options);
  Matrix sketch(options.sketch_rows, x.cols());
  SketchAccumulate(x, 0, options, &sketch);
  return sketch;
}

Matrix SketchRows(const SparseMatrix& x, const SketchOptions& options) {
  ValidateOptions(options);
  TraceSpan span("sketch.build");
  AddBuildArgs(&span, x.rows(), options);
  Matrix sketch(options.sketch_rows, x.cols());
  SketchAccumulate(x, 0, options, &sketch);
  return sketch;
}

Matrix SketchShards(RowShardSource* source, const SketchOptions& options) {
  ValidateOptions(options);
  SRDA_CHECK(source != nullptr);
  TraceSpan span("sketch.build");
  AddBuildArgs(&span, source->rows(), options);
  Matrix sketch(options.sketch_rows, source->cols());
  source->Reset();
  RowShard shard;
  int next_row = 0;
  while (source->Next(&shard)) {
    SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
    if (shard.sparse != nullptr) {
      SketchAccumulate(*shard.sparse, next_row, options, &sketch);
    } else {
      SketchAccumulate(*shard.dense, next_row, options, &sketch);
    }
    next_row += shard.rows();
  }
  SRDA_CHECK_EQ(next_row, source->rows()) << "shard stream ended early";
  return sketch;
}

Matrix SketchOperator(const LinearOperator& a, const SketchOptions& options) {
  ValidateOptions(options);
  TraceSpan span("sketch.build");
  AddBuildArgs(&span, a.rows(), options);
  const int m = a.rows();
  const int s = options.sketch_rows;
  // Materialize S^T (m x s, dense — the one place this module pays O(m s)
  // memory) and push it through the operator's batched transposed product.
  Matrix st(m, s);
  if (options.kind == SketchKind::kCountSketch) {
    for (int i = 0; i < m; ++i) {
      const CountSketchDraw draw = DrawCountSketch(options, i);
      st(i, draw.bucket) = draw.sign;
    }
  } else {
    std::vector<double> g(static_cast<size_t>(s));
    for (int i = 0; i < m; ++i) {
      DrawGaussianRow(options, i, &g);
      double* row = st.RowPtr(i);
      for (int t = 0; t < s; ++t) row[t] = g[static_cast<size_t>(t)];
    }
  }
  return a.ApplyTransposedMulti(st).Transposed();
}

Vector SketchOnes(int rows, const SketchOptions& options) {
  ValidateOptions(options);
  SRDA_CHECK_GE(rows, 0);
  Vector ones(options.sketch_rows);
  if (options.kind == SketchKind::kCountSketch) {
    for (int i = 0; i < rows; ++i) {
      const CountSketchDraw draw = DrawCountSketch(options, i);
      ones[draw.bucket] += draw.sign;
    }
    return ones;
  }
  std::vector<double> g(static_cast<size_t>(options.sketch_rows));
  for (int i = 0; i < rows; ++i) {
    DrawGaussianRow(options, i, &g);
    for (int t = 0; t < options.sketch_rows; ++t) {
      ones[t] += g[static_cast<size_t>(t)];
    }
  }
  return ones;
}

bool FactorSketchedGram(const Matrix& sketch, double alpha, Cholesky* chol) {
  SRDA_CHECK(chol != nullptr);
  SRDA_CHECK_GE(alpha, 0.0) << "alpha must be non-negative";
  TraceSpan span("sketch.factor");
  if (span.recording()) {
    span.AddArg("sketch_rows", static_cast<double>(sketch.rows()));
    span.AddArg("alpha", alpha);
  }
  Matrix gram = Gram(sketch);
  AddDiagonal(alpha, &gram);
  return chol->Factor(gram);
}

}  // namespace srda
