#include "linalg/sharded_operator.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "matrix/blas.h"
#include "obs/trace.h"

namespace srda {
namespace {

// Folds one finished chunk partial into the output and clears it for the
// next chunk. The first chunk is a straight copy — matching the in-RAM
// fold's `y = std::move(partials[0])` bit for bit (0.0 + v would flip a
// negative zero) — later chunks add elementwise in ascending chunk order.
void FoldChunk(int folded, Vector* partial, Vector* y) {
  double* py = y->data();
  double* pp = partial->data();
  const int n = y->size();
  if (folded == 0) {
    std::memcpy(py, pp, static_cast<size_t>(n) * sizeof(double));
  } else {
    for (int j = 0; j < n; ++j) py[j] += pp[j];
  }
  std::memset(pp, 0, static_cast<size_t>(n) * sizeof(double));
}

void FoldChunk(int folded, Matrix* partial, Matrix* y) {
  double* py = y->data();
  double* pp = partial->data();
  const int64_t total = static_cast<int64_t>(y->rows()) * y->cols();
  if (folded == 0) {
    std::memcpy(py, pp, static_cast<size_t>(total) * sizeof(double));
  } else {
    for (int64_t e = 0; e < total; ++e) py[e] += pp[e];
  }
  std::memset(pp, 0, static_cast<size_t>(total) * sizeof(double));
}

}  // namespace

ShardedOperator::ShardedOperator(RowShardSource* source) : source_(source) {
  SRDA_CHECK(source != nullptr);
  SRDA_CHECK(source->rows() > 0 && source->cols() > 0)
      << "empty shard source";
}

int ShardedOperator::rows() const { return source_->rows(); }
int ShardedOperator::cols() const { return source_->cols(); }

Vector ShardedOperator::Apply(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), cols()) << "sharded A*x shape mismatch";
  TraceSpan span("sharded.apply");
  Vector y(rows());
  source_->Reset();
  RowShard shard;
  int next_row = 0;
  while (source_->Next(&shard)) {
    SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
    const Vector part = shard.dense != nullptr ? Multiply(*shard.dense, x)
                                               : shard.sparse->Multiply(x);
    std::memcpy(y.data() + next_row, part.data(),
                static_cast<size_t>(part.size()) * sizeof(double));
    next_row += shard.rows();
  }
  SRDA_CHECK_EQ(next_row, rows()) << "shard stream ended early";
  return y;
}

Matrix ShardedOperator::ApplyMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), cols()) << "sharded A*X shape mismatch";
  TraceSpan span("sharded.apply");
  Matrix y(rows(), x.cols());
  source_->Reset();
  RowShard shard;
  int next_row = 0;
  while (source_->Next(&shard)) {
    SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
    const Matrix part = shard.dense != nullptr
                            ? Multiply(*shard.dense, x)
                            : shard.sparse->MultiplyDense(x);
    std::memcpy(y.RowPtr(next_row), part.data(),
                static_cast<size_t>(part.rows()) * part.cols() *
                    sizeof(double));
    next_row += shard.rows();
  }
  SRDA_CHECK_EQ(next_row, rows()) << "shard stream ended early";
  return y;
}

Vector ShardedOperator::ApplyTransposed(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), rows()) << "sharded A^T*x shape mismatch";
  TraceSpan span("sharded.apply_t");
  Vector y(cols());
  source_->Reset();
  RowShard shard;
  int next_row = 0;
  if (!source_->sparse()) {
    while (source_->Next(&shard)) {
      SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
      Vector segment(shard.rows());
      for (int i = 0; i < segment.size(); ++i) segment[i] = x[next_row + i];
      MultiplyTransposedAccumulate(*shard.dense, segment, &y);
      next_row += shard.rows();
    }
    SRDA_CHECK_EQ(next_row, rows()) << "shard stream ended early";
    return y;
  }

  // Sparse: accumulate on the global chunk grid, folding each finished
  // chunk in ascending order (see the header). With a single chunk the
  // in-RAM kernel accumulates straight into y; target aliases y to match.
  const int num_chunks = FixedChunkCount(rows(), kSparseTransposeChunkRows);
  const bool fold = num_chunks > 1;
  Vector partial(fold ? cols() : 0);
  Vector* target = fold ? &partial : &y;
  int folded = 0;
  while (source_->Next(&shard)) {
    SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
    const SparseMatrix& s = *shard.sparse;
    AddFlops(2.0 * static_cast<double>(s.NumNonZeros()));
    double* pt = target->data();
    for (int i = 0; i < s.rows(); ++i) {
      const int g = next_row + i;
      if (fold) {
        const int chunk = g / kSparseTransposeChunkRows;
        while (folded < chunk) {
          FoldChunk(folded, &partial, &y);
          ++folded;
          pt = target->data();
        }
      }
      const double xi = x[g];
      if (xi == 0.0) continue;
      const int nnz = s.RowNonZeros(i);
      const int* idx = s.RowIndices(i);
      const double* values = s.RowValues(i);
      for (int k = 0; k < nnz; ++k) pt[idx[k]] += xi * values[k];
    }
    next_row += s.rows();
  }
  SRDA_CHECK_EQ(next_row, rows()) << "shard stream ended early";
  while (fold && folded < num_chunks) {
    FoldChunk(folded, &partial, &y);
    ++folded;
  }
  return y;
}

Matrix ShardedOperator::ApplyTransposedMulti(const Matrix& x) const {
  SRDA_CHECK_EQ(x.rows(), rows()) << "sharded A^T*X shape mismatch";
  TraceSpan span("sharded.apply_t");
  const int d = x.cols();
  Matrix y(cols(), d);
  source_->Reset();
  RowShard shard;
  int next_row = 0;
  if (!source_->sparse()) {
    while (source_->Next(&shard)) {
      SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
      const Matrix segment = x.Block(next_row, 0, shard.rows(), d);
      MultiplyTransposedAAccumulate(*shard.dense, segment, &y);
      next_row += shard.rows();
    }
    SRDA_CHECK_EQ(next_row, rows()) << "shard stream ended early";
    return y;
  }

  const int num_chunks = FixedChunkCount(rows(), kSparseTransposeChunkRows);
  const bool fold = num_chunks > 1;
  Matrix partial(fold ? cols() : 0, fold ? d : 0);
  Matrix* target = fold ? &partial : &y;
  int folded = 0;
  while (source_->Next(&shard)) {
    SRDA_CHECK_EQ(shard.first_row, next_row) << "shard stream out of order";
    const SparseMatrix& s = *shard.sparse;
    AddFlops(2.0 * static_cast<double>(s.NumNonZeros()) * d);
    for (int i = 0; i < s.rows(); ++i) {
      const int g = next_row + i;
      if (fold) {
        const int chunk = g / kSparseTransposeChunkRows;
        while (folded < chunk) {
          FoldChunk(folded, &partial, &y);
          ++folded;
        }
      }
      const double* brow = x.RowPtr(g);
      const int nnz = s.RowNonZeros(i);
      const int* idx = s.RowIndices(i);
      const double* values = s.RowValues(i);
      for (int k = 0; k < nnz; ++k) {
        double* trow = target->RowPtr(idx[k]);
        const double value = values[k];
        for (int j = 0; j < d; ++j) {
          // Same per-entry zero skip as MultiplyTransposedDense, keeping
          // the accumulation chains equal column by column.
          if (brow[j] == 0.0) continue;
          trow[j] += brow[j] * value;
        }
      }
    }
    next_row += s.rows();
  }
  SRDA_CHECK_EQ(next_row, rows()) << "shard stream ended early";
  while (fold && folded < num_chunks) {
    FoldChunk(folded, &partial, &y);
    ++folded;
  }
  return y;
}

DenseMatrixShardSource::DenseMatrixShardSource(const Matrix* matrix,
                                               int shard_rows)
    : matrix_(matrix), shard_rows_(shard_rows) {
  SRDA_CHECK(matrix != nullptr);
  SRDA_CHECK_GT(shard_rows, 0) << "shard_rows must be positive";
}

int DenseMatrixShardSource::rows() const { return matrix_->rows(); }
int DenseMatrixShardSource::cols() const { return matrix_->cols(); }

bool DenseMatrixShardSource::Next(RowShard* shard) {
  if (next_row_ >= matrix_->rows()) return false;
  const int end = std::min(matrix_->rows(), next_row_ + shard_rows_);
  buffer_ = matrix_->Block(next_row_, 0, end - next_row_, matrix_->cols());
  shard->first_row = next_row_;
  shard->dense = &buffer_;
  shard->sparse = nullptr;
  next_row_ = end;
  return true;
}

SparseMatrixShardSource::SparseMatrixShardSource(const SparseMatrix* matrix,
                                                 int shard_rows)
    : matrix_(matrix), shard_rows_(shard_rows) {
  SRDA_CHECK(matrix != nullptr);
  SRDA_CHECK_GT(shard_rows, 0) << "shard_rows must be positive";
}

int SparseMatrixShardSource::rows() const { return matrix_->rows(); }
int SparseMatrixShardSource::cols() const { return matrix_->cols(); }

bool SparseMatrixShardSource::Next(RowShard* shard) {
  if (next_row_ >= matrix_->rows()) return false;
  const int end = std::min(matrix_->rows(), next_row_ + shard_rows_);
  buffer_ = matrix_->RowSlice(next_row_, end);
  shard->first_row = next_row_;
  shard->dense = nullptr;
  shard->sparse = &buffer_;
  next_row_ = end;
  return true;
}

}  // namespace srda
