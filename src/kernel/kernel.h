// Kernel functions and kernel-matrix computation.
//
// Substrate for Kernel SRDA (the paper's reference [14], "Efficient kernel
// discriminant analysis via spectral regression"): the same two-step
// responses-then-regression recipe with the ridge regression replaced by
// kernel ridge regression.

#ifndef SRDA_KERNEL_KERNEL_H_
#define SRDA_KERNEL_KERNEL_H_

#include <memory>

#include "matrix/matrix.h"

namespace srda {

// A positive (semi-)definite kernel k(x, y) on dense vectors.
class Kernel {
 public:
  virtual ~Kernel() = default;

  // Evaluates k(x, y) for two vectors of length `dim`.
  virtual double Evaluate(const double* x, const double* y,
                          int dim) const = 0;

  // Human-readable name for logs and tables.
  virtual const char* name() const = 0;
};

// k(x, y) = x . y
class LinearKernel final : public Kernel {
 public:
  double Evaluate(const double* x, const double* y, int dim) const override;
  const char* name() const override { return "linear"; }
};

// k(x, y) = exp(-gamma ||x - y||^2)
class RbfKernel final : public Kernel {
 public:
  explicit RbfKernel(double gamma);
  double Evaluate(const double* x, const double* y, int dim) const override;
  const char* name() const override { return "rbf"; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

// k(x, y) = (x . y + coef)^degree
class PolynomialKernel final : public Kernel {
 public:
  PolynomialKernel(int degree, double coef);
  double Evaluate(const double* x, const double* y, int dim) const override;
  const char* name() const override { return "polynomial"; }

 private:
  int degree_;
  double coef_;
};

// Gram matrix K(i, j) = k(a_i, a_j) over the rows of `a` (symmetric).
Matrix KernelMatrix(const Kernel& kernel, const Matrix& a);

// Cross-kernel matrix K(i, j) = k(a_i, b_j) over rows of `a` and `b`
// (a.rows() x b.rows()); column dimensions must match.
Matrix KernelCrossMatrix(const Kernel& kernel, const Matrix& a,
                         const Matrix& b);

// Median-heuristic gamma for the RBF kernel: 1 / (2 * median^2) of the
// pairwise squared distances over a sample of rows.
double RbfGammaMedianHeuristic(const Matrix& a, int max_pairs = 2000);

}  // namespace srda

#endif  // SRDA_KERNEL_KERNEL_H_
