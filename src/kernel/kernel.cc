#include "kernel/kernel.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace srda {

double LinearKernel::Evaluate(const double* x, const double* y,
                              int dim) const {
  double sum = 0.0;
  for (int j = 0; j < dim; ++j) sum += x[j] * y[j];
  return sum;
}

RbfKernel::RbfKernel(double gamma) : gamma_(gamma) {
  SRDA_CHECK_GT(gamma, 0.0) << "RBF gamma must be positive";
}

double RbfKernel::Evaluate(const double* x, const double* y, int dim) const {
  double distance_sq = 0.0;
  for (int j = 0; j < dim; ++j) {
    const double diff = x[j] - y[j];
    distance_sq += diff * diff;
  }
  return std::exp(-gamma_ * distance_sq);
}

PolynomialKernel::PolynomialKernel(int degree, double coef)
    : degree_(degree), coef_(coef) {
  SRDA_CHECK_GT(degree, 0) << "polynomial degree must be positive";
  SRDA_CHECK_GE(coef, 0.0) << "polynomial coef must be non-negative";
}

double PolynomialKernel::Evaluate(const double* x, const double* y,
                                  int dim) const {
  double dot = coef_;
  for (int j = 0; j < dim; ++j) dot += x[j] * y[j];
  double result = 1.0;
  for (int p = 0; p < degree_; ++p) result *= dot;
  return result;
}

Matrix KernelMatrix(const Kernel& kernel, const Matrix& a) {
  const int m = a.rows();
  Matrix k(m, m);
  for (int i = 0; i < m; ++i) {
    const double* row_i = a.RowPtr(i);
    for (int j = i; j < m; ++j) {
      const double value = kernel.Evaluate(row_i, a.RowPtr(j), a.cols());
      k(i, j) = value;
      k(j, i) = value;
    }
  }
  return k;
}

Matrix KernelCrossMatrix(const Kernel& kernel, const Matrix& a,
                         const Matrix& b) {
  SRDA_CHECK_EQ(a.cols(), b.cols()) << "kernel operands dimension mismatch";
  Matrix k(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* row_i = a.RowPtr(i);
    for (int j = 0; j < b.rows(); ++j) {
      k(i, j) = kernel.Evaluate(row_i, b.RowPtr(j), a.cols());
    }
  }
  return k;
}

double RbfGammaMedianHeuristic(const Matrix& a, int max_pairs) {
  SRDA_CHECK_GT(a.rows(), 1) << "need at least two rows";
  SRDA_CHECK_GT(max_pairs, 0);
  Rng rng(12345);
  std::vector<double> distances;
  distances.reserve(static_cast<size_t>(max_pairs));
  for (int p = 0; p < max_pairs; ++p) {
    const int i = static_cast<int>(rng.NextUint64Bounded(a.rows()));
    int j = static_cast<int>(rng.NextUint64Bounded(a.rows()));
    if (i == j) j = (j + 1) % a.rows();
    const double* x = a.RowPtr(i);
    const double* y = a.RowPtr(j);
    double distance_sq = 0.0;
    for (int d = 0; d < a.cols(); ++d) {
      const double diff = x[d] - y[d];
      distance_sq += diff * diff;
    }
    distances.push_back(distance_sq);
  }
  std::nth_element(distances.begin(),
                   distances.begin() + distances.size() / 2,
                   distances.end());
  const double median_sq = distances[distances.size() / 2];
  SRDA_CHECK_GT(median_sq, 0.0) << "degenerate data for median heuristic";
  return 1.0 / (2.0 * median_sq);
}

}  // namespace srda
