// Compressed sparse row (CSR) matrix and its builder.
//
// The sparse path of SRDA (Section III-C2 of the paper) only needs
// matrix-vector products A*x and A^T*x plus row access; CSR provides both in
// O(nnz). Rows are samples, as in the dense Matrix.

#ifndef SRDA_SPARSE_SPARSE_MATRIX_H_
#define SRDA_SPARSE_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {

class SparseMatrixBuilder;

// Row-chunk size of the A^T*x / A^T*B reduction grid. The grid is anchored
// at global row 0 and depends only on the matrix shape, never on thread
// count — that is what makes the chunk-order fold deterministic. The
// out-of-core sharded operator replicates the same grid across shard
// boundaries (carrying a partial chunk between shards) to stay bitwise
// identical to the in-RAM kernels.
inline constexpr int kSparseTransposeChunkRows = 512;

// An immutable CSR matrix of doubles.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t NumNonZeros() const { return static_cast<int64_t>(values_.size()); }

  // Average non-zeros per row (the paper's `s`); 0 for an empty matrix.
  double AvgNonZerosPerRow() const;

  // Number of stored entries in row `i`.
  int RowNonZeros(int i) const;

  // Unchecked spans over row `i`'s column indices and values.
  const int* RowIndices(int i) const {
    return col_indices_.data() + row_offsets_[static_cast<size_t>(i)];
  }
  const double* RowValues(int i) const {
    return values_.data() + row_offsets_[static_cast<size_t>(i)];
  }

  // y = A * x  (x has cols() entries, result has rows()).
  Vector Multiply(const Vector& x) const;

  // y = A^T * x  (x has rows() entries, result has cols()).
  Vector MultiplyTransposed(const Vector& x) const;

  // C = A * B where B is dense cols() x k; result is rows() x k. Used to
  // embed sparse samples with a dense projection matrix. Each column of C
  // accumulates in the same order as Multiply() on the matching column of
  // B, so the two are bitwise identical.
  Matrix MultiplyDense(const Matrix& b) const;

  // C = A^T * B where B is dense rows() x k; result is cols() x k. The
  // multi-RHS mirror of MultiplyTransposed: the same fixed 512-row chunk
  // grid and ascending chunk-order fold, so column j of the result is
  // bitwise identical to MultiplyTransposed(column j of B) at any thread
  // count. This is what lets the batched LSQR path make one pass over the
  // matrix per iteration for all right-hand sides.
  Matrix MultiplyTransposedDense(const Matrix& b) const;

  // Copies rows [row_begin, row_end) into a new CSR matrix with the same
  // width (column indices unchanged). O(rows + nnz of the slice); used to
  // present in-RAM data as row shards.
  SparseMatrix RowSlice(int row_begin, int row_end) const;

  // Densifies (tests and small examples only).
  Matrix ToDense() const;

 private:
  friend class SparseMatrixBuilder;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_offsets_;  // size rows_ + 1
  std::vector<int> col_indices_;      // size nnz, sorted within each row
  std::vector<double> values_;        // size nnz
};

// Accumulates (row, col, value) triplets and assembles a CSR matrix.
// Duplicate coordinates are summed; explicit zeros are dropped.
class SparseMatrixBuilder {
 public:
  SparseMatrixBuilder(int rows, int cols);

  // Records `value` at (row, col). O(1); assembly happens in Build().
  void Add(int row, int col, double value);

  // Assembles the CSR matrix. The builder may not be reused afterwards.
  SparseMatrix Build() &&;

 private:
  struct Triplet {
    int row;
    int col;
    double value;
  };

  int rows_;
  int cols_;
  std::vector<Triplet> triplets_;
};

// Builds a CSR copy of a dense matrix, dropping entries with
// |value| <= tolerance.
SparseMatrix SparseFromDense(const Matrix& dense, double tolerance = 0.0);

}  // namespace srda

#endif  // SRDA_SPARSE_SPARSE_MATRIX_H_
