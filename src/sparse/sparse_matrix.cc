#include "sparse/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {

double SparseMatrix::AvgNonZerosPerRow() const {
  if (rows_ == 0) return 0.0;
  return static_cast<double>(NumNonZeros()) / rows_;
}

int SparseMatrix::RowNonZeros(int i) const {
  SRDA_CHECK(i >= 0 && i < rows_) << "row " << i << " out of " << rows_;
  return static_cast<int>(row_offsets_[static_cast<size_t>(i) + 1] -
                          row_offsets_[static_cast<size_t>(i)]);
}

namespace {

// Row-chunk size for the A^T*x reduction: see the determinism note on
// kSparseTransposeChunkRows in the header and in parallel.h.
constexpr int kTransposeChunkRows = kSparseTransposeChunkRows;

Counter* SparseBytesTouched() {
  static Counter* counter =
      MetricsRegistry::Global().counter("bytes.touched");
  return counter;
}

// CSR traffic model: every nonzero reads an 8-byte value plus a 4-byte
// column index, and each of `vec_columns` right-hand-side columns streams
// the dense input/output rows once.
double SparseBytes(int64_t nnz, int rows, int cols, int vec_columns) {
  return 12.0 * static_cast<double>(nnz) +
         8.0 * (static_cast<double>(rows) + cols) * vec_columns;
}

}  // namespace

Vector SparseMatrix::Multiply(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), cols_) << "sparse A*x shape mismatch";
  TraceSpan span("spmv");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * static_cast<double>(NumNonZeros()));
    SparseBytesTouched()->Add(SparseBytes(NumNonZeros(), rows_, cols_, 1));
  }
  AddFlops(2.0 * static_cast<double>(NumNonZeros()));
  Vector y(rows_);
  const double* px = x.data();
  ParallelFor(0, rows_, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const int64_t begin = row_offsets_[static_cast<size_t>(i)];
      const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
      double sum = 0.0;
      for (int64_t k = begin; k < end; ++k) {
        sum += values_[static_cast<size_t>(k)] *
               px[col_indices_[static_cast<size_t>(k)]];
      }
      y[i] = sum;
    }
  });
  return y;
}

Vector SparseMatrix::MultiplyTransposed(const Vector& x) const {
  SRDA_CHECK_EQ(x.size(), rows_) << "sparse A^T*x shape mismatch";
  TraceSpan span("spmv_t");
  if (span.recording()) {
    span.AddArg("flops", 2.0 * static_cast<double>(NumNonZeros()));
    SparseBytesTouched()->Add(SparseBytes(NumNonZeros(), rows_, cols_, 1));
  }
  AddFlops(2.0 * static_cast<double>(NumNonZeros()));
  Vector y(cols_);
  const int num_chunks = FixedChunkCount(rows_, kTransposeChunkRows);
  if (num_chunks <= 1) {
    // Single chunk: accumulate straight into y (the original serial path).
    double* py = y.data();
    for (int i = 0; i < rows_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      const int64_t begin = row_offsets_[static_cast<size_t>(i)];
      const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
      for (int64_t k = begin; k < end; ++k) {
        py[col_indices_[static_cast<size_t>(k)]] +=
            xi * values_[static_cast<size_t>(k)];
      }
    }
    return y;
  }

  // Rows scatter across the whole output, so each chunk accumulates into a
  // private buffer; the buffers are folded in fixed chunk order below.
  std::vector<Vector> partials(static_cast<size_t>(num_chunks));
  ParallelFor(0, num_chunks, [&](int chunk_begin, int chunk_end) {
    for (int c = chunk_begin; c < chunk_end; ++c) {
      Vector& partial = partials[static_cast<size_t>(c)];
      partial = Vector(cols_);
      double* pp = partial.data();
      const int row_begin = c * kTransposeChunkRows;
      const int row_end = std::min(rows_, row_begin + kTransposeChunkRows);
      for (int i = row_begin; i < row_end; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        const int64_t begin = row_offsets_[static_cast<size_t>(i)];
        const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
        for (int64_t k = begin; k < end; ++k) {
          pp[col_indices_[static_cast<size_t>(k)]] +=
              xi * values_[static_cast<size_t>(k)];
        }
      }
    }
  });
  y = std::move(partials[0]);
  double* py = y.data();
  for (int c = 1; c < num_chunks; ++c) {
    const double* pp = partials[static_cast<size_t>(c)].data();
    for (int j = 0; j < cols_; ++j) py[j] += pp[j];
  }
  return y;
}

Matrix SparseMatrix::MultiplyDense(const Matrix& b) const {
  SRDA_CHECK_EQ(b.rows(), cols_) << "sparse A*B shape mismatch";
  TraceSpan span("spmm");
  if (span.recording()) {
    span.AddArg("flops",
                2.0 * static_cast<double>(NumNonZeros()) * b.cols());
    SparseBytesTouched()->Add(
        SparseBytes(NumNonZeros(), rows_, cols_, b.cols()));
  }
  AddFlops(2.0 * static_cast<double>(NumNonZeros()) * b.cols());
  Matrix c(rows_, b.cols());
  ParallelFor(0, rows_, [&](int row_begin, int row_end) {
    for (int i = row_begin; i < row_end; ++i) {
      const int64_t begin = row_offsets_[static_cast<size_t>(i)];
      const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
      double* crow = c.RowPtr(i);
      for (int64_t k = begin; k < end; ++k) {
        const double value = values_[static_cast<size_t>(k)];
        const double* brow = b.RowPtr(col_indices_[static_cast<size_t>(k)]);
        for (int j = 0; j < b.cols(); ++j) crow[j] += value * brow[j];
      }
    }
  });
  return c;
}

Matrix SparseMatrix::MultiplyTransposedDense(const Matrix& b) const {
  SRDA_CHECK_EQ(b.rows(), rows_) << "sparse A^T*B shape mismatch";
  TraceSpan span("spmm_t");
  if (span.recording()) {
    span.AddArg("flops",
                2.0 * static_cast<double>(NumNonZeros()) * b.cols());
    SparseBytesTouched()->Add(
        SparseBytes(NumNonZeros(), rows_, cols_, b.cols()));
  }
  AddFlops(2.0 * static_cast<double>(NumNonZeros()) * b.cols());
  const int d = b.cols();
  const int num_chunks = FixedChunkCount(rows_, kTransposeChunkRows);
  if (num_chunks <= 1) {
    Matrix y(cols_, d);
    for (int i = 0; i < rows_; ++i) {
      const double* brow = b.RowPtr(i);
      const int64_t begin = row_offsets_[static_cast<size_t>(i)];
      const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
      for (int64_t k = begin; k < end; ++k) {
        const double value = values_[static_cast<size_t>(k)];
        double* yrow = y.RowPtr(col_indices_[static_cast<size_t>(k)]);
        for (int j = 0; j < d; ++j) {
          // The per-entry zero skip matches the row skip in the vector
          // kernel column by column, keeping the accumulation chains equal.
          if (brow[j] == 0.0) continue;
          yrow[j] += brow[j] * value;
        }
      }
    }
    return y;
  }

  std::vector<Matrix> partials(static_cast<size_t>(num_chunks));
  ParallelFor(0, num_chunks, [&](int chunk_begin, int chunk_end) {
    for (int c = chunk_begin; c < chunk_end; ++c) {
      Matrix& partial = partials[static_cast<size_t>(c)];
      partial = Matrix(cols_, d);
      const int row_begin = c * kTransposeChunkRows;
      const int row_end = std::min(rows_, row_begin + kTransposeChunkRows);
      for (int i = row_begin; i < row_end; ++i) {
        const double* brow = b.RowPtr(i);
        const int64_t begin = row_offsets_[static_cast<size_t>(i)];
        const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
        for (int64_t k = begin; k < end; ++k) {
          const double value = values_[static_cast<size_t>(k)];
          double* prow = partial.RowPtr(col_indices_[static_cast<size_t>(k)]);
          for (int j = 0; j < d; ++j) {
            if (brow[j] == 0.0) continue;
            prow[j] += brow[j] * value;
          }
        }
      }
    }
  });
  Matrix y = std::move(partials[0]);
  double* py = y.RowPtr(0);
  for (int c = 1; c < num_chunks; ++c) {
    const double* pp = partials[static_cast<size_t>(c)].RowPtr(0);
    const int64_t total = static_cast<int64_t>(cols_) * d;
    for (int64_t e = 0; e < total; ++e) py[e] += pp[e];
  }
  return y;
}

SparseMatrix SparseMatrix::RowSlice(int row_begin, int row_end) const {
  SRDA_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= rows_)
      << "RowSlice [" << row_begin << ", " << row_end << ") out of " << rows_;
  SparseMatrix slice;
  slice.rows_ = row_end - row_begin;
  slice.cols_ = cols_;
  const int64_t first = row_offsets_[static_cast<size_t>(row_begin)];
  const int64_t last = row_offsets_[static_cast<size_t>(row_end)];
  slice.row_offsets_.resize(static_cast<size_t>(slice.rows_) + 1);
  for (int i = 0; i <= slice.rows_; ++i) {
    slice.row_offsets_[static_cast<size_t>(i)] =
        row_offsets_[static_cast<size_t>(row_begin + i)] - first;
  }
  slice.col_indices_.assign(col_indices_.begin() + first,
                            col_indices_.begin() + last);
  slice.values_.assign(values_.begin() + first, values_.begin() + last);
  return slice;
}

Matrix SparseMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (int i = 0; i < rows_; ++i) {
    const int64_t begin = row_offsets_[static_cast<size_t>(i)];
    const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
    double* row = dense.RowPtr(i);
    for (int64_t k = begin; k < end; ++k) {
      row[col_indices_[static_cast<size_t>(k)]] =
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

SparseMatrixBuilder::SparseMatrixBuilder(int rows, int cols)
    : rows_(rows), cols_(cols) {
  SRDA_CHECK(rows >= 0 && cols >= 0)
      << "negative sparse shape " << rows << " x " << cols;
}

void SparseMatrixBuilder::Add(int row, int col, double value) {
  SRDA_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_)
      << "triplet (" << row << ", " << col << ") out of " << rows_ << " x "
      << cols_;
  if (value == 0.0) return;
  triplets_.push_back({row, col, value});
}

SparseMatrix SparseMatrixBuilder::Build() && {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix result;
  result.rows_ = rows_;
  result.cols_ = cols_;
  result.row_offsets_.assign(static_cast<size_t>(rows_) + 1, 0);
  result.col_indices_.reserve(triplets_.size());
  result.values_.reserve(triplets_.size());

  size_t i = 0;
  while (i < triplets_.size()) {
    // Merge duplicates at the same coordinate.
    double sum = triplets_[i].value;
    size_t j = i + 1;
    while (j < triplets_.size() && triplets_[j].row == triplets_[i].row &&
           triplets_[j].col == triplets_[i].col) {
      sum += triplets_[j].value;
      ++j;
    }
    if (sum != 0.0) {
      result.col_indices_.push_back(triplets_[i].col);
      result.values_.push_back(sum);
      ++result.row_offsets_[static_cast<size_t>(triplets_[i].row) + 1];
    }
    i = j;
  }
  for (size_t r = 0; r < static_cast<size_t>(rows_); ++r) {
    result.row_offsets_[r + 1] += result.row_offsets_[r];
  }
  triplets_.clear();
  return result;
}

SparseMatrix SparseFromDense(const Matrix& dense, double tolerance) {
  SRDA_CHECK(tolerance >= 0.0);
  SparseMatrixBuilder builder(dense.rows(), dense.cols());
  for (int i = 0; i < dense.rows(); ++i) {
    const double* row = dense.RowPtr(i);
    for (int j = 0; j < dense.cols(); ++j) {
      if (std::fabs(row[j]) > tolerance) builder.Add(i, j, row[j]);
    }
  }
  return std::move(builder).Build();
}

}  // namespace srda
