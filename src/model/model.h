// The versioned model store: one serializable artifact for every trainer.
//
// Every LinearEmbedding-producing trainer in src/core (SRDA, LDA, RLDA,
// IDR/QR, Fisherfaces, semi-supervised SRDA) reduces to the same deployable
// object: an affine embedding, a classifier head in the embedded space, the
// compact -> raw label map of the training file, and provenance describing
// how the model was trained. model::SrdaModel is that object; codec.h
// persists it in two interchangeable formats (versioned text for
// inspection/migration, mmap-able binary for zero-parse serving) and
// serve/serving.h scores traffic against it.
//
// Naming note: srda::SrdaModel (core/srda.h) is the *fit result* of the
// SRDA trainer — embedding plus solver diagnostics that die with the
// process. srda::model::SrdaModel is the durable artifact all trainers
// share. Files using both qualify explicitly.

#ifndef SRDA_MODEL_MODEL_H_
#define SRDA_MODEL_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/embedding.h"
#include "matrix/matrix.h"

namespace srda {
namespace model {

// Classifier heads a model file can carry. Only the nearest-centroid head
// exists today; the enum is serialized so new heads extend the format
// without a version bump invalidating old files.
enum class HeadKind : int {
  kCentroid = 0,
};

// How the model came to be: enough to reproduce or audit a training run.
struct Provenance {
  std::string trainer;  // "srda", "lda", "rlda", "idr_qr", ...
  double alpha = 0.0;   // ridge penalty (0 when the trainer has none)
  uint64_t seed = 0;    // stochastic-component seed (sketch seed; 0 = none)
};

struct SrdaModel {
  LinearEmbedding embedding;
  HeadKind head = HeadKind::kCentroid;
  Matrix centroids;             // num_classes x output_dim, embedded space
  std::vector<int> raw_labels;  // compact id -> raw file label, size classes
  Provenance provenance;

  int input_dim() const { return embedding.input_dim(); }
  int output_dim() const { return embedding.output_dim(); }
  int num_classes() const { return centroids.rows(); }

  // The raw (original-file) label behind compact class id `compact`.
  int raw_label(int compact) const;

  // Maps a whole prediction vector of compact ids to raw labels.
  std::vector<int> ToRawLabels(const std::vector<int>& compact) const;

  // Aborts (SRDA_CHECK) unless the embedding, head, and label map agree:
  // centroids match the embedding output width, raw_labels has one entry
  // per class and is strictly ascending (the reader compaction invariant).
  void Validate() const;
};

// Assembles the canonical model from a trained embedding: fits the centroid
// head on the embedded training data and fills the label map / provenance.
// `raw_labels` may be empty (datasets built in memory), meaning raw ==
// compact; it is materialized as the identity so every saved model carries
// an explicit map.
SrdaModel BuildModel(const LinearEmbedding& embedding,
                     const Matrix& embedded_train,
                     const std::vector<int>& labels, int num_classes,
                     std::vector<int> raw_labels, Provenance provenance);

// Same, from a precomputed centroid head (the out-of-core training path,
// which accumulates centroids shard by shard).
SrdaModel BuildModelFromCentroids(const LinearEmbedding& embedding,
                                  Matrix centroids,
                                  std::vector<int> raw_labels,
                                  Provenance provenance);

}  // namespace model
}  // namespace srda

#endif  // SRDA_MODEL_MODEL_H_
