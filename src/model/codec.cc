#include "model/codec.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace srda {
namespace model {
namespace {

// ---- Text codec ("srda-model 2", plus the legacy v1 reader) -------------

constexpr char kTextMagic[] = "srda-model";
constexpr int kTextVersion = 2;
constexpr char kLegacyMagic[] = "srda-classifier";

const char* HeadName(HeadKind head) {
  SRDA_CHECK(head == HeadKind::kCentroid) << "unknown classifier head";
  return "centroid";
}

void WriteMatrixRows(std::ofstream* out, const Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      *out << row[j] << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

void ReadMatrixRows(std::ifstream* in, Matrix* m, const std::string& path,
                    const char* what) {
  for (int i = 0; i < m->rows(); ++i) {
    for (int j = 0; j < m->cols(); ++j) {
      SRDA_CHECK(static_cast<bool>(*in >> (*m)(i, j)))
          << path << ": truncated " << what;
    }
  }
}

// Reads "key value" asserting the expected key, so a truncated or reordered
// header fails with the key name instead of a type error downstream.
template <typename T>
T ReadKeyed(std::ifstream* in, const std::string& path, const char* key) {
  std::string actual;
  T value{};
  SRDA_CHECK(static_cast<bool>(*in >> actual >> value) && actual == key)
      << path << ": expected '" << key << " <value>' in model header";
  return value;
}

SrdaModel LoadLegacyClassifier(std::ifstream* in, const std::string& path) {
  int input_dim = 0;
  int output_dim = 0;
  int num_classes = 0;
  SRDA_CHECK(static_cast<bool>(*in >> input_dim >> output_dim >> num_classes))
      << path << ": missing dimensions";
  SRDA_CHECK(input_dim > 0 && output_dim > 0 && num_classes > 1)
      << path << ": invalid dimensions";
  Matrix projection(input_dim, output_dim);
  ReadMatrixRows(in, &projection, path, "projection");
  Vector bias(output_dim);
  for (int j = 0; j < output_dim; ++j) {
    SRDA_CHECK(static_cast<bool>(*in >> bias[j]))
        << path << ": truncated bias";
  }
  SrdaModel m;
  m.centroids = Matrix(num_classes, output_dim);
  ReadMatrixRows(in, &m.centroids, path, "centroids");
  m.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  m.raw_labels.resize(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) m.raw_labels[static_cast<size_t>(k)] = k;
  m.Validate();
  return m;
}

// ---- Binary codec ("SRDM" v1) -------------------------------------------
//
// Fixed-size header (field by field, native layout), then 64-byte-aligned
// sections at the offsets the header records. file_size is stored so a
// truncated copy is detected before any section is touched.

constexpr char kBinaryMagic[4] = {'S', 'R', 'D', 'M'};
constexpr int32_t kBinaryVersion = 1;
constexpr int64_t kSectionAlign = 64;
constexpr int kMaxTrainerLen = 4096;

struct BinaryHeader {
  int32_t version = 0;
  int32_t input_dim = 0;
  int32_t output_dim = 0;
  int32_t num_classes = 0;
  int32_t head_kind = 0;
  int32_t trainer_len = 0;
  double alpha = 0.0;
  uint64_t seed = 0;
  int64_t projection_offset = 0;
  int64_t bias_offset = 0;
  int64_t centroids_offset = 0;
  int64_t raw_labels_offset = 0;
  int64_t trainer_offset = 0;
  int64_t file_size = 0;
};

// Bytes of the serialized header: magic + 6 int32 + double + uint64 +
// 6 int64. Sections start at the next 64-byte boundary.
constexpr int64_t kHeaderBytes = 4 + 6 * 4 + 8 + 8 + 6 * 8;

int64_t AlignUp(int64_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

void WriteBytes(std::ofstream* out, const void* data, size_t bytes) {
  out->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
}

void PadTo(std::ofstream* out, int64_t offset) {
  static const char zeros[kSectionAlign] = {};
  const int64_t position = static_cast<int64_t>(out->tellp());
  SRDA_CHECK_LE(position, offset) << "binary section layout overflow";
  WriteBytes(out, zeros, static_cast<size_t>(offset - position));
}

// Copies `bytes` out of the file image with a bounds check; the one copy a
// binary load performs per section (no per-element conversion).
void CopySection(const unsigned char* data, int64_t size,
                 const std::string& path, int64_t offset, void* dst,
                 int64_t bytes) {
  SRDA_CHECK(offset >= kHeaderBytes && bytes >= 0 && offset + bytes <= size)
      << path << ": model section [" << offset << ", " << offset + bytes
      << ") escapes the file (" << size << " bytes) — truncated or corrupt";
  std::memcpy(dst, data + offset, static_cast<size_t>(bytes));
}

SrdaModel ParseBinary(const unsigned char* data, int64_t size,
                      const std::string& path) {
  SRDA_CHECK_GE(size, kHeaderBytes) << path << ": truncated model file";
  SRDA_CHECK(std::memcmp(data, kBinaryMagic, sizeof(kBinaryMagic)) == 0)
      << path << ": not an srda binary model (bad magic)";
  BinaryHeader h;
  const unsigned char* p = data + sizeof(kBinaryMagic);
  const auto read = [&p](void* dst, size_t bytes) {
    std::memcpy(dst, p, bytes);
    p += bytes;
  };
  read(&h.version, 4);
  read(&h.input_dim, 4);
  read(&h.output_dim, 4);
  read(&h.num_classes, 4);
  read(&h.head_kind, 4);
  read(&h.trainer_len, 4);
  read(&h.alpha, 8);
  read(&h.seed, 8);
  read(&h.projection_offset, 8);
  read(&h.bias_offset, 8);
  read(&h.centroids_offset, 8);
  read(&h.raw_labels_offset, 8);
  read(&h.trainer_offset, 8);
  read(&h.file_size, 8);

  SRDA_CHECK_EQ(h.version, kBinaryVersion)
      << path << ": unsupported model version " << h.version << " (expected "
      << kBinaryVersion << ")";
  SRDA_CHECK_EQ(h.file_size, size)
      << path << ": file is " << size << " bytes but the header recorded "
      << h.file_size << " — truncated or corrupt";
  SRDA_CHECK(h.input_dim > 0 && h.output_dim > 0 && h.num_classes > 1)
      << path << ": invalid model dimensions " << h.input_dim << " x "
      << h.output_dim << ", " << h.num_classes << " classes";
  SRDA_CHECK(h.head_kind == static_cast<int32_t>(HeadKind::kCentroid))
      << path << ": unknown classifier head " << h.head_kind;
  SRDA_CHECK(h.trainer_len >= 0 && h.trainer_len <= kMaxTrainerLen)
      << path << ": implausible trainer-name length " << h.trainer_len;

  SrdaModel m;
  Matrix projection(h.input_dim, h.output_dim);
  CopySection(data, size, path, h.projection_offset, projection.data(),
              static_cast<int64_t>(h.input_dim) * h.output_dim * 8);
  Vector bias(h.output_dim);
  CopySection(data, size, path, h.bias_offset, bias.data(),
              static_cast<int64_t>(h.output_dim) * 8);
  m.centroids = Matrix(h.num_classes, h.output_dim);
  CopySection(data, size, path, h.centroids_offset, m.centroids.data(),
              static_cast<int64_t>(h.num_classes) * h.output_dim * 8);
  std::vector<int32_t> raw(static_cast<size_t>(h.num_classes));
  CopySection(data, size, path, h.raw_labels_offset, raw.data(),
              static_cast<int64_t>(h.num_classes) * 4);
  m.raw_labels.assign(raw.begin(), raw.end());
  m.provenance.trainer.resize(static_cast<size_t>(h.trainer_len));
  if (h.trainer_len > 0) {
    CopySection(data, size, path, h.trainer_offset,
                m.provenance.trainer.data(), h.trainer_len);
  }
  m.provenance.alpha = h.alpha;
  m.provenance.seed = h.seed;
  m.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  m.Validate();
  return m;
}

// Reads the whole file into memory — the fallback when mmap is unavailable.
std::vector<unsigned char> SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  SRDA_CHECK(in.good()) << "cannot open " << path << " for reading";
  const std::streamsize size = in.tellg();
  std::vector<unsigned char> buffer(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(buffer.data()), size);
  SRDA_CHECK(in.good()) << path << ": read failure";
  return buffer;
}

char SniffFirstByte(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SRDA_CHECK(in.good()) << "cannot open " << path << " for reading";
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, sizeof(magic));
  SRDA_CHECK(in.gcount() > 0) << path << ": empty model file";
  return in.gcount() == 4 && std::memcmp(magic, kBinaryMagic, 4) == 0 ? 'B'
                                                                      : 'T';
}

}  // namespace

void SaveText(const SrdaModel& m, const std::string& path) {
  m.Validate();
  std::ofstream out(path);
  SRDA_CHECK(out.good()) << "cannot open " << path << " for writing";
  // max_digits10 decimal digits round-trip every double exactly; anything
  // less silently perturbs coefficients on reload.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kTextMagic << ' ' << kTextVersion << '\n';
  out << "trainer " << (m.provenance.trainer.empty() ? "unknown"
                                                     : m.provenance.trainer)
      << '\n';
  out << "alpha " << m.provenance.alpha << '\n';
  out << "seed " << m.provenance.seed << '\n';
  out << "head " << HeadName(m.head) << '\n';
  out << "dims " << m.input_dim() << ' ' << m.output_dim() << ' '
      << m.num_classes() << '\n';
  out << "raw_labels";
  for (int raw : m.raw_labels) out << ' ' << raw;
  out << '\n';
  WriteMatrixRows(&out, m.embedding.projection());
  const Vector& bias = m.embedding.bias();
  for (int j = 0; j < bias.size(); ++j) {
    out << bias[j] << (j + 1 == bias.size() ? '\n' : ' ');
  }
  WriteMatrixRows(&out, m.centroids);
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

SrdaModel LoadText(const std::string& path) {
  std::ifstream in(path);
  SRDA_CHECK(in.good()) << "cannot open " << path << " for reading";
  std::string magic;
  int version = 0;
  SRDA_CHECK(static_cast<bool>(in >> magic))
      << path << ": empty model file";
  if (magic == kLegacyMagic) {
    SRDA_CHECK(static_cast<bool>(in >> version) && version == 1)
        << path << ": unsupported " << kLegacyMagic << " version";
    return LoadLegacyClassifier(&in, path);
  }
  SRDA_CHECK(magic == kTextMagic)
      << path << ": not an srda model file (magic '" << magic << "')";
  SRDA_CHECK(static_cast<bool>(in >> version))
      << path << ": truncated model header";
  SRDA_CHECK_EQ(version, kTextVersion)
      << path << ": unsupported model version " << version << " (expected "
      << kTextVersion << ")";

  SrdaModel m;
  m.provenance.trainer = ReadKeyed<std::string>(&in, path, "trainer");
  m.provenance.alpha = ReadKeyed<double>(&in, path, "alpha");
  m.provenance.seed = ReadKeyed<uint64_t>(&in, path, "seed");
  const std::string head = ReadKeyed<std::string>(&in, path, "head");
  SRDA_CHECK(head == "centroid")
      << path << ": unknown classifier head '" << head << "'";
  m.head = HeadKind::kCentroid;

  std::string key;
  int input_dim = 0;
  int output_dim = 0;
  int num_classes = 0;
  SRDA_CHECK(static_cast<bool>(in >> key >> input_dim >> output_dim >>
                               num_classes) &&
             key == "dims")
      << path << ": expected 'dims <input> <output> <classes>'";
  SRDA_CHECK(input_dim > 0 && output_dim > 0 && num_classes > 1)
      << path << ": invalid model dimensions " << input_dim << " x "
      << output_dim << ", " << num_classes << " classes";
  SRDA_CHECK(static_cast<bool>(in >> key) && key == "raw_labels")
      << path << ": expected the raw_labels map";
  m.raw_labels.resize(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK(static_cast<bool>(in >> m.raw_labels[static_cast<size_t>(k)]))
        << path << ": truncated raw_labels";
  }

  Matrix projection(input_dim, output_dim);
  ReadMatrixRows(&in, &projection, path, "projection");
  Vector bias(output_dim);
  for (int j = 0; j < output_dim; ++j) {
    SRDA_CHECK(static_cast<bool>(in >> bias[j]))
        << path << ": truncated bias";
  }
  m.centroids = Matrix(num_classes, output_dim);
  ReadMatrixRows(&in, &m.centroids, path, "centroids");
  m.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  m.Validate();
  return m;
}

void SaveBinary(const SrdaModel& m, const std::string& path) {
  m.Validate();
  BinaryHeader h;
  h.version = kBinaryVersion;
  h.input_dim = m.input_dim();
  h.output_dim = m.output_dim();
  h.num_classes = m.num_classes();
  h.head_kind = static_cast<int32_t>(m.head);
  h.trainer_len = static_cast<int32_t>(m.provenance.trainer.size());
  SRDA_CHECK_LE(h.trainer_len, kMaxTrainerLen) << "trainer name too long";
  h.alpha = m.provenance.alpha;
  h.seed = m.provenance.seed;
  h.projection_offset = AlignUp(kHeaderBytes);
  h.bias_offset = AlignUp(h.projection_offset +
                          static_cast<int64_t>(h.input_dim) * h.output_dim * 8);
  h.centroids_offset =
      AlignUp(h.bias_offset + static_cast<int64_t>(h.output_dim) * 8);
  h.raw_labels_offset =
      AlignUp(h.centroids_offset +
              static_cast<int64_t>(h.num_classes) * h.output_dim * 8);
  h.trainer_offset =
      AlignUp(h.raw_labels_offset + static_cast<int64_t>(h.num_classes) * 4);
  h.file_size = h.trainer_offset + h.trainer_len;

  std::ofstream out(path, std::ios::binary);
  SRDA_CHECK(out.good()) << "cannot open " << path << " for writing";
  WriteBytes(&out, kBinaryMagic, sizeof(kBinaryMagic));
  WriteBytes(&out, &h.version, 4);
  WriteBytes(&out, &h.input_dim, 4);
  WriteBytes(&out, &h.output_dim, 4);
  WriteBytes(&out, &h.num_classes, 4);
  WriteBytes(&out, &h.head_kind, 4);
  WriteBytes(&out, &h.trainer_len, 4);
  WriteBytes(&out, &h.alpha, 8);
  WriteBytes(&out, &h.seed, 8);
  WriteBytes(&out, &h.projection_offset, 8);
  WriteBytes(&out, &h.bias_offset, 8);
  WriteBytes(&out, &h.centroids_offset, 8);
  WriteBytes(&out, &h.raw_labels_offset, 8);
  WriteBytes(&out, &h.trainer_offset, 8);
  WriteBytes(&out, &h.file_size, 8);

  PadTo(&out, h.projection_offset);
  WriteBytes(&out, m.embedding.projection().data(),
             static_cast<size_t>(h.input_dim) * h.output_dim * 8);
  PadTo(&out, h.bias_offset);
  WriteBytes(&out, m.embedding.bias().data(),
             static_cast<size_t>(h.output_dim) * 8);
  PadTo(&out, h.centroids_offset);
  WriteBytes(&out, m.centroids.data(),
             static_cast<size_t>(h.num_classes) * h.output_dim * 8);
  PadTo(&out, h.raw_labels_offset);
  std::vector<int32_t> raw(m.raw_labels.begin(), m.raw_labels.end());
  WriteBytes(&out, raw.data(), raw.size() * 4);
  PadTo(&out, h.trainer_offset);
  WriteBytes(&out, m.provenance.trainer.data(),
             static_cast<size_t>(h.trainer_len));
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

SrdaModel LoadBinary(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  SRDA_CHECK_GE(fd, 0) << "cannot open " << path << " for reading";
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    SRDA_CHECK(false) << "cannot stat " << path;
  }
  const int64_t size = static_cast<int64_t>(st.st_size);
  void* mapping = size > 0
                      ? ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                               MAP_PRIVATE, fd, 0)
                      : MAP_FAILED;
  ::close(fd);
  if (mapping == MAP_FAILED) {
    // Mapping can fail on exotic filesystems; the read path parses the same
    // bytes (SlurpFile rejects anything unreadable, including empty files).
    obs::Event("model.mmap_fallback")
        .Str("path", path)
        .Num("bytes", static_cast<double>(size));
    const std::vector<unsigned char> buffer = SlurpFile(path);
    return ParseBinary(buffer.data(), static_cast<int64_t>(buffer.size()),
                       path);
  }
  SrdaModel m =
      ParseBinary(static_cast<const unsigned char*>(mapping), size, path);
  ::munmap(mapping, static_cast<size_t>(size));
  return m;
}

Codec DetectCodec(const std::string& path) {
  if (SniffFirstByte(path) == 'B') return Codec::kBinary;
  std::ifstream in(path);
  std::string magic;
  SRDA_CHECK(static_cast<bool>(in >> magic) &&
             (magic == kTextMagic || magic == kLegacyMagic))
      << path << ": not an srda model file";
  return Codec::kText;
}

void Save(const SrdaModel& m, const std::string& path, Codec codec) {
  if (codec == Codec::kBinary) {
    SaveBinary(m, path);
  } else {
    SaveText(m, path);
  }
}

SrdaModel Load(const std::string& path) {
  TraceSpan span("model.load");
  const Codec codec = DetectCodec(path);
  SrdaModel m =
      codec == Codec::kBinary ? LoadBinary(path) : LoadText(path);
  if (span.recording()) {
    const int64_t coeffs =
        static_cast<int64_t>(m.input_dim() + m.num_classes()) *
        m.output_dim();
    span.AddArg("coeffs", static_cast<double>(coeffs));
    span.AddArg("binary", codec == Codec::kBinary ? 1.0 : 0.0);
  }
  obs::Event("model.load")
      .Str("path", path)
      .Str("codec", codec == Codec::kBinary ? "binary" : "text")
      .Num("input_dim", m.input_dim())
      .Num("output_dim", m.output_dim())
      .Num("classes", m.num_classes());
  return m;
}

}  // namespace model
}  // namespace srda
