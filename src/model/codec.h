// Serialization codecs for the model store (model/model.h).
//
// Two interchangeable on-disk formats carry the same SrdaModel:
//
//  * Text ("srda-model 2"): line-oriented, human-inspectable, the migration
//    format. Doubles are written with max_digits10 significant digits so a
//    save -> load round trip reproduces every coefficient bit for bit
//    (correctly-rounded decimal I/O both ways). The loader also accepts the
//    legacy "srda-classifier 1" files written before the store existed,
//    filling identity raw labels and empty provenance.
//
//  * Binary ("SRDM" v1): a fixed header holding dimensions, provenance, and
//    the byte offset of every section, followed by 64-byte-aligned sections
//    (projection, bias, centroids, raw labels, trainer name) in native
//    layout. Loading mmaps the file and memcpy's each section straight into
//    place — zero parse cost, no per-element conversion — so a server picks
//    up a model at memory bandwidth. Falls back to a plain read when
//    mapping is unavailable; the loaded model is identical either way.
//
// Every load is wrapped in a `model.load` trace span (bytes + codec args)
// so serving traces prove which path a model came through. All malformed
// inputs — truncation, bad magic, unsupported versions, section offsets
// that escape the file, dimension mismatches — abort through SRDA_CHECK
// with the file path in the message instead of reading garbage.

#ifndef SRDA_MODEL_CODEC_H_
#define SRDA_MODEL_CODEC_H_

#include <string>

#include "model/model.h"

namespace srda {
namespace model {

enum class Codec {
  kText,    // "srda-model 2" (or legacy "srda-classifier 1" on load)
  kBinary,  // "SRDM" v1, mmap-able
};

// Writes `m` to `path` in the requested codec. Aborts on I/O failure or an
// invalid model (SrdaModel::Validate).
void Save(const SrdaModel& m, const std::string& path, Codec codec);

// Loads a model, sniffing the codec from the file's magic: "SRDM" selects
// the binary loader, "srda-model"/"srda-classifier" the text loader.
// Anything else aborts with the path.
SrdaModel Load(const std::string& path);

// The codec `path` holds, by magic. Aborts if the file opens but matches no
// known format.
Codec DetectCodec(const std::string& path);

// Codec-explicit entry points (Load/DetectCodec are the normal interface).
void SaveText(const SrdaModel& m, const std::string& path);
void SaveBinary(const SrdaModel& m, const std::string& path);
SrdaModel LoadText(const std::string& path);
SrdaModel LoadBinary(const std::string& path);

}  // namespace model
}  // namespace srda

#endif  // SRDA_MODEL_CODEC_H_
