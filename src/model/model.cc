#include "model/model.h"

#include <numeric>
#include <utility>

#include "classify/classifiers.h"
#include "common/check.h"

namespace srda {
namespace model {
namespace {

// raw == compact when the training data never went through a file reader.
std::vector<int> IdentityLabels(int num_classes) {
  std::vector<int> labels(static_cast<size_t>(num_classes));
  std::iota(labels.begin(), labels.end(), 0);
  return labels;
}

}  // namespace

int SrdaModel::raw_label(int compact) const {
  SRDA_CHECK(compact >= 0 && compact < num_classes())
      << "class id " << compact << " out of " << num_classes();
  return raw_labels[static_cast<size_t>(compact)];
}

std::vector<int> SrdaModel::ToRawLabels(const std::vector<int>& compact) const {
  std::vector<int> raw;
  raw.reserve(compact.size());
  for (int id : compact) raw.push_back(raw_label(id));
  return raw;
}

void SrdaModel::Validate() const {
  SRDA_CHECK(input_dim() > 0 && output_dim() > 0)
      << "model has an empty embedding";
  SRDA_CHECK(head == HeadKind::kCentroid) << "unknown classifier head";
  SRDA_CHECK_EQ(centroids.cols(), output_dim())
      << "centroid dimension must match the embedding output";
  SRDA_CHECK_GT(centroids.rows(), 1) << "model needs at least two classes";
  SRDA_CHECK_EQ(static_cast<int>(raw_labels.size()), centroids.rows())
      << "raw-label map must have one entry per class";
  for (size_t k = 1; k < raw_labels.size(); ++k) {
    SRDA_CHECK_LT(raw_labels[k - 1], raw_labels[k])
        << "raw labels must be strictly ascending (reader compaction order)";
  }
}

SrdaModel BuildModel(const LinearEmbedding& embedding,
                     const Matrix& embedded_train,
                     const std::vector<int>& labels, int num_classes,
                     std::vector<int> raw_labels, Provenance provenance) {
  CentroidClassifier head;
  head.Fit(embedded_train, labels, num_classes);
  return BuildModelFromCentroids(embedding, head.centroids(),
                                 std::move(raw_labels),
                                 std::move(provenance));
}

SrdaModel BuildModelFromCentroids(const LinearEmbedding& embedding,
                                  Matrix centroids,
                                  std::vector<int> raw_labels,
                                  Provenance provenance) {
  SrdaModel model;
  model.embedding = embedding;
  model.centroids = std::move(centroids);
  model.raw_labels = raw_labels.empty() ? IdentityLabels(model.num_classes())
                                        : std::move(raw_labels);
  model.provenance = std::move(provenance);
  model.Validate();
  return model;
}

}  // namespace model
}  // namespace srda
