// Synthetic spoken-letter dataset standing in for Isolet (Table II: 6237
// samples, 617 features, 26 classes).
//
// Samples are generated from a shared low-rank factor model: class means live
// in a latent "phoneme" subspace, within-class variation combines a shared
// "speaker" subspace with dense observation noise. This reproduces the
// moderate-dimensional dense regime (m > n) where every algorithm in the
// paper is applicable and the error curves flatten with more training data.

#ifndef SRDA_DATASET_SPOKEN_LETTER_GENERATOR_H_
#define SRDA_DATASET_SPOKEN_LETTER_GENERATOR_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace srda {

struct SpokenLetterGeneratorOptions {
  int num_classes = 26;
  int examples_per_class = 240;  // paper trains on <=110 and tests the rest
  int num_features = 617;
  int phoneme_rank = 30;   // latent dimension of the class-mean subspace
  // Within-class (speaker) variation splits between the phoneme subspace
  // itself (where it collides with the class means and bounds the Bayes
  // error) and an extra nuisance subspace.
  int speaker_rank = 18;
  double class_separation = 0.5;
  double speaker_strength = 0.6;
  // How strongly the nuisance speaker subspace leaks into the phoneme
  // subspace (oblique within-class covariance, as in real speech where
  // speaker timbre and phoneme content share cepstral dimensions).
  double speaker_phoneme_coupling = 1.5;
  // Overall feature scale; UCI Isolet features live in [-1, 1], so the
  // paper's alpha = 1 ridge is a meaningful regularizer at this scale.
  double output_scale = 0.05;
  double noise_stddev = 0.45;
  uint64_t seed = 2;
};

// Generates the dataset; deterministic in `options.seed`.
DenseDataset GenerateSpokenLetterDataset(
    const SpokenLetterGeneratorOptions& options);

}  // namespace srda

#endif  // SRDA_DATASET_SPOKEN_LETTER_GENERATOR_H_
