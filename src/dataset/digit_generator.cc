#include "dataset/digit_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace srda {
namespace {

// A stroke segment in the canonical unit frame ([0,1]^2, y pointing down).
struct Segment {
  double x0, y0, x1, y1;
};

// Stroke skeletons for the ten digits (seven-segment style with diagonals).
const std::vector<std::vector<Segment>>& DigitSkeletons() {
  static const auto* kSkeletons = new std::vector<std::vector<Segment>>{
      // 0
      {{0.28, 0.15, 0.72, 0.15},
       {0.28, 0.85, 0.72, 0.85},
       {0.28, 0.15, 0.28, 0.85},
       {0.72, 0.15, 0.72, 0.85}},
      // 1
      {{0.52, 0.15, 0.52, 0.85}, {0.36, 0.32, 0.52, 0.15}},
      // 2
      {{0.28, 0.22, 0.72, 0.22},
       {0.72, 0.22, 0.72, 0.50},
       {0.72, 0.50, 0.28, 0.85},
       {0.28, 0.85, 0.72, 0.85}},
      // 3
      {{0.28, 0.15, 0.72, 0.15},
       {0.34, 0.50, 0.72, 0.50},
       {0.28, 0.85, 0.72, 0.85},
       {0.72, 0.15, 0.72, 0.85}},
      // 4
      {{0.32, 0.15, 0.32, 0.52},
       {0.32, 0.52, 0.78, 0.52},
       {0.64, 0.15, 0.64, 0.85}},
      // 5
      {{0.28, 0.15, 0.72, 0.15},
       {0.28, 0.15, 0.28, 0.50},
       {0.28, 0.50, 0.72, 0.50},
       {0.72, 0.50, 0.72, 0.85},
       {0.28, 0.85, 0.72, 0.85}},
      // 6
      {{0.28, 0.15, 0.28, 0.85},
       {0.28, 0.15, 0.68, 0.15},
       {0.28, 0.85, 0.72, 0.85},
       {0.72, 0.50, 0.72, 0.85},
       {0.28, 0.50, 0.72, 0.50}},
      // 7
      {{0.26, 0.15, 0.74, 0.15}, {0.74, 0.15, 0.42, 0.85}},
      // 8
      {{0.28, 0.15, 0.72, 0.15},
       {0.28, 0.85, 0.72, 0.85},
       {0.28, 0.15, 0.28, 0.85},
       {0.72, 0.15, 0.72, 0.85},
       {0.28, 0.50, 0.72, 0.50}},
      // 9
      {{0.28, 0.15, 0.72, 0.15},
       {0.28, 0.15, 0.28, 0.50},
       {0.28, 0.50, 0.72, 0.50},
       {0.72, 0.15, 0.72, 0.85},
       {0.32, 0.85, 0.72, 0.85}},
  };
  return *kSkeletons;
}

double DistanceToSegment(double px, double py, const Segment& s) {
  const double dx = s.x1 - s.x0;
  const double dy = s.y1 - s.y0;
  const double length_sq = dx * dx + dy * dy;
  double t = 0.0;
  if (length_sq > 0.0) {
    t = ((px - s.x0) * dx + (py - s.y0) * dy) / length_sq;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double cx = s.x0 + t * dx;
  const double cy = s.y0 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

DenseDataset GenerateDigitDataset(const DigitGeneratorOptions& options) {
  SRDA_CHECK_GT(options.examples_per_class, 0);
  SRDA_CHECK_GE(options.image_size, 8);
  SRDA_CHECK_GT(options.stroke_width, 0.0);

  Rng rng(options.seed);
  const int size = options.image_size;
  const int n = size * size;
  const auto& skeletons = DigitSkeletons();
  const int c = static_cast<int>(skeletons.size());
  const int m = c * options.examples_per_class;

  DenseDataset dataset;
  dataset.num_classes = c;
  dataset.features = Matrix(m, n);
  dataset.labels.reserve(static_cast<size_t>(m));

  // Stroke width expressed in canonical units.
  const double base_width = options.stroke_width / size;

  int row = 0;
  for (int digit = 0; digit < c; ++digit) {
    for (int example = 0; example < options.examples_per_class; ++example) {
      // Random similarity transform for this instance. Shifts are expressed
      // in canonical 28-pixel MNIST units so that lower-resolution renders
      // keep the same proportional jitter.
      constexpr double kCanonicalSize = 28.0;
      const double shift_x =
          rng.NextUniform(-options.max_shift_pixels, options.max_shift_pixels) /
          kCanonicalSize;
      const double shift_y =
          rng.NextUniform(-options.max_shift_pixels, options.max_shift_pixels) /
          kCanonicalSize;
      const double angle = rng.NextUniform(-options.max_rotation_radians,
                                           options.max_rotation_radians);
      const double scale =
          1.0 + rng.NextUniform(-options.scale_jitter, options.scale_jitter);
      const double width =
          base_width * (1.0 + rng.NextUniform(-0.3, 0.3));
      const double cos_a = std::cos(angle);
      const double sin_a = std::sin(angle);

      double* pixels = dataset.features.RowPtr(row);
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          // Map the pixel center back into the canonical frame.
          const double ux = (x + 0.5) / size - 0.5 - shift_x;
          const double uy = (y + 0.5) / size - 0.5 - shift_y;
          const double rx = (cos_a * ux + sin_a * uy) / scale + 0.5;
          const double ry = (-sin_a * ux + cos_a * uy) / scale + 0.5;
          double min_distance = 1e9;
          for (const Segment& segment : skeletons[static_cast<size_t>(digit)]) {
            min_distance =
                std::min(min_distance, DistanceToSegment(rx, ry, segment));
          }
          const double ratio = min_distance / width;
          double intensity = std::exp(-0.5 * ratio * ratio);
          intensity += rng.NextGaussian() * options.noise_stddev;
          pixels[static_cast<size_t>(y) * size + x] =
              options.intensity_scale * std::clamp(intensity, 0.0, 1.0);
        }
      }
      dataset.labels.push_back(digit);
      ++row;
    }
  }
  return dataset;
}

}  // namespace srda
