// Labeled dataset containers (dense and sparse) and shared helpers.
//
// Rows are samples. Labels are class ids in [0, num_classes).

#ifndef SRDA_DATASET_DATASET_H_
#define SRDA_DATASET_DATASET_H_

#include <vector>

#include "matrix/matrix.h"
#include "sparse/sparse_matrix.h"

namespace srda {

// Dense features with one label per row.
struct DenseDataset {
  Matrix features;          // m x n
  std::vector<int> labels;  // size m, values in [0, num_classes)
  int num_classes = 0;
  // Compact id -> raw label as written in the source file, strictly
  // ascending (the readers compact by sorted raw value). Empty for datasets
  // built in memory, meaning raw label == compact id.
  std::vector<int> raw_labels;
};

// Sparse (CSR) features with one label per row.
struct SparseDataset {
  SparseMatrix features;
  std::vector<int> labels;
  int num_classes = 0;
  // Compact id -> raw file label, as for DenseDataset::raw_labels.
  std::vector<int> raw_labels;
};

// Aborts if labels/shape/num_classes are inconsistent.
void ValidateDataset(const DenseDataset& dataset);
void ValidateDataset(const SparseDataset& dataset);

// Number of samples per class; aborts on out-of-range labels.
std::vector<int> ClassCounts(const std::vector<int>& labels, int num_classes);

// Extracts the sub-dataset given by `indices` (row order preserved).
DenseDataset Subset(const DenseDataset& dataset,
                    const std::vector<int>& indices);
SparseDataset Subset(const SparseDataset& dataset,
                     const std::vector<int>& indices);

}  // namespace srda

#endif  // SRDA_DATASET_DATASET_H_
