#include "dataset/dataset.h"

#include "common/check.h"

namespace srda {
namespace {

void ValidateLabels(const std::vector<int>& labels, int rows,
                    int num_classes) {
  SRDA_CHECK_EQ(static_cast<int>(labels.size()), rows)
      << "label count does not match sample count";
  SRDA_CHECK_GT(num_classes, 0) << "dataset needs at least one class";
  for (int label : labels) {
    SRDA_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
  }
}

// raw_labels is either empty (raw == compact) or a strictly ascending map
// with one raw label per class.
void ValidateRawLabels(const std::vector<int>& raw_labels, int num_classes) {
  if (raw_labels.empty()) return;
  SRDA_CHECK_EQ(static_cast<int>(raw_labels.size()), num_classes)
      << "raw_labels must map every class";
  for (size_t k = 1; k < raw_labels.size(); ++k) {
    SRDA_CHECK_LT(raw_labels[k - 1], raw_labels[k])
        << "raw_labels must be strictly ascending";
  }
}

}  // namespace

void ValidateDataset(const DenseDataset& dataset) {
  ValidateLabels(dataset.labels, dataset.features.rows(),
                 dataset.num_classes);
  ValidateRawLabels(dataset.raw_labels, dataset.num_classes);
}

void ValidateDataset(const SparseDataset& dataset) {
  ValidateLabels(dataset.labels, dataset.features.rows(),
                 dataset.num_classes);
  ValidateRawLabels(dataset.raw_labels, dataset.num_classes);
}

std::vector<int> ClassCounts(const std::vector<int>& labels, int num_classes) {
  SRDA_CHECK_GT(num_classes, 0);
  std::vector<int> counts(static_cast<size_t>(num_classes), 0);
  for (int label : labels) {
    SRDA_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
    ++counts[static_cast<size_t>(label)];
  }
  return counts;
}

DenseDataset Subset(const DenseDataset& dataset,
                    const std::vector<int>& indices) {
  DenseDataset out;
  out.num_classes = dataset.num_classes;
  out.raw_labels = dataset.raw_labels;
  out.features = Matrix(static_cast<int>(indices.size()),
                        dataset.features.cols());
  out.labels.reserve(indices.size());
  int row = 0;
  for (int index : indices) {
    SRDA_CHECK(index >= 0 && index < dataset.features.rows())
        << "subset index " << index << " out of range";
    const double* src = dataset.features.RowPtr(index);
    double* dst = out.features.RowPtr(row);
    for (int j = 0; j < dataset.features.cols(); ++j) dst[j] = src[j];
    out.labels.push_back(dataset.labels[static_cast<size_t>(index)]);
    ++row;
  }
  return out;
}

SparseDataset Subset(const SparseDataset& dataset,
                     const std::vector<int>& indices) {
  SparseDataset out;
  out.num_classes = dataset.num_classes;
  out.raw_labels = dataset.raw_labels;
  SparseMatrixBuilder builder(static_cast<int>(indices.size()),
                              dataset.features.cols());
  out.labels.reserve(indices.size());
  int row = 0;
  for (int index : indices) {
    SRDA_CHECK(index >= 0 && index < dataset.features.rows())
        << "subset index " << index << " out of range";
    const int nnz = dataset.features.RowNonZeros(index);
    const int* cols = dataset.features.RowIndices(index);
    const double* values = dataset.features.RowValues(index);
    for (int k = 0; k < nnz; ++k) builder.Add(row, cols[k], values[k]);
    out.labels.push_back(dataset.labels[static_cast<size_t>(index)]);
    ++row;
  }
  out.features = std::move(builder).Build();
  return out;
}

}  // namespace srda
