// Synthetic sparse text dataset standing in for 20Newsgroups (Table II:
// 18941 documents, 26214 terms, 20 classes).
//
// Documents mix a global Zipf-distributed background vocabulary with a
// topic-specific Zipf vocabulary, are converted to term-frequency vectors,
// and L2-normalized to 1 like the paper's preprocessing. Average non-zeros
// per document land in the ~100 range, reproducing the huge-sparse regime
// where only SRDA with LSQR is feasible (the paper's Tables IX/X leave the
// dense algorithms blank there once memory runs out).

#ifndef SRDA_DATASET_TEXT_GENERATOR_H_
#define SRDA_DATASET_TEXT_GENERATOR_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace srda {

struct TextGeneratorOptions {
  int num_topics = 20;
  int docs_per_topic = 947;      // 20 x 947 = 18940 ~ the paper's 18941
  int vocabulary_size = 26214;
  int topic_vocabulary_size = 1500;  // topic-boosted terms per class
  double topic_word_fraction = 0.08;  // fraction of tokens from the topic
  // Fraction of tokens drawn from a random *other* topic's vocabulary
  // (newsgroup posts quote and cross-post heavily).
  double contamination_fraction = 0.65;
  // Spacing of consecutive topic vocabulary blocks as a fraction of the
  // block size; below 1.0 adjacent topics share boosted terms.
  double topic_overlap_stride = 0.5;
  double mean_document_length = 130.0;
  double zipf_exponent = 1.45;
  uint64_t seed = 4;
};

// Generates the sparse dataset; deterministic in `options.seed`.
SparseDataset GenerateTextDataset(const TextGeneratorOptions& options);

}  // namespace srda

#endif  // SRDA_DATASET_TEXT_GENERATOR_H_
