// Synthetic handwritten-digit dataset standing in for MNIST (Table II: 4000
// samples, 784 features, 10 classes).
//
// Digits are rendered procedurally from per-class stroke skeletons (line
// segments in a canonical frame) with random translation, rotation, scale
// and stroke-width jitter, plus pixel noise. The geometric jitter makes the
// class-conditional distributions strongly non-Gaussian — the regime where
// the paper's Table VII shows plain LDA behaving erratically on small
// training sets while the regularized variants stay stable.

#ifndef SRDA_DATASET_DIGIT_GENERATOR_H_
#define SRDA_DATASET_DIGIT_GENERATOR_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace srda {

struct DigitGeneratorOptions {
  int examples_per_class = 400;  // paper: ~200 train + ~200 test per digit
  int image_size = 28;           // features = image_size^2
  double max_shift_pixels = 3.5;
  double max_rotation_radians = 0.30;
  double scale_jitter = 0.22;
  double stroke_width = 1.6;   // in pixels of the canonical frame
  double noise_stddev = 0.10;
  // Final intensity scaling applied to all pixels (feature preprocessing;
  // places the paper's fixed alpha = 1 ridge in its effective range).
  double intensity_scale = 0.25;
  uint64_t seed = 3;
};

// Generates the dataset (classes are the digits 0-9); deterministic in
// `options.seed`.
DenseDataset GenerateDigitDataset(const DigitGeneratorOptions& options);

}  // namespace srda

#endif  // SRDA_DATASET_DIGIT_GENERATOR_H_
