#include "dataset/spoken_letter_generator.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "matrix/matrix.h"

namespace srda {

DenseDataset GenerateSpokenLetterDataset(
    const SpokenLetterGeneratorOptions& options) {
  SRDA_CHECK_GT(options.num_classes, 1);
  SRDA_CHECK_GT(options.examples_per_class, 1);
  SRDA_CHECK_GT(options.num_features, 0);
  SRDA_CHECK_GT(options.phoneme_rank, 0);
  SRDA_CHECK_GT(options.speaker_rank, 0);

  Rng rng(options.seed);
  const int n = options.num_features;
  const int c = options.num_classes;
  const int m = c * options.examples_per_class;

  // Shared loading matrices, scaled so feature variance is O(1).
  const double phoneme_scale = 1.0 / std::sqrt(options.phoneme_rank);
  Matrix phoneme_loadings(options.phoneme_rank, n);
  for (int i = 0; i < options.phoneme_rank; ++i) {
    for (int j = 0; j < n; ++j) {
      phoneme_loadings(i, j) = rng.NextGaussian() * phoneme_scale;
    }
  }
  const double speaker_scale = 1.0 / std::sqrt(options.speaker_rank);
  Matrix speaker_loadings(options.speaker_rank, n);
  for (int i = 0; i < options.speaker_rank; ++i) {
    for (int j = 0; j < n; ++j) {
      speaker_loadings(i, j) = rng.NextGaussian() * speaker_scale;
    }
    // Oblique coupling: leak a random phoneme-space component into this
    // nuisance direction so within-class noise is correlated across the
    // centroid span and its complement.
    for (int r = 0; r < options.phoneme_rank; ++r) {
      const double leak = rng.NextGaussian() *
                          options.speaker_phoneme_coupling /
                          std::sqrt(options.phoneme_rank);
      const double* phoneme_row = phoneme_loadings.RowPtr(r);
      for (int j = 0; j < n; ++j) {
        speaker_loadings(i, j) += leak * phoneme_row[j];
      }
    }
  }

  // Class means in the phoneme subspace.
  Matrix class_means(c, n);
  for (int k = 0; k < c; ++k) {
    std::vector<double> latent(static_cast<size_t>(options.phoneme_rank));
    for (double& value : latent) {
      value = rng.NextGaussian() * options.class_separation;
    }
    double* mean = class_means.RowPtr(k);
    for (int r = 0; r < options.phoneme_rank; ++r) {
      const double weight = latent[static_cast<size_t>(r)];
      const double* row = phoneme_loadings.RowPtr(r);
      for (int j = 0; j < n; ++j) mean[j] += weight * row[j];
    }
  }

  DenseDataset dataset;
  dataset.num_classes = c;
  dataset.features = Matrix(m, n);
  dataset.labels.reserve(static_cast<size_t>(m));

  int row = 0;
  for (int k = 0; k < c; ++k) {
    for (int example = 0; example < options.examples_per_class; ++example) {
      double* x = dataset.features.RowPtr(row);
      const double* mean = class_means.RowPtr(k);
      for (int j = 0; j < n; ++j) x[j] = mean[j];
      // In-subspace speaker variation: collides with the class means in the
      // phoneme space, so classes genuinely overlap there.
      for (int r = 0; r < options.phoneme_rank; ++r) {
        const double weight = rng.NextGaussian() * options.speaker_strength;
        const double* loadings = phoneme_loadings.RowPtr(r);
        for (int j = 0; j < n; ++j) x[j] += weight * loadings[j];
      }
      // Extra nuisance speaker subspace outside the phoneme space.
      for (int r = 0; r < options.speaker_rank; ++r) {
        const double weight = rng.NextGaussian() * options.speaker_strength;
        const double* loadings = speaker_loadings.RowPtr(r);
        for (int j = 0; j < n; ++j) x[j] += weight * loadings[j];
      }
      for (int j = 0; j < n; ++j) {
        x[j] += rng.NextGaussian() * options.noise_stddev;
        x[j] *= options.output_scale;
      }
      dataset.labels.push_back(k);
      ++row;
    }
  }
  return dataset;
}

}  // namespace srda
