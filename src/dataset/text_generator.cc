#include "dataset/text_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace srda {
namespace {

// Poisson draw via inversion for small means and a normal approximation for
// large ones (document lengths are ~130, well inside the normal regime).
int SamplePoisson(double mean, Rng* rng) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    int count = 0;
    double product = rng->NextDouble();
    while (product > limit) {
      ++count;
      product *= rng->NextDouble();
    }
    return count;
  }
  const double draw = rng->NextGaussian(mean, std::sqrt(mean));
  return std::max(1, static_cast<int>(std::lround(draw)));
}

}  // namespace

SparseDataset GenerateTextDataset(const TextGeneratorOptions& options) {
  SRDA_CHECK_GT(options.num_topics, 1);
  SRDA_CHECK_GT(options.docs_per_topic, 1);
  SRDA_CHECK_GT(options.vocabulary_size, options.topic_vocabulary_size);
  SRDA_CHECK_GT(options.topic_vocabulary_size, 0);
  SRDA_CHECK(options.topic_word_fraction > 0.0 &&
             options.topic_word_fraction < 1.0);
  SRDA_CHECK(options.contamination_fraction >= 0.0 &&
             options.contamination_fraction +
                     options.topic_word_fraction < 1.0);
  SRDA_CHECK(options.topic_overlap_stride > 0.0);
  SRDA_CHECK_GT(options.mean_document_length, 1.0);

  Rng rng(options.seed);
  const int c = options.num_topics;
  const int vocab = options.vocabulary_size;
  const int m = c * options.docs_per_topic;

  // A random permutation of the vocabulary assigns each topic its own block
  // of "boosted" terms; blocks may be smaller than the permutation allows if
  // c * topic_vocabulary_size > vocab, so wrap around (topics then share some
  // terms, which only makes classification harder, not easier).
  std::vector<int> permutation(static_cast<size_t>(vocab));
  std::iota(permutation.begin(), permutation.end(), 0);
  rng.Shuffle(&permutation);

  const ZipfTable background_zipf(vocab, options.zipf_exponent);
  const ZipfTable topic_zipf(options.topic_vocabulary_size,
                             options.zipf_exponent);

  SparseDataset dataset;
  dataset.num_classes = c;
  dataset.labels.reserve(static_cast<size_t>(m));
  SparseMatrixBuilder builder(m, vocab);

  const int stride = std::max(
      1, static_cast<int>(options.topic_overlap_stride *
                          options.topic_vocabulary_size));
  auto block_start_of = [&](int topic) { return (topic * stride) % vocab; };
  int row = 0;
  for (int topic = 0; topic < c; ++topic) {
    for (int doc = 0; doc < options.docs_per_topic; ++doc) {
      const int length = SamplePoisson(options.mean_document_length, &rng);
      std::map<int, int> counts;
      for (int token = 0; token < length; ++token) {
        int term = 0;
        const double u = rng.NextDouble();
        if (u < options.topic_word_fraction) {
          const int local = topic_zipf.Sample(&rng);
          term = permutation[static_cast<size_t>(
              (block_start_of(topic) + local) % vocab)];
        } else if (u < options.topic_word_fraction +
                           options.contamination_fraction) {
          // A token quoted from a random other topic.
          const int other = static_cast<int>(rng.NextUint64Bounded(
              static_cast<uint64_t>(c)));
          const int local = topic_zipf.Sample(&rng);
          term = permutation[static_cast<size_t>(
              (block_start_of(other) + local) % vocab)];
        } else {
          term = background_zipf.Sample(&rng);
        }
        ++counts[term];
      }
      // Term-frequency vector normalized to unit L2 norm.
      double norm_sq = 0.0;
      for (const auto& [term, count] : counts) {
        norm_sq += static_cast<double>(count) * count;
      }
      const double inv_norm = 1.0 / std::sqrt(norm_sq);
      for (const auto& [term, count] : counts) {
        builder.Add(row, term, count * inv_norm);
      }
      dataset.labels.push_back(topic);
      ++row;
    }
  }
  dataset.features = std::move(builder).Build();
  return dataset;
}

}  // namespace srda
