#include "dataset/split.h"

#include <algorithm>

#include "common/check.h"

namespace srda {
namespace {

// Shuffled per-class index lists.
std::vector<std::vector<int>> ShuffledClassIndices(
    const std::vector<int>& labels, int num_classes, Rng* rng) {
  std::vector<std::vector<int>> by_class(static_cast<size_t>(num_classes));
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    const int label = labels[static_cast<size_t>(i)];
    SRDA_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
    by_class[static_cast<size_t>(label)].push_back(i);
  }
  for (auto& indices : by_class) rng->Shuffle(&indices);
  return by_class;
}

TrainTestSplit SplitWithCounts(
    const std::vector<std::vector<int>>& by_class,
    const std::vector<int>& train_counts) {
  TrainTestSplit split;
  for (size_t k = 0; k < by_class.size(); ++k) {
    const auto& indices = by_class[k];
    const int take = train_counts[k];
    for (int i = 0; i < static_cast<int>(indices.size()); ++i) {
      if (i < take) {
        split.train.push_back(indices[static_cast<size_t>(i)]);
      } else {
        split.test.push_back(indices[static_cast<size_t>(i)]);
      }
    }
  }
  // Keep deterministic row order independent of class traversal order.
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace

TrainTestSplit StratifiedSplitByCount(const std::vector<int>& labels,
                                      int num_classes, int train_per_class,
                                      Rng* rng) {
  SRDA_CHECK(rng != nullptr);
  SRDA_CHECK_GT(train_per_class, 0);
  const auto by_class = ShuffledClassIndices(labels, num_classes, rng);
  std::vector<int> counts(static_cast<size_t>(num_classes), train_per_class);
  for (int k = 0; k < num_classes; ++k) {
    SRDA_CHECK_GT(static_cast<int>(by_class[static_cast<size_t>(k)].size()),
                  train_per_class)
        << "class " << k << " too small for " << train_per_class
        << " training samples plus a non-empty test set";
  }
  return SplitWithCounts(by_class, counts);
}

TrainTestSplit StratifiedSplitByFraction(const std::vector<int>& labels,
                                         int num_classes, double fraction,
                                         Rng* rng) {
  SRDA_CHECK(rng != nullptr);
  SRDA_CHECK(fraction > 0.0 && fraction < 1.0)
      << "fraction " << fraction << " outside (0, 1)";
  const auto by_class = ShuffledClassIndices(labels, num_classes, rng);
  std::vector<int> counts(static_cast<size_t>(num_classes), 0);
  for (int k = 0; k < num_classes; ++k) {
    const int size = static_cast<int>(by_class[static_cast<size_t>(k)].size());
    SRDA_CHECK_GE(size, 2) << "class " << k << " needs at least 2 samples";
    int take = static_cast<int>(fraction * size);
    take = std::max(take, 1);
    take = std::min(take, size - 1);
    counts[static_cast<size_t>(k)] = take;
  }
  return SplitWithCounts(by_class, counts);
}

}  // namespace srda
