#include "dataset/face_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace srda {
namespace {

// A smooth random field: Gaussian noise on a coarse grid, bilinearly
// upsampled to size x size. `coarse` controls the spatial frequency.
std::vector<double> SmoothField(int size, int coarse, double scale, Rng* rng) {
  std::vector<double> grid(static_cast<size_t>(coarse) * coarse);
  for (double& g : grid) g = rng->NextGaussian() * scale;
  std::vector<double> field(static_cast<size_t>(size) * size);
  const double step = static_cast<double>(coarse - 1) / (size - 1);
  for (int y = 0; y < size; ++y) {
    const double fy = y * step;
    const int y0 = std::min(static_cast<int>(fy), coarse - 2);
    const double wy = fy - y0;
    for (int x = 0; x < size; ++x) {
      const double fx = x * step;
      const int x0 = std::min(static_cast<int>(fx), coarse - 2);
      const double wx = fx - x0;
      const double v00 = grid[static_cast<size_t>(y0) * coarse + x0];
      const double v01 = grid[static_cast<size_t>(y0) * coarse + x0 + 1];
      const double v10 = grid[static_cast<size_t>(y0 + 1) * coarse + x0];
      const double v11 = grid[static_cast<size_t>(y0 + 1) * coarse + x0 + 1];
      field[static_cast<size_t>(y) * size + x] =
          (1 - wy) * ((1 - wx) * v00 + wx * v01) +
          wy * ((1 - wx) * v10 + wx * v11);
    }
  }
  return field;
}

}  // namespace

DenseDataset GenerateFaceDataset(const FaceGeneratorOptions& options) {
  SRDA_CHECK_GT(options.num_subjects, 1);
  SRDA_CHECK_GT(options.images_per_subject, 1);
  SRDA_CHECK_GE(options.image_size, 4);
  SRDA_CHECK_GT(options.num_lighting_bases, 0);
  SRDA_CHECK_GE(options.noise_stddev, 0.0);

  Rng rng(options.seed);
  const int size = options.image_size;
  const int n = size * size;
  const int m = options.num_subjects * options.images_per_subject;

  // Shared base face: a centered smooth bump resembling average intensity.
  std::vector<double> base(static_cast<size_t>(n));
  const double center = (size - 1) / 2.0;
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const double dx = (x - center) / (0.55 * size);
      const double dy = (y - center) / (0.62 * size);
      base[static_cast<size_t>(y) * size + x] =
          0.55 * std::exp(-(dx * dx + dy * dy));
    }
  }

  // Per-subject identity fields (finer structure than lighting).
  std::vector<std::vector<double>> identity;
  identity.reserve(static_cast<size_t>(options.num_subjects));
  for (int s = 0; s < options.num_subjects; ++s) {
    const int coarse = std::max(
        4, static_cast<int>(options.identity_detail * size));
    identity.push_back(
        SmoothField(size, std::min(coarse, size), options.identity_strength,
                    &rng));
  }

  // Shared smooth illumination/expression bases. Each basis mixes a smooth
  // random field with a random combination of the identity fields: in real
  // face data, lighting and expression changes are not orthogonal to the
  // identity directions, which is exactly what makes the centroid-span
  // shortcut of IDR/QR lossy while full-space discriminant methods can
  // whiten the variation away.
  std::vector<std::vector<double>> lighting;
  lighting.reserve(static_cast<size_t>(options.num_lighting_bases));
  for (int b = 0; b < options.num_lighting_bases; ++b) {
    // Out-of-span signature: half smooth (shared subspace), half fine
    // (a near-orthogonal direction unique to this basis) so the basis is
    // identifiable from full-space observations.
    std::vector<double> basis = SmoothField(size, 3 + b % 3, 0.35, &rng);
    const std::vector<double> fine = SmoothField(size, size, 0.6, &rng);
    for (int p = 0; p < n; ++p) {
      basis[static_cast<size_t>(p)] += fine[static_cast<size_t>(p)];
    }
    for (int mix = 0; mix < options.lighting_identity_mixes; ++mix) {
      const int subject =
          static_cast<int>(rng.NextUint64Bounded(
              static_cast<uint64_t>(options.num_subjects)));
      const double weight = rng.NextGaussian() / options.identity_strength *
                            options.lighting_identity_weight;
      const auto& field = identity[static_cast<size_t>(subject)];
      for (int p = 0; p < n; ++p) {
        basis[static_cast<size_t>(p)] += weight * field[static_cast<size_t>(p)];
      }
    }
    lighting.push_back(std::move(basis));
  }

  DenseDataset dataset;
  dataset.num_classes = options.num_subjects;
  dataset.features = Matrix(m, n);
  dataset.labels.reserve(static_cast<size_t>(m));

  int row = 0;
  for (int s = 0; s < options.num_subjects; ++s) {
    for (int image = 0; image < options.images_per_subject; ++image) {
      double* pixels = dataset.features.RowPtr(row);
      for (int p = 0; p < n; ++p) {
        pixels[p] = base[static_cast<size_t>(p)] +
                    identity[static_cast<size_t>(s)][static_cast<size_t>(p)];
      }
      for (const auto& basis : lighting) {
        const double coeff = rng.NextGaussian() * options.lighting_strength;
        for (int p = 0; p < n; ++p) {
          pixels[p] += coeff * basis[static_cast<size_t>(p)];
        }
      }
      for (int p = 0; p < n; ++p) {
        pixels[p] += rng.NextGaussian() * options.noise_stddev;
        pixels[p] = std::clamp(pixels[p], 0.0, 1.0);
      }
      dataset.labels.push_back(s);
      ++row;
    }
  }
  return dataset;
}

}  // namespace srda
