// Synthetic face-image dataset standing in for CMU PIE (Table II: 11560
// samples, 1024 features, 68 classes).
//
// Each subject has a smooth prototype face (a low-frequency random field on
// top of a shared base face); each image adds random combinations of shared
// smooth "illumination" basis fields plus pixel noise, then clamps to [0, 1]
// like the paper's 8-bit pixels scaled by 1/256. The regime that matters for
// the paper is preserved: n = image_size^2 far exceeds the per-class training
// count, so the within-class scatter is singular and plain LDA overfits,
// while strong identity structure keeps the classes separable.

#ifndef SRDA_DATASET_FACE_GENERATOR_H_
#define SRDA_DATASET_FACE_GENERATOR_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace srda {

struct FaceGeneratorOptions {
  int num_subjects = 68;        // classes
  int images_per_subject = 170;
  int image_size = 32;          // features = image_size^2
  int num_lighting_bases = 10;  // shared smooth variation fields
  double identity_strength = 0.30;
  double lighting_strength = 0.55;
  // Resolution of the per-subject identity fields as a fraction of the
  // image size: identity detail is much finer than the smooth lighting
  // fields, so discriminant directions must leave the low-frequency subspace
  // (what makes the centroid-span shortcut of IDR/QR lossy on real faces).
  double identity_detail = 0.5;
  // Each lighting basis mixes this many identity fields with the given
  // relative weight, coupling within-class variation to the identity
  // (centroid) subspace as in real face images.
  int lighting_identity_mixes = 4;
  double lighting_identity_weight = 0.30;
  double noise_stddev = 0.08;
  uint64_t seed = 1;
};

// Generates the dataset; deterministic in `options.seed`.
DenseDataset GenerateFaceDataset(const FaceGeneratorOptions& options);

}  // namespace srda

#endif  // SRDA_DATASET_FACE_GENERATOR_H_
