// Stratified train/test splits, matching the paper's experimental protocol:
// "p images per class are randomly selected for training and the rest are
// used for testing", averaged over random splits.

#ifndef SRDA_DATASET_SPLIT_H_
#define SRDA_DATASET_SPLIT_H_

#include <vector>

#include "common/rng.h"

namespace srda {

// Row indices of the training and test partitions.
struct TrainTestSplit {
  std::vector<int> train;
  std::vector<int> test;
};

// Picks `train_per_class` random samples from every class for training; all
// remaining samples become the test set. Every class must have more than
// `train_per_class` samples.
TrainTestSplit StratifiedSplitByCount(const std::vector<int>& labels,
                                      int num_classes, int train_per_class,
                                      Rng* rng);

// Picks floor(fraction * class_size) samples per class for training
// (at least 1). `fraction` in (0, 1).
TrainTestSplit StratifiedSplitByFraction(const std::vector<int>& labels,
                                         int num_classes, double fraction,
                                         Rng* rng);

}  // namespace srda

#endif  // SRDA_DATASET_SPLIT_H_
