// Strict numeric-field parsing for the dataset text readers.
//
// std::stoi/std::stod throw on malformed fields, which used to escape the
// readers as uncaught std::invalid_argument / std::out_of_range with no file
// context. These helpers parse with std::from_chars, require the whole token
// to be consumed, and report every malformed field through SRDA_CHECK with a
// "path:line" location, so a bad byte in a 10GB stream names its line. Both
// the one-shot readers in dataset_io and the streaming RowShardReader parse
// through this layer, guaranteeing the two paths accept the same grammar.

#ifndef SRDA_IO_LINE_PARSER_H_
#define SRDA_IO_LINE_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

namespace srda {

// Whole-token parses: false on empty, partial, malformed, or out-of-range
// tokens, never an exception.
bool ParseInt(std::string_view token, int* value);
bool ParseDouble(std::string_view token, double* value);

// One "<index>:<value>" feature entry, index already converted to 0-based.
struct LibSvmEntry {
  int column = 0;
  double value = 0.0;
};

// One parsed LibSVM data line "<label> <index>:<value> ...".
struct LibSvmLine {
  int label = 0;                   // raw label as written in the file
  std::vector<LibSvmEntry> entries;
};

// Parses one LibSVM data line (callers skip blank and '#' lines first).
// Aborts with a located "path:line_number: ..." message on any malformed
// field. `out->entries` is reused across calls to avoid reallocation.
void ParseLibSvmLine(const std::string& line, const std::string& path,
                     int line_number, LibSvmLine* out);

// Parses one "label,x1,...,xn" CSV line and returns the raw label; feature
// cells are appended to `values` (cleared first). Aborts with a located
// message on malformed cells.
int ParseCsvLine(const std::string& line, const std::string& path,
                 int line_number, std::vector<double>* values);

}  // namespace srda

#endif  // SRDA_IO_LINE_PARSER_H_
