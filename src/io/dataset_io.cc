#include "io/dataset_io.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace srda {
namespace {

std::ofstream OpenForWrite(const std::string& path) {
  std::ofstream out(path);
  SRDA_CHECK(out.good()) << "cannot open " << path << " for writing";
  out.precision(17);  // Round-trip doubles exactly.
  return out;
}

std::ifstream OpenForRead(const std::string& path) {
  std::ifstream in(path);
  SRDA_CHECK(in.good()) << "cannot open " << path << " for reading";
  return in;
}

}  // namespace

void WriteLibSvmFile(const SparseDataset& dataset, const std::string& path) {
  ValidateDataset(dataset);
  std::ofstream out = OpenForWrite(path);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    out << dataset.labels[static_cast<size_t>(i)] + 1;
    const int* cols = dataset.features.RowIndices(i);
    const double* values = dataset.features.RowValues(i);
    for (int e = 0; e < dataset.features.RowNonZeros(i); ++e) {
      out << ' ' << cols[e] + 1 << ':' << values[e];
    }
    out << '\n';
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

SparseDataset ReadLibSvmFile(const std::string& path, int num_features) {
  SRDA_CHECK_GE(num_features, 0);
  std::ifstream in = OpenForRead(path);

  struct Entry {
    int column;
    double value;
  };
  std::vector<std::vector<Entry>> rows;
  std::vector<int> raw_labels;
  int max_column = -1;

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    int raw_label = 0;
    SRDA_CHECK(static_cast<bool>(tokens >> raw_label))
        << path << ":" << line_number << ": missing label";
    raw_labels.push_back(raw_label);
    rows.emplace_back();
    std::string pair;
    while (tokens >> pair) {
      const size_t colon = pair.find(':');
      SRDA_CHECK_NE(colon, std::string::npos)
          << path << ":" << line_number << ": malformed pair '" << pair << "'";
      const int index = std::stoi(pair.substr(0, colon));
      const double value = std::stod(pair.substr(colon + 1));
      SRDA_CHECK_GE(index, 1)
          << path << ":" << line_number << ": indices are 1-based";
      rows.back().push_back({index - 1, value});
      max_column = std::max(max_column, index - 1);
    }
  }
  SRDA_CHECK(!rows.empty()) << path << ": no samples";

  // Compact raw labels to [0, c) in order of first appearance.
  std::map<int, int> label_map;
  SparseDataset dataset;
  for (int raw : raw_labels) {
    const auto [it, inserted] =
        label_map.insert({raw, static_cast<int>(label_map.size())});
    dataset.labels.push_back(it->second);
  }
  dataset.num_classes = static_cast<int>(label_map.size());

  const int width = num_features > 0 ? num_features : max_column + 1;
  SRDA_CHECK_GT(width, 0) << path << ": no features";
  SRDA_CHECK_GT(width, max_column)
      << path << ": feature index " << max_column + 1 << " exceeds width "
      << width;
  SparseMatrixBuilder builder(static_cast<int>(rows.size()), width);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const Entry& entry : rows[i]) {
      builder.Add(static_cast<int>(i), entry.column, entry.value);
    }
  }
  dataset.features = std::move(builder).Build();
  return dataset;
}

void WriteDenseCsvFile(const DenseDataset& dataset, const std::string& path) {
  ValidateDataset(dataset);
  std::ofstream out = OpenForWrite(path);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    out << dataset.labels[static_cast<size_t>(i)];
    const double* row = dataset.features.RowPtr(i);
    for (int j = 0; j < dataset.features.cols(); ++j) out << ',' << row[j];
    out << '\n';
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

DenseDataset ReadDenseCsvFile(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  int width = -1;
  std::string line;
  int line_number = 0;
  int max_label = -1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream cells(line);
    std::string cell;
    SRDA_CHECK(static_cast<bool>(std::getline(cells, cell, ',')))
        << path << ":" << line_number << ": empty line";
    const int label = std::stoi(cell);
    SRDA_CHECK_GE(label, 0) << path << ":" << line_number
                            << ": negative label";
    labels.push_back(label);
    max_label = std::max(max_label, label);
    rows.emplace_back();
    while (std::getline(cells, cell, ',')) {
      rows.back().push_back(std::stod(cell));
    }
    if (width < 0) {
      width = static_cast<int>(rows.back().size());
      SRDA_CHECK_GT(width, 0) << path << ": no feature columns";
    }
    SRDA_CHECK_EQ(static_cast<int>(rows.back().size()), width)
        << path << ":" << line_number << ": ragged row";
  }
  SRDA_CHECK(!rows.empty()) << path << ": no samples";

  DenseDataset dataset;
  dataset.num_classes = max_label + 1;
  dataset.labels = std::move(labels);
  dataset.features = Matrix(static_cast<int>(rows.size()), width);
  for (size_t i = 0; i < rows.size(); ++i) {
    double* dst = dataset.features.RowPtr(static_cast<int>(i));
    for (int j = 0; j < width; ++j) dst[j] = rows[i][static_cast<size_t>(j)];
  }
  return dataset;
}

void SaveClassifierModel(const ClassifierModel& model,
                         const std::string& path) {
  SRDA_CHECK_EQ(model.centroids.cols(), model.embedding.output_dim())
      << "centroid dimension must match the embedding output";
  std::ofstream out = OpenForWrite(path);
  out << "srda-classifier 1\n";
  out << model.embedding.input_dim() << ' ' << model.embedding.output_dim()
      << ' ' << model.centroids.rows() << '\n';
  const Matrix& projection = model.embedding.projection();
  for (int i = 0; i < projection.rows(); ++i) {
    const double* row = projection.RowPtr(i);
    for (int j = 0; j < projection.cols(); ++j) {
      out << row[j] << (j + 1 == projection.cols() ? '\n' : ' ');
    }
  }
  const Vector& bias = model.embedding.bias();
  for (int j = 0; j < bias.size(); ++j) {
    out << bias[j] << (j + 1 == bias.size() ? '\n' : ' ');
  }
  for (int i = 0; i < model.centroids.rows(); ++i) {
    const double* row = model.centroids.RowPtr(i);
    for (int j = 0; j < model.centroids.cols(); ++j) {
      out << row[j] << (j + 1 == model.centroids.cols() ? '\n' : ' ');
    }
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

ClassifierModel LoadClassifierModel(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string magic;
  int version = 0;
  SRDA_CHECK(static_cast<bool>(in >> magic >> version) &&
             magic == "srda-classifier" && version == 1)
      << path << ": not an srda-classifier v1 file";
  int input_dim = 0;
  int output_dim = 0;
  int num_classes = 0;
  SRDA_CHECK(static_cast<bool>(in >> input_dim >> output_dim >> num_classes))
      << path << ": missing dimensions";
  SRDA_CHECK(input_dim > 0 && output_dim > 0 && num_classes > 1)
      << path << ": invalid dimensions";
  Matrix projection(input_dim, output_dim);
  for (int i = 0; i < input_dim; ++i) {
    for (int j = 0; j < output_dim; ++j) {
      SRDA_CHECK(static_cast<bool>(in >> projection(i, j)))
          << path << ": truncated projection";
    }
  }
  Vector bias(output_dim);
  for (int j = 0; j < output_dim; ++j) {
    SRDA_CHECK(static_cast<bool>(in >> bias[j])) << path << ": truncated bias";
  }
  ClassifierModel model;
  model.centroids = Matrix(num_classes, output_dim);
  for (int i = 0; i < num_classes; ++i) {
    for (int j = 0; j < output_dim; ++j) {
      SRDA_CHECK(static_cast<bool>(in >> model.centroids(i, j)))
          << path << ": truncated centroids";
    }
  }
  model.embedding = LinearEmbedding(std::move(projection), std::move(bias));
  return model;
}

void SaveEmbedding(const LinearEmbedding& embedding, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  out << "srda-embedding 1\n";
  out << embedding.input_dim() << ' ' << embedding.output_dim() << '\n';
  const Matrix& projection = embedding.projection();
  for (int i = 0; i < projection.rows(); ++i) {
    const double* row = projection.RowPtr(i);
    for (int j = 0; j < projection.cols(); ++j) {
      out << row[j] << (j + 1 == projection.cols() ? '\n' : ' ');
    }
  }
  const Vector& bias = embedding.bias();
  for (int j = 0; j < bias.size(); ++j) {
    out << bias[j] << (j + 1 == bias.size() ? '\n' : ' ');
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

LinearEmbedding LoadEmbedding(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string magic;
  int version = 0;
  SRDA_CHECK(static_cast<bool>(in >> magic >> version) &&
             magic == "srda-embedding" && version == 1)
      << path << ": not an srda-embedding v1 file";
  int input_dim = 0;
  int output_dim = 0;
  SRDA_CHECK(static_cast<bool>(in >> input_dim >> output_dim))
      << path << ": missing dimensions";
  SRDA_CHECK(input_dim > 0 && output_dim > 0)
      << path << ": invalid dimensions " << input_dim << " x " << output_dim;
  Matrix projection(input_dim, output_dim);
  for (int i = 0; i < input_dim; ++i) {
    for (int j = 0; j < output_dim; ++j) {
      SRDA_CHECK(static_cast<bool>(in >> projection(i, j)))
          << path << ": truncated projection";
    }
  }
  Vector bias(output_dim);
  for (int j = 0; j < output_dim; ++j) {
    SRDA_CHECK(static_cast<bool>(in >> bias[j])) << path << ": truncated bias";
  }
  return LinearEmbedding(std::move(projection), std::move(bias));
}

}  // namespace srda
