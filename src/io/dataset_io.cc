#include "io/dataset_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "common/check.h"
#include "io/line_parser.h"

namespace srda {
namespace {

std::ofstream OpenForWrite(const std::string& path) {
  std::ofstream out(path);
  SRDA_CHECK(out.good()) << "cannot open " << path << " for writing";
  out.precision(17);  // Round-trip doubles exactly.
  return out;
}

std::ifstream OpenForRead(const std::string& path) {
  std::ifstream in(path);
  SRDA_CHECK(in.good()) << "cannot open " << path << " for reading";
  return in;
}

// The label each writer emits: the preserved raw label when the dataset
// carries a raw map, otherwise the compact id (shifted to 1-based for
// LibSVM by the caller).
int RawLabelFor(const std::vector<int>& raw_labels, int label) {
  if (raw_labels.empty()) return label;
  return raw_labels[static_cast<size_t>(label)];
}

void WriteBinaryBlock(std::ofstream* out, const void* data, size_t bytes) {
  out->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
}

void ReadBinaryBlock(std::ifstream* in, void* data, size_t bytes,
                     const std::string& path) {
  in->read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  SRDA_CHECK(in->good()) << path << ": truncated binary dataset";
}

}  // namespace

std::vector<int> CompactLabelsSorted(std::vector<int>* raw_per_row) {
  std::map<int, int> label_map;
  for (int raw : *raw_per_row) label_map.emplace(raw, 0);
  std::vector<int> raw_labels;
  raw_labels.reserve(label_map.size());
  for (auto& [raw, id] : label_map) {
    id = static_cast<int>(raw_labels.size());
    raw_labels.push_back(raw);
  }
  for (int& label : *raw_per_row) label = label_map[label];
  return raw_labels;
}

void WriteLibSvmFile(const SparseDataset& dataset, const std::string& path) {
  ValidateDataset(dataset);
  std::ofstream out = OpenForWrite(path);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    const int label = dataset.labels[static_cast<size_t>(i)];
    if (dataset.raw_labels.empty()) {
      out << label + 1;  // LibSVM convention: 1-based class ids.
    } else {
      out << RawLabelFor(dataset.raw_labels, label);
    }
    const int* cols = dataset.features.RowIndices(i);
    const double* values = dataset.features.RowValues(i);
    for (int e = 0; e < dataset.features.RowNonZeros(i); ++e) {
      out << ' ' << cols[e] + 1 << ':' << values[e];
    }
    out << '\n';
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

SparseDataset ReadLibSvmFile(const std::string& path, int num_features) {
  SRDA_CHECK_GE(num_features, 0);
  std::ifstream in = OpenForRead(path);

  struct Entry {
    int column;
    double value;
  };
  std::vector<std::vector<Entry>> rows;
  std::vector<int> raw_labels;
  int max_column = -1;

  std::string line;
  int line_number = 0;
  LibSvmLine parsed;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    ParseLibSvmLine(line, path, line_number, &parsed);
    raw_labels.push_back(parsed.label);
    rows.emplace_back();
    for (const LibSvmEntry& entry : parsed.entries) {
      rows.back().push_back({entry.column, entry.value});
      max_column = std::max(max_column, entry.column);
    }
  }
  SRDA_CHECK(!rows.empty()) << path << ": no samples";

  // Compact raw labels to [0, c) by sorted raw value, so a write -> read
  // round trip preserves class identities regardless of row order.
  SparseDataset dataset;
  dataset.raw_labels = CompactLabelsSorted(&raw_labels);
  dataset.labels = std::move(raw_labels);
  dataset.num_classes = static_cast<int>(dataset.raw_labels.size());

  const int width = num_features > 0 ? num_features : max_column + 1;
  SRDA_CHECK_GT(width, 0) << path << ": no features";
  SRDA_CHECK_GT(width, max_column)
      << path << ": feature index " << max_column + 1 << " exceeds width "
      << width;
  SparseMatrixBuilder builder(static_cast<int>(rows.size()), width);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const Entry& entry : rows[i]) {
      builder.Add(static_cast<int>(i), entry.column, entry.value);
    }
  }
  dataset.features = std::move(builder).Build();
  return dataset;
}

void WriteDenseCsvFile(const DenseDataset& dataset, const std::string& path) {
  ValidateDataset(dataset);
  std::ofstream out = OpenForWrite(path);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    out << RawLabelFor(dataset.raw_labels,
                       dataset.labels[static_cast<size_t>(i)]);
    const double* row = dataset.features.RowPtr(i);
    for (int j = 0; j < dataset.features.cols(); ++j) out << ',' << row[j];
    out << '\n';
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

DenseDataset ReadDenseCsvFile(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  int width = -1;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    rows.emplace_back();
    const int label = ParseCsvLine(line, path, line_number, &rows.back());
    SRDA_CHECK_GE(label, 0) << path << ":" << line_number
                            << ": negative label";
    labels.push_back(label);
    if (width < 0) {
      width = static_cast<int>(rows.back().size());
      SRDA_CHECK_GT(width, 0) << path << ": no feature columns";
    }
    SRDA_CHECK_EQ(static_cast<int>(rows.back().size()), width)
        << path << ":" << line_number << ": ragged row";
  }
  SRDA_CHECK(!rows.empty()) << path << ": no samples";

  DenseDataset dataset;
  // Compact by sorted raw value (matching the LibSVM reader) so gapped label
  // ids like {0, 2} cannot fabricate an empty class.
  dataset.raw_labels = CompactLabelsSorted(&labels);
  dataset.num_classes = static_cast<int>(dataset.raw_labels.size());
  dataset.labels = std::move(labels);
  dataset.features = Matrix(static_cast<int>(rows.size()), width);
  for (size_t i = 0; i < rows.size(); ++i) {
    double* dst = dataset.features.RowPtr(static_cast<int>(i));
    for (int j = 0; j < width; ++j) dst[j] = rows[i][static_cast<size_t>(j)];
  }
  return dataset;
}

void WriteDenseBinaryFile(const DenseDataset& dataset,
                          const std::string& path) {
  ValidateDataset(dataset);
  std::ofstream out(path, std::ios::binary);
  SRDA_CHECK(out.good()) << "cannot open " << path << " for writing";
  const char magic[4] = {'S', 'R', 'D', 'B'};
  const int32_t version = 1;
  const int32_t rows = dataset.features.rows();
  const int32_t cols = dataset.features.cols();
  const int32_t num_classes = dataset.num_classes;
  WriteBinaryBlock(&out, magic, sizeof(magic));
  WriteBinaryBlock(&out, &version, sizeof(version));
  WriteBinaryBlock(&out, &rows, sizeof(rows));
  WriteBinaryBlock(&out, &cols, sizeof(cols));
  WriteBinaryBlock(&out, &num_classes, sizeof(num_classes));
  std::vector<int32_t> raw(static_cast<size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    raw[static_cast<size_t>(k)] = RawLabelFor(dataset.raw_labels, k);
  }
  WriteBinaryBlock(&out, raw.data(), raw.size() * sizeof(int32_t));
  std::vector<int32_t> labels(dataset.labels.begin(), dataset.labels.end());
  WriteBinaryBlock(&out, labels.data(), labels.size() * sizeof(int32_t));
  for (int i = 0; i < rows; ++i) {
    WriteBinaryBlock(&out, dataset.features.RowPtr(i),
                     static_cast<size_t>(cols) * sizeof(double));
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

DenseDataset ReadDenseBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SRDA_CHECK(in.good()) << "cannot open " << path << " for reading";
  DenseBinaryHeader header = ReadDenseBinaryHeader(&in, path);
  DenseDataset dataset;
  dataset.num_classes = header.num_classes;
  dataset.raw_labels = std::move(header.raw_labels);
  dataset.labels = std::move(header.labels);
  dataset.features = Matrix(header.rows, header.cols);
  for (int i = 0; i < header.rows; ++i) {
    ReadBinaryBlock(&in, dataset.features.RowPtr(i),
                    static_cast<size_t>(header.cols) * sizeof(double), path);
  }
  ValidateDataset(dataset);
  return dataset;
}

DenseBinaryHeader ReadDenseBinaryHeader(std::ifstream* in,
                                        const std::string& path) {
  char magic[4] = {0, 0, 0, 0};
  int32_t version = 0;
  int32_t rows = 0;
  int32_t cols = 0;
  int32_t num_classes = 0;
  ReadBinaryBlock(in, magic, sizeof(magic), path);
  SRDA_CHECK(std::memcmp(magic, "SRDB", 4) == 0)
      << path << ": not an srda dense-binary file";
  ReadBinaryBlock(in, &version, sizeof(version), path);
  SRDA_CHECK_EQ(version, 1) << path << ": unsupported binary version";
  ReadBinaryBlock(in, &rows, sizeof(rows), path);
  ReadBinaryBlock(in, &cols, sizeof(cols), path);
  ReadBinaryBlock(in, &num_classes, sizeof(num_classes), path);
  SRDA_CHECK(rows > 0 && cols > 0 && num_classes > 0)
      << path << ": invalid binary dimensions";
  DenseBinaryHeader header;
  header.rows = rows;
  header.cols = cols;
  header.num_classes = num_classes;
  std::vector<int32_t> raw(static_cast<size_t>(num_classes));
  ReadBinaryBlock(in, raw.data(), raw.size() * sizeof(int32_t), path);
  header.raw_labels.assign(raw.begin(), raw.end());
  std::vector<int32_t> labels(static_cast<size_t>(rows));
  ReadBinaryBlock(in, labels.data(), labels.size() * sizeof(int32_t), path);
  header.labels.assign(labels.begin(), labels.end());
  header.data_offset = static_cast<int64_t>(in->tellg());
  return header;
}

void SaveEmbedding(const LinearEmbedding& embedding, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  out << "srda-embedding 1\n";
  out << embedding.input_dim() << ' ' << embedding.output_dim() << '\n';
  const Matrix& projection = embedding.projection();
  for (int i = 0; i < projection.rows(); ++i) {
    const double* row = projection.RowPtr(i);
    for (int j = 0; j < projection.cols(); ++j) {
      out << row[j] << (j + 1 == projection.cols() ? '\n' : ' ');
    }
  }
  const Vector& bias = embedding.bias();
  for (int j = 0; j < bias.size(); ++j) {
    out << bias[j] << (j + 1 == bias.size() ? '\n' : ' ');
  }
  SRDA_CHECK(out.good()) << "write failure on " << path;
}

LinearEmbedding LoadEmbedding(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string magic;
  int version = 0;
  SRDA_CHECK(static_cast<bool>(in >> magic >> version) &&
             magic == "srda-embedding" && version == 1)
      << path << ": not an srda-embedding v1 file";
  int input_dim = 0;
  int output_dim = 0;
  SRDA_CHECK(static_cast<bool>(in >> input_dim >> output_dim))
      << path << ": missing dimensions";
  SRDA_CHECK(input_dim > 0 && output_dim > 0)
      << path << ": invalid dimensions " << input_dim << " x " << output_dim;
  Matrix projection(input_dim, output_dim);
  for (int i = 0; i < input_dim; ++i) {
    for (int j = 0; j < output_dim; ++j) {
      SRDA_CHECK(static_cast<bool>(in >> projection(i, j)))
          << path << ": truncated projection";
    }
  }
  Vector bias(output_dim);
  for (int j = 0; j < output_dim; ++j) {
    SRDA_CHECK(static_cast<bool>(in >> bias[j])) << path << ": truncated bias";
  }
  return LinearEmbedding(std::move(projection), std::move(bias));
}

}  // namespace srda
