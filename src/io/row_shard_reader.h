// Chunked row streaming from dataset files: the out-of-core entry point.
//
// RowShardReader is a RowShardSource over a LibSVM, CSV, or SRDB-binary
// dataset file. Construction makes one validating metadata pass (labels,
// dimensions, class map — O(m) memory for labels, never the features); after
// that each Next() materializes only `shard_rows` rows, so peak resident
// feature memory is bounded by the shard size no matter how large the file
// is. Iterative consumers (sharded LSQR) Reset() and re-stream the file
// once per pass — trading re-parse time for memory, which is the out-of-core
// contract.
//
// Text formats re-tokenize on every pass through the strict line_parser
// grammar (so a malformed byte fails with a located path:line message on the
// scan, before any numerics run). The binary format seeks straight to the
// shard's byte range. Labels compact exactly like the one-shot readers in
// dataset_io (sorted raw value), so an out-of-core fit sees the same class
// ids as an in-RAM ReadLibSvmFile/ReadDenseCsvFile fit.
//
// Observability: every Next() emits an `io.shard_read` span (rows + bytes
// args) and advances the global `io.bytes_streamed` counter. With the
// event log enabled (obs/event_log.h), each streaming pass brackets itself
// with `io.shard_pass_start` / `io.shard_pass_end` events, and a failed
// binary mapping logs `io.mmap_fallback` with the reason before the reader
// silently drops to the seek+read path.

#ifndef SRDA_IO_ROW_SHARD_READER_H_
#define SRDA_IO_ROW_SHARD_READER_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "linalg/sharded_operator.h"
#include "matrix/matrix.h"
#include "sparse/sparse_matrix.h"

namespace srda {

enum class RowStreamFormat {
  kLibSvm,  // sparse shards
  kCsv,     // dense shards
  kBinary,  // dense shards, seekable (dataset_io's SRDB container)
};

struct RowShardReaderOptions {
  // Rows per shard; the last shard may be smaller.
  int shard_rows = 4096;
  // LibSVM only: fixes the feature-space width (0 infers it from the
  // largest index present, as ReadLibSvmFile does).
  int num_features = 0;
  // Binary only: map the file read-only and memcpy shard rows out of the
  // mapping instead of a seekg+read syscall pair per shard — iterative
  // consumers re-stream the file once per LSQR pass, so the kernel's page
  // cache then serves every pass after the first without a copy through a
  // file descriptor. Shards are bitwise identical either way. Falls back
  // to the read path automatically when mapping is unavailable (non-unix
  // build) or fails.
  bool use_mmap = true;
};

class RowShardReader final : public RowShardSource {
 public:
  RowShardReader(const std::string& path, RowStreamFormat format,
                 const RowShardReaderOptions& options = {});
  ~RowShardReader() override;

  // RowShardSource:
  int rows() const override { return rows_; }
  int cols() const override { return cols_; }
  bool sparse() const override { return format_ == RowStreamFormat::kLibSvm; }
  void Reset() override;
  bool Next(RowShard* shard) override;

  // Dataset metadata from the scan pass.
  int num_classes() const { return num_classes_; }
  // Compacted labels for all rows (label i belongs to global row i).
  const std::vector<int>& labels() const { return labels_; }
  // Compact id -> raw file label, strictly ascending.
  const std::vector<int>& raw_labels() const { return raw_labels_; }

  // Total bytes this reader has streamed (all passes) and the largest
  // in-memory footprint of any single shard (features + index structure).
  int64_t bytes_streamed() const { return bytes_streamed_; }
  int64_t peak_shard_bytes() const { return peak_shard_bytes_; }

  // True when binary shards are served from an mmap of the file (see
  // RowShardReaderOptions::use_mmap); false on text formats, with
  // use_mmap == false, or after a mapping failure fell back to reads.
  bool mmap_active() const { return mmap_data_ != nullptr; }

 private:
  void ScanText();
  void ReadBinaryMetadata();
  bool NextText(RowShard* shard);
  bool NextBinary(RowShard* shard);
  // Positions the text stream at the first data line.
  void RewindText();
  // Tries to map the binary file read-only; leaves mmap_data_ null (read
  // fallback) on any failure.
  void TryMapBinary();

  std::string path_;
  RowStreamFormat format_;
  RowShardReaderOptions options_;
  std::ifstream in_;

  int rows_ = 0;
  int cols_ = 0;
  int num_classes_ = 0;
  std::vector<int> labels_;
  std::vector<int> raw_labels_;
  int64_t data_offset_ = 0;  // binary: first feature byte

  // Streaming cursor.
  int next_row_ = 0;
  int line_number_ = 0;
  int64_t pass_index_ = -1;  // increments on each Reset()
  bool pass_open_ = false;   // guards the one io.shard_pass_end per pass
  Matrix dense_buffer_;
  SparseMatrix sparse_buffer_;

  int64_t bytes_streamed_ = 0;
  int64_t peak_shard_bytes_ = 0;

  // Binary mmap state (null when inactive; owned, unmapped in the dtor).
  const char* mmap_data_ = nullptr;
  std::uint64_t mmap_size_ = 0;
};

}  // namespace srda

#endif  // SRDA_IO_ROW_SHARD_READER_H_
