#include "io/line_parser.h"

#include <charconv>
#include <system_error>

#include "common/check.h"

namespace srda {
namespace {

// Tokens may carry a trailing '\r' from CRLF files; istream-based parsing
// used to swallow it as whitespace, so the strict parsers strip it too.
std::string_view StripCarriageReturn(std::string_view token) {
  if (!token.empty() && token.back() == '\r') token.remove_suffix(1);
  return token;
}

}  // namespace

bool ParseInt(std::string_view token, int* value) {
  token = StripCarriageReturn(token);
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const std::from_chars_result result = std::from_chars(first, last, *value);
  return result.ec == std::errc() && result.ptr == last;
}

bool ParseDouble(std::string_view token, double* value) {
  token = StripCarriageReturn(token);
  if (token.empty()) return false;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const std::from_chars_result result = std::from_chars(first, last, *value);
  return result.ec == std::errc() && result.ptr == last;
}

void ParseLibSvmLine(const std::string& line, const std::string& path,
                     int line_number, LibSvmLine* out) {
  out->entries.clear();
  const std::string_view view(line);
  size_t pos = 0;
  bool saw_label = false;
  while (pos < view.size()) {
    while (pos < view.size() &&
           (view[pos] == ' ' || view[pos] == '\t' || view[pos] == '\r')) {
      ++pos;
    }
    if (pos >= view.size()) break;
    size_t end = pos;
    while (end < view.size() && view[end] != ' ' && view[end] != '\t' &&
           view[end] != '\r') {
      ++end;
    }
    const std::string_view token = view.substr(pos, end - pos);
    pos = end;
    if (!saw_label) {
      SRDA_CHECK(ParseInt(token, &out->label))
          << path << ":" << line_number << ": malformed label '" << token
          << "'";
      saw_label = true;
      continue;
    }
    const size_t colon = token.find(':');
    SRDA_CHECK_NE(colon, std::string_view::npos)
        << path << ":" << line_number << ": malformed pair '" << token << "'";
    LibSvmEntry entry;
    SRDA_CHECK(ParseInt(token.substr(0, colon), &entry.column))
        << path << ":" << line_number << ": malformed feature index in pair '"
        << token << "'";
    SRDA_CHECK(ParseDouble(token.substr(colon + 1), &entry.value))
        << path << ":" << line_number << ": malformed feature value in pair '"
        << token << "'";
    SRDA_CHECK_GE(entry.column, 1)
        << path << ":" << line_number << ": indices are 1-based";
    --entry.column;
    out->entries.push_back(entry);
  }
  SRDA_CHECK(saw_label) << path << ":" << line_number << ": missing label";
}

int ParseCsvLine(const std::string& line, const std::string& path,
                 int line_number, std::vector<double>* values) {
  values->clear();
  const std::string_view view(line);
  int label = 0;
  size_t pos = 0;
  bool saw_label = false;
  while (true) {
    const size_t comma = view.find(',', pos);
    const std::string_view cell =
        view.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    if (!saw_label) {
      SRDA_CHECK(ParseInt(cell, &label))
          << path << ":" << line_number << ": malformed label '" << cell
          << "'";
      saw_label = true;
    } else {
      double value = 0.0;
      SRDA_CHECK(ParseDouble(cell, &value))
          << path << ":" << line_number << ": malformed cell '" << cell << "'";
      values->push_back(value);
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return label;
}

}  // namespace srda
