#include "io/row_shard_reader.h"

#include <algorithm>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SRDA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SRDA_HAVE_MMAP 0
#endif

#include "common/check.h"
#include "io/dataset_io.h"
#include "io/line_parser.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace srda {
namespace {

Counter* BytesStreamed() {
  static Counter* counter =
      MetricsRegistry::Global().counter("io.bytes_streamed");
  return counter;
}

}  // namespace

RowShardReader::RowShardReader(const std::string& path,
                               RowStreamFormat format,
                               const RowShardReaderOptions& options)
    : path_(path), format_(format), options_(options) {
  SRDA_CHECK_GT(options.shard_rows, 0) << "shard_rows must be positive";
  SRDA_CHECK_GE(options.num_features, 0);
  in_.open(path, format == RowStreamFormat::kBinary
                     ? std::ios::in | std::ios::binary
                     : std::ios::in);
  SRDA_CHECK(in_.good()) << "cannot open " << path << " for reading";
  if (format == RowStreamFormat::kBinary) {
    ReadBinaryMetadata();
    if (options.use_mmap) TryMapBinary();
  } else {
    ScanText();
  }
  SRDA_CHECK_GT(rows_, 0) << path << ": no samples";
  SRDA_CHECK_GT(cols_, 0) << path << ": no features";
  Reset();
}

RowShardReader::~RowShardReader() {
#if SRDA_HAVE_MMAP
  if (mmap_data_ != nullptr) {
    munmap(const_cast<char*>(mmap_data_), static_cast<size_t>(mmap_size_));
  }
#endif
}

void RowShardReader::TryMapBinary() {
  // Each early return below lands on the seek+read path; the event log
  // records which gate failed (the counters cannot tell these apart).
  const auto fallback = [this](const char* reason) {
    obs::Event("io.mmap_fallback").Str("path", path_).Str("reason", reason);
  };
#if SRDA_HAVE_MMAP
  const int64_t needed =
      data_offset_ + static_cast<int64_t>(rows_) * cols_ * 8;
  const int fd = open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    fallback("open");
    return;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || static_cast<int64_t>(st.st_size) < needed) {
    close(fd);
    fallback("stat_or_short_file");
    return;
  }
  void* mapped =
      mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
           fd, 0);
  close(fd);  // The mapping outlives the descriptor.
  if (mapped == MAP_FAILED) {
    fallback("mmap");
    return;
  }
  mmap_data_ = static_cast<const char*>(mapped);
  mmap_size_ = static_cast<std::uint64_t>(st.st_size);
#else
  fallback("no_mmap_support");
#endif
}

void RowShardReader::ScanText() {
  std::string line;
  std::vector<int> raw_per_row;
  LibSvmLine parsed;
  std::vector<double> cells;
  int max_column = -1;
  int line_number = 0;
  while (std::getline(in_, line)) {
    ++line_number;
    bytes_streamed_ += static_cast<int64_t>(line.size()) + 1;
    if (line.empty() || line[0] == '#') continue;
    if (format_ == RowStreamFormat::kLibSvm) {
      ParseLibSvmLine(line, path_, line_number, &parsed);
      raw_per_row.push_back(parsed.label);
      for (const LibSvmEntry& entry : parsed.entries) {
        max_column = std::max(max_column, entry.column);
      }
    } else {
      const int label = ParseCsvLine(line, path_, line_number, &cells);
      SRDA_CHECK_GE(label, 0)
          << path_ << ":" << line_number << ": negative label";
      raw_per_row.push_back(label);
      if (cols_ == 0) {
        cols_ = static_cast<int>(cells.size());
        SRDA_CHECK_GT(cols_, 0) << path_ << ": no feature columns";
      }
      SRDA_CHECK_EQ(static_cast<int>(cells.size()), cols_)
          << path_ << ":" << line_number << ": ragged row";
    }
    ++rows_;
  }
  BytesStreamed()->Add(static_cast<double>(bytes_streamed_));
  if (format_ == RowStreamFormat::kLibSvm) {
    cols_ = options_.num_features > 0 ? options_.num_features : max_column + 1;
    SRDA_CHECK_GT(cols_, max_column)
        << path_ << ": feature index " << max_column + 1 << " exceeds width "
        << cols_;
  }
  raw_labels_ = CompactLabelsSorted(&raw_per_row);
  labels_ = std::move(raw_per_row);
  num_classes_ = static_cast<int>(raw_labels_.size());
}

void RowShardReader::ReadBinaryMetadata() {
  DenseBinaryHeader header = ReadDenseBinaryHeader(&in_, path_);
  rows_ = header.rows;
  cols_ = header.cols;
  num_classes_ = header.num_classes;
  raw_labels_ = std::move(header.raw_labels);
  labels_ = std::move(header.labels);
  data_offset_ = header.data_offset;
  for (int label : labels_) {
    SRDA_CHECK(label >= 0 && label < num_classes_)
        << path_ << ": label " << label << " outside [0, " << num_classes_
        << ")";
  }
  const int64_t header_bytes = data_offset_;
  bytes_streamed_ += header_bytes;
  BytesStreamed()->Add(static_cast<double>(header_bytes));
}

void RowShardReader::RewindText() {
  in_.clear();
  in_.seekg(0);
  SRDA_CHECK(in_.good()) << path_ << ": rewind failed";
  line_number_ = 0;
}

void RowShardReader::Reset() {
  next_row_ = 0;
  if (format_ != RowStreamFormat::kBinary) RewindText();
  ++pass_index_;
  pass_open_ = true;
  obs::Event("io.shard_pass_start")
      .Str("path", path_)
      .Num("pass", static_cast<double>(pass_index_))
      .Num("rows", rows_)
      .Num("cols", cols_);
}

bool RowShardReader::Next(RowShard* shard) {
  if (next_row_ >= rows_) {
    if (pass_open_) {
      pass_open_ = false;
      obs::Event("io.shard_pass_end")
          .Str("path", path_)
          .Num("pass", static_cast<double>(pass_index_))
          .Num("bytes_streamed", static_cast<double>(bytes_streamed_));
    }
    return false;
  }
  return format_ == RowStreamFormat::kBinary ? NextBinary(shard)
                                             : NextText(shard);
}

bool RowShardReader::NextText(RowShard* shard) {
  const int count = std::min(options_.shard_rows, rows_ - next_row_);
  TraceSpan span("io.shard_read");
  int64_t bytes = 0;
  std::string line;
  LibSvmLine parsed;
  std::vector<double> cells;
  SparseMatrixBuilder builder(format_ == RowStreamFormat::kLibSvm ? count : 0,
                              format_ == RowStreamFormat::kLibSvm ? cols_ : 0);
  if (format_ == RowStreamFormat::kCsv) dense_buffer_ = Matrix(count, cols_);
  int filled = 0;
  while (filled < count) {
    SRDA_CHECK(static_cast<bool>(std::getline(in_, line)))
        << path_ << ": file shrank between passes";
    ++line_number_;
    bytes += static_cast<int64_t>(line.size()) + 1;
    if (line.empty() || line[0] == '#') continue;
    if (format_ == RowStreamFormat::kLibSvm) {
      ParseLibSvmLine(line, path_, line_number_, &parsed);
      for (const LibSvmEntry& entry : parsed.entries) {
        SRDA_CHECK_LT(entry.column, cols_)
            << path_ << ":" << line_number_ << ": feature index "
            << entry.column + 1 << " exceeds width " << cols_;
        builder.Add(filled, entry.column, entry.value);
      }
    } else {
      ParseCsvLine(line, path_, line_number_, &cells);
      SRDA_CHECK_EQ(static_cast<int>(cells.size()), cols_)
          << path_ << ":" << line_number_ << ": ragged row";
      double* dst = dense_buffer_.RowPtr(filled);
      for (int j = 0; j < cols_; ++j) dst[j] = cells[static_cast<size_t>(j)];
    }
    ++filled;
  }
  shard->first_row = next_row_;
  if (format_ == RowStreamFormat::kLibSvm) {
    sparse_buffer_ = std::move(builder).Build();
    shard->sparse = &sparse_buffer_;
    shard->dense = nullptr;
    peak_shard_bytes_ = std::max(
        peak_shard_bytes_,
        static_cast<int64_t>(sparse_buffer_.NumNonZeros()) * 12 +
            static_cast<int64_t>(count + 1) * 8);
  } else {
    shard->dense = &dense_buffer_;
    shard->sparse = nullptr;
    peak_shard_bytes_ =
        std::max(peak_shard_bytes_, static_cast<int64_t>(count) * cols_ * 8);
  }
  next_row_ += count;
  bytes_streamed_ += bytes;
  BytesStreamed()->Add(static_cast<double>(bytes));
  if (span.recording()) {
    span.AddArg("rows", static_cast<double>(count));
    span.AddArg("bytes", static_cast<double>(bytes));
  }
  return true;
}

bool RowShardReader::NextBinary(RowShard* shard) {
  const int count = std::min(options_.shard_rows, rows_ - next_row_);
  TraceSpan span("io.shard_read");
  const int64_t row_bytes = static_cast<int64_t>(cols_) * 8;
  dense_buffer_ = Matrix(count, cols_);
  if (mmap_data_ != nullptr) {
    // Copy straight out of the mapping: same bytes the read path would
    // deliver, no seek/read syscalls, and repeat passes hit the page cache.
    std::memcpy(dense_buffer_.RowPtr(0),
                mmap_data_ + data_offset_ +
                    static_cast<int64_t>(next_row_) * row_bytes,
                static_cast<size_t>(count * row_bytes));
  } else {
    in_.clear();
    in_.seekg(data_offset_ + static_cast<int64_t>(next_row_) * row_bytes);
    SRDA_CHECK(in_.good()) << path_ << ": seek failed";
    in_.read(reinterpret_cast<char*>(dense_buffer_.RowPtr(0)),
             static_cast<std::streamsize>(count * row_bytes));
    SRDA_CHECK(in_.good()) << path_ << ": truncated binary dataset";
  }
  shard->first_row = next_row_;
  shard->dense = &dense_buffer_;
  shard->sparse = nullptr;
  const int64_t bytes = count * row_bytes;
  peak_shard_bytes_ = std::max(peak_shard_bytes_, bytes);
  next_row_ += count;
  bytes_streamed_ += bytes;
  BytesStreamed()->Add(static_cast<double>(bytes));
  if (span.recording()) {
    span.AddArg("rows", static_cast<double>(count));
    span.AddArg("bytes", static_cast<double>(bytes));
  }
  return true;
}

}  // namespace srda
