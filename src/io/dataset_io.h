// Dataset and model file I/O.
//
// Lets downstream users run the library on real data: sparse datasets in
// the LibSVM text format (the de-facto standard for sparse classification
// data, including the real 20Newsgroups distribution), dense datasets as
// label-first CSV, and trained embeddings as a plain-text model file.

#ifndef SRDA_IO_DATASET_IO_H_
#define SRDA_IO_DATASET_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/embedding.h"
#include "dataset/dataset.h"

namespace srda {

// Sorted label compaction, shared by every reader (one-shot and streaming):
// rewrites `raw_per_row` in place to compact ids in [0, c) assigned by
// ascending raw value, and returns the compact -> raw table. The mapping
// depends only on the SET of labels present, never on row order, which is
// what makes write -> read round trips and shard streams stable.
std::vector<int> CompactLabelsSorted(std::vector<int>* raw_per_row);

// --- LibSVM sparse format: "<label> <index>:<value> ..." per line. ---
//
// Labels in the file are arbitrary integer class ids; they are compacted to
// [0, num_classes) by SORTED raw value on read, and the compact -> raw map
// is exposed as SparseDataset::raw_labels. Sorted compaction makes the
// mapping depend only on the label set, so write -> read round trips (and
// shard-order changes) never permute class identities. Feature indices are
// 1-based in the file, 0-based in memory. All malformed numeric fields
// abort with a located "path:line" diagnostic (std::from_chars, no
// exceptions escape).

// Writes the dataset. When the dataset carries raw_labels the original file
// labels are preserved; otherwise compact ids are written as (label + 1),
// the LibSVM 1-based convention. Indices are written as (column + 1).
// Aborts on I/O failure.
void WriteLibSvmFile(const SparseDataset& dataset, const std::string& path);

// Reads a LibSVM file. `num_features` fixes the feature-space width; pass 0
// to infer it from the largest index present. Aborts on parse or I/O errors.
SparseDataset ReadLibSvmFile(const std::string& path, int num_features = 0);

// --- Dense CSV: "label,x_1,x_2,...,x_n" per line. ---
//
// Labels compact exactly like the LibSVM reader (sorted raw value, map in
// DenseDataset::raw_labels), so gapped ids like {0, 2} yield 2 classes, not
// a fabricated empty class.

void WriteDenseCsvFile(const DenseDataset& dataset, const std::string& path);

DenseDataset ReadDenseCsvFile(const std::string& path);

// --- Dense binary: native-endian "SRDB" v1 container. ---
//
// Layout: magic "SRDB", int32 version, rows, cols, num_classes; int32
// raw_labels[num_classes]; int32 labels[rows]; float64 row-major features.
// Row i starts at data_offset + i*cols*8, so RowShardReader can stream
// shards with O(1) seeks and no whole-file scan.

void WriteDenseBinaryFile(const DenseDataset& dataset,
                          const std::string& path);

DenseDataset ReadDenseBinaryFile(const std::string& path);

// Parsed header + label block of an "SRDB" file; `data_offset` is the byte
// offset of the first feature row. Aborts on malformed headers. The stream
// is left positioned at data_offset.
struct DenseBinaryHeader {
  int rows = 0;
  int cols = 0;
  int num_classes = 0;
  std::vector<int> raw_labels;  // always populated (identity if none stored)
  std::vector<int> labels;
  int64_t data_offset = 0;
};

DenseBinaryHeader ReadDenseBinaryHeader(std::ifstream* in,
                                        const std::string& path);

// --- Trained embedding (projection + bias) as a plain-text model file. ---
//
// Complete trained models (embedding + classifier head + provenance) live
// in the versioned model store, src/model/codec.h — including reading the
// legacy "srda-classifier 1" files this module used to write.

void SaveEmbedding(const LinearEmbedding& embedding, const std::string& path);

LinearEmbedding LoadEmbedding(const std::string& path);

}  // namespace srda

#endif  // SRDA_IO_DATASET_IO_H_
