// Dataset and model file I/O.
//
// Lets downstream users run the library on real data: sparse datasets in
// the LibSVM text format (the de-facto standard for sparse classification
// data, including the real 20Newsgroups distribution), dense datasets as
// label-first CSV, and trained embeddings as a plain-text model file.

#ifndef SRDA_IO_DATASET_IO_H_
#define SRDA_IO_DATASET_IO_H_

#include <string>

#include "core/embedding.h"
#include "dataset/dataset.h"

namespace srda {

// --- LibSVM sparse format: "<label> <index>:<value> ..." per line. ---
//
// Labels in the file are 1-based class ids (or arbitrary non-negative ints);
// they are compacted to [0, num_classes) in first-appearance order on read.
// Feature indices are 1-based in the file, 0-based in memory.

// Writes the dataset; labels are stored as (label + 1), indices as
// (column + 1). Aborts on I/O failure.
void WriteLibSvmFile(const SparseDataset& dataset, const std::string& path);

// Reads a LibSVM file. `num_features` fixes the feature-space width; pass 0
// to infer it from the largest index present. Aborts on parse or I/O errors.
SparseDataset ReadLibSvmFile(const std::string& path, int num_features = 0);

// --- Dense CSV: "label,x_1,x_2,...,x_n" per line. ---

void WriteDenseCsvFile(const DenseDataset& dataset, const std::string& path);

DenseDataset ReadDenseCsvFile(const std::string& path);

// --- Trained embedding (projection + bias) as a plain-text model file. ---

void SaveEmbedding(const LinearEmbedding& embedding, const std::string& path);

LinearEmbedding LoadEmbedding(const std::string& path);

// --- Complete classifier (embedding + class centroids), used by tools/. ---

struct ClassifierModel {
  LinearEmbedding embedding;
  Matrix centroids;  // num_classes x output_dim, in the embedded space
};

void SaveClassifierModel(const ClassifierModel& model,
                         const std::string& path);

ClassifierModel LoadClassifierModel(const std::string& path);

}  // namespace srda

#endif  // SRDA_IO_DATASET_IO_H_
