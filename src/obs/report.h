// Per-run observability summary: the phase table and metrics dump.
//
// AggregateTrace folds the recorded spans into one row per span name with
// wall time (sum of span durations), self time (wall minus nested spans on
// the same thread — the honest number when e.g. ridge.solve_normal wraps
// the Gram build), and total flops (summed "flops" span args), from which
// the achieved GFLOP/s per phase falls out. PrintRunSummary renders that
// table plus the MetricsRegistry dump; bench_util and the srda_train CLI
// print it under --metrics / --trace-out so a run's cost profile can be
// compared against the analytic flam model in common/flops.h.

#ifndef SRDA_OBS_REPORT_H_
#define SRDA_OBS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace srda {

// Aggregated statistics for all spans sharing a name.
struct PhaseStat {
  std::string name;
  int64_t count = 0;
  double wall_ms = 0.0;  // sum of span durations
  double self_ms = 0.0;  // wall minus directly nested spans (per thread)
  double flops = 0.0;    // summed "flops" args (0 when none reported)
};

// One row per distinct span name, sorted by wall time descending.
std::vector<PhaseStat> AggregateTrace(const std::vector<TraceEvent>& events);

// Prints the phase table for the globally recorded trace followed by the
// metrics registry dump. No-op sections are omitted.
void PrintRunSummary(std::ostream& os);

}  // namespace srda

#endif  // SRDA_OBS_REPORT_H_
