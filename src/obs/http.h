// Minimal embedded HTTP server for the telemetry endpoints.
//
// Just enough HTTP/1.0-style plumbing to let a Prometheus scraper or a
// curl-wielding operator GET /metrics, /healthz, and /buildz from a live
// srda_serve process: a blocking listen socket, one background accept
// thread, and registered path handlers. Connections are handled serially
// (scrapes arrive at ~1 Hz; this is telemetry, not a web framework),
// requests are read up to the end of the headers and only the request
// line is parsed, and every response is Connection: close.
//
// Built from scratch on POSIX sockets — no external dependency, matching
// the repo rule. Start(0) binds an ephemeral port and port() reports the
// kernel's choice, which is how the tests run servers concurrently.

#ifndef SRDA_OBS_HTTP_H_
#define SRDA_OBS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace srda {
namespace obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Fetches `path` from 127.0.0.1:`port` with a blocking GET and returns the
// raw response (status line, headers, body). Empty string on connect or
// read failure. The client half of the tests' scrape loop; also handy for
// tools that want to poke a running server.
std::string HttpGet(int port, const std::string& path, double timeout_s = 5.0);

// Splits a raw HTTP response into (status, body); returns false when the
// status line is malformed.
bool ParseHttpResponse(const std::string& raw, int* status, std::string* body);

class HttpServer {
 public:
  // Handler for one GET; invoked on the server thread with the request
  // path (query string stripped). Handlers must be registered before
  // Start().
  using Handler = std::function<HttpResponse(const std::string& path)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void Handle(const std::string& path, Handler handler);

  // Binds 127.0.0.1:`port` (0 = ephemeral), starts the accept thread.
  // Returns false on socket/bind/listen failure.
  bool Start(int port);

  // Closes the listen socket and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  // The bound port (the kernel's pick under Start(0)); 0 before Start.
  int port() const { return port_; }
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<bool> stop_requested_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace srda

#endif  // SRDA_OBS_HTTP_H_
