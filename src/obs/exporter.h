// Metrics serialization and the background snapshot exporter.
//
// Two serializers turn the process-wide MetricsRegistry (cumulative AND
// trailing-window instruments) into scrapeable text:
//
//   PrometheusText()  - Prometheus text exposition format 0.0.4. Metric
//                       names are sanitized ('.' -> '_', "srda_" prefix);
//                       cumulative histograms export as summaries with
//                       quantile labels plus _sum/_count, and windowed
//                       instruments export as gauges labeled with their
//                       window ({window="10"}). Quantile samples are
//                       omitted when the histogram is empty — a scrape
//                       never invents a latency from zero observations.
//   MetricsJson()     - the same snapshot as one JSON object (cumulative
//                       and windowed arrays) for programmatic consumers
//                       and srda_trace_check --format=json.
//
// The Exporter wraps either serializer in a background thread that writes
// a fresh snapshot to a file every interval (write-to-temp + rename, so a
// reader never sees a torn file). This is the file-based export path
// (srda_train/srda_predict --metrics-out); the live HTTP path in
// serve/telemetry.h calls PrometheusText() directly per scrape.
//
// Both serializers validate against obs/json_check.h
// (ValidatePrometheusText / ParseJson) — the unit tests hold them to it.

#ifndef SRDA_OBS_EXPORTER_H_
#define SRDA_OBS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace srda {
namespace obs {

// Sanitizes an instrument name for Prometheus: every character outside
// [a-zA-Z0-9_:] becomes '_', and the result is prefixed with "srda_"
// ("serve.latency_us" -> "srda_serve_latency_us").
std::string PrometheusName(const std::string& name);

// Serializes `registry` to Prometheus text exposition format. Windowed
// instruments report their trailing `window_s` view; the *At overload
// injects the clock for tests.
std::string PrometheusText(const MetricsRegistry& registry, int window_s);
std::string PrometheusTextAt(const MetricsRegistry& registry, int window_s,
                             int64_t now_s);

// Serializes `registry` to one JSON object:
//   {"window_s":10,"cumulative":[{"name":...,"kind":...,...}],
//    "windowed":[{"name":...,"sum":...,"rate":...,"p50":...,...}]}
// Non-finite quantiles (empty windows) serialize as null.
std::string MetricsJson(const MetricsRegistry& registry, int window_s);
std::string MetricsJsonAt(const MetricsRegistry& registry, int window_s,
                          int64_t now_s);

struct ExporterOptions {
  std::string path;                 // snapshot file (required)
  double interval_s = 1.0;          // time between snapshots
  int window_s = 10;                // trailing window for windowed rows
  enum class Format { kPrometheus, kJson };
  Format format = Format::kPrometheus;
};

// Background snapshot thread: every interval_s, serialize the global
// registry and atomically replace options.path with the result. Start()
// verifies the path is writable by writing the first snapshot
// synchronously; Stop() (or the destructor) joins the thread and writes
// one final snapshot so the file always reflects process exit.
class Exporter {
 public:
  explicit Exporter(ExporterOptions options);
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  // Writes the first snapshot and spawns the thread. Returns false (and
  // stays stopped) when the snapshot file cannot be written. Calling
  // Start() twice is an error.
  bool Start();

  // Signals the thread, joins it, and writes a final snapshot. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  int64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }

  // One synchronous serialize-and-rename; returns false on I/O failure.
  // Called by the background thread; exposed for tests and for tools that
  // want an exit-time snapshot without the thread.
  bool WriteSnapshot();

 private:
  void Loop();

  ExporterOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> snapshots_written_{0};
  bool started_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mutex_
  std::thread thread_;
};

}  // namespace obs
}  // namespace srda

#endif  // SRDA_OBS_EXPORTER_H_
