#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>

#include "obs/metrics.h"
#include "obs/runtime_info.h"

namespace srda {
namespace {

struct Interval {
  const TraceEvent* event;
  double child_ns = 0.0;  // total duration of directly nested spans
};

}  // namespace

std::vector<PhaseStat> AggregateTrace(const std::vector<TraceEvent>& events) {
  // Group by thread, then recover nesting per thread by sorting on
  // (start asc, duration desc): a span always starts before and ends after
  // its children, so a stack sweep attributes each span's duration to its
  // direct parent and the self time falls out.
  std::map<int, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& event : events) {
    by_tid[event.tid].push_back(&event);
  }

  std::map<std::string, PhaseStat> stats;
  auto fold = [&stats](const Interval& interval) {
    const TraceEvent& event = *interval.event;
    PhaseStat& stat = stats[event.name];
    if (stat.name.empty()) stat.name = event.name;
    stat.count += 1;
    stat.wall_ms += event.duration_ns / 1e6;
    stat.self_ms +=
        std::max(0.0, (event.duration_ns - interval.child_ns) / 1e6);
    for (int a = 0; a < event.num_args; ++a) {
      if (std::string_view(event.arg_keys[a]) == "flops") {
        stat.flops += event.arg_values[a];
      }
    }
  };

  for (auto& [tid, thread_events] : by_tid) {
    std::sort(thread_events.begin(), thread_events.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->start_ns != b->start_ns) {
                  return a->start_ns < b->start_ns;
                }
                return a->duration_ns > b->duration_ns;
              });
    std::vector<Interval> stack;
    for (const TraceEvent* event : thread_events) {
      while (!stack.empty() &&
             stack.back().event->start_ns +
                     stack.back().event->duration_ns <=
                 event->start_ns) {
        const Interval finished = stack.back();
        stack.pop_back();
        if (!stack.empty()) {
          stack.back().child_ns += finished.event->duration_ns;
        }
        fold(finished);
      }
      stack.push_back(Interval{event});
    }
    while (!stack.empty()) {
      const Interval finished = stack.back();
      stack.pop_back();
      if (!stack.empty()) {
        stack.back().child_ns += finished.event->duration_ns;
      }
      fold(finished);
    }
  }

  std::vector<PhaseStat> rows;
  rows.reserve(stats.size());
  for (auto& [name, stat] : stats) rows.push_back(stat);
  std::sort(rows.begin(), rows.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.wall_ms > b.wall_ms;
            });
  return rows;
}

void PrintRunSummary(std::ostream& os) {
  const std::vector<PhaseStat> phases =
      AggregateTrace(TraceRecorder::Global().Collect());
  char line[256];
  if (!phases.empty()) {
    os << "\n== Phase summary (from trace spans) ==\n";
    // Runtime facts published by the layers that decide them (simd
    // dispatch, the thread pool) — the numbers below are meaningless
    // without knowing which kernels and scheduler produced them.
    const std::string simd_level = obs::GetRuntimeInfo("simd.level");
    const std::string pinning = obs::GetRuntimeInfo("pool.pinning");
    if (!simd_level.empty() || !pinning.empty()) {
      os << "  runtime: simd=" << (simd_level.empty() ? "?" : simd_level)
         << "  pool=" << (pinning.empty() ? "?" : pinning) << "\n";
    }
    std::snprintf(line, sizeof(line), "  %-24s %8s %11s %11s %10s %9s\n",
                  "phase", "count", "wall ms", "self ms", "GFLOP",
                  "GFLOP/s");
    os << line;
    for (const PhaseStat& phase : phases) {
      // Achieved throughput only for phases that reported work, and only
      // when the clock resolved (sub-resolution wall times would print inf).
      const bool rate_ok = phase.flops > 0.0 && phase.wall_ms > 0.0;
      char gflop[32] = "-";
      char gflops[32] = "-";
      if (phase.flops > 0.0) {
        std::snprintf(gflop, sizeof(gflop), "%.4g", phase.flops / 1e9);
      }
      if (rate_ok) {
        std::snprintf(gflops, sizeof(gflops), "%.3g",
                      phase.flops / (phase.wall_ms * 1e6));
      }
      std::snprintf(line, sizeof(line), "  %-24s %8lld %11.3f %11.3f %10s %9s\n",
                    phase.name.c_str(), static_cast<long long>(phase.count),
                    phase.wall_ms, phase.self_ms, gflop, gflops);
      os << line;
    }
  }
  // Fold-downdate effectiveness, one line: cross-validation should show
  // every fold factor coming from a downdate of the parent's, with full
  // refactorizations only on the condition fallback.
  double fold_hits = 0.0;
  double fold_fallbacks = 0.0;
  double lsqr_iterations = 0.0;
  double precond_iterations = 0.0;
  bool any_metrics = false;
  for (const MetricSnapshot& snapshot : MetricsRegistry::Global().Snapshot()) {
    any_metrics = any_metrics || snapshot.value != 0.0 || snapshot.count != 0;
    if (snapshot.name == "ridge.fold_downdate_hit") {
      fold_hits = snapshot.value;
    } else if (snapshot.name == "ridge.fold_downdate_fallback") {
      fold_fallbacks = snapshot.value;
    } else if (snapshot.name == "lsqr.iterations") {
      lsqr_iterations = snapshot.value;
    } else if (snapshot.name == "lsqr.precond_iterations") {
      precond_iterations = snapshot.value;
    }
  }
  if (fold_hits > 0.0 || fold_fallbacks > 0.0) {
    std::snprintf(line, sizeof(line),
                  "\n== Fold factors ==\n  %.0f downdated from the parent "
                  "factor, %.0f rebuilt (condition fallback)\n",
                  fold_hits, fold_fallbacks);
    os << line;
  }
  // Sketch-preconditioning effectiveness, one line: how the run's LSQR
  // iterations split between preconditioned and plain solves, so benches
  // surface the saving without JSON spelunking.
  if (precond_iterations > 0.0) {
    std::snprintf(line, sizeof(line),
                  "\n== LSQR iterations (precond vs plain) ==\n  %.0f "
                  "preconditioned, %.0f plain\n",
                  precond_iterations,
                  std::max(0.0, lsqr_iterations - precond_iterations));
    os << line;
  }
  if (any_metrics) {
    os << "\n== Metrics ==\n";
    MetricsRegistry::Global().Print(os);
  }
}

}  // namespace srda
