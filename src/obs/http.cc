#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

namespace srda {
namespace obs {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

// Sends the whole buffer, riding out short writes and EINTR.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the blank line ending the request headers (bodies are
// ignored; the server only answers GETs). Caps the request at 64 KiB.
bool ReadRequestHead(int fd, std::string* out) {
  char buffer[4096];
  while (out->find("\r\n\r\n") == std::string::npos &&
         out->find("\n\n") == std::string::npos) {
    if (out->size() > 64 * 1024) return false;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    out->append(buffer, static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

std::string HttpGet(int port, const std::string& path, double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

bool ParseHttpResponse(const std::string& raw, int* status,
                       std::string* body) {
  // "HTTP/1.x NNN text\r\n"
  if (raw.compare(0, 5, "HTTP/") != 0) return false;
  const size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > raw.size()) return false;
  int parsed = 0;
  for (int i = 1; i <= 3; ++i) {
    const char c = raw[space + i];
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + (c - '0');
  }
  if (status != nullptr) *status = parsed;
  if (body != nullptr) {
    const size_t header_end = raw.find("\r\n\r\n");
    *body = header_end == std::string::npos ? "" : raw.substr(header_end + 4);
  }
  return true;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

bool HttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // Loopback only: this is process telemetry, not a public listener.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&HttpServer::Loop, this);
  return true;
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
}

void HttpServer::Loop() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    // Poll with a short timeout so Stop() is noticed without a wake-up
    // connection.
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // A stuck client must not wedge the accept loop.
  struct timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;
  // Request line: METHOD SP path SP version.
  const size_t line_end = head.find('\n');
  std::string line = head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  HttpResponse response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 405;
    response.body = "malformed request line\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "only GET is served\n";
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos) path = path.substr(0, query);
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response.status = 404;
      response.body = "no handler for " + path + "\n";
    } else {
      response = it->second(path);
    }
  }
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  if (SendAll(fd, header, std::strlen(header))) {
    SendAll(fd, response.body.data(), response.body.size());
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace srda
