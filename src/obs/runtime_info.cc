#include "obs/runtime_info.h"

#include <map>
#include <mutex>

namespace srda {
namespace obs {
namespace {

std::mutex& InfoMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::string>& InfoMap() {
  static std::map<std::string, std::string> info;
  return info;
}

}  // namespace

void SetRuntimeInfo(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(InfoMutex());
  InfoMap()[key] = value;
}

std::string GetRuntimeInfo(const std::string& key,
                           const std::string& fallback) {
  std::lock_guard<std::mutex> lock(InfoMutex());
  const auto it = InfoMap().find(key);
  return it == InfoMap().end() ? fallback : it->second;
}

std::vector<std::pair<std::string, std::string>> RuntimeInfoSnapshot() {
  std::lock_guard<std::mutex> lock(InfoMutex());
  return std::vector<std::pair<std::string, std::string>>(InfoMap().begin(),
                                                          InfoMap().end());
}

}  // namespace obs
}  // namespace srda
