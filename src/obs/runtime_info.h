// Process-wide runtime configuration facts (active SIMD dispatch level,
// thread-pinning mode, ...) as a tiny key/value store.
//
// The obs layer sits below matrix/linalg, so the phase-summary printer
// and telemetry endpoints cannot ask simd::Dispatch() directly without
// inverting the dependency graph. Instead the layers that *decide* a
// runtime fact publish it here (simd dispatch, the thread pool), and the
// reporters read it back. Keys are stable identifiers ("simd.level",
// "pool.pinning"); values are short strings.

#ifndef SRDA_OBS_RUNTIME_INFO_H_
#define SRDA_OBS_RUNTIME_INFO_H_

#include <string>
#include <utility>
#include <vector>

namespace srda {
namespace obs {

// Inserts or overwrites one fact. Thread-safe.
void SetRuntimeInfo(const std::string& key, const std::string& value);

// Value for `key`, or `fallback` when the key was never published.
std::string GetRuntimeInfo(const std::string& key,
                           const std::string& fallback = "");

// All published facts, sorted by key. Thread-safe snapshot.
std::vector<std::pair<std::string, std::string>> RuntimeInfoSnapshot();

}  // namespace obs
}  // namespace srda

#endif  // SRDA_OBS_RUNTIME_INFO_H_
