#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

namespace srda {
namespace {

bool EnvTraceEnabled() {
  const char* env = std::getenv("SRDA_TRACE");
  if (env == nullptr || *env == '\0') return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0;
}

// The thread's buffer pointer. The buffer itself is owned through a
// thread_local unique owner whose destructor retires the events into the
// recorder, so events from exited pool threads survive.
struct ThreadBufferOwner {
  TraceRecorder::ThreadBuffer buffer;
};

thread_local ThreadBufferOwner* tls_owner = nullptr;

void EscapeJsonInto(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          *out += hex;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked: thread buffers retire into the recorder during static teardown
  // (the global thread pool joins its workers then), so it must outlive
  // every other static.
  static TraceRecorder* recorder = [] {
    TraceRecorder* r = new TraceRecorder();
    r->SetEnabled(EnvTraceEnabled());
    return r;
  }();
  return *recorder;
}

TraceRecorder::ThreadBuffer::~ThreadBuffer() {
  TraceRecorder::Global().Retire(this);
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  if (tls_owner == nullptr) {
    static thread_local ThreadBufferOwner owner;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      owner.buffer.tid = next_tid_++;
      buffers_.push_back(&owner.buffer);
      ++buffers_ever_;
    }
    tls_owner = &owner;
  }
  return &tls_owner->buffer;
}

void TraceRecorder::Retire(ThreadBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (*it == buffer) {
      buffers_.erase(it);
      break;
    }
  }
  std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
  if (!buffer->events.empty()) {
    retired_.push_back(std::move(buffer->events));
  }
}

void TraceRecorder::RecordComplete(const char* name, int64_t start_ns,
                                   int64_t duration_ns) {
  ThreadBuffer* buffer = LocalBuffer();
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.tid = buffer->tid;
  event.depth = buffer->depth;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(event);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.clear();
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> TraceRecorder::Collect() {
  std::vector<TraceEvent> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::vector<TraceEvent>& events : retired_) {
    merged.insert(merged.end(), events.begin(), events.end());
  }
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  return merged;
}

int64_t TraceRecorder::EventCount() {
  return static_cast<int64_t>(Collect().size());
}

int TraceRecorder::ThreadBufferCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_ever_;
}

void TraceRecorder::WriteJson(std::ostream& os) {
  const std::vector<TraceEvent> events = Collect();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char line[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out += "{\"name\":\"";
    EscapeJsonInto(event.name, &out);
    std::snprintf(line, sizeof(line),
                  "\",\"cat\":\"srda\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                  event.start_ns / 1000.0, event.duration_ns / 1000.0,
                  event.tid);
    out += line;
    if (event.num_args > 0) {
      out += ",\"args\":{";
      for (int a = 0; a < event.num_args; ++a) {
        if (a > 0) out += ',';
        out += '"';
        EscapeJsonInto(event.arg_keys[a], &out);
        // Non-finite arg values would break the JSON; record them as 0.
        const double value =
            std::isfinite(event.arg_values[a]) ? event.arg_values[a] : 0.0;
        std::snprintf(line, sizeof(line), "\":%.17g", value);
        out += line;
      }
      out += '}';
    }
    out += '}';
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  os << out;
}

bool TraceRecorder::WriteJsonFile(const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  WriteJson(file);
  file.flush();
  return file.good();
}

}  // namespace srda
