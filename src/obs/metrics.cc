#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace srda {
namespace {

// Relaxed CAS "update towards" for atomic min/max.
template <typename Better>
void AtomicExtreme(std::atomic<double>* target, double value, Better better) {
  double current = target->load(std::memory_order_relaxed);
  while (better(value, current) &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

int BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value) + 1;
  return exponent >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1
                                            : exponent;
}

}  // namespace

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  obs::AtomicAdd(&sum_, value);
  AtomicExtreme(&min_, value, [](double a, double b) { return a < b; });
  AtomicExtreme(&max_, value, [](double a, double b) { return a > b; });
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::ApproxQuantile(double q) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (0-based), then walk buckets until the
  // cumulative count passes it.
  const double rank = q * static_cast<double>(n - 1);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t in_bucket = bucket(b);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) <= rank) {
      seen += in_bucket;
      continue;
    }
    // Bucket b covers [2^(b-1), 2^b); bucket 0 covers everything below 1.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    const double hi = std::ldexp(1.0, b);
    const double frac = in_bucket == 1
                            ? 0.5
                            : (rank - static_cast<double>(seen)) /
                                  static_cast<double>(in_bucket - 1);
    const double estimate = lo + frac * (hi - lo);
    return std::min(max(), std::max(min(), estimate));
  }
  return max();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as TraceRecorder::Global(): instruments are
  // touched from thread destructors during static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    std::fprintf(stderr, "metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    std::fprintf(stderr, "metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    std::fprintf(stderr, "metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> rows;
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot row;
    row.name = name;
    row.kind = MetricSnapshot::Kind::kCounter;
    row.value = counter->value();
    rows.push_back(row);
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot row;
    row.name = name;
    row.kind = MetricSnapshot::Kind::kGauge;
    row.value = gauge->value();
    rows.push_back(row);
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot row;
    row.name = name;
    row.kind = MetricSnapshot::Kind::kHistogram;
    row.value = histogram->sum();
    row.count = histogram->count();
    row.mean = histogram->mean();
    row.min = histogram->min();
    row.max = histogram->max();
    rows.push_back(row);
  }
  // std::map iteration is sorted within each kind; interleave by name.
  std::sort(rows.begin(), rows.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return rows;
}

void MetricsRegistry::Print(std::ostream& os) const {
  char line[256];
  for (const MetricSnapshot& row : Snapshot()) {
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        if (row.value == 0.0) continue;  // unused instrument, skip
        std::snprintf(line, sizeof(line), "  %-34s %.6g\n", row.name.c_str(),
                      row.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        if (row.count == 0) continue;
        std::snprintf(line, sizeof(line),
                      "  %-34s count=%lld mean=%.6g min=%.6g max=%.6g\n",
                      row.name.c_str(), static_cast<long long>(row.count),
                      row.mean, row.min, row.max);
        break;
    }
    os << line;
  }
}

}  // namespace srda
