#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace srda {
namespace obs {

namespace {

// Anchored on first use; windowed slots and event timestamps only ever
// compare values from this one clock, so the anchor point is arbitrary.
std::chrono::steady_clock::time_point MetricsEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

int64_t EpochSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - MetricsEpoch())
      .count();
}

int64_t EpochMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - MetricsEpoch())
      .count();
}

}  // namespace obs

namespace {

// Relaxed CAS "update towards" for atomic min/max.
template <typename Better>
void AtomicExtreme(std::atomic<double>* target, double value, Better better) {
  double current = target->load(std::memory_order_relaxed);
  while (better(value, current) &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

int BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value) + 1;
  return exponent >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1
                                            : exponent;
}

// Shared quantile walk over a power-of-two bucket array (cumulative and
// windowed histograms use the same layout). Interpolates inside the bucket
// holding the rank-q observation and clamps to [clamp_lo, clamp_hi]. NaN
// when n == 0.
double QuantileFromBuckets(const int64_t* buckets, int num_buckets, int64_t n,
                           double q, double clamp_lo, double clamp_hi) {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (0-based), then walk buckets until the
  // cumulative count passes it.
  const double rank = q * static_cast<double>(n - 1);
  int64_t seen = 0;
  for (int b = 0; b < num_buckets; ++b) {
    const int64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) <= rank) {
      seen += in_bucket;
      continue;
    }
    // Bucket b covers [2^(b-1), 2^b); bucket 0 covers everything below 1.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    const double hi = std::ldexp(1.0, b);
    const double frac = in_bucket == 1
                            ? 0.5
                            : (rank - static_cast<double>(seen)) /
                                  static_cast<double>(in_bucket - 1);
    const double estimate = lo + frac * (hi - lo);
    return std::min(clamp_hi, std::max(clamp_lo, estimate));
  }
  // Concurrent observers can make the bucket array lag the count; report
  // the clamp ceiling rather than fabricating a value.
  return clamp_hi;
}

}  // namespace

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  obs::AtomicAdd(&sum_, value);
  AtomicExtreme(&min_, value, [](double a, double b) { return a < b; });
  AtomicExtreme(&max_, value, [](double a, double b) { return a > b; });
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::ApproxQuantile(double q) const {
  const int64_t n = count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  int64_t buckets[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] = bucket(b);
  return QuantileFromBuckets(buckets, kNumBuckets, n, q, min(), max());
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void WindowedCounter::AddAt(int64_t epoch_s, double delta) {
  Slot& slot = slots_[static_cast<size_t>(epoch_s % kSlots)];
  for (;;) {
    int64_t tag = slot.epoch.load(std::memory_order_acquire);
    if (tag == kBusy) continue;  // another thread is recycling; spin briefly
    if (tag >= epoch_s) break;   // current (or a racing newer second: the
                                 // observation lands one slot late, which a
                                 // one-second-granular window tolerates)
    if (slot.epoch.compare_exchange_weak(tag, kBusy,
                                         std::memory_order_acq_rel)) {
      slot.value.store(0.0, std::memory_order_relaxed);
      slot.epoch.store(epoch_s, std::memory_order_release);
      break;
    }
  }
  obs::AtomicAdd(&slot.value, delta);
}

double WindowedCounter::SumOverAt(int window_s, int64_t now_s) const {
  window_s = std::min(std::max(window_s, 1), kMaxWindowSeconds);
  double sum = 0.0;
  for (const Slot& slot : slots_) {
    const int64_t tag = slot.epoch.load(std::memory_order_acquire);
    if (tag > now_s - window_s && tag <= now_s) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

double WindowedCounter::RateOverAt(int window_s, int64_t now_s) const {
  window_s = std::min(std::max(window_s, 1), kMaxWindowSeconds);
  return SumOverAt(window_s, now_s) / static_cast<double>(window_s);
}

void WindowedCounter::Reset() {
  for (Slot& slot : slots_) {
    slot.epoch.store(-1, std::memory_order_relaxed);
    slot.value.store(0.0, std::memory_order_relaxed);
  }
}

void WindowedHistogram::EnsureSlot(Slot* slot, int64_t epoch_s) {
  for (;;) {
    int64_t tag = slot->epoch.load(std::memory_order_acquire);
    if (tag == kBusy) continue;
    if (tag >= epoch_s) return;
    if (slot->epoch.compare_exchange_weak(tag, kBusy,
                                          std::memory_order_acq_rel)) {
      slot->count.store(0, std::memory_order_relaxed);
      slot->sum.store(0.0, std::memory_order_relaxed);
      for (auto& bucket : slot->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      slot->epoch.store(epoch_s, std::memory_order_release);
      return;
    }
  }
}

void WindowedHistogram::ObserveAt(int64_t epoch_s, double value) {
  Slot& slot = slots_[static_cast<size_t>(epoch_s % kSlots)];
  EnsureSlot(&slot, epoch_s);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  obs::AtomicAdd(&slot.sum, value);
  slot.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

int64_t WindowedHistogram::MergeWindow(int window_s, int64_t now_s,
                                       int64_t merged[kNumBuckets],
                                       double* sum) const {
  window_s = std::min(std::max(window_s, 1), kMaxWindowSeconds);
  std::fill(merged, merged + kNumBuckets, 0);
  *sum = 0.0;
  int64_t count = 0;
  for (const Slot& slot : slots_) {
    const int64_t tag = slot.epoch.load(std::memory_order_acquire);
    if (tag <= now_s - window_s || tag > now_s) continue;
    count += slot.count.load(std::memory_order_relaxed);
    *sum += slot.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
      merged[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return count;
}

int64_t WindowedHistogram::CountOverAt(int window_s, int64_t now_s) const {
  int64_t merged[kNumBuckets];
  double sum = 0.0;
  return MergeWindow(window_s, now_s, merged, &sum);
}

double WindowedHistogram::SumOverAt(int window_s, int64_t now_s) const {
  int64_t merged[kNumBuckets];
  double sum = 0.0;
  MergeWindow(window_s, now_s, merged, &sum);
  return sum;
}

double WindowedHistogram::QuantileOverAt(int window_s, double q,
                                         int64_t now_s) const {
  int64_t merged[kNumBuckets];
  double sum = 0.0;
  const int64_t n = MergeWindow(window_s, now_s, merged, &sum);
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  // No per-slot min/max is kept, so clamp to the merged buckets' bounds:
  // the lowest non-empty bucket's floor and the highest's ceiling.
  double lo = 0.0;
  double hi = std::ldexp(1.0, kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    if (merged[b] != 0) {
      lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      break;
    }
  }
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (merged[b] != 0) {
      hi = std::ldexp(1.0, b);
      break;
    }
  }
  return QuantileFromBuckets(merged, kNumBuckets, n, q, lo, hi);
}

void WindowedHistogram::Reset() {
  for (Slot& slot : slots_) {
    slot.epoch.store(-1, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0.0, std::memory_order_relaxed);
    for (auto& bucket : slot.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as TraceRecorder::Global(): instruments are
  // touched from thread destructors during static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    std::fprintf(stderr, "metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    std::fprintf(stderr, "metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    std::fprintf(stderr, "metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

WindowedCounter* MetricsRegistry::windowed_counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (windowed_histograms_.count(name) != 0) {
    std::fprintf(stderr,
                 "windowed metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<WindowedCounter>& slot = windowed_counters_[name];
  if (slot == nullptr) slot = std::make_unique<WindowedCounter>();
  return slot.get();
}

WindowedHistogram* MetricsRegistry::windowed_histogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (windowed_counters_.count(name) != 0) {
    std::fprintf(stderr,
                 "windowed metric '%s' already registered with another kind\n",
                 name.c_str());
    std::abort();
  }
  std::unique_ptr<WindowedHistogram>& slot = windowed_histograms_[name];
  if (slot == nullptr) slot = std::make_unique<WindowedHistogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, windowed] : windowed_counters_) windowed->Reset();
  for (auto& [name, windowed] : windowed_histograms_) windowed->Reset();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> rows;
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot row;
    row.name = name;
    row.kind = MetricSnapshot::Kind::kCounter;
    row.value = counter->value();
    rows.push_back(row);
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot row;
    row.name = name;
    row.kind = MetricSnapshot::Kind::kGauge;
    row.value = gauge->value();
    rows.push_back(row);
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot row;
    row.name = name;
    row.kind = MetricSnapshot::Kind::kHistogram;
    row.value = histogram->sum();
    row.count = histogram->count();
    row.mean = histogram->mean();
    row.min = histogram->min();
    row.max = histogram->max();
    row.p50 = histogram->ApproxQuantile(0.5);
    row.p99 = histogram->ApproxQuantile(0.99);
    rows.push_back(row);
  }
  // std::map iteration is sorted within each kind; interleave by name.
  std::sort(rows.begin(), rows.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return rows;
}

std::vector<WindowedMetricSnapshot> MetricsRegistry::WindowedSnapshot(
    int window_s) const {
  return WindowedSnapshotAt(window_s, obs::EpochSeconds());
}

std::vector<WindowedMetricSnapshot> MetricsRegistry::WindowedSnapshotAt(
    int window_s, int64_t now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WindowedMetricSnapshot> rows;
  for (const auto& [name, counter] : windowed_counters_) {
    WindowedMetricSnapshot row;
    row.name = name;
    row.kind = WindowedMetricSnapshot::Kind::kCounter;
    row.window_s = window_s;
    row.sum = counter->SumOverAt(window_s, now_s);
    row.rate = counter->RateOverAt(window_s, now_s);
    rows.push_back(row);
  }
  for (const auto& [name, histogram] : windowed_histograms_) {
    WindowedMetricSnapshot row;
    row.name = name;
    row.kind = WindowedMetricSnapshot::Kind::kHistogram;
    row.window_s = window_s;
    row.count = histogram->CountOverAt(window_s, now_s);
    row.sum = histogram->SumOverAt(window_s, now_s);
    row.p50 = histogram->QuantileOverAt(window_s, 0.50, now_s);
    row.p99 = histogram->QuantileOverAt(window_s, 0.99, now_s);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const WindowedMetricSnapshot& a,
               const WindowedMetricSnapshot& b) { return a.name < b.name; });
  return rows;
}

void MetricsRegistry::Print(std::ostream& os) const {
  char line[256];
  for (const MetricSnapshot& row : Snapshot()) {
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        if (row.value == 0.0) continue;  // unused instrument, skip
        std::snprintf(line, sizeof(line), "  %-34s %.6g\n", row.name.c_str(),
                      row.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        if (row.count == 0) continue;
        std::snprintf(line, sizeof(line),
                      "  %-34s count=%lld mean=%.6g min=%.6g max=%.6g\n",
                      row.name.c_str(), static_cast<long long>(row.count),
                      row.mean, row.min, row.max);
        break;
    }
    os << line;
  }
}

}  // namespace srda
