// Minimal JSON parser and Chrome trace schema validator.
//
// Backs the tools/srda_trace_check CLI and the obs unit tests: parses a
// whole document into a small DOM (no external dependency) and checks the
// structure emitted by TraceRecorder::WriteJson — a top-level object with a
// "traceEvents" array of complete events carrying name/ph/ts/dur/pid/tid.
// This is a validator for our own emitter, not a general JSON library.

#ifndef SRDA_OBS_JSON_CHECK_H_
#define SRDA_OBS_JSON_CHECK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace srda {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys are rejected by the parser.
  std::vector<std::pair<std::string, JsonValue>> object;

  // nullptr when the key is absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` as one JSON document (trailing whitespace allowed).
// Returns false and sets *error (with an offset) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Parses and validates a Chrome trace_event document: well-formed JSON,
// top-level object, non-empty "traceEvents" array whose entries each have a
// non-empty string "name", string "ph", and numeric "ts", "dur", "pid",
// "tid". Every name in `required_names` must appear among the events.
// Returns false and sets *error describing the first violation.
bool ValidateTraceJson(const std::string& text,
                       const std::vector<std::string>& required_names,
                       std::string* error);

}  // namespace srda

#endif  // SRDA_OBS_JSON_CHECK_H_
