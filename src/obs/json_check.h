// Minimal JSON parser and schema validators for the obs emitters.
//
// Backs the tools/srda_trace_check CLI and the obs unit tests: parses a
// whole document into a small DOM (no external dependency) and checks the
// structures our own emitters produce — the Chrome trace JSON written by
// TraceRecorder::WriteJson (a top-level object with a "traceEvents" array
// of complete events carrying name/ph/ts/dur/pid/tid), the Prometheus text
// exposition written by obs/exporter.h, and the JSONL event stream written
// by obs/event_log.h. These are validators for our own emitters, not
// general format libraries.

#ifndef SRDA_OBS_JSON_CHECK_H_
#define SRDA_OBS_JSON_CHECK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace srda {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys are rejected by the parser.
  std::vector<std::pair<std::string, JsonValue>> object;

  // nullptr when the key is absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` as one JSON document (trailing whitespace allowed).
// Returns false and sets *error (with an offset) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Parses and validates a Chrome trace_event document: well-formed JSON,
// top-level object, non-empty "traceEvents" array whose entries each have a
// non-empty string "name", string "ph", and numeric "ts", "dur", "pid",
// "tid". Every name in `required_names` must appear among the events.
// Returns false and sets *error describing the first violation.
bool ValidateTraceJson(const std::string& text,
                       const std::vector<std::string>& required_names,
                       std::string* error);

// Validates a Prometheus text exposition document (what obs/exporter.h and
// the /metrics endpoint emit): every line is blank, a "# HELP name ..." /
// "# TYPE name counter|gauge|histogram|untyped" comment, or a sample
// "name{labels} value" with a legal metric name ([a-zA-Z_:] then
// [a-zA-Z0-9_:]*), well-formed label pairs (quoted values, \\ \" \n
// escapes), and a parseable value (float, +Inf, -Inf, or NaN). At least
// one sample line must be present, and every name in `required_names`
// must appear as a sample (label/suffix-insensitive prefix match is NOT
// applied — names match the sample's metric name exactly). Returns false
// and sets *error with the offending line number.
bool ValidatePrometheusText(const std::string& text,
                            const std::vector<std::string>& required_names,
                            std::string* error);

// Validates a JSONL event stream (what obs/event_log.h emits): every
// non-empty line parses as one JSON object with a numeric "ts_us", a
// numeric "seq", and a non-empty string "event"; "args", when present,
// must be an object. Sequence numbers must be strictly increasing. Every
// name in `required_events` must appear among the events. An empty
// document (zero events) is rejected. Returns false and sets *error with
// the offending line number.
bool ValidateJsonlEvents(const std::string& text,
                         const std::vector<std::string>& required_events,
                         std::string* error);

// Escapes a string for embedding inside a JSON string literal (the shared
// helper behind the event log and exporter emitters).
std::string JsonEscape(const std::string& text);

}  // namespace srda

#endif  // SRDA_OBS_JSON_CHECK_H_
