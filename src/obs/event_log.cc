#include "obs/event_log.h"

#include <cmath>
#include <cstdlib>

#include "obs/json_check.h"
#include "obs/metrics.h"

namespace srda {
namespace obs {

EventLog& EventLog::Global() {
  // Leaked like the other obs singletons: events can fire from thread
  // destructors during static teardown.
  static EventLog* log = [] {
    EventLog* created = new EventLog();
    const char* path = std::getenv("SRDA_EVENT_LOG");
    if (path != nullptr && *path != '\0') created->Open(path);
    return created;
  }();
  return *log;
}

bool EventLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void EventLog::Write(int64_t ts_us, const std::string& body) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;  // closed between the enabled check and here
  std::fprintf(file_, "{\"ts_us\":%lld,\"seq\":%lld,%s}\n",
               static_cast<long long>(ts_us),
               static_cast<long long>(next_seq_++), body.c_str());
  // Per-line flush: events are rare and an aborting process must keep the
  // fallback that preceded the abort.
  std::fflush(file_);
  events_written_.fetch_add(1, std::memory_order_relaxed);
}

Event::Event(const char* name) {
  if (!EventLogEnabled()) return;
  active_ = true;
  ts_us_ = EpochMicros();
  body_ = "\"event\":\"";
  body_ += JsonEscape(name);
  body_ += '"';
}

Event& Event::Num(const char* key, double value) {
  if (!active_) return *this;
  body_ += has_args_ ? "," : ",\"args\":{";
  has_args_ = true;
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
  if (!std::isfinite(value)) {
    body_ += "null";  // JSON has no NaN/Inf literal
    return *this;
  }
  char buffer[32];
  // %.17g round-trips doubles; integral values print without a point.
  if (value >= -9.0e18 && value <= 9.0e18 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  body_ += buffer;
  return *this;
}

Event& Event::Str(const char* key, const std::string& value) {
  if (!active_) return *this;
  body_ += has_args_ ? "," : ",\"args\":{";
  has_args_ = true;
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":\"";
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

Event::~Event() {
  if (!active_) return;
  if (has_args_) body_ += '}';
  EventLog::Global().Write(ts_us_, body_);
}

}  // namespace obs
}  // namespace srda
