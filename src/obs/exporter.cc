#include "obs/exporter.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/json_check.h"

namespace srda {
namespace obs {
namespace {

// Shortest round-trip-ish formatting: integral values print bare, others
// with %.17g (matches the event log's number formatting).
std::string FormatNumber(double value) {
  char buffer[40];
  if (!std::isfinite(value)) {
    // Prometheus spells these +Inf / -Inf / NaN; JSON callers must filter
    // non-finite values before reaching here.
    if (std::isnan(value)) return "NaN";
    return value > 0 ? "+Inf" : "-Inf";
  }
  if (value >= -9.0e18 && value <= 9.0e18 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

// JSON has no NaN/Inf literal; empty-window quantiles become null.
std::string FormatJsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatNumber(value);
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, double value) {
  *out += name;
  *out += labels;
  *out += ' ';
  *out += FormatNumber(value);
  *out += '\n';
}

void AppendTyped(std::string* out, const std::string& name, const char* type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "srda_";
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry, int window_s) {
  return PrometheusTextAt(registry, window_s, EpochSeconds());
}

std::string PrometheusTextAt(const MetricsRegistry& registry, int window_s,
                             int64_t now_s) {
  std::string out;
  AppendTyped(&out, "srda_up", "gauge");
  AppendSample(&out, "srda_up", "", 1.0);
  for (const MetricSnapshot& row : registry.Snapshot()) {
    const std::string name = PrometheusName(row.name);
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
        AppendTyped(&out, name, "counter");
        AppendSample(&out, name, "", row.value);
        break;
      case MetricSnapshot::Kind::kGauge:
        AppendTyped(&out, name, "gauge");
        AppendSample(&out, name, "", row.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        AppendTyped(&out, name, "summary");
        // A summary never reports quantiles it has no samples for.
        if (row.count > 0) {
          AppendSample(&out, name, "{quantile=\"0.5\"}", row.p50);
          AppendSample(&out, name, "{quantile=\"0.99\"}", row.p99);
        }
        AppendSample(&out, name + "_sum", "", row.value);
        AppendSample(&out, name + "_count", "",
                     static_cast<double>(row.count));
        break;
    }
  }
  const std::string window_label =
      "{window=\"" + std::to_string(window_s) + "\"}";
  for (const WindowedMetricSnapshot& row :
       registry.WindowedSnapshotAt(window_s, now_s)) {
    const std::string name = PrometheusName(row.name) + "_window";
    switch (row.kind) {
      case WindowedMetricSnapshot::Kind::kCounter:
        AppendTyped(&out, name + "_sum", "gauge");
        AppendSample(&out, name + "_sum", window_label, row.sum);
        AppendTyped(&out, name + "_rate", "gauge");
        AppendSample(&out, name + "_rate", window_label, row.rate);
        break;
      case WindowedMetricSnapshot::Kind::kHistogram:
        AppendTyped(&out, name, "summary");
        if (row.count > 0) {
          AppendSample(&out, name, "{window=\"" + std::to_string(window_s) +
                                       "\",quantile=\"0.5\"}",
                       row.p50);
          AppendSample(&out, name, "{window=\"" + std::to_string(window_s) +
                                       "\",quantile=\"0.99\"}",
                       row.p99);
        }
        AppendSample(&out, name + "_sum", window_label, row.sum);
        AppendSample(&out, name + "_count", window_label,
                     static_cast<double>(row.count));
        break;
    }
  }
  return out;
}

std::string MetricsJson(const MetricsRegistry& registry, int window_s) {
  return MetricsJsonAt(registry, window_s, EpochSeconds());
}

std::string MetricsJsonAt(const MetricsRegistry& registry, int window_s,
                          int64_t now_s) {
  std::string out = "{\"window_s\":" + std::to_string(window_s);
  out += ",\"cumulative\":[";
  bool first = true;
  for (const MetricSnapshot& row : registry.Snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(row.name) + "\"";
    switch (row.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" + FormatJsonNumber(row.value);
        break;
      case MetricSnapshot::Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" + FormatJsonNumber(row.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        out += ",\"kind\":\"histogram\",\"count\":" + std::to_string(row.count);
        out += ",\"sum\":" + FormatJsonNumber(row.value);
        out += ",\"mean\":" + FormatJsonNumber(row.mean);
        out += ",\"min\":" + FormatJsonNumber(row.min);
        out += ",\"max\":" + FormatJsonNumber(row.max);
        out += ",\"p50\":" + FormatJsonNumber(row.p50);
        out += ",\"p99\":" + FormatJsonNumber(row.p99);
        break;
    }
    out += '}';
  }
  out += "],\"windowed\":[";
  first = true;
  for (const WindowedMetricSnapshot& row :
       registry.WindowedSnapshotAt(window_s, now_s)) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(row.name) + "\"";
    switch (row.kind) {
      case WindowedMetricSnapshot::Kind::kCounter:
        out += ",\"kind\":\"counter\",\"sum\":" + FormatJsonNumber(row.sum);
        out += ",\"rate\":" + FormatJsonNumber(row.rate);
        break;
      case WindowedMetricSnapshot::Kind::kHistogram:
        out += ",\"kind\":\"histogram\",\"count\":" + std::to_string(row.count);
        out += ",\"sum\":" + FormatJsonNumber(row.sum);
        out += ",\"p50\":" + FormatJsonNumber(row.p50);
        out += ",\"p99\":" + FormatJsonNumber(row.p99);
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

Exporter::Exporter(ExporterOptions options) : options_(std::move(options)) {}

Exporter::~Exporter() { Stop(); }

bool Exporter::Start() {
  if (started_) std::abort();
  started_ = true;
  if (!WriteSnapshot()) {
    started_ = false;
    return false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread(&Exporter::Loop, this);
  return true;
}

void Exporter::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot so the file reflects the full run, not the last tick.
  WriteSnapshot();
  running_.store(false, std::memory_order_relaxed);
  started_ = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
}

bool Exporter::WriteSnapshot() {
  const MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string text =
      options_.format == ExporterOptions::Format::kJson
          ? MetricsJson(registry, options_.window_s)
          : PrometheusText(registry, options_.window_s);
  // Write-to-temp + rename: a concurrent reader sees the old snapshot or
  // the new one, never a prefix.
  const std::string tmp = options_.path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool flushed = std::fclose(file) == 0 && written == text.size();
  if (!flushed || std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Exporter::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_s > 0 ? options_.interval_s : 1.0);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    WriteSnapshot();
    lock.lock();
  }
}

}  // namespace obs
}  // namespace srda
