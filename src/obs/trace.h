// Low-overhead structured tracing for the SRDA training pipeline.
//
// A TraceSpan marks one timed scope (a Gram build, a Cholesky refactor, one
// LSQR iteration). Spans record into per-thread buffers — no locks or
// allocation on the hot path beyond amortized vector growth — which the
// process-wide TraceRecorder merges at flush time into Chrome/Perfetto
// `trace_event` JSON (load the file in chrome://tracing or ui.perfetto.dev).
//
// Tracing is off by default: a disabled TraceSpan costs one relaxed atomic
// load and touches no memory, so instrumented kernels run at full speed.
// It is toggled by the SRDA_TRACE environment variable (any value other
// than "", "0", or "false") or programmatically via SetEnabled(); the bench
// harness and the srda_train CLI flip it on for --trace-out / --metrics.
// Defining SRDA_OBS_DISABLED at compile time removes the instrumentation
// entirely (spans become empty objects).
//
// This module sits below src/common (common/flops.cc forwards its counter
// here), so it depends only on the standard library.

#ifndef SRDA_OBS_TRACE_H_
#define SRDA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace srda {

// One completed span. `name` and the arg keys must be string literals (or
// otherwise outlive the recorder); events store the pointers only.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;     // relative to the recorder epoch
  int64_t duration_ns = 0;
  int tid = 0;              // recorder-assigned sequential thread id
  int depth = 0;            // nesting depth on the recording thread
  int num_args = 0;
  const char* arg_keys[2] = {nullptr, nullptr};
  double arg_values[2] = {0.0, 0.0};
};

// Process-wide sink for trace events. Threads register a private buffer on
// first use; buffers retire their events back to the recorder when the
// thread exits, so events survive pool reconfiguration. All methods are
// thread-safe; Collect/WriteJson snapshot whatever has been recorded and
// are intended to run between, not during, instrumented regions.
class TraceRecorder {
 public:
  // The singleton every span records into. Never destroyed (threads may
  // retire buffers during static teardown).
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Drops all recorded events (live and retired buffers).
  void Clear();

  // Merged snapshot of every event recorded so far, grouped by thread in
  // recording order within each thread.
  std::vector<TraceEvent> Collect();

  // Chrome trace_event JSON ("traceEvents" array of complete "X" events,
  // ts/dur in microseconds). WriteJsonFile returns false on I/O failure.
  void WriteJson(std::ostream& os);
  bool WriteJsonFile(const std::string& path);

  // Totals for tests: events recorded and thread buffers ever registered.
  int64_t EventCount();
  int ThreadBufferCount();

  // Nanoseconds since the recorder epoch (steady clock).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Appends a pre-timed complete event to the calling thread's buffer.
  // Used by call sites that already measured a duration (the thread pool's
  // chunk timing); TraceSpan is the normal interface.
  void RecordComplete(const char* name, int64_t start_ns, int64_t duration_ns);

  // Per-thread event buffer. Public only for TraceSpan; not part of the API.
  struct ThreadBuffer {
    std::mutex mutex;  // recording thread vs. concurrent Collect/Clear
    std::vector<TraceEvent> events;
    int tid = 0;
    int depth = 0;
    ~ThreadBuffer();
  };

  // The calling thread's buffer, registered on first use.
  ThreadBuffer* LocalBuffer();

 private:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  void Retire(ThreadBuffer* buffer);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::vector<ThreadBuffer*> buffers_;            // live threads
  std::vector<std::vector<TraceEvent>> retired_;  // from exited threads
  int next_tid_ = 0;
  int buffers_ever_ = 0;
};

// True when SRDA_TRACE (or SetEnabled) turned tracing on. One relaxed load.
inline bool TraceEnabled() { return TraceRecorder::Global().enabled(); }

#ifndef SRDA_OBS_DISABLED

// RAII scope: records one complete event from construction to destruction.
// When tracing is disabled, construction is a single atomic load and the
// destructor does nothing. Up to two numeric args ride along into the trace
// ("flops" is aggregated by the run summary into per-phase GFLOP/s).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    TraceRecorder& recorder = TraceRecorder::Global();
    if (!recorder.enabled()) return;
    buffer_ = recorder.LocalBuffer();
    name_ = name;
    start_ns_ = recorder.NowNs();
    depth_ = buffer_->depth++;
  }

  ~TraceSpan() {
    if (buffer_ == nullptr) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_ns_;
    event.duration_ns = recorder.NowNs() - start_ns_;
    event.tid = buffer_->tid;
    event.depth = depth_;
    event.num_args = num_args_;
    for (int i = 0; i < num_args_; ++i) {
      event.arg_keys[i] = arg_keys_[i];
      event.arg_values[i] = arg_values_[i];
    }
    buffer_->depth = depth_;
    std::lock_guard<std::mutex> lock(buffer_->mutex);
    buffer_->events.push_back(event);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // True when this span is recording; use to skip computing args.
  bool recording() const { return buffer_ != nullptr; }

  // Attaches a numeric arg (`key` must be a string literal). At most two;
  // further calls are dropped.
  void AddArg(const char* key, double value) {
    if (buffer_ == nullptr || num_args_ >= 2) return;
    arg_keys_[num_args_] = key;
    arg_values_[num_args_] = value;
    ++num_args_;
  }

 private:
  TraceRecorder::ThreadBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int depth_ = 0;
  int num_args_ = 0;
  const char* arg_keys_[2] = {nullptr, nullptr};
  double arg_values_[2] = {0.0, 0.0};
};

#else  // SRDA_OBS_DISABLED

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  bool recording() const { return false; }
  void AddArg(const char*, double) {}
};

#endif  // SRDA_OBS_DISABLED

#define SRDA_TRACE_CONCAT_INNER(a, b) a##b
#define SRDA_TRACE_CONCAT(a, b) SRDA_TRACE_CONCAT_INNER(a, b)
// Anonymous scope span: SRDA_TRACE_SCOPE("gram");
#define SRDA_TRACE_SCOPE(name) \
  ::srda::TraceSpan SRDA_TRACE_CONCAT(srda_trace_span_, __LINE__)(name)

}  // namespace srda

#endif  // SRDA_OBS_TRACE_H_
