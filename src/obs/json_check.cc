#include "obs/json_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace srda {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    *out = JsonValue();  // callers may reuse the output across attempts
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    std::set<std::string> seen;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      if (!seen.insert(key).second) return Fail("duplicate key '" + key + "'");
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("truncated \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                  0) {
                return Fail("invalid \\u escape");
              }
            }
            // Code point decoded only far enough to validate; the
            // validator never inspects escaped text.
            *out += '?';
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool RequireNumber(const JsonValue& event, const char* key, size_t index,
                   std::string* error) {
  const JsonValue* value = event.Find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    if (error != nullptr) {
      *error = "event " + std::to_string(index) + " missing numeric \"" +
               key + "\"";
    }
    return false;
  }
  return true;
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

bool ValidateTraceJson(const std::string& text,
                       const std::vector<std::string>& required_names,
                       std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    if (error != nullptr) *error = "missing \"traceEvents\" array";
    return false;
  }
  if (events->array.empty()) {
    if (error != nullptr) *error = "\"traceEvents\" is empty";
    return false;
  }
  std::set<std::string> names;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (event.type != JsonValue::Type::kObject) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " is not an object";
      }
      return false;
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        name->string.empty()) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " missing string \"name\"";
      }
      return false;
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " missing string \"ph\"";
      }
      return false;
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      if (!RequireNumber(event, key, i, error)) return false;
    }
    names.insert(name->string);
  }
  for (const std::string& required : required_names) {
    if (names.count(required) == 0) {
      if (error != nullptr) {
        *error = "required span \"" + required + "\" not found in trace";
      }
      return false;
    }
  }
  return true;
}

namespace {

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) ||
         std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool IsLabelNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Consumes a metric name at `pos`; empty result means no legal name there.
std::string TakeMetricName(const std::string& line, size_t* pos) {
  std::string name;
  if (*pos >= line.size() || !IsMetricNameStart(line[*pos])) return name;
  while (*pos < line.size() && IsMetricNameChar(line[*pos])) {
    name += line[(*pos)++];
  }
  return name;
}

// Validates a Prometheus float token: strtod-parseable in full, or one of
// the exposition-format specials.
bool ValidPrometheusValue(const std::string& token) {
  if (token.empty()) return false;
  if (token == "+Inf" || token == "-Inf" || token == "Inf" || token == "NaN") {
    return true;
  }
  char* end = nullptr;
  std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// Validates the {name="value",...} label block, advancing *pos past '}'.
bool ValidLabelBlock(const std::string& line, size_t* pos) {
  ++*pos;  // '{'
  if (*pos < line.size() && line[*pos] == '}') {
    ++*pos;
    return true;
  }
  while (true) {
    if (*pos >= line.size() || !IsLabelNameChar(line[*pos])) return false;
    while (*pos < line.size() && IsLabelNameChar(line[*pos])) ++*pos;
    if (*pos >= line.size() || line[*pos] != '=') return false;
    ++*pos;
    if (*pos >= line.size() || line[*pos] != '"') return false;
    ++*pos;
    while (*pos < line.size() && line[*pos] != '"') {
      if (line[*pos] == '\\') {
        ++*pos;
        if (*pos >= line.size() ||
            (line[*pos] != '\\' && line[*pos] != '"' && line[*pos] != 'n')) {
          return false;
        }
      }
      ++*pos;
    }
    if (*pos >= line.size()) return false;  // unterminated value
    ++*pos;                                 // closing '"'
    if (*pos < line.size() && line[*pos] == ',') {
      ++*pos;
      continue;
    }
    if (*pos < line.size() && line[*pos] == '}') {
      ++*pos;
      return true;
    }
    return false;
  }
}

}  // namespace

bool ValidatePrometheusText(const std::string& text,
                            const std::vector<std::string>& required_names,
                            std::string* error) {
  auto fail = [error](int line_number, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + message;
    }
    return false;
  };
  std::set<std::string> sampled;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only HELP and TYPE comments are emitted; anything else is a bug.
      size_t pos = 1;
      while (pos < line.size() && line[pos] == ' ') ++pos;
      const bool is_help = line.compare(pos, 5, "HELP ") == 0;
      const bool is_type = line.compare(pos, 5, "TYPE ") == 0;
      if (!is_help && !is_type) {
        return fail(line_number, "comment is neither # HELP nor # TYPE");
      }
      pos += 5;
      const std::string name = TakeMetricName(line, &pos);
      if (name.empty()) {
        return fail(line_number, "comment missing a metric name");
      }
      if (is_type) {
        if (pos >= line.size() || line[pos] != ' ') {
          return fail(line_number, "# TYPE missing the type word");
        }
        const std::string type = line.substr(pos + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line_number, "unknown metric type '" + type + "'");
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value
    size_t pos = 0;
    const std::string name = TakeMetricName(line, &pos);
    if (name.empty()) return fail(line_number, "illegal metric name");
    if (pos < line.size() && line[pos] == '{') {
      if (!ValidLabelBlock(line, &pos)) {
        return fail(line_number, "malformed label block");
      }
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail(line_number, "missing value separator");
    }
    ++pos;
    // Optional trailing timestamp is not emitted by our exporter; treat the
    // remainder as the value token alone.
    const std::string value = line.substr(pos);
    if (!ValidPrometheusValue(value)) {
      return fail(line_number, "malformed sample value '" + value + "'");
    }
    sampled.insert(name);
  }
  if (sampled.empty()) return fail(line_number, "no sample lines");
  for (const std::string& required : required_names) {
    if (sampled.count(required) == 0) {
      if (error != nullptr) {
        *error = "required metric \"" + required + "\" not found";
      }
      return false;
    }
  }
  return true;
}

bool ValidateJsonlEvents(const std::string& text,
                         const std::vector<std::string>& required_events,
                         std::string* error) {
  auto fail = [error](int line_number, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + message;
    }
    return false;
  };
  std::set<std::string> names;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  int64_t events = 0;
  double last_seq = -1.0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!ParseJson(line, &event, &parse_error)) {
      return fail(line_number, parse_error);
    }
    if (event.type != JsonValue::Type::kObject) {
      return fail(line_number, "event is not an object");
    }
    const JsonValue* ts = event.Find("ts_us");
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber) {
      return fail(line_number, "missing numeric \"ts_us\"");
    }
    const JsonValue* seq = event.Find("seq");
    if (seq == nullptr || seq->type != JsonValue::Type::kNumber) {
      return fail(line_number, "missing numeric \"seq\"");
    }
    if (seq->number <= last_seq) {
      return fail(line_number, "sequence numbers not strictly increasing");
    }
    last_seq = seq->number;
    const JsonValue* name = event.Find("event");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        name->string.empty()) {
      return fail(line_number, "missing string \"event\"");
    }
    const JsonValue* args = event.Find("args");
    if (args != nullptr && args->type != JsonValue::Type::kObject) {
      return fail(line_number, "\"args\" is not an object");
    }
    names.insert(name->string);
    ++events;
  }
  if (events == 0) return fail(line_number, "no events");
  for (const std::string& required : required_events) {
    if (names.count(required) == 0) {
      if (error != nullptr) {
        *error = "required event \"" + required + "\" not found";
      }
      return false;
    }
  }
  return true;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace srda
