#include "obs/json_check.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace srda {
namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    *out = JsonValue();  // callers may reuse the output across attempts
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    std::set<std::string> seen;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      if (!seen.insert(key).second) return Fail("duplicate key '" + key + "'");
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("truncated \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                  0) {
                return Fail("invalid \\u escape");
              }
            }
            // Code point decoded only far enough to validate; the
            // validator never inspects escaped text.
            *out += '?';
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool RequireNumber(const JsonValue& event, const char* key, size_t index,
                   std::string* error) {
  const JsonValue* value = event.Find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    if (error != nullptr) {
      *error = "event " + std::to_string(index) + " missing numeric \"" +
               key + "\"";
    }
    return false;
  }
  return true;
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

bool ValidateTraceJson(const std::string& text,
                       const std::vector<std::string>& required_names,
                       std::string* error) {
  JsonValue root;
  if (!ParseJson(text, &root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    if (error != nullptr) *error = "missing \"traceEvents\" array";
    return false;
  }
  if (events->array.empty()) {
    if (error != nullptr) *error = "\"traceEvents\" is empty";
    return false;
  }
  std::set<std::string> names;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (event.type != JsonValue::Type::kObject) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " is not an object";
      }
      return false;
    }
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        name->string.empty()) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " missing string \"name\"";
      }
      return false;
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) {
      if (error != nullptr) {
        *error = "event " + std::to_string(i) + " missing string \"ph\"";
      }
      return false;
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      if (!RequireNumber(event, key, i, error)) return false;
    }
    names.insert(name->string);
  }
  for (const std::string& required : required_names) {
    if (names.count(required) == 0) {
      if (error != nullptr) {
        *error = "required span \"" + required + "\" not found in trace";
      }
      return false;
    }
  }
  return true;
}

}  // namespace srda
