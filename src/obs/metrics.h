// Named counters, gauges, and histograms for the SRDA training pipeline.
//
// The MetricsRegistry is the process-wide home of the runtime accounting
// that used to live in scattered statics: the kernel flop counter
// (common/flops.h forwards here), bytes touched by the dense/sparse
// kernels, LSQR iteration counts, Cholesky refactor counts, the ridge
// engine's Gram/factor cache hit rates, and the thread pool's busy/idle
// split. Instruments are created on first lookup and live forever, so hot
// call sites cache the returned pointer in a function-local static and pay
// one relaxed atomic update per event; ResetAll() zeroes values without
// invalidating pointers.
//
// Alongside the cumulative instruments, the registry carries *windowed*
// counters and histograms: a ring of per-second slots so QPS, batch size,
// and latency quantiles are queryable over the trailing N seconds while
// the process runs (the live read path behind obs/exporter.h and the
// /metrics endpoint), not just at exit. Observing is lock-free; a slot is
// recycled with a short CAS claim the first time a new second touches it.
//
// Like obs/trace.h, this sits below src/common and depends only on the
// standard library.

#ifndef SRDA_OBS_METRICS_H_
#define SRDA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace srda {
namespace obs {

// Adds `delta` to an atomic double with a relaxed CAS loop
// (atomic<double>::fetch_add is C++20 but not yet universal across
// standard libraries).
inline void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

// Whole seconds since the process-wide metrics epoch (steady clock,
// anchored on first use). Windowed instruments slot observations by this
// clock; tests inject explicit epochs instead.
int64_t EpochSeconds();

// Microseconds on the same clock (event-log timestamps).
int64_t EpochMicros();

}  // namespace obs

// Monotonically increasing sum (flops, bytes, iterations, cache hits).
class Counter {
 public:
  void Add(double delta) { obs::AtomicAdd(&value_, delta); }
  void Increment() { Add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last-written value (configuration knobs, sizes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Power-of-two bucketed distribution with count/sum/min/max. Bucket b
// counts observations in [2^(b-1), 2^b); bucket 0 holds values < 1.
// Observe() is lock-free (relaxed atomics), so concurrent observations
// from pool workers never serialize.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const int64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  // 0 when empty.
  double min() const;
  double max() const;
  // Approximate quantile from the power-of-two buckets: walks the bucket
  // counts to the one holding the q-th observation and interpolates
  // linearly inside it, clamped to the observed [min, max]. Exact contract:
  //   - empty histogram: quiet NaN — callers must check count() before
  //     printing (a report must never invent a quantile from zero samples);
  //   - exactly one observation: that observation, at every q;
  //   - all observations in one bucket: a value inside [min, max], exact
  //     when min == max;
  //   - q outside [0, 1] is clamped into it.
  // Otherwise exact only at bucket edges — use for p50/p99-style
  // reporting, not assertions.
  double ApproxQuantile(double q) const;
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  // min/max start at +-infinity so concurrent first observations race
  // safely; the accessors report 0 until something has been observed.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

// Sliding-window counter: a ring of per-second slots. Add() lands in the
// slot of the current epoch second; SumOver(window_s) folds the slots whose
// second lies in (now - window_s, now], so stale slots age out without a
// sweeper thread. Adding is one relaxed atomic add once the slot is
// current; the first touch of a new second recycles the slot behind a CAS
// claim (concurrent adders briefly spin on the claim, never block).
// Windows longer than kMaxWindowSeconds are clamped.
class WindowedCounter {
 public:
  static constexpr int kSlots = 128;
  // One guard slot: the slot being recycled for the new second must never
  // also be inside the queryable window.
  static constexpr int kMaxWindowSeconds = kSlots - 1;

  void Add(double delta) { AddAt(obs::EpochSeconds(), delta); }
  void Increment() { Add(1.0); }
  // Test seam: observe as-of an explicit epoch second.
  void AddAt(int64_t epoch_s, double delta);

  // Sum of observations in the trailing `window_s` seconds (including the
  // in-progress second). 0 when nothing was observed in the window.
  double SumOver(int window_s) const {
    return SumOverAt(window_s, obs::EpochSeconds());
  }
  double SumOverAt(int window_s, int64_t now_s) const;

  // Observations per second over the window: SumOver / window_s.
  double RateOver(int window_s) const {
    return RateOverAt(window_s, obs::EpochSeconds());
  }
  double RateOverAt(int window_s, int64_t now_s) const;

  void Reset();

 private:
  struct Slot {
    // Epoch second this slot currently represents; kUnclaimed when empty,
    // kBusy while a recycling thread zeroes it.
    std::atomic<int64_t> epoch{-1};
    std::atomic<double> value{0.0};
  };
  static constexpr int64_t kBusy = -2;

  Slot slots_[kSlots];
};

// Sliding-window histogram: per-second slots each holding the same
// power-of-two bucket layout as Histogram, merged at query time so
// CountOver / QuantileOver report the distribution of the trailing
// window_s seconds only. Quantiles interpolate inside the merged buckets
// (no per-slot min/max, so the clamp is to bucket bounds, not observed
// extremes); the empty-window contract matches Histogram::ApproxQuantile
// (quiet NaN).
class WindowedHistogram {
 public:
  static constexpr int kSlots = 128;
  static constexpr int kMaxWindowSeconds = kSlots - 1;
  static constexpr int kNumBuckets = Histogram::kNumBuckets;

  void Observe(double value) { ObserveAt(obs::EpochSeconds(), value); }
  void ObserveAt(int64_t epoch_s, double value);

  int64_t CountOver(int window_s) const {
    return CountOverAt(window_s, obs::EpochSeconds());
  }
  int64_t CountOverAt(int window_s, int64_t now_s) const;
  double SumOver(int window_s) const {
    return SumOverAt(window_s, obs::EpochSeconds());
  }
  double SumOverAt(int window_s, int64_t now_s) const;
  double QuantileOver(int window_s, double q) const {
    return QuantileOverAt(window_s, q, obs::EpochSeconds());
  }
  double QuantileOverAt(int window_s, double q, int64_t now_s) const;

  void Reset();

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<int64_t> buckets[kNumBuckets] = {};
  };
  static constexpr int64_t kBusy = -2;

  // Claims `slot` for `epoch_s` (zeroing it) unless already current.
  static void EnsureSlot(Slot* slot, int64_t epoch_s);
  // Folds the window's buckets into `merged`; returns the total count.
  int64_t MergeWindow(int window_s, int64_t now_s,
                      int64_t merged[kNumBuckets], double* sum) const;

  Slot slots_[kSlots];
};

// One row of a metrics snapshot, for programmatic consumers and tests.
struct MetricSnapshot {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;     // counter/gauge value, histogram sum
  int64_t count = 0;      // histogram observation count
  double mean = 0.0;      // histogram mean
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;       // histogram quantiles; NaN when count == 0
  double p99 = 0.0;
};

// One row of a windowed snapshot: the trailing-window view of a windowed
// counter (sum + rate) or histogram (count/sum + interpolated quantiles).
struct WindowedMetricSnapshot {
  std::string name;
  enum class Kind { kCounter, kHistogram } kind;
  int window_s = 0;
  double sum = 0.0;
  int64_t count = 0;   // histogram observations (counter: 0)
  double rate = 0.0;   // counter: sum / window_s
  double p50 = 0.0;    // histogram quantiles; NaN when count == 0
  double p99 = 0.0;
};

// Process-wide registry. Lookup is mutex-protected (cache the pointer at
// hot call sites); the instruments themselves are lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Create-on-demand; returned pointers are stable for the process
  // lifetime. A name maps to exactly one instrument kind — looking the
  // same name up as a different kind aborts. Windowed instruments live in
  // their own namespace: a windowed counter may share its name with a
  // cumulative one (the serving layer feeds both from one site).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);
  WindowedCounter* windowed_counter(const std::string& name);
  WindowedHistogram* windowed_histogram(const std::string& name);

  // Zeroes every instrument; registered pointers stay valid.
  void ResetAll();

  // Sorted-by-name snapshot / human-readable dump of non-zero instruments.
  std::vector<MetricSnapshot> Snapshot() const;
  void Print(std::ostream& os) const;

  // Trailing-window view of every windowed instrument, sorted by name.
  // The *At overload injects the clock for tests.
  std::vector<WindowedMetricSnapshot> WindowedSnapshot(int window_s) const;
  std::vector<WindowedMetricSnapshot> WindowedSnapshotAt(int window_s,
                                                         int64_t now_s) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> windowed_counters_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>>
      windowed_histograms_;
};

}  // namespace srda

#endif  // SRDA_OBS_METRICS_H_
