// Named counters, gauges, and histograms for the SRDA training pipeline.
//
// The MetricsRegistry is the process-wide home of the runtime accounting
// that used to live in scattered statics: the kernel flop counter
// (common/flops.h forwards here), bytes touched by the dense/sparse
// kernels, LSQR iteration counts, Cholesky refactor counts, the ridge
// engine's Gram/factor cache hit rates, and the thread pool's busy/idle
// split. Instruments are created on first lookup and live forever, so hot
// call sites cache the returned pointer in a function-local static and pay
// one relaxed atomic update per event; ResetAll() zeroes values without
// invalidating pointers.
//
// Like obs/trace.h, this sits below src/common and depends only on the
// standard library.

#ifndef SRDA_OBS_METRICS_H_
#define SRDA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace srda {
namespace obs {

// Adds `delta` to an atomic double with a relaxed CAS loop
// (atomic<double>::fetch_add is C++20 but not yet universal across
// standard libraries).
inline void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace obs

// Monotonically increasing sum (flops, bytes, iterations, cache hits).
class Counter {
 public:
  void Add(double delta) { obs::AtomicAdd(&value_, delta); }
  void Increment() { Add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last-written value (configuration knobs, sizes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Power-of-two bucketed distribution with count/sum/min/max. Bucket b
// counts observations in [2^(b-1), 2^b); bucket 0 holds values < 1.
// Observe() is lock-free (relaxed atomics), so concurrent observations
// from pool workers never serialize.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const int64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  // 0 when empty.
  double min() const;
  double max() const;
  // Approximate quantile (q in [0, 1]) from the power-of-two buckets:
  // walks the bucket counts to the one holding the q-th observation and
  // interpolates linearly inside it, clamped to the observed [min, max].
  // Exact only at the bucket edges — use for p50/p99-style reporting, not
  // assertions. 0 when empty.
  double ApproxQuantile(double q) const;
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  // min/max start at +-infinity so concurrent first observations race
  // safely; the accessors report 0 until something has been observed.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

// One row of a metrics snapshot, for programmatic consumers and tests.
struct MetricSnapshot {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;     // counter/gauge value, histogram sum
  int64_t count = 0;      // histogram observation count
  double mean = 0.0;      // histogram mean
  double min = 0.0;
  double max = 0.0;
};

// Process-wide registry. Lookup is mutex-protected (cache the pointer at
// hot call sites); the instruments themselves are lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Create-on-demand; returned pointers are stable for the process
  // lifetime. A name maps to exactly one instrument kind — looking the
  // same name up as a different kind aborts.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Zeroes every instrument; registered pointers stay valid.
  void ResetAll();

  // Sorted-by-name snapshot / human-readable dump of non-zero instruments.
  std::vector<MetricSnapshot> Snapshot() const;
  void Print(std::ostream& os) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace srda

#endif  // SRDA_OBS_METRICS_H_
