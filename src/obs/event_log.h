// Structured JSONL event log: located lifecycle and fallback events.
//
// Counters say HOW OFTEN the training stack fell back (sketch factor
// failure -> plain LSQR, downdate condition trip -> fresh factor, mmap
// failure -> read path); the event log says WHEN and WITH WHAT, one JSON
// object per line, so an operator can line a production incident up
// against the exact fallback that fired. Events carry a steady-clock
// timestamp (microseconds since the obs epoch), a monotonically increasing
// sequence number, the event name, and a flat set of numeric/string args:
//
//   {"ts_us":1234,"seq":7,"event":"ridge.sketch_fallback","args":{"alpha":0}}
//
// The log is process-wide and off by default: a disabled Event costs one
// relaxed atomic load and allocates nothing. It is enabled by opening a
// file — the SRDA_EVENT_LOG environment variable (checked once, at first
// use) or EventLog::Global().Open(path); tools expose --event-log=FILE.
// Writes append under a mutex (events are rare: fallbacks and lifecycle
// edges, never per-sample), flushed per line so a crash keeps the tail.
//
// Emit through the builder:
//
//   obs::Event("model.load").Str("path", path).Num("rows", rows);
//
// The line is written when the builder goes out of scope. Validation lives
// in obs/json_check.h (ValidateJsonlEvents) behind srda_trace_check
// --format=events.

#ifndef SRDA_OBS_EVENT_LOG_H_
#define SRDA_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace srda {
namespace obs {

class EventLog {
 public:
  // The singleton every Event writes into. First access reads
  // SRDA_EVENT_LOG and opens it when set and non-empty.
  static EventLog& Global();

  // Opens `path` for appending and enables the log; returns false (log
  // stays disabled) when the file cannot be opened. Replaces any
  // previously open file.
  bool Open(const std::string& path);

  // Flushes and disables. Safe when never opened.
  void Close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Events written since process start (across Open/Close cycles).
  int64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }

  // Appends one event line, assigning its sequence number. `body` is the
  // pre-serialized tail of the object ("event":... with optional args).
  // Internal (Event calls this).
  void Write(int64_t ts_us, const std::string& body);

 private:
  EventLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> events_written_{0};
  std::mutex mutex_;
  std::FILE* file_ = nullptr;  // guarded by mutex_
  int64_t next_seq_ = 0;       // guarded by mutex_
};

// Builder for one event line. Construction checks enablement once; all
// methods are no-ops on a disabled log. Args are emitted in call order;
// string values are JSON-escaped. The destructor writes the line.
class Event {
 public:
  explicit Event(const char* name);
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& Num(const char* key, double value);
  Event& Str(const char* key, const std::string& value);

 private:
  bool active_ = false;
  bool has_args_ = false;
  int64_t ts_us_ = 0;
  std::string body_;
};

// One relaxed load; use to skip building expensive args.
inline bool EventLogEnabled() { return EventLog::Global().enabled(); }

}  // namespace obs
}  // namespace srda

#endif  // SRDA_OBS_EVENT_LOG_H_
