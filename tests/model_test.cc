// Tests for the versioned model store (src/model): every trainer's output
// round-trips through both codecs bitwise, the legacy format still loads,
// and malformed files abort with a located message.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/trainers.h"
#include "matrix/blas.h"
#include "model/codec.h"
#include "model/model.h"

namespace srda {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct Blobs {
  Matrix x;
  std::vector<int> labels;
  int num_classes = 0;
};

// Well-separated gaussian blobs so every trainer converges and predictions
// are far from decision boundaries.
Blobs MakeBlobs(int rows, int cols, int classes, uint64_t seed) {
  Blobs data;
  data.x = Matrix(rows, cols);
  data.num_classes = classes;
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    const int label = i % classes;
    data.labels.push_back(label);
    for (int j = 0; j < cols; ++j) {
      data.x(i, j) = 6.0 * (j % classes == label) + rng.NextGaussian();
    }
  }
  return data;
}

std::vector<int> PredictWith(const model::SrdaModel& m, const Matrix& x) {
  CentroidClassifier classifier;
  classifier.SetCentroids(m.centroids);
  return m.ToRawLabels(classifier.ScoreBatch(m.embedding.Transform(x)));
}

void ExpectBitwiseEqual(const model::SrdaModel& a, const model::SrdaModel& b) {
  EXPECT_EQ(MaxAbsDiff(a.embedding.projection(), b.embedding.projection()),
            0.0);
  EXPECT_EQ(MaxAbsDiff(a.embedding.bias(), b.embedding.bias()), 0.0);
  EXPECT_EQ(MaxAbsDiff(a.centroids, b.centroids), 0.0);
  EXPECT_EQ(a.raw_labels, b.raw_labels);
  EXPECT_EQ(a.provenance.trainer, b.provenance.trainer);
  EXPECT_EQ(a.provenance.alpha, b.provenance.alpha);
  EXPECT_EQ(a.provenance.seed, b.provenance.seed);
}

// --- Tentpole acceptance: all six trainers round-trip both codecs --------

class TrainerRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TrainerRoundTripTest, SavedModelReproducesPredictionsBitwise) {
  const std::string trainer = GetParam();
  const Blobs train = MakeBlobs(60, 7, 3, 42);
  TrainerOptions options;
  options.alpha = 0.5;
  const TrainResult fit = TrainDenseByName(trainer, train.x, train.labels,
                                           train.num_classes, options);
  model::Provenance provenance;
  provenance.trainer = trainer;
  provenance.alpha = options.alpha;
  const model::SrdaModel original = model::BuildModel(
      fit.embedding, fit.embedding.Transform(train.x), train.labels,
      train.num_classes, {}, provenance);

  const Blobs queries = MakeBlobs(25, 7, 3, 43);
  const std::vector<int> expected = PredictWith(original, queries.x);

  for (const model::Codec codec :
       {model::Codec::kText, model::Codec::kBinary}) {
    const std::string path = TempPath(
        "model-" + trainer +
        (codec == model::Codec::kBinary ? ".srdm" : ".txt"));
    model::Save(original, path, codec);
    const model::SrdaModel loaded = model::Load(path);
    ExpectBitwiseEqual(original, loaded);
    EXPECT_EQ(PredictWith(loaded, queries.x), expected);
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTrainers, TrainerRoundTripTest,
                         ::testing::ValuesIn(DenseTrainerNames()),
                         [](const auto& info) { return info.param; });

// --- Text codec precision (satellite 1) ----------------------------------

TEST(TextCodecTest, AdversarialDoublesRoundTripExactly) {
  // Coefficients chosen to lose bits under anything below max_digits10:
  // irrational-ish fractions, denormal-adjacent magnitudes, and values whose
  // shortest exact decimal needs all 17 digits.
  Matrix projection(4, 2);
  projection(0, 0) = 1.0 / 3.0;
  projection(0, 1) = 0.1 + 0.2;  // 0.30000000000000004
  projection(1, 0) = std::numeric_limits<double>::epsilon();
  projection(1, 1) = 1.0 + std::numeric_limits<double>::epsilon();
  projection(2, 0) = 1e-300;
  projection(2, 1) = -1e300;
  projection(3, 0) = 0.49999999999999994;  // largest double below 0.5
  projection(3, 1) = 123456789.123456789;
  model::Provenance provenance;
  provenance.trainer = "adversarial";
  provenance.alpha = 1.0 / 3.0;  // alpha must round-trip exactly too
  const model::SrdaModel original = model::BuildModelFromCentroids(
      LinearEmbedding(projection, Vector{1.0 / 7.0, -2.0 / 3.0}),
      Matrix::FromRows({{1e-17, 2.0 / 3.0}, {3.0000000000000004, -1e-300}}),
      {}, provenance);

  const std::string path = TempPath("precision.txt");
  model::SaveText(original, path);
  const model::SrdaModel loaded = model::Load(path);
  ExpectBitwiseEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(TextCodecTest, HeaderCarriesProvenance) {
  const Blobs train = MakeBlobs(30, 5, 2, 7);
  TrainerOptions options;
  const TrainResult fit =
      TrainDenseByName("srda", train.x, train.labels, train.num_classes);
  model::Provenance provenance;
  provenance.trainer = "srda";
  provenance.alpha = 1.0;
  provenance.seed = 0x5eed5eedULL;
  const model::SrdaModel m = model::BuildModel(
      fit.embedding, fit.embedding.Transform(train.x), train.labels,
      train.num_classes, {}, provenance);
  const std::string path = TempPath("provenance.txt");
  model::SaveText(m, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("srda-model 2"), std::string::npos);
  EXPECT_NE(content.find("trainer srda"), std::string::npos);
  EXPECT_NE(content.find("seed " + std::to_string(0x5eed5eedULL)),
            std::string::npos);
  const model::SrdaModel loaded = model::Load(path);
  EXPECT_EQ(loaded.provenance.seed, 0x5eed5eedULL);
  std::remove(path.c_str());
}

// --- Legacy migration ----------------------------------------------------

TEST(LegacyFormatTest, ClassifierV1FilesStillLoad) {
  // A hand-written "srda-classifier 1" file, the format srda_train used to
  // emit: dims line, projection rows, bias, centroid rows. Loading yields a
  // model with identity raw labels and empty provenance.
  const std::string path = TempPath("legacy.txt");
  {
    std::ofstream out(path);
    out.precision(17);
    out << "srda-classifier 1\n";
    out << "3 2 2\n";
    out << "0.25 0.5\n-0.125 1.0\n2.0 0.0001\n";  // projection, 3 x 2
    out << "0.75 -0.25\n";                        // bias
    out << "1.0 2.0\n-1.0 -2.0\n";                // centroids, 2 x 2
  }
  const model::SrdaModel m = model::Load(path);
  EXPECT_EQ(m.input_dim(), 3);
  EXPECT_EQ(m.output_dim(), 2);
  EXPECT_EQ(m.num_classes(), 2);
  EXPECT_EQ(m.raw_labels, (std::vector<int>{0, 1}));
  EXPECT_TRUE(m.provenance.trainer.empty());
  EXPECT_DOUBLE_EQ(m.centroids(1, 1), -2.0);
  EXPECT_DOUBLE_EQ(m.embedding.bias()[0], 0.75);
  std::remove(path.c_str());
}

// --- Raw-label mapping (satellite 3) --------------------------------------

TEST(RawLabelTest, GappedLabelsSurviveBothCodecs) {
  const Blobs train = MakeBlobs(40, 6, 3, 11);
  const TrainResult fit =
      TrainDenseByName("lda", train.x, train.labels, train.num_classes);
  // Training file used raw ids {3, 7, 42}, compacted to {0, 1, 2}.
  const model::SrdaModel original = model::BuildModel(
      fit.embedding, fit.embedding.Transform(train.x), train.labels,
      train.num_classes, {3, 7, 42}, {});
  EXPECT_EQ(original.raw_label(2), 42);
  EXPECT_EQ(original.ToRawLabels({2, 0, 1}), (std::vector<int>{42, 3, 7}));
  for (const model::Codec codec :
       {model::Codec::kText, model::Codec::kBinary}) {
    const std::string path = TempPath("gapped.model");
    model::Save(original, path, codec);
    const model::SrdaModel loaded = model::Load(path);
    EXPECT_EQ(loaded.raw_labels, (std::vector<int>{3, 7, 42}));
    // Every served prediction must come back in raw space.
    for (int raw : PredictWith(loaded, train.x)) {
      EXPECT_TRUE(raw == 3 || raw == 7 || raw == 42);
    }
    std::remove(path.c_str());
  }
}

// --- Error paths (satellite 4) --------------------------------------------

model::SrdaModel MakeSmallModel() {
  return model::BuildModelFromCentroids(
      LinearEmbedding(Matrix::FromRows({{1.0}, {0.5}, {-0.5}}), Vector{0.0}),
      Matrix::FromRows({{-1.0}, {1.0}}), {}, {});
}

void TruncateFile(const std::string& path, int64_t keep_bytes) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes(static_cast<size_t>(keep_bytes));
  in.read(bytes.data(), keep_bytes);
  ASSERT_EQ(in.gcount(), keep_bytes);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), keep_bytes);
}

TEST(ModelStoreDeathTest, TruncatedBinaryAborts) {
  const std::string path = TempPath("truncated.srdm");
  model::SaveBinary(MakeSmallModel(), path);
  TruncateFile(path, 100);
  EXPECT_DEATH(model::Load(path), "truncated");
  std::remove(path.c_str());
}

TEST(ModelStoreDeathTest, TruncatedTextAborts) {
  const std::string path = TempPath("truncated.txt");
  model::SaveText(MakeSmallModel(), path);
  TruncateFile(path, 85);  // cuts inside the projection section
  EXPECT_DEATH(model::Load(path), "truncated\\.txt");
  std::remove(path.c_str());
}

TEST(ModelStoreDeathTest, WrongMagicAborts) {
  const std::string path = TempPath("wrong-magic.txt");
  {
    std::ofstream out(path);
    out << "definitely not a model\n";
  }
  EXPECT_DEATH(model::Load(path), "not an srda model file");
  std::remove(path.c_str());
}

TEST(ModelStoreDeathTest, TextVersionMismatchAborts) {
  const std::string path = TempPath("future-version.txt");
  {
    std::ofstream out(path);
    out << "srda-model 99\ntrainer lda\n";
  }
  EXPECT_DEATH(model::Load(path), "unsupported model version 99");
  std::remove(path.c_str());
}

TEST(ModelStoreDeathTest, BinaryVersionMismatchAborts) {
  const std::string path = TempPath("future-version.srdm");
  model::SaveBinary(MakeSmallModel(), path);
  {
    // The version int32 sits right after the 4-byte magic.
    std::fstream patch(path,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(4);
    const int32_t future = 99;
    patch.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  EXPECT_DEATH(model::Load(path), "unsupported model version 99");
  std::remove(path.c_str());
}

TEST(ModelStoreDeathTest, DimensionMismatchCentroidsAbort) {
  model::SrdaModel bad = MakeSmallModel();
  bad.centroids = Matrix(2, 3);  // wider than the 1-d embedding output
  EXPECT_DEATH(model::Save(bad, TempPath("bad.txt"), model::Codec::kText),
               "centroid dimension");
  EXPECT_DEATH(model::Save(bad, TempPath("bad.srdm"), model::Codec::kBinary),
               "centroid dimension");
}

TEST(ModelStoreDeathTest, NonAscendingRawLabelsAbort) {
  model::SrdaModel bad = MakeSmallModel();
  bad.raw_labels = {5, 5};
  EXPECT_DEATH(bad.Validate(), "strictly ascending");
}

}  // namespace
}  // namespace srda
