// Tests for the dense Matrix/Vector types and BLAS-like kernels.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/blas.h"
#include "matrix/matrix.h"
#include "matrix/vector.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

Vector RandomVector(int size, Rng* rng) {
  Vector v(size);
  for (int i = 0; i < size; ++i) v[i] = rng->NextGaussian();
  return v;
}

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v[0], 0.0);
  v[1] = 2.5;
  EXPECT_EQ(v[1], 2.5);
  Vector filled(4, 1.5);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(filled[i], 1.5);
  Vector braced{1.0, 2.0, 3.0};
  EXPECT_EQ(braced.size(), 3);
  EXPECT_EQ(braced[2], 3.0);
}

TEST(VectorDeathTest, OutOfBoundsAborts) {
  Vector v(2);
  EXPECT_DEATH(v[2], "out of");
  EXPECT_DEATH(v[-1], "out of");
}

TEST(VectorTest, FillAndResize) {
  Vector v(2);
  v.Fill(7.0);
  EXPECT_EQ(v[0], 7.0);
  v.Resize(4);
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v[3], 0.0);  // New entries zero-filled.
  EXPECT_EQ(v[1], 7.0);  // Old entries preserved.
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixDeathTest, OutOfBoundsAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "out of");
  EXPECT_DEATH(m(0, 2), "out of");
}

TEST(MatrixTest, IdentityAndFromRows) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  const Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(0, 1), 2.0);
}

TEST(MatrixDeathTest, RaggedFromRowsAborts) {
  EXPECT_DEATH(Matrix::FromRows({{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(MatrixTest, TransposedRoundTrip) {
  Rng rng(5);
  const Matrix a = RandomMatrix(4, 7, &rng);
  const Matrix att = a.Transposed().Transposed();
  EXPECT_EQ(MaxAbsDiff(a, att), 0.0);
  const Matrix at = a.Transposed();
  EXPECT_EQ(at.rows(), 7);
  EXPECT_EQ(at.cols(), 4);
  EXPECT_EQ(a(2, 5), at(5, 2));
}

TEST(MatrixTest, RowColSetters) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 2.0, 3.0});
  m.SetCol(2, Vector{9.0, 8.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 2), 9.0);
  EXPECT_EQ(m(1, 2), 8.0);
  const Vector row = m.Row(0);
  EXPECT_EQ(row[2], 9.0);
  const Vector col = m.Col(2);
  EXPECT_EQ(col[1], 8.0);
}

TEST(MatrixTest, Block) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  const Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b(0, 0), 5.0);
  EXPECT_EQ(b(1, 1), 9.0);
}

TEST(BlasTest, DotAxpyScale) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  Scale(0.5, &y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
}

TEST(BlasTest, Norms) {
  Vector x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(x), 4.0);
  Vector zero(5);
  EXPECT_EQ(Norm2(zero), 0.0);
}

TEST(BlasTest, Norm2AvoidsOverflow) {
  Vector huge{1e200, 1e200};
  EXPECT_NEAR(Norm2(huge) / (std::sqrt(2.0) * 1e200), 1.0, 1e-12);
}

TEST(BlasTest, MatrixVectorProducts) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Vector x{1.0, 1.0};
  const Vector ax = Multiply(a, x);
  EXPECT_DOUBLE_EQ(ax[0], 3.0);
  EXPECT_DOUBLE_EQ(ax[2], 11.0);
  const Vector y{1.0, 0.0, 1.0};
  const Vector aty = MultiplyTransposed(a, y);
  EXPECT_DOUBLE_EQ(aty[0], 6.0);
  EXPECT_DOUBLE_EQ(aty[1], 8.0);
}

TEST(BlasTest, MatrixProductAgainstHand) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(BlasTest, TransposedProductsMatchExplicitTranspose) {
  Rng rng(9);
  const Matrix a = RandomMatrix(5, 3, &rng);
  const Matrix b = RandomMatrix(5, 4, &rng);
  const Matrix expected = Multiply(a.Transposed(), b);
  EXPECT_LT(MaxAbsDiff(MultiplyTransposedA(a, b), expected), 1e-12);

  const Matrix c = RandomMatrix(4, 3, &rng);
  const Matrix d = RandomMatrix(6, 3, &rng);
  const Matrix expected2 = Multiply(c, d.Transposed());
  EXPECT_LT(MaxAbsDiff(MultiplyTransposedB(c, d), expected2), 1e-12);
}

TEST(BlasTest, GramMatchesExplicit) {
  Rng rng(11);
  const Matrix a = RandomMatrix(6, 4, &rng);
  const Matrix expected = Multiply(a.Transposed(), a);
  EXPECT_LT(MaxAbsDiff(Gram(a), expected), 1e-12);
  const Matrix expected_outer = Multiply(a, a.Transposed());
  EXPECT_LT(MaxAbsDiff(OuterGram(a), expected_outer), 1e-12);
}

TEST(BlasTest, GramIsSymmetric) {
  Rng rng(13);
  const Matrix a = RandomMatrix(8, 5, &rng);
  const Matrix g = Gram(a);
  EXPECT_LT(MaxAbsDiff(g, g.Transposed()), 1e-15);
}

TEST(BlasTest, AddDiagonal) {
  Matrix m(3, 3);
  AddDiagonal(2.5, &m);
  EXPECT_EQ(m(1, 1), 2.5);
  EXPECT_EQ(m(0, 1), 0.0);
}

TEST(BlasDeathTest, AddDiagonalNonSquareAborts) {
  Matrix m(2, 3);
  EXPECT_DEATH(AddDiagonal(1.0, &m), "square");
}

TEST(BlasTest, ColumnMeansAndCentering) {
  Matrix m = Matrix::FromRows({{1, 10}, {3, 20}});
  const Vector mean = ColumnMeans(m);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 15.0);
  SubtractRowVector(mean, &m);
  EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);
  const Vector new_mean = ColumnMeans(m);
  EXPECT_NEAR(new_mean[0], 0.0, 1e-15);
  EXPECT_NEAR(new_mean[1], 0.0, 1e-15);
}

TEST(BlasDeathTest, ShapeMismatchesAbort) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_DEATH(Multiply(a, b), "shape mismatch");
  const Vector x(2);
  EXPECT_DEATH(Multiply(a, x), "shape mismatch");
  Vector y(3);
  EXPECT_DEATH(Dot(x, y), "size mismatch");
}

// Property sweep: (A B) x == A (B x) across shapes.
class BlasAssociativityTest : public ::testing::TestWithParam<int> {};

TEST_P(BlasAssociativityTest, MatrixProductAssociatesWithVector) {
  Rng rng(100 + GetParam());
  const int m = 2 + GetParam() % 7;
  const int k = 1 + GetParam() % 5;
  const int n = 3 + GetParam() % 4;
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  const Vector x = RandomVector(n, &rng);
  const Vector left = Multiply(Multiply(a, b), x);
  const Vector right = Multiply(a, Multiply(b, x));
  EXPECT_LT(MaxAbsDiff(left, right), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlasAssociativityTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace srda
