// Tests for dataset containers, splits, and the four synthetic generators.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/dataset.h"
#include "dataset/digit_generator.h"
#include "dataset/face_generator.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"
#include "matrix/blas.h"

namespace srda {
namespace {

TEST(DatasetTest, ClassCounts) {
  const std::vector<int> labels = {0, 1, 1, 2, 2, 2};
  const std::vector<int> counts = ClassCounts(labels, 3);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 3);
}

TEST(DatasetDeathTest, OutOfRangeLabelAborts) {
  EXPECT_DEATH(ClassCounts({0, 3}, 3), "outside");
  EXPECT_DEATH(ClassCounts({-1}, 3), "outside");
}

TEST(DatasetTest, DenseSubset) {
  DenseDataset dataset;
  dataset.num_classes = 2;
  dataset.features = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  dataset.labels = {0, 1, 0};
  const DenseDataset subset = Subset(dataset, {2, 0});
  EXPECT_EQ(subset.features.rows(), 2);
  EXPECT_EQ(subset.features(0, 0), 5.0);
  EXPECT_EQ(subset.features(1, 1), 2.0);
  EXPECT_EQ(subset.labels[0], 0);
}

TEST(DatasetTest, SparseSubset) {
  SparseDataset dataset;
  dataset.num_classes = 2;
  SparseMatrixBuilder builder(3, 4);
  builder.Add(0, 1, 1.0);
  builder.Add(2, 3, 2.0);
  dataset.features = std::move(builder).Build();
  dataset.labels = {0, 1, 1};
  const SparseDataset subset = Subset(dataset, {2, 1});
  EXPECT_EQ(subset.features.rows(), 2);
  EXPECT_EQ(subset.features.ToDense()(0, 3), 2.0);
  EXPECT_EQ(subset.features.RowNonZeros(1), 0);
  EXPECT_EQ(subset.labels[0], 1);
}

TEST(SplitTest, StratifiedByCountSizes) {
  std::vector<int> labels;
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i < 25; ++i) labels.push_back(k);
  }
  Rng rng(1);
  const TrainTestSplit split = StratifiedSplitByCount(labels, 4, 10, &rng);
  EXPECT_EQ(split.train.size(), 40u);
  EXPECT_EQ(split.test.size(), 60u);
  // Exactly 10 train per class.
  std::vector<int> per_class(4, 0);
  for (int index : split.train) ++per_class[labels[index]];
  for (int k = 0; k < 4; ++k) EXPECT_EQ(per_class[k], 10);
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 12; ++i) labels.push_back(k);
  }
  Rng rng(2);
  const TrainTestSplit split = StratifiedSplitByCount(labels, 3, 5, &rng);
  std::set<int> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), labels.size());
  EXPECT_EQ(split.train.size() + split.test.size(), labels.size());
}

TEST(SplitTest, DifferentSeedsGiveDifferentSplits) {
  std::vector<int> labels(40, 0);
  Rng rng1(1);
  Rng rng2(2);
  const TrainTestSplit a = StratifiedSplitByCount(labels, 1, 20, &rng1);
  const TrainTestSplit b = StratifiedSplitByCount(labels, 1, 20, &rng2);
  EXPECT_NE(a.train, b.train);
}

TEST(SplitDeathTest, TooFewSamplesAborts) {
  std::vector<int> labels = {0, 0, 1};
  Rng rng(3);
  EXPECT_DEATH(StratifiedSplitByCount(labels, 2, 1, &rng), "too small");
}

TEST(SplitTest, FractionSplit) {
  std::vector<int> labels;
  for (int k = 0; k < 5; ++k) {
    for (int i = 0; i < 20; ++i) labels.push_back(k);
  }
  Rng rng(4);
  const TrainTestSplit split =
      StratifiedSplitByFraction(labels, 5, 0.3, &rng);
  EXPECT_EQ(split.train.size(), 30u);  // 6 per class.
  EXPECT_EQ(split.test.size(), 70u);
}

TEST(SplitTest, FractionAlwaysLeavesTestSamples) {
  std::vector<int> labels = {0, 0, 1, 1};
  Rng rng(5);
  const TrainTestSplit split =
      StratifiedSplitByFraction(labels, 2, 0.9, &rng);
  EXPECT_EQ(split.train.size(), 2u);
  EXPECT_EQ(split.test.size(), 2u);
}

TEST(FaceGeneratorTest, ShapeAndRange) {
  FaceGeneratorOptions options;
  options.num_subjects = 5;
  options.images_per_subject = 8;
  options.image_size = 16;
  const DenseDataset dataset = GenerateFaceDataset(options);
  ValidateDataset(dataset);
  EXPECT_EQ(dataset.features.rows(), 40);
  EXPECT_EQ(dataset.features.cols(), 256);
  EXPECT_EQ(dataset.num_classes, 5);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    for (int j = 0; j < dataset.features.cols(); ++j) {
      EXPECT_GE(dataset.features(i, j), 0.0);
      EXPECT_LE(dataset.features(i, j), 1.0);
    }
  }
}

TEST(FaceGeneratorTest, DeterministicInSeed) {
  FaceGeneratorOptions options;
  options.num_subjects = 3;
  options.images_per_subject = 4;
  options.image_size = 8;
  const DenseDataset a = GenerateFaceDataset(options);
  const DenseDataset b = GenerateFaceDataset(options);
  EXPECT_EQ(MaxAbsDiff(a.features, b.features), 0.0);
  options.seed = 99;
  const DenseDataset c = GenerateFaceDataset(options);
  EXPECT_GT(MaxAbsDiff(a.features, c.features), 0.0);
}

TEST(FaceGeneratorTest, WithinClassCloserThanBetweenClass) {
  FaceGeneratorOptions options;
  options.num_subjects = 6;
  options.images_per_subject = 10;
  options.image_size = 16;
  const DenseDataset dataset = GenerateFaceDataset(options);
  // Average distance to same-class samples should be below distance to
  // other-class samples for a well-formed class structure.
  double within = 0.0;
  double between = 0.0;
  int within_count = 0;
  int between_count = 0;
  for (int i = 0; i < dataset.features.rows(); i += 3) {
    for (int j = i + 1; j < dataset.features.rows(); j += 3) {
      Vector diff = dataset.features.Row(i);
      Axpy(-1.0, dataset.features.Row(j), &diff);
      const double distance = Norm2(diff);
      if (dataset.labels[i] == dataset.labels[j]) {
        within += distance;
        ++within_count;
      } else {
        between += distance;
        ++between_count;
      }
    }
  }
  ASSERT_GT(within_count, 0);
  ASSERT_GT(between_count, 0);
  EXPECT_LT(within / within_count, between / between_count);
}

TEST(SpokenLetterGeneratorTest, ShapeAndDeterminism) {
  SpokenLetterGeneratorOptions options;
  options.num_classes = 6;
  options.examples_per_class = 10;
  options.num_features = 50;
  const DenseDataset a = GenerateSpokenLetterDataset(options);
  ValidateDataset(a);
  EXPECT_EQ(a.features.rows(), 60);
  EXPECT_EQ(a.features.cols(), 50);
  const DenseDataset b = GenerateSpokenLetterDataset(options);
  EXPECT_EQ(MaxAbsDiff(a.features, b.features), 0.0);
}

TEST(SpokenLetterGeneratorTest, ClassesSeparable) {
  SpokenLetterGeneratorOptions options;
  options.num_classes = 4;
  options.examples_per_class = 30;
  options.num_features = 40;
  options.output_scale = 1.0;  // Unit scale keeps the margin check simple.
  const DenseDataset dataset = GenerateSpokenLetterDataset(options);
  // Class means must be pairwise distinct by a margin above the noise.
  Matrix means(4, 40);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    const int label = dataset.labels[i];
    ++counts[label];
    for (int j = 0; j < 40; ++j) {
      means(label, j) += dataset.features(i, j);
    }
  }
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 40; ++j) means(k, j) /= counts[k];
  }
  for (int k = 0; k < 4; ++k) {
    for (int l = k + 1; l < 4; ++l) {
      Vector diff = means.Row(k);
      Axpy(-1.0, means.Row(l), &diff);
      EXPECT_GT(Norm2(diff), 1.0) << "classes " << k << " and " << l;
    }
  }
}

TEST(DigitGeneratorTest, ShapeRangeDeterminism) {
  DigitGeneratorOptions options;
  options.examples_per_class = 5;
  options.image_size = 16;
  const DenseDataset a = GenerateDigitDataset(options);
  ValidateDataset(a);
  EXPECT_EQ(a.num_classes, 10);
  EXPECT_EQ(a.features.rows(), 50);
  EXPECT_EQ(a.features.cols(), 256);
  for (int i = 0; i < a.features.rows(); ++i) {
    for (int j = 0; j < a.features.cols(); ++j) {
      EXPECT_GE(a.features(i, j), 0.0);
      EXPECT_LE(a.features(i, j), 1.0);
    }
  }
  const DenseDataset b = GenerateDigitDataset(options);
  EXPECT_EQ(MaxAbsDiff(a.features, b.features), 0.0);
}

TEST(DigitGeneratorTest, DigitsHaveInk) {
  DigitGeneratorOptions options;
  options.examples_per_class = 2;
  options.image_size = 20;
  options.noise_stddev = 0.0;
  const DenseDataset dataset = GenerateDigitDataset(options);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    double total = 0.0;
    for (int j = 0; j < dataset.features.cols(); ++j) {
      total += dataset.features(i, j);
    }
    EXPECT_GT(total, 5.0) << "digit image " << i << " nearly blank";
  }
}

TEST(DigitGeneratorTest, DistinctDigitsDiffer) {
  DigitGeneratorOptions options;
  options.examples_per_class = 1;
  options.image_size = 20;
  options.noise_stddev = 0.0;
  options.max_shift_pixels = 0.0;
  options.max_rotation_radians = 0.0;
  options.scale_jitter = 0.0;
  const DenseDataset dataset = GenerateDigitDataset(options);
  // A 0 and a 1 should differ substantially.
  Vector diff = dataset.features.Row(0);
  Axpy(-1.0, dataset.features.Row(1), &diff);
  EXPECT_GT(Norm2(diff), 2.0);
}

TEST(TextGeneratorTest, ShapeSparsityNormalization) {
  TextGeneratorOptions options;
  options.num_topics = 5;
  options.docs_per_topic = 20;
  options.vocabulary_size = 2000;
  options.topic_vocabulary_size = 150;
  options.mean_document_length = 80.0;
  const SparseDataset dataset = GenerateTextDataset(options);
  ValidateDataset(dataset);
  EXPECT_EQ(dataset.features.rows(), 100);
  EXPECT_EQ(dataset.features.cols(), 2000);
  // Documents are sparse: far fewer than vocab non-zeros.
  EXPECT_LT(dataset.features.AvgNonZerosPerRow(), 200.0);
  EXPECT_GT(dataset.features.AvgNonZerosPerRow(), 10.0);
  // Rows are L2-normalized.
  for (int i = 0; i < dataset.features.rows(); ++i) {
    const double* values = dataset.features.RowValues(i);
    double norm_sq = 0.0;
    for (int k = 0; k < dataset.features.RowNonZeros(i); ++k) {
      norm_sq += values[k] * values[k];
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-9);
  }
}

TEST(TextGeneratorTest, Deterministic) {
  TextGeneratorOptions options;
  options.num_topics = 3;
  options.docs_per_topic = 5;
  options.vocabulary_size = 500;
  options.topic_vocabulary_size = 60;
  const SparseDataset a = GenerateTextDataset(options);
  const SparseDataset b = GenerateTextDataset(options);
  EXPECT_EQ(a.features.NumNonZeros(), b.features.NumNonZeros());
  EXPECT_EQ(MaxAbsDiff(a.features.ToDense(), b.features.ToDense()), 0.0);
}

TEST(TextGeneratorTest, TopicsUseDistinctVocabulary) {
  TextGeneratorOptions options;
  options.num_topics = 2;
  options.docs_per_topic = 40;
  options.vocabulary_size = 3000;
  options.topic_vocabulary_size = 200;
  options.topic_word_fraction = 0.6;
  options.contamination_fraction = 0.2;
  const SparseDataset dataset = GenerateTextDataset(options);
  // Aggregate term usage per topic; overlap of top terms should be partial.
  std::vector<double> topic0(3000, 0.0);
  std::vector<double> topic1(3000, 0.0);
  for (int i = 0; i < dataset.features.rows(); ++i) {
    auto& target = dataset.labels[i] == 0 ? topic0 : topic1;
    for (int k = 0; k < dataset.features.RowNonZeros(i); ++k) {
      target[dataset.features.RowIndices(i)[k]] +=
          dataset.features.RowValues(i)[k];
    }
  }
  // Correlation between topic term profiles should be well below 1.
  double dot = 0.0;
  double n0 = 0.0;
  double n1 = 0.0;
  for (int t = 0; t < 3000; ++t) {
    dot += topic0[t] * topic1[t];
    n0 += topic0[t] * topic0[t];
    n1 += topic1[t] * topic1[t];
  }
  EXPECT_LT(dot / std::sqrt(n0 * n1), 0.9);
}

}  // namespace
}  // namespace srda
