// Tests for the command-line flag parser used by the tools.

#include <gtest/gtest.h>

#include "common/arg_parser.h"

namespace srda {
namespace {

ArgParser Parse(std::initializer_list<const char*> arguments) {
  std::vector<const char*> argv = {"binary"};
  argv.insert(argv.end(), arguments.begin(), arguments.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, StringFlags) {
  const ArgParser args = Parse({"--data=/tmp/x.csv", "--format=libsvm"});
  EXPECT_EQ(args.GetString("data", ""), "/tmp/x.csv");
  EXPECT_EQ(args.GetString("format", "csv"), "libsvm");
  EXPECT_EQ(args.GetString("missing", "fallback"), "fallback");
}

TEST(ArgParserTest, NumericFlags) {
  const ArgParser args = Parse({"--alpha=0.25", "--iterations=17"});
  EXPECT_DOUBLE_EQ(args.GetDouble("alpha", 1.0), 0.25);
  EXPECT_EQ(args.GetInt("iterations", 20), 17);
  EXPECT_EQ(args.GetInt("missing", 42), 42);
}

TEST(ArgParserTest, BooleanFlags) {
  const ArgParser args =
      Parse({"--full", "--verbose=true", "--quiet=false", "--flag=0"});
  EXPECT_TRUE(args.GetBool("full"));
  EXPECT_TRUE(args.GetBool("verbose"));
  EXPECT_FALSE(args.GetBool("quiet"));
  EXPECT_FALSE(args.GetBool("flag"));
  EXPECT_FALSE(args.GetBool("missing"));
  EXPECT_TRUE(args.GetBool("missing2", true));
}

TEST(ArgParserTest, PositionalArguments) {
  const ArgParser args = Parse({"first", "--flag", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(ArgParserTest, UnusedFlagsTracked) {
  const ArgParser args = Parse({"--used=1", "--typo=2"});
  EXPECT_EQ(args.GetInt("used", 0), 1);
  const std::vector<std::string> unused = args.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParserTest, HasMarksFlagsUsed) {
  const ArgParser args = Parse({"--present"});
  EXPECT_TRUE(args.Has("present"));
  EXPECT_FALSE(args.Has("absent"));
  EXPECT_TRUE(args.UnusedFlags().empty());
}

TEST(ArgParserDeathTest, MalformedNumbersAbort) {
  const ArgParser args = Parse({"--alpha=abc", "--count=1.5x"});
  EXPECT_DEATH(args.GetDouble("alpha", 0.0), "not a number");
  EXPECT_DEATH(args.GetInt("count", 0), "not an integer");
}

TEST(ArgParserDeathTest, MalformedBoolAborts) {
  const ArgParser args = Parse({"--flag=maybe"});
  EXPECT_DEATH(args.GetBool("flag"), "not a boolean");
}

}  // namespace
}  // namespace srda
