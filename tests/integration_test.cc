// Integration tests: full generate -> split -> train -> embed -> classify
// pipelines across all four algorithms and all four dataset generators,
// mirroring the paper's experimental protocol at miniature scale.

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "core/srda.h"
#include "dataset/digit_generator.h"
#include "dataset/face_generator.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"

namespace srda {
namespace {

// Trains, embeds and evaluates with a nearest-centroid classifier.
double EvaluateEmbedding(const LinearEmbedding& embedding,
                         const DenseDataset& train, const DenseDataset& test) {
  const Matrix train_embedded = embedding.Transform(train.features);
  const Matrix test_embedded = embedding.Transform(test.features);
  CentroidClassifier classifier;
  classifier.Fit(train_embedded, train.labels, train.num_classes);
  return ErrorRate(classifier.Predict(test_embedded), test.labels);
}

class FacePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FaceGeneratorOptions options;
    options.num_subjects = 10;
    options.images_per_subject = 20;
    options.image_size = 16;  // 256 features
    dataset_ = new DenseDataset(GenerateFaceDataset(options));
    Rng rng(42);
    const TrainTestSplit split =
        StratifiedSplitByCount(dataset_->labels, 10, 5, &rng);
    train_ = new DenseDataset(Subset(*dataset_, split.train));
    test_ = new DenseDataset(Subset(*dataset_, split.test));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete train_;
    delete test_;
    dataset_ = nullptr;
    train_ = nullptr;
    test_ = nullptr;
  }

  static DenseDataset* dataset_;
  static DenseDataset* train_;
  static DenseDataset* test_;
};

DenseDataset* FacePipelineTest::dataset_ = nullptr;
DenseDataset* FacePipelineTest::train_ = nullptr;
DenseDataset* FacePipelineTest::test_ = nullptr;

TEST_F(FacePipelineTest, LdaBeatsChance) {
  const LdaModel model = FitLda(train_->features, train_->labels, 10);
  ASSERT_TRUE(model.converged);
  // Plain LDA overfits badly at 5 train/class in 256 dims (the paper's
  // Table III shows the same effect); only require beating chance (90%).
  EXPECT_LT(EvaluateEmbedding(model.embedding, *train_, *test_), 0.75);
}

TEST_F(FacePipelineTest, RldaBeatsChance) {
  const RldaModel model = FitRlda(train_->features, train_->labels, 10);
  ASSERT_TRUE(model.converged);
  // Chance is 90% error on this deliberately hard miniature (5 train/class).
  EXPECT_LT(EvaluateEmbedding(model.embedding, *train_, *test_), 0.7);
}

TEST_F(FacePipelineTest, SrdaBeatsChance) {
  const SrdaModel model = FitSrda(train_->features, train_->labels, 10);
  ASSERT_TRUE(model.converged);
  EXPECT_LT(EvaluateEmbedding(model.embedding, *train_, *test_), 0.7);
}

TEST_F(FacePipelineTest, IdrQrBeatsChance) {
  const IdrQrModel model = FitIdrQr(train_->features, train_->labels, 10);
  ASSERT_TRUE(model.converged);
  EXPECT_LT(EvaluateEmbedding(model.embedding, *train_, *test_), 0.88);
}

TEST_F(FacePipelineTest, RegularizedVariantsNotWorseThanPlainLda) {
  // The paper's central empirical claim (Tables III/V/VII): RLDA and SRDA
  // dominate plain LDA in the small-sample regime. Allow slack for the
  // miniature scale.
  const LdaModel lda = FitLda(train_->features, train_->labels, 10);
  const RldaModel rlda = FitRlda(train_->features, train_->labels, 10);
  const SrdaModel srda_model = FitSrda(train_->features, train_->labels, 10);
  const double lda_error = EvaluateEmbedding(lda.embedding, *train_, *test_);
  const double rlda_error =
      EvaluateEmbedding(rlda.embedding, *train_, *test_);
  const double srda_error =
      EvaluateEmbedding(srda_model.embedding, *train_, *test_);
  EXPECT_LE(rlda_error, lda_error + 0.05);
  EXPECT_LE(srda_error, lda_error + 0.05);
}

TEST_F(FacePipelineTest, SrdaAndRldaTrackEachOther) {
  // The paper reports RLDA and SRDA within ~1 point of each other
  // everywhere.
  const RldaModel rlda = FitRlda(train_->features, train_->labels, 10);
  const SrdaModel srda_model = FitSrda(train_->features, train_->labels, 10);
  const double rlda_error =
      EvaluateEmbedding(rlda.embedding, *train_, *test_);
  const double srda_error =
      EvaluateEmbedding(srda_model.embedding, *train_, *test_);
  EXPECT_NEAR(srda_error, rlda_error, 0.15);
}

TEST(SpokenLetterPipelineTest, AllAlgorithmsLearn) {
  SpokenLetterGeneratorOptions options;
  options.num_classes = 8;
  options.examples_per_class = 40;
  options.num_features = 60;
  const DenseDataset dataset = GenerateSpokenLetterDataset(options);
  Rng rng(7);
  const TrainTestSplit split =
      StratifiedSplitByCount(dataset.labels, 8, 20, &rng);
  const DenseDataset train = Subset(dataset, split.train);
  const DenseDataset test = Subset(dataset, split.test);

  const LdaModel lda = FitLda(train.features, train.labels, 8);
  const RldaModel rlda = FitRlda(train.features, train.labels, 8);
  const SrdaModel srda_model = FitSrda(train.features, train.labels, 8);
  const IdrQrModel idr = FitIdrQr(train.features, train.labels, 8);
  ASSERT_TRUE(lda.converged && rlda.converged && srda_model.converged &&
              idr.converged);
  // Chance is 87.5% error; everything should do far better on this
  // Gaussian-like data.
  EXPECT_LT(EvaluateEmbedding(lda.embedding, train, test), 0.4);
  EXPECT_LT(EvaluateEmbedding(rlda.embedding, train, test), 0.4);
  EXPECT_LT(EvaluateEmbedding(srda_model.embedding, train, test), 0.4);
  EXPECT_LT(EvaluateEmbedding(idr.embedding, train, test), 0.6);
}

TEST(DigitPipelineTest, SrdaLearnsDigits) {
  DigitGeneratorOptions options;
  options.examples_per_class = 30;
  options.image_size = 16;
  const DenseDataset dataset = GenerateDigitDataset(options);
  Rng rng(11);
  const TrainTestSplit split =
      StratifiedSplitByCount(dataset.labels, 10, 15, &rng);
  const DenseDataset train = Subset(dataset, split.train);
  const DenseDataset test = Subset(dataset, split.test);
  const SrdaModel model = FitSrda(train.features, train.labels, 10);
  ASSERT_TRUE(model.converged);
  // Chance is 90% error.
  EXPECT_LT(EvaluateEmbedding(model.embedding, train, test), 0.55);
}

TEST(TextPipelineTest, SparseSrdaLearnsTopics) {
  TextGeneratorOptions options;
  options.num_topics = 6;
  options.docs_per_topic = 60;
  options.vocabulary_size = 3000;
  options.topic_vocabulary_size = 200;
  const SparseDataset dataset = GenerateTextDataset(options);
  Rng rng(13);
  const TrainTestSplit split =
      StratifiedSplitByFraction(dataset.labels, 6, 0.5, &rng);
  const SparseDataset train = Subset(dataset, split.train);
  const SparseDataset test = Subset(dataset, split.test);

  SrdaOptions srda_options;
  srda_options.solver = SrdaSolver::kLsqr;
  srda_options.lsqr_iterations = 15;  // The paper's setting for 20News.
  srda_options.alpha = 1.0;
  const SrdaModel model =
      FitSrda(train.features, train.labels, 6, srda_options);
  ASSERT_TRUE(model.converged);

  const Matrix train_embedded = model.embedding.Transform(train.features);
  const Matrix test_embedded = model.embedding.Transform(test.features);
  CentroidClassifier classifier;
  classifier.Fit(train_embedded, train.labels, 6);
  const double error = ErrorRate(classifier.Predict(test_embedded),
                                 test.labels);
  // Chance is ~83% error.
  EXPECT_LT(error, 0.35);
}

TEST(ReproducibilityTest, WholePipelineIsDeterministic) {
  SpokenLetterGeneratorOptions options;
  options.num_classes = 5;
  options.examples_per_class = 20;
  options.num_features = 30;
  auto run = [&]() {
    const DenseDataset dataset = GenerateSpokenLetterDataset(options);
    Rng rng(99);
    const TrainTestSplit split =
        StratifiedSplitByCount(dataset.labels, 5, 8, &rng);
    const DenseDataset train = Subset(dataset, split.train);
    const DenseDataset test = Subset(dataset, split.test);
    const SrdaModel model = FitSrda(train.features, train.labels, 5);
    return EvaluateEmbedding(model.embedding, train, test);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace srda
