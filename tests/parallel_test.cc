// Tests for the parallel execution layer: pool lifecycle, ParallelFor
// coverage, exception propagation, nesting, and the determinism guarantee
// that 1-thread and N-thread runs of the parallel kernels are bitwise
// identical (DESIGN.md, "Threading model").

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/srda.h"
#include "linalg/cholesky.h"
#include "matrix/blas.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const size_t bytes = static_cast<size_t>(a.rows()) * a.cols() *
                       sizeof(double);
  return bytes == 0 || std::memcmp(a.data(), b.data(), bytes) == 0;
}

bool BitwiseEqual(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) return false;
  const size_t bytes = static_cast<size_t>(x.size()) * sizeof(double);
  return bytes == 0 || std::memcmp(x.data(), y.data(), bytes) == 0;
}

TEST(ThreadPoolTest, StartupAndShutdownRepeatedly) {
  for (int round = 0; round < 3; ++round) {
    ThreadPoolOptions options;
    options.num_threads = 4;
    ThreadPool pool(options);
    EXPECT_EQ(pool.num_threads(), 4);
    std::atomic<int> sum{0};
    pool.ParallelFor(0, 100, [&](int begin, int end) {
      for (int i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }  // Destructor joins the workers; leaks/hangs would fail the test run.
}

TEST(ThreadPoolTest, ResolvesThreadCountFromEnvironment) {
  ASSERT_EQ(setenv("SRDA_NUM_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveThreadCount(ThreadPoolOptions{}), 3);
  // Explicit options win over the environment.
  ThreadPoolOptions explicit_options;
  explicit_options.num_threads = 2;
  EXPECT_EQ(ResolveThreadCount(explicit_options), 2);
  // Garbage in the variable falls back to hardware concurrency (>= 1).
  ASSERT_EQ(setenv("SRDA_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ResolveThreadCount(ThreadPoolOptions{}), 1);
  ASSERT_EQ(unsetenv("SRDA_NUM_THREADS"), 0);
}

TEST(ThreadPoolTest, CoversAllIndicesExactlyOnce) {
  ThreadPoolOptions options;
  options.num_threads = 4;
  ThreadPool pool(options);
  constexpr int kCount = 10007;  // Prime: exercises uneven chunk sizes.
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kCount, [&](int begin, int end) {
    ASSERT_LE(begin, end);
    for (int i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPoolOptions options;
  options.num_threads = 4;
  ThreadPool pool(options);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(7, 8, [&](int begin, int end) {
    ++calls;
    EXPECT_EQ(begin, 7);
    EXPECT_EQ(end, 8);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPoolOptions options;
  options.num_threads = 1;
  ThreadPool pool(options);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 64, [&](int, int) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, PropagatesExceptionsToCaller) {
  ThreadPoolOptions options;
  options.num_threads = 4;
  ThreadPool pool(options);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](int begin, int) {
                         if (begin >= 500) {
                           throw std::runtime_error("chunk failed");
                         }
                       }),
      std::runtime_error);
  // The pool survives a throwing job and keeps working.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 100, [&](int begin, int end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPoolOptions options;
  options.num_threads = 4;
  ThreadPool pool(options);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 16, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      // A nested call from a worker must execute inline, not re-enqueue.
      pool.ParallelFor(0, 8, [&](int inner_begin, int inner_end) {
        total.fetch_add(inner_end - inner_begin);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 8);
}

TEST(GlobalPoolTest, SetGlobalThreadCountTakesEffect) {
  SetGlobalThreadCount(2);
  EXPECT_EQ(GlobalThreadCount(), 2);
  SetGlobalThreadCount(1);
  EXPECT_EQ(GlobalThreadCount(), 1);
}

// Determinism: the dense kernels partition disjoint output rows and keep
// each element's accumulation order fixed, so any thread count must produce
// the same bits.
TEST(DeterminismTest, DenseKernelsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(101);
  const Matrix a = RandomMatrix(57, 43, &rng);
  const Matrix b = RandomMatrix(43, 29, &rng);
  const Matrix bt = RandomMatrix(31, 43, &rng);

  SetGlobalThreadCount(1);
  const Matrix product1 = Multiply(a, b);
  const Matrix gram1 = Gram(a);
  const Matrix outer1 = OuterGram(a);
  const Matrix ata1 = MultiplyTransposedA(a, a);
  const Matrix abt1 = MultiplyTransposedB(a, bt);

  SetGlobalThreadCount(4);
  const Matrix product4 = Multiply(a, b);
  const Matrix gram4 = Gram(a);
  const Matrix outer4 = OuterGram(a);
  const Matrix ata4 = MultiplyTransposedA(a, a);
  const Matrix abt4 = MultiplyTransposedB(a, bt);
  SetGlobalThreadCount(1);

  EXPECT_TRUE(BitwiseEqual(product1, product4));
  EXPECT_TRUE(BitwiseEqual(gram1, gram4));
  EXPECT_TRUE(BitwiseEqual(outer1, outer4));
  EXPECT_TRUE(BitwiseEqual(ata1, ata4));
  EXPECT_TRUE(BitwiseEqual(abt1, abt4));
}

TEST(DeterminismTest, BlockedCholeskyBitwiseIdenticalAcrossThreadCounts) {
  // The blocked factorization runs its TRSM and SYRK stages on the pool;
  // like the dense products, each element's update chain is fixed, so the
  // factor and the batched solve must not depend on the thread count.
  Rng rng(404);
  const int n = 150;  // Several panels at the default panel width.
  const Matrix basis = RandomMatrix(n + 5, n, &rng);
  Matrix spd = Gram(basis);
  for (int i = 0; i < n; ++i) spd(i, i) += n;
  const Matrix rhs = RandomMatrix(n, 4, &rng);

  SetGlobalThreadCount(1);
  Cholesky chol1;
  ASSERT_TRUE(chol1.Factor(spd));
  const Matrix solve1 = chol1.SolveMatrix(rhs);
  SetGlobalThreadCount(4);
  Cholesky chol4;
  ASSERT_TRUE(chol4.Factor(spd));
  const Matrix solve4 = chol4.SolveMatrix(rhs);
  SetGlobalThreadCount(1);

  EXPECT_TRUE(BitwiseEqual(chol1.factor(), chol4.factor()));
  EXPECT_TRUE(BitwiseEqual(solve1, solve4));
}

TEST(DeterminismTest, SparseTransposeProductBitwiseIdentical) {
  // More rows than the fixed reduction chunk (512) so several per-chunk
  // partials really are folded.
  Rng rng(202);
  const int rows = 1700;
  const int cols = 90;
  SparseMatrixBuilder builder(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.NextDouble() < 0.15) builder.Add(i, j, rng.NextGaussian());
    }
  }
  const SparseMatrix sparse = std::move(builder).Build();
  Vector x(rows);
  for (int i = 0; i < rows; ++i) x[i] = rng.NextGaussian();
  Vector dense_x(cols);
  for (int j = 0; j < cols; ++j) dense_x[j] = rng.NextGaussian();

  SetGlobalThreadCount(1);
  const Vector transposed1 = sparse.MultiplyTransposed(x);
  const Vector forward1 = sparse.Multiply(dense_x);
  SetGlobalThreadCount(4);
  const Vector transposed4 = sparse.MultiplyTransposed(x);
  const Vector forward4 = sparse.Multiply(dense_x);
  SetGlobalThreadCount(1);

  EXPECT_TRUE(BitwiseEqual(transposed1, transposed4));
  EXPECT_TRUE(BitwiseEqual(forward1, forward4));
}

TEST(DeterminismTest, FitSrdaBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(303);
  const int num_classes = 5;
  const int per_class = 30;
  const int dim = 40;
  Matrix x(num_classes * per_class, dim);
  std::vector<int> labels;
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        x(row, j) = (j % num_classes == k ? 2.0 : 0.0) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  SparseMatrix sparse = SparseFromDense(x, /*tolerance=*/0.0);

  for (SrdaSolver solver :
       {SrdaSolver::kNormalEquations, SrdaSolver::kLsqr}) {
    SrdaOptions options;
    options.solver = solver;
    options.alpha = 0.8;
    SetGlobalThreadCount(1);
    const SrdaModel model1 = FitSrda(x, labels, num_classes, options);
    SetGlobalThreadCount(4);
    const SrdaModel model4 = FitSrda(x, labels, num_classes, options);
    SetGlobalThreadCount(1);
    ASSERT_TRUE(model1.converged);
    ASSERT_TRUE(model4.converged);
    EXPECT_TRUE(BitwiseEqual(model1.embedding.projection(),
                             model4.embedding.projection()));
    EXPECT_TRUE(BitwiseEqual(model1.embedding.bias(),
                             model4.embedding.bias()));
    EXPECT_EQ(model1.total_lsqr_iterations, model4.total_lsqr_iterations);
  }

  // Sparse LSQR path too (exercises the chunked A^T x reduction inside the
  // pooled per-response solves).
  SrdaOptions sparse_options;
  sparse_options.solver = SrdaSolver::kLsqr;
  SetGlobalThreadCount(1);
  const SrdaModel sparse1 = FitSrda(sparse, labels, num_classes,
                                    sparse_options);
  SetGlobalThreadCount(4);
  const SrdaModel sparse4 = FitSrda(sparse, labels, num_classes,
                                    sparse_options);
  SetGlobalThreadCount(1);
  EXPECT_TRUE(BitwiseEqual(sparse1.embedding.projection(),
                           sparse4.embedding.projection()));
  EXPECT_TRUE(BitwiseEqual(sparse1.embedding.bias(),
                           sparse4.embedding.bias()));
}

}  // namespace
}  // namespace srda
