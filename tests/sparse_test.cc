// Tests for the CSR sparse matrix.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/blas.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

SparseMatrix RandomSparse(int rows, int cols, double density, Rng* rng) {
  SparseMatrixBuilder builder(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng->NextDouble() < density) builder.Add(i, j, rng->NextGaussian());
    }
  }
  return std::move(builder).Build();
}

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrixBuilder builder(3, 4);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.NumNonZeros(), 0);
  EXPECT_EQ(m.AvgNonZerosPerRow(), 0.0);
  const Vector y = m.Multiply(Vector(4));
  EXPECT_EQ(y.size(), 3);
}

TEST(SparseMatrixTest, BuildAndDensify) {
  SparseMatrixBuilder builder(2, 3);
  builder.Add(0, 1, 2.0);
  builder.Add(1, 0, -1.0);
  builder.Add(1, 2, 3.0);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.NumNonZeros(), 3);
  const Matrix dense = m.ToDense();
  EXPECT_EQ(dense(0, 1), 2.0);
  EXPECT_EQ(dense(1, 0), -1.0);
  EXPECT_EQ(dense(1, 2), 3.0);
  EXPECT_EQ(dense(0, 0), 0.0);
}

TEST(SparseMatrixTest, DuplicatesAreSummed) {
  SparseMatrixBuilder builder(1, 2);
  builder.Add(0, 0, 1.5);
  builder.Add(0, 0, 2.5);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.NumNonZeros(), 1);
  EXPECT_EQ(m.ToDense()(0, 0), 4.0);
}

TEST(SparseMatrixTest, CancellingDuplicatesDropped) {
  SparseMatrixBuilder builder(1, 2);
  builder.Add(0, 1, 1.0);
  builder.Add(0, 1, -1.0);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.NumNonZeros(), 0);
}

TEST(SparseMatrixTest, ExplicitZerosDropped) {
  SparseMatrixBuilder builder(2, 2);
  builder.Add(0, 0, 0.0);
  builder.Add(1, 1, 5.0);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.NumNonZeros(), 1);
}

TEST(SparseMatrixDeathTest, OutOfRangeTripletAborts) {
  SparseMatrixBuilder builder(2, 2);
  EXPECT_DEATH(builder.Add(2, 0, 1.0), "out of");
  EXPECT_DEATH(builder.Add(0, -1, 1.0), "out of");
}

TEST(SparseMatrixTest, RowAccess) {
  SparseMatrixBuilder builder(2, 5);
  builder.Add(1, 4, 4.0);
  builder.Add(1, 2, 2.0);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_EQ(m.RowNonZeros(0), 0);
  EXPECT_EQ(m.RowNonZeros(1), 2);
  // Indices sorted within the row.
  EXPECT_EQ(m.RowIndices(1)[0], 2);
  EXPECT_EQ(m.RowIndices(1)[1], 4);
  EXPECT_EQ(m.RowValues(1)[0], 2.0);
  EXPECT_EQ(m.RowValues(1)[1], 4.0);
}

TEST(SparseMatrixTest, SparseFromDenseRoundTrip) {
  Rng rng(3);
  Matrix dense(6, 9);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 9; ++j) {
      dense(i, j) = rng.NextDouble() < 0.3 ? rng.NextGaussian() : 0.0;
    }
  }
  const SparseMatrix sparse = SparseFromDense(dense);
  EXPECT_EQ(MaxAbsDiff(sparse.ToDense(), dense), 0.0);
}

TEST(SparseMatrixTest, SparseFromDenseTolerance) {
  Matrix dense(1, 3);
  dense(0, 0) = 1e-8;
  dense(0, 1) = 0.5;
  dense(0, 2) = -1e-8;
  const SparseMatrix sparse = SparseFromDense(dense, 1e-6);
  EXPECT_EQ(sparse.NumNonZeros(), 1);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  Rng rng(7);
  const SparseMatrix sparse = RandomSparse(20, 30, 0.15, &rng);
  const Matrix dense = sparse.ToDense();
  Vector x(30);
  for (int i = 0; i < 30; ++i) x[i] = rng.NextGaussian();
  EXPECT_LT(MaxAbsDiff(sparse.Multiply(x), Multiply(dense, x)), 1e-12);
}

TEST(SparseMatrixTest, MultiplyTransposedMatchesDense) {
  Rng rng(11);
  const SparseMatrix sparse = RandomSparse(25, 18, 0.2, &rng);
  const Matrix dense = sparse.ToDense();
  Vector x(25);
  for (int i = 0; i < 25; ++i) x[i] = rng.NextGaussian();
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyTransposed(x),
                       MultiplyTransposed(dense, x)),
            1e-12);
}

TEST(SparseMatrixTest, MultiplyDenseMatchesDense) {
  Rng rng(13);
  const SparseMatrix sparse = RandomSparse(12, 9, 0.25, &rng);
  Matrix b(9, 4);
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 4; ++j) b(i, j) = rng.NextGaussian();
  }
  EXPECT_LT(
      MaxAbsDiff(sparse.MultiplyDense(b), Multiply(sparse.ToDense(), b)),
      1e-12);
}

TEST(SparseMatrixTest, MultiplyTransposedDenseMatchesColumnsBitwise) {
  // The multi-RHS transpose kernel promises column j of A^T B bitwise equal
  // to MultiplyTransposed(B.Col(j)) — that is what makes the batched LSQR
  // path reproduce the serial per-column solves exactly. Large enough rows
  // to span multiple 512-row reduction chunks.
  Rng rng(17);
  const SparseMatrix sparse = RandomSparse(1200, 40, 0.1, &rng);
  Matrix b(1200, 3);
  for (int i = 0; i < 1200; ++i) {
    for (int j = 0; j < 3; ++j) b(i, j) = rng.NextGaussian();
  }
  const Matrix product = sparse.MultiplyTransposedDense(b);
  ASSERT_EQ(product.rows(), 40);
  ASSERT_EQ(product.cols(), 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(0.0,
              MaxAbsDiff(product.Col(j), sparse.MultiplyTransposed(b.Col(j))))
        << "column " << j;
  }
}

TEST(SparseMatrixDeathTest, ProductShapeMismatchAborts) {
  SparseMatrixBuilder builder(2, 3);
  builder.Add(0, 0, 1.0);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_DEATH(m.Multiply(Vector(2)), "shape mismatch");
  EXPECT_DEATH(m.MultiplyTransposed(Vector(3)), "shape mismatch");
}

TEST(SparseMatrixTest, AvgNonZerosPerRow) {
  SparseMatrixBuilder builder(4, 10);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 1, 1.0);
  builder.Add(1, 2, 1.0);
  builder.Add(3, 9, 1.0);
  const SparseMatrix m = std::move(builder).Build();
  EXPECT_DOUBLE_EQ(m.AvgNonZerosPerRow(), 1.0);
}

// Property sweep: transpose duality <A x, y> == <x, A^T y>.
class SparseDualityTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseDualityTest, AdjointIdentityHolds) {
  Rng rng(900 + GetParam());
  const int rows = 5 + GetParam() % 17;
  const int cols = 3 + GetParam() % 23;
  const SparseMatrix a = RandomSparse(rows, cols, 0.2, &rng);
  Vector x(cols);
  Vector y(rows);
  for (int i = 0; i < cols; ++i) x[i] = rng.NextGaussian();
  for (int i = 0; i < rows; ++i) y[i] = rng.NextGaussian();
  const double left = Dot(a.Multiply(x), y);
  const double right = Dot(x, a.MultiplyTransposed(y));
  EXPECT_NEAR(left, right, 1e-10 * (1.0 + std::abs(left)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseDualityTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace srda
