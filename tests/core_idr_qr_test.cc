// Tests for the IDR/QR baseline.

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/idr_qr.h"
#include "matrix/blas.h"

namespace srda {
namespace {

void MakeBlobs(int num_classes, int per_class, int dim, double separation,
               Rng* rng, Matrix* x, std::vector<int>* labels) {
  *x = Matrix(num_classes * per_class, dim);
  labels->clear();
  Matrix centers(num_classes, dim);
  for (int k = 0; k < num_classes; ++k) {
    for (int j = 0; j < dim; ++j) {
      centers(k, j) = rng->NextGaussian() * separation;
    }
  }
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = centers(k, j) + rng->NextGaussian();
      }
      labels->push_back(k);
    }
  }
}

TEST(IdrQrTest, ProducesAtMostCMinusOneDirections) {
  Rng rng(1);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(4, 20, 12, 4.0, &rng, &x, &labels);
  const IdrQrModel model = FitIdrQr(x, labels, 4);
  ASSERT_TRUE(model.converged);
  EXPECT_LE(model.num_directions, 3);
  EXPECT_GE(model.num_directions, 1);
}

TEST(IdrQrTest, SeparatesBlobs) {
  Rng rng(2);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 30, 10, 5.0, &rng, &x, &labels);
  const IdrQrModel model = FitIdrQr(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(IdrQrTest, ProjectionLiesInCentroidSpan) {
  // IDR/QR directions live in the span of the class centroids by
  // construction.
  Rng rng(3);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 15, 20, 4.0, &rng, &x, &labels);
  const IdrQrModel model = FitIdrQr(x, labels, 3);
  ASSERT_TRUE(model.converged);

  // Build centroid matrix and an orthonormal basis of its span.
  Matrix centroids(3, 20);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < x.rows(); ++i) {
    ++counts[labels[i]];
    for (int j = 0; j < 20; ++j) centroids(labels[i], j) += x(i, j);
  }
  for (int k = 0; k < 3; ++k) {
    for (int j = 0; j < 20; ++j) centroids(k, j) /= counts[k];
  }
  // Project each direction onto the centroid span and verify zero residual.
  const Matrix basis = centroids.Transposed();  // 20 x 3
  // Orthonormalize with Gram: solve least squares via normal equations.
  const Matrix gram = Gram(basis);
  for (int d = 0; d < model.num_directions; ++d) {
    const Vector direction = model.embedding.projection().Col(d);
    // Residual after projecting onto span(basis): direction - basis * coef
    // with coef = gram^{-1} basis^T direction. Use a crude solve via
    // 3x3 Gaussian elimination through Cholesky-free approach: since gram is
    // SPD 3x3, invert by adjugate is overkill; use iterative refinement via
    // normal equations residual check instead:
    const Vector rhs = MultiplyTransposed(basis, direction);
    // Solve gram * coef = rhs by simple Gaussian elimination.
    Matrix aug = gram;
    Vector coef = rhs;
    for (int col = 0; col < 3; ++col) {
      const double pivot = aug(col, col);
      ASSERT_NE(pivot, 0.0);
      for (int row = col + 1; row < 3; ++row) {
        const double factor = aug(row, col) / pivot;
        for (int jj = col; jj < 3; ++jj) aug(row, jj) -= factor * aug(col, jj);
        coef[row] -= factor * coef[col];
      }
    }
    for (int row = 2; row >= 0; --row) {
      double sum = coef[row];
      for (int jj = row + 1; jj < 3; ++jj) sum -= aug(row, jj) * coef[jj];
      coef[row] = sum / aug(row, row);
    }
    Vector residual = direction;
    Axpy(-coef[0], basis.Col(0), &residual);
    Axpy(-coef[1], basis.Col(1), &residual);
    Axpy(-coef[2], basis.Col(2), &residual);
    EXPECT_LT(Norm2(residual), 1e-8 * (1.0 + Norm2(direction)))
        << "direction " << d;
  }
}

TEST(IdrQrTest, HighDimensionalFastPath) {
  // n >> m: IDR/QR must remain numerically stable and separate classes.
  Rng rng(4);
  const int n = 300;
  Matrix x(15, n);
  std::vector<int> labels;
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < n; ++j) x(i, j) = (i / 5) * 1.0 + rng.NextGaussian();
    labels.push_back(i / 5);
  }
  const IdrQrModel model = FitIdrQr(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.25);
}

TEST(IdrQrDeathTest, FewerFeaturesThanClassesAborts) {
  Matrix x(6, 2);
  EXPECT_DEATH(FitIdrQr(x, {0, 0, 1, 1, 2, 2}, 3), "at least c features");
}

TEST(IdrQrDeathTest, SingleClassAborts) {
  Matrix x(4, 4);
  EXPECT_DEATH(FitIdrQr(x, {0, 0, 0, 0}, 1), "two classes");
}

}  // namespace
}  // namespace srda
