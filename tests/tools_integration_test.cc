// End-to-end subprocess tests for the command-line tools: generate a
// dataset, train a model, predict with it, and inspect the files — the full
// workflow a downstream user runs.
//
// The tool binaries' directory is injected by CMake as SRDA_TOOLS_DIR.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/dataset.h"
#include "io/dataset_io.h"

namespace srda {
namespace {

std::string ToolPath(const std::string& name) {
  return std::string(SRDA_TOOLS_DIR) + "/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Small well-separated blobs with caller-chosen raw class labels, for
// workflows that don't need a paper-scale dataset.
DenseDataset MakeBlobsDataset(int rows, int cols,
                              const std::vector<int>& class_labels,
                              uint64_t seed) {
  DenseDataset dataset;
  const int classes = static_cast<int>(class_labels.size());
  dataset.num_classes = classes;
  dataset.raw_labels = class_labels;
  dataset.features = Matrix(rows, cols);
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    const int label = i % classes;
    dataset.labels.push_back(label);
    for (int j = 0; j < cols; ++j) {
      dataset.features(i, j) = 6.0 * (j % classes == label) +
                               rng.NextGaussian();
    }
  }
  return dataset;
}

// Runs a command, returns its exit code, captures stdout+stderr. The
// capture file embeds the test process id: ctest runs the tests of this
// binary as concurrent processes sharing one temp directory, and a shared
// file name races.
int RunCommand(const std::string& command, std::string* output) {
  const std::string file =
      TempPath("cmd-output." + std::to_string(::getpid()) + ".txt");
  const int code = std::system((command + " > " + file + " 2>&1").c_str());
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  *output = buffer.str();
  std::remove(file.c_str());
  return code;
}

TEST(ToolsIntegrationTest, GenerateTrainPredictCsvWorkflow) {
  const std::string data = TempPath("letters.csv");
  const std::string model = TempPath("letters.model");
  const std::string predictions = TempPath("letters.pred");
  std::string output;

  ASSERT_EQ(RunCommand(ToolPath("srda_generate") + " --dataset=letters --out=" +
                    data + " --seed=3",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("letters dataset"), std::string::npos);

  ASSERT_EQ(RunCommand(ToolPath("srda_dataset_info") + " --data=" + data, &output),
            0)
      << output;
  EXPECT_NE(output.find("26"), std::string::npos);  // 26 classes.

  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --algorithm=srda --alpha=1.0 --model-out=" + model,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("trained srda"), std::string::npos);

  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model + " --data=" +
                    data + " --predictions-out=" + predictions,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("error rate"), std::string::npos);

  // Predictions file: one integer per sample.
  std::ifstream pred(predictions);
  int count = 0;
  int label = 0;
  while (pred >> label) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 26);
    ++count;
  }
  EXPECT_GT(count, 1000);

  std::remove(data.c_str());
  std::remove(model.c_str());
  std::remove(predictions.c_str());
}

TEST(ToolsIntegrationTest, SparseLibSvmWorkflow) {
  const std::string data = TempPath("text.libsvm");
  const std::string model = TempPath("text.model");
  std::string output;

  ASSERT_EQ(RunCommand(ToolPath("srda_generate") + " --dataset=text --out=" + data,
                &output),
            0)
      << output;

  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --format=libsvm --model-out=" + model,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("nnz/sample"), std::string::npos);

  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model + " --data=" +
                    data + " --format=libsvm",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("error rate"), std::string::npos);

  std::remove(data.c_str());
  std::remove(model.c_str());
}

TEST(ToolsIntegrationTest, AllDenseAlgorithmsTrain) {
  const std::string data = TempPath("digits-small.csv");
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_generate") + " --dataset=digits --out=" + data,
                &output),
            0)
      << output;
  for (const std::string algorithm :
       {"srda", "lda", "rlda", "idr_qr", "fisherfaces"}) {
    const std::string model = TempPath("digits-" + algorithm + ".model");
    EXPECT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                      " --algorithm=" + algorithm + " --model-out=" + model,
                  &output),
              0)
        << algorithm << ": " << output;
    std::remove(model.c_str());
  }
  std::remove(data.c_str());
}

TEST(ToolsIntegrationTest, HelpAndBadFlagsExitCleanly) {
  std::string output;
  EXPECT_EQ(RunCommand(ToolPath("srda_train") + " --help", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos);
  // Unknown flags are rejected with a non-zero exit.
  EXPECT_NE(RunCommand(ToolPath("srda_train") + " --banana=1", &output), 0);
  EXPECT_NE(output.find("unknown flag"), std::string::npos);
}

TEST(ToolsIntegrationTest, SemiSupervisedTrainerTrains) {
  // semi_srda eigendecomposes an m x m matrix, so it gets a small dataset
  // instead of riding the digits loop above.
  const std::string data = TempPath("semi.csv");
  const std::string model = TempPath("semi.model");
  WriteDenseCsvFile(MakeBlobsDataset(90, 8, {0, 1, 2}, 5), data);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --algorithm=semi_srda --model-out=" + model,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("trained semi_srda"), std::string::npos);
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + data,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("error rate"), std::string::npos);
  std::remove(data.c_str());
  std::remove(model.c_str());
}

TEST(ToolsIntegrationTest, BinaryModelFormatMatchesText) {
  // The same training run saved through both codecs must predict
  // identically (the binary file is the mmap-served deployment artifact).
  const std::string data = TempPath("fmt.csv");
  WriteDenseCsvFile(MakeBlobsDataset(120, 10, {0, 1, 2, 3}, 9), data);
  const std::string text_model = TempPath("fmt-text.model");
  const std::string binary_model = TempPath("fmt-binary.model");
  const std::string text_pred = TempPath("fmt-text.pred");
  const std::string binary_pred = TempPath("fmt-binary.pred");
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-format=text --model-out=" + text_model,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-format=binary --model-out=" + binary_model,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("binary model written"), std::string::npos);
  // The binary file leads with the SRDM magic.
  {
    std::ifstream in(binary_model, std::ios::binary);
    char magic[4] = {};
    in.read(magic, 4);
    EXPECT_EQ(std::string(magic, 4), "SRDM");
  }
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + text_model +
                    " --data=" + data + " --predictions-out=" + text_pred,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + binary_model +
                    " --data=" + data + " --predictions-out=" + binary_pred,
                &output),
            0)
      << output;
  EXPECT_EQ(Slurp(text_pred), Slurp(binary_pred));
  for (const std::string& path :
       {data, text_model, binary_model, text_pred, binary_pred}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, PredictReadsSrdbBinaryData) {
  // Train on CSV, score the SRDB container of the same rows: identical
  // error rate, no CSV parse on the predict side.
  const DenseDataset dataset = MakeBlobsDataset(100, 8, {0, 1, 2}, 21);
  const std::string csv = TempPath("srdb.csv");
  const std::string srdb = TempPath("srdb.bin");
  const std::string model = TempPath("srdb.model");
  WriteDenseCsvFile(dataset, csv);
  WriteDenseBinaryFile(dataset, srdb);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + csv +
                    " --model-out=" + model,
                &output),
            0)
      << output;
  std::string csv_output;
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + csv,
                &csv_output),
            0)
      << csv_output;
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + srdb + " --format=binary",
                &output),
            0)
      << output;
  // Both runs print "... samples; error rate X%"; the rates must agree.
  EXPECT_EQ(output.substr(output.find("error rate")),
            csv_output.substr(csv_output.find("error rate")));
  for (const std::string& path : {csv, srdb, model}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, PredictionsComeBackInRawLabelSpace) {
  // Training labels {3, 7} are compacted internally; the predictions file
  // must surface the original ids, never the compact {0, 1}.
  const std::string data = TempPath("gapped.csv");
  const std::string model = TempPath("gapped.model");
  const std::string predictions = TempPath("gapped.pred");
  WriteDenseCsvFile(MakeBlobsDataset(80, 6, {3, 7}, 13), data);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-out=" + model,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + data + " --predictions-out=" + predictions,
                &output),
            0)
      << output;
  // Well-separated blobs: raw-vs-raw comparison scores (near) zero error.
  EXPECT_NE(output.find("error rate 0%"), std::string::npos) << output;
  std::ifstream pred(predictions);
  int label = 0;
  int count = 0;
  while (pred >> label) {
    EXPECT_TRUE(label == 3 || label == 7) << "compact label leaked: " << label;
    ++count;
  }
  EXPECT_EQ(count, 80);
  for (const std::string& path : {data, model, predictions}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, ServeMatchesPredictExactly) {
  // The acceptance gate for micro-batching: the server's ordered pass over
  // the dataset writes byte-for-byte the predictions file srda_predict
  // writes, and the load phase reports throughput and latency percentiles.
  const std::string data = TempPath("serve.csv");
  const std::string model = TempPath("serve.model");
  const std::string predict_out = TempPath("serve-predict.pred");
  const std::string serve_out = TempPath("serve-serve.pred");
  const std::string json = TempPath("serve.json");
  WriteDenseCsvFile(MakeBlobsDataset(300, 12, {2, 5, 11}, 17), data);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-format=binary --model-out=" + model,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + data + " --predictions-out=" + predict_out,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_serve") + " --model=" + model +
                    " --data=" + data + " --clients=3 --client-block=17" +
                    " --requests=5000 --max-batch=64 --max-delay-ms=0.2" +
                    " --predictions-out=" + serve_out + " --json-out=" + json,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("predictions/s"), std::string::npos);
  EXPECT_NE(output.find("latency p50"), std::string::npos);
  const std::string from_predict = Slurp(predict_out);
  EXPECT_FALSE(from_predict.empty());
  EXPECT_EQ(from_predict, Slurp(serve_out));
  const std::string measurements = Slurp(json);
  EXPECT_NE(measurements.find("\"predictions_per_s\""), std::string::npos);
  EXPECT_NE(measurements.find("\"latency_p99_us\""), std::string::npos);
  for (const std::string& path :
       {data, model, predict_out, serve_out, json}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, ServeTraceCarriesServingSpans) {
  // The serving observability contract: a traced srda_serve run records
  // model.load and serve.batch spans that srda_trace_check validates.
  const std::string data = TempPath("trace.csv");
  const std::string model = TempPath("trace.model");
  const std::string trace = TempPath("serve-trace.json");
  WriteDenseCsvFile(MakeBlobsDataset(90, 8, {0, 1, 2}, 29), data);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-out=" + model,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_serve") + " --model=" + model +
                    " --data=" + data + " --requests=500 --trace-out=" + trace,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_trace_check") + " " + trace +
                    " --require=model.load,serve.batch,classify.score",
                &output),
            0)
      << output;
  for (const std::string& path : {data, model, trace}) {
    std::remove(path.c_str());
  }
}

void WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

TEST(ToolsIntegrationTest, BenchDiffGatePassesAndCatchesRegressions) {
  // The perf gate's contract: green on an unchanged rerun, red on a real
  // regression, and a distinct exit code for garbage input.
  const std::string baseline = TempPath("bench-baseline.json");
  const std::string same = TempPath("bench-same.json");
  const std::string slower = TempPath("bench-slower.json");
  const std::string faster = TempPath("bench-faster.json");
  const std::string garbage = TempPath("bench-garbage.json");
  WriteTextFile(baseline,
                "{\"serving\":{\"latency_p50_us\":100.0,"
                "\"throughput_per_s\":5000.0},\"rows\":1000}\n");
  WriteTextFile(same,
                "{\"serving\":{\"latency_p50_us\":101.0,"
                "\"throughput_per_s\":4980.0},\"rows\":1000}\n");
  // Fabricated regression: latency doubled, throughput halved.
  WriteTextFile(slower,
                "{\"serving\":{\"latency_p50_us\":200.0,"
                "\"throughput_per_s\":2500.0},\"rows\":1000}\n");
  // Improvement must never trip the gate.
  WriteTextFile(faster,
                "{\"serving\":{\"latency_p50_us\":50.0,"
                "\"throughput_per_s\":9000.0},\"rows\":1000}\n");
  WriteTextFile(garbage, "{not json at all\n");

  const std::string tool = ToolPath("srda_bench_diff");
  std::string output;
  // Identical files: always green.
  EXPECT_EQ(RunCommand(tool + " " + baseline + " " + baseline, &output), 0)
      << output;
  // Within-noise rerun: green at the default threshold.
  EXPECT_EQ(RunCommand(tool + " " + baseline + " " + same, &output), 0)
      << output;
  // 2x-slower fabricated run: red (exit 1), and the table names the
  // regressed metrics.
  int code = RunCommand(tool + " " + baseline + " " + slower, &output);
  ASSERT_TRUE(WIFEXITED(code));
  EXPECT_EQ(WEXITSTATUS(code), 1) << output;
  EXPECT_NE(output.find("latency_p50_us"), std::string::npos) << output;
  EXPECT_NE(output.find("REGRESSED"), std::string::npos) << output;
  // Strictly-better run: green.
  EXPECT_EQ(RunCommand(tool + " " + baseline + " " + faster, &output), 0)
      << output;
  // Malformed input: exit 2, not a silent pass or a crash.
  code = RunCommand(tool + " " + baseline + " " + garbage, &output);
  ASSERT_TRUE(WIFEXITED(code));
  EXPECT_EQ(WEXITSTATUS(code), 2) << output;
  // A tightened threshold flips the within-noise pair red.
  code = RunCommand(tool + " " + baseline + " " + same + " --threshold=0.1",
                    &output);
  ASSERT_TRUE(WIFEXITED(code));
  EXPECT_EQ(WEXITSTATUS(code), 1) << output;
  for (const std::string& path : {baseline, same, slower, faster, garbage}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, PredictMetricsAndEventLogValidate) {
  // srda_predict --metrics-out/--event-log outputs must satisfy the
  // format validators behind srda_trace_check.
  const std::string data = TempPath("obs-pred.csv");
  const std::string model = TempPath("obs-pred.model");
  const std::string metrics = TempPath("obs-pred.prom");
  const std::string metrics_json = TempPath("obs-pred-metrics.json");
  const std::string events = TempPath("obs-pred-events.jsonl");
  WriteDenseCsvFile(MakeBlobsDataset(90, 8, {0, 1, 2}, 31), data);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-out=" + model,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + data + " --metrics-out=" + metrics +
                    " --event-log=" + events,
                &output),
            0)
      << output;
  // The Prometheus snapshot validates and carries the always-on liveness
  // sample.
  EXPECT_EQ(RunCommand(ToolPath("srda_trace_check") + " " + metrics +
                    " --format=prom --require=srda_up",
                &output),
            0)
      << output;
  // The event log validates and records the model load (the acceptance
  // criterion: every load is visible in the structured log).
  EXPECT_EQ(RunCommand(ToolPath("srda_trace_check") + " " + events +
                    " --format=events --require=model.load",
                &output),
            0)
      << output;
  // JSON metrics flavor parses too (extension selects the format).
  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model +
                    " --data=" + data + " --metrics-out=" + metrics_json,
                &output),
            0)
      << output;
  std::ifstream in(metrics_json);
  EXPECT_TRUE(in.good());
  // Events file fed to the wrong validator must be rejected.
  EXPECT_NE(RunCommand(ToolPath("srda_trace_check") + " " + events +
                    " --format=prom",
                &output),
            0);
  for (const std::string& path :
       {data, model, metrics, metrics_json, events}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, ServeEventLogAndMetricsRecordLifecycle) {
  // A served run leaves a structured event trail (model.load,
  // serve.start, serve.stop) and a final metrics snapshot with the
  // serving instruments.
  const std::string data = TempPath("obs-serve.csv");
  const std::string model = TempPath("obs-serve.model");
  const std::string events = TempPath("obs-serve-events.jsonl");
  const std::string metrics = TempPath("obs-serve.prom");
  WriteDenseCsvFile(MakeBlobsDataset(90, 8, {0, 1, 2}, 37), data);
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --model-out=" + model,
                &output),
            0)
      << output;
  ASSERT_EQ(RunCommand(ToolPath("srda_serve") + " --model=" + model +
                    " --data=" + data + " --requests=300 --event-log=" +
                    events + " --metrics-out=" + metrics,
                &output),
            0)
      << output;
  EXPECT_EQ(RunCommand(ToolPath("srda_trace_check") + " " + events +
                    " --format=events"
                    " --require=model.load,serve.start,serve.stop",
                &output),
            0)
      << output;
  EXPECT_EQ(RunCommand(ToolPath("srda_trace_check") + " " + metrics +
                    " --format=prom --require=srda_up,srda_serve_requests",
                &output),
            0)
      << output;
  for (const std::string& path : {data, model, events, metrics}) {
    std::remove(path.c_str());
  }
}

TEST(ToolsIntegrationTest, TrainEventLogViaEnvironmentVariable) {
  // SRDA_EVENT_LOG enables the log without a flag — the zero-code-change
  // path for instrumenting an existing pipeline.
  const std::string data = TempPath("obs-env.csv");
  const std::string model = TempPath("obs-env.model");
  const std::string events = TempPath("obs-env-events.jsonl");
  WriteDenseCsvFile(MakeBlobsDataset(90, 8, {0, 1, 2}, 41), data);
  std::string output;
  ASSERT_EQ(RunCommand("SRDA_EVENT_LOG=" + events + " " +
                    ToolPath("srda_train") + " --data=" + data +
                    " --model-out=" + model,
                &output),
            0)
      << output;
  EXPECT_EQ(RunCommand(ToolPath("srda_trace_check") + " " + events +
                    " --format=events --require=train.start,train.end",
                &output),
            0)
      << output;
  for (const std::string& path : {data, model, events}) {
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace srda
