// End-to-end subprocess tests for the command-line tools: generate a
// dataset, train a model, predict with it, and inspect the files — the full
// workflow a downstream user runs.
//
// The tool binaries' directory is injected by CMake as SRDA_TOOLS_DIR.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace srda {
namespace {

std::string ToolPath(const std::string& name) {
  return std::string(SRDA_TOOLS_DIR) + "/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Runs a command, returns its exit code, captures stdout+stderr. The
// capture file embeds the test process id: ctest runs the tests of this
// binary as concurrent processes sharing one temp directory, and a shared
// file name races.
int RunCommand(const std::string& command, std::string* output) {
  const std::string file =
      TempPath("cmd-output." + std::to_string(::getpid()) + ".txt");
  const int code = std::system((command + " > " + file + " 2>&1").c_str());
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  *output = buffer.str();
  std::remove(file.c_str());
  return code;
}

TEST(ToolsIntegrationTest, GenerateTrainPredictCsvWorkflow) {
  const std::string data = TempPath("letters.csv");
  const std::string model = TempPath("letters.model");
  const std::string predictions = TempPath("letters.pred");
  std::string output;

  ASSERT_EQ(RunCommand(ToolPath("srda_generate") + " --dataset=letters --out=" +
                    data + " --seed=3",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("letters dataset"), std::string::npos);

  ASSERT_EQ(RunCommand(ToolPath("srda_dataset_info") + " --data=" + data, &output),
            0)
      << output;
  EXPECT_NE(output.find("26"), std::string::npos);  // 26 classes.

  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --algorithm=srda --alpha=1.0 --model-out=" + model,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("trained srda"), std::string::npos);

  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model + " --data=" +
                    data + " --predictions-out=" + predictions,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("error rate"), std::string::npos);

  // Predictions file: one integer per sample.
  std::ifstream pred(predictions);
  int count = 0;
  int label = 0;
  while (pred >> label) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 26);
    ++count;
  }
  EXPECT_GT(count, 1000);

  std::remove(data.c_str());
  std::remove(model.c_str());
  std::remove(predictions.c_str());
}

TEST(ToolsIntegrationTest, SparseLibSvmWorkflow) {
  const std::string data = TempPath("text.libsvm");
  const std::string model = TempPath("text.model");
  std::string output;

  ASSERT_EQ(RunCommand(ToolPath("srda_generate") + " --dataset=text --out=" + data,
                &output),
            0)
      << output;

  ASSERT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                    " --format=libsvm --model-out=" + model,
                &output),
            0)
      << output;
  EXPECT_NE(output.find("nnz/sample"), std::string::npos);

  ASSERT_EQ(RunCommand(ToolPath("srda_predict") + " --model=" + model + " --data=" +
                    data + " --format=libsvm",
                &output),
            0)
      << output;
  EXPECT_NE(output.find("error rate"), std::string::npos);

  std::remove(data.c_str());
  std::remove(model.c_str());
}

TEST(ToolsIntegrationTest, AllDenseAlgorithmsTrain) {
  const std::string data = TempPath("digits-small.csv");
  std::string output;
  ASSERT_EQ(RunCommand(ToolPath("srda_generate") + " --dataset=digits --out=" + data,
                &output),
            0)
      << output;
  for (const std::string algorithm :
       {"srda", "lda", "rlda", "idr_qr", "fisherfaces"}) {
    const std::string model = TempPath("digits-" + algorithm + ".model");
    EXPECT_EQ(RunCommand(ToolPath("srda_train") + " --data=" + data +
                      " --algorithm=" + algorithm + " --model-out=" + model,
                  &output),
              0)
        << algorithm << ": " << output;
    std::remove(model.c_str());
  }
  std::remove(data.c_str());
}

TEST(ToolsIntegrationTest, HelpAndBadFlagsExitCleanly) {
  std::string output;
  EXPECT_EQ(RunCommand(ToolPath("srda_train") + " --help", &output), 0);
  EXPECT_NE(output.find("usage:"), std::string::npos);
  // Unknown flags are rejected with a non-zero exit.
  EXPECT_NE(RunCommand(ToolPath("srda_train") + " --banana=1", &output), 0);
  EXPECT_NE(output.find("unknown flag"), std::string::npos);
}

}  // namespace
}  // namespace srda
