// Tests for Cholesky factorization and triangular solves.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "matrix/blas.h"

namespace srda {
namespace {

// Random symmetric positive-definite matrix: A^T A + I.
Matrix RandomSpd(int n, Rng* rng) {
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng->NextGaussian();
  }
  Matrix spd = Gram(a);
  AddDiagonal(1.0, &spd);
  return spd;
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(1);
  const Matrix a = RandomSpd(8, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  const Matrix& l = chol.factor();
  const Matrix reconstructed = MultiplyTransposedB(l, l);
  EXPECT_LT(MaxAbsDiff(reconstructed, a), 1e-10);
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  Rng rng(2);
  const Matrix a = RandomSpd(6, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  const Matrix& l = chol.factor();
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) EXPECT_EQ(l(i, j), 0.0);
    EXPECT_GT(l(i, i), 0.0);
  }
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Rng rng(3);
  const Matrix a = RandomSpd(10, &rng);
  Vector x_true(10);
  for (int i = 0; i < 10; ++i) x_true[i] = rng.NextGaussian();
  const Vector b = Multiply(a, x_true);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  const Vector x = chol.Solve(b);
  EXPECT_LT(MaxAbsDiff(x, x_true), 1e-8);
}

TEST(CholeskyTest, SolveMatrixSolvesEachColumn) {
  Rng rng(4);
  const Matrix a = RandomSpd(5, &rng);
  Matrix b(5, 3);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) b(i, j) = rng.NextGaussian();
  }
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  const Matrix x = chol.SolveMatrix(b);
  EXPECT_LT(MaxAbsDiff(Multiply(a, x), b), 1e-9);
}

TEST(CholeskyTest, IndefiniteMatrixRejected) {
  Matrix indefinite = Matrix::FromRows({{1.0, 2.0}, {2.0, 1.0}});
  Cholesky chol;
  EXPECT_FALSE(chol.Factor(indefinite));
  EXPECT_FALSE(chol.ok());
}

TEST(CholeskyTest, ZeroMatrixRejected) {
  Cholesky chol;
  EXPECT_FALSE(chol.Factor(Matrix(3, 3)));
}

TEST(CholeskyDeathTest, SolveWithoutFactorAborts) {
  Cholesky chol;
  EXPECT_DEATH(chol.Solve(Vector(2)), "Factor");
}

TEST(CholeskyDeathTest, NonSquareAborts) {
  Cholesky chol;
  EXPECT_DEATH(chol.Factor(Matrix(2, 3)), "square");
}

TEST(TriangularSolveTest, ForwardSubstitution) {
  const Matrix l = Matrix::FromRows({{2.0, 0.0}, {1.0, 3.0}});
  const Vector x = ForwardSubstitute(l, Vector{4.0, 11.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(TriangularSolveTest, BackSubstitution) {
  const Matrix r = Matrix::FromRows({{2.0, 1.0}, {0.0, 4.0}});
  const Vector x = BackSubstitute(r, Vector{5.0, 8.0});
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
}

TEST(TriangularSolveTest, BackSubstituteTransposed) {
  Rng rng(5);
  const Matrix a = RandomSpd(6, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  Vector b(6);
  for (int i = 0; i < 6; ++i) b[i] = rng.NextGaussian();
  const Vector x = BackSubstituteTransposed(chol.factor(), b);
  // L^T x should equal b.
  const Vector check = Multiply(chol.factor().Transposed(), x);
  EXPECT_LT(MaxAbsDiff(check, b), 1e-10);
}

TEST(TriangularSolveDeathTest, SingularDiagonalAborts) {
  const Matrix l = Matrix::FromRows({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DEATH(ForwardSubstitute(l, Vector{1.0, 1.0}), "singular");
}

// Property sweep: solve residual stays tiny across sizes.
class CholeskySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizeTest, ResidualSmall) {
  Rng rng(40 + GetParam());
  const int n = GetParam();
  const Matrix a = RandomSpd(n, &rng);
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.NextGaussian();
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  const Vector x = chol.Solve(b);
  Vector residual = Multiply(a, x);
  Axpy(-1.0, b, &residual);
  EXPECT_LT(Norm2(residual), 1e-8 * (1.0 + Norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace srda
