// Tests for the symmetric eigensolver (tred2 + tql2).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomSymmetric(int n, Rng* rng) {
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double value = rng->NextGaussian();
      a(i, j) = value;
      a(j, i) = value;
    }
  }
  return a;
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Matrix d(3, 3);
  d(0, 0) = 3.0;
  d(1, 1) = 1.0;
  d(2, 2) = 2.0;
  const SymmetricEigenResult result = SymmetricEigen(d);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[2], 3.0, 1e-12);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  const Matrix a = Matrix::FromRows({{2.0, 1.0}, {1.0, 2.0}});
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigenTest, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = -4.5;
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.eigenvalues[0], -4.5);
  EXPECT_DOUBLE_EQ(result.eigenvectors(0, 0), 1.0);
}

TEST(SymmetricEigenTest, EigenvaluesAscending) {
  Rng rng(1);
  const Matrix a = RandomSymmetric(12, &rng);
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  for (int i = 1; i < 12; ++i) {
    EXPECT_LE(result.eigenvalues[i - 1], result.eigenvalues[i]);
  }
}

TEST(SymmetricEigenTest, EigenpairsSatisfyDefinition) {
  Rng rng(2);
  const Matrix a = RandomSymmetric(15, &rng);
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  for (int j = 0; j < 15; ++j) {
    const Vector v = result.eigenvectors.Col(j);
    Vector av = Multiply(a, v);
    Vector lv = v;
    Scale(result.eigenvalues[j], &lv);
    EXPECT_LT(MaxAbsDiff(av, lv), 1e-9) << "eigenpair " << j;
  }
}

TEST(SymmetricEigenTest, EigenvectorsOrthonormal) {
  Rng rng(3);
  const Matrix a = RandomSymmetric(10, &rng);
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  const Matrix gram = Gram(result.eigenvectors);
  EXPECT_LT(MaxAbsDiff(gram, Matrix::Identity(10)), 1e-10);
}

TEST(SymmetricEigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(4);
  const Matrix a = RandomSymmetric(20, &rng);
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  double trace = 0.0;
  double eigen_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    trace += a(i, i);
    eigen_sum += result.eigenvalues[i];
  }
  EXPECT_NEAR(trace, eigen_sum, 1e-9 * (1.0 + std::fabs(trace)));
}

TEST(SymmetricEigenTest, RepeatedEigenvalues) {
  // 2*I has eigenvalue 2 with multiplicity 3; vectors still orthonormal.
  Matrix a = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) a(i, i) = 2.0;
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(result.eigenvalues[i], 2.0, 1e-12);
  EXPECT_LT(MaxAbsDiff(Gram(result.eigenvectors), Matrix::Identity(3)),
            1e-12);
}

TEST(SymmetricEigenTest, RankDeficientGram) {
  // Gram of a rank-1 matrix: one positive eigenvalue, the rest ~0.
  Matrix a(4, 3);
  for (int j = 0; j < 3; ++j) a(0, j) = 1.0;
  const Matrix gram = Gram(a);  // rank 1, 3x3
  const SymmetricEigenResult result = SymmetricEigen(gram);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 0.0, 1e-10);
  EXPECT_NEAR(result.eigenvalues[1], 0.0, 1e-10);
  EXPECT_NEAR(result.eigenvalues[2], 3.0, 1e-10);
}

TEST(SymmetricEigenTest, UsesLowerTriangleOnly) {
  // Upper triangle deliberately garbage; result must match the symmetric
  // matrix built from the lower triangle.
  Matrix a = Matrix::FromRows({{2.0, 99.0}, {1.0, 2.0}});
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigenDeathTest, NonSquareAborts) {
  EXPECT_DEATH(SymmetricEigen(Matrix(2, 3)), "square");
}

// Property sweep: reconstruction A == V diag(lambda) V^T across sizes.
class SymmetricEigenSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricEigenSizeTest, Reconstructs) {
  Rng rng(70 + GetParam());
  const int n = GetParam();
  const Matrix a = RandomSymmetric(n, &rng);
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  Matrix scaled = result.eigenvectors;  // V * diag(lambda)
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) scaled(i, j) *= result.eigenvalues[j];
  }
  const Matrix reconstructed =
      MultiplyTransposedB(scaled, result.eigenvectors);
  EXPECT_LT(MaxAbsDiff(reconstructed, a), 1e-8 * (1.0 + n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetricEigenSizeTest,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 16, 25, 40, 64));

}  // namespace
}  // namespace srda
