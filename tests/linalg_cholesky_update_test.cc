// Tests for the rank-k Cholesky update/downdate engine.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/cholesky_update.h"
#include "matrix/blas.h"
#include "matrix/blocking.h"

namespace srda {
namespace {

// Random symmetric positive-definite matrix: A^T A + I.
Matrix RandomSpd(int n, Rng* rng) {
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng->NextGaussian();
  }
  Matrix spd = Gram(a);
  AddDiagonal(1.0, &spd);
  return spd;
}

Matrix RandomRows(int k, int n, Rng* rng) {
  Matrix v(k, n);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) v(i, j) = rng->NextGaussian();
  }
  return v;
}

// Reference: factor G - V^T V (or + for updates) from scratch.
Matrix RebuiltFactor(const Matrix& g, const Matrix& v, double sign) {
  Matrix target = g;
  const Matrix vtv = MultiplyTransposedA(v, v);
  for (int i = 0; i < target.rows(); ++i) {
    for (int j = 0; j < target.cols(); ++j) {
      target(i, j) += sign * vtv(i, j);
    }
  }
  Cholesky chol;
  EXPECT_TRUE(chol.Factor(target));
  return chol.factor();
}

void ExpectDowndateMatchesRebuild(int n, int k, uint64_t seed) {
  Rng rng(seed);
  // G = V^T V + (SPD base): guarantees G - V^T V stays safely positive
  // definite for any k, including k = n - 1.
  const Matrix v = RandomRows(k, n, &rng);
  Matrix g = RandomSpd(n, &rng);
  const Matrix vtv = MultiplyTransposedA(v, v);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g(i, j) += vtv(i, j);
  }
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  Matrix downdated = chol.factor();
  ASSERT_TRUE(CholeskyRankKDowndate(&downdated, v));
  const Matrix rebuilt = RebuiltFactor(g, v, -1.0);
  EXPECT_LT(MaxAbsDiff(downdated, rebuilt), 1e-8)
      << "n=" << n << " k=" << k;
}

TEST(CholeskyRankKDowndateTest, MatchesRebuildRank1) {
  ExpectDowndateMatchesRebuild(/*n=*/12, /*k=*/1, /*seed=*/11);
}

TEST(CholeskyRankKDowndateTest, MatchesRebuildRankNMinus1) {
  ExpectDowndateMatchesRebuild(/*n=*/12, /*k=*/11, /*seed=*/12);
}

TEST(CholeskyRankKDowndateTest, MatchesRebuildFoldLargerThanBlock) {
  // k exceeds the factorization panel width SRDA_BLOCK_NB, the adversarial
  // "fold larger than block" shape of a real CV fold.
  const int nb = GetBlockConfig().nb;
  ExpectDowndateMatchesRebuild(/*n=*/nb + 32, /*k=*/nb + 6, /*seed=*/13);
}

TEST(CholeskyRankKUpdateTest, MatchesRebuild) {
  Rng rng(21);
  const int n = 16;
  const Matrix g = RandomSpd(n, &rng);
  const Matrix v = RandomRows(5, n, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  Matrix updated = chol.factor();
  CholeskyRankKUpdate(&updated, v);
  const Matrix rebuilt = RebuiltFactor(g, v, 1.0);
  EXPECT_LT(MaxAbsDiff(updated, rebuilt), 1e-8);
}

TEST(CholeskyRankKUpdateTest, RankOneMatchesRank1Update) {
  // The panel sweep applies the same rotation chain as the original rank-1
  // routine; it multiplies by a precomputed reciprocal where the rank-1
  // code divides, so agreement is to rounding, not bit for bit.
  Rng rng(22);
  const int n = 20;
  const Matrix g = RandomSpd(n, &rng);
  Matrix v(1, n);
  Vector v1(n);
  for (int j = 0; j < n; ++j) {
    const double value = rng.NextGaussian();
    v(0, j) = value;
    v1[j] = value;
  }
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  Matrix sweep = chol.factor();
  Matrix reference = chol.factor();
  CholeskyRankKUpdate(&sweep, v);
  CholeskyRank1Update(&reference, v1);
  EXPECT_LT(MaxAbsDiff(sweep, reference), 1e-12);
}

TEST(CholeskyRankKDowndateTest, UpdateThenDowndateRoundTrips) {
  Rng rng(23);
  const int n = 10;
  const Matrix g = RandomSpd(n, &rng);
  const Matrix v = RandomRows(3, n, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  Matrix factor = chol.factor();
  CholeskyRankKUpdate(&factor, v);
  ASSERT_TRUE(CholeskyRankKDowndate(&factor, v));
  EXPECT_LT(MaxAbsDiff(factor, chol.factor()), 1e-8);
}

TEST(CholeskyRankKDowndateTest, NearSingularDowndateFails) {
  // G = v v^T + delta I with tiny delta: removing v leaves a numerically
  // singular matrix, so the condition monitor must refuse instead of
  // producing a garbage factor.
  Rng rng(24);
  const int n = 8;
  Matrix v = RandomRows(1, n, &rng);
  Matrix g = MultiplyTransposedA(v, v);
  AddDiagonal(1e-12, &g);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  Matrix factor = chol.factor();
  EXPECT_FALSE(CholeskyRankKDowndate(&factor, v));
}

TEST(CholeskyRankKDowndateTest, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(25);
  const int n = 96;
  const int k = 9;
  const Matrix v = RandomRows(k, n, &rng);
  Matrix g = RandomSpd(n, &rng);
  const Matrix vtv = MultiplyTransposedA(v, v);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g(i, j) += vtv(i, j);
  }
  SetGlobalThreadCount(1);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  Matrix serial = chol.factor();
  ASSERT_TRUE(CholeskyRankKDowndate(&serial, v));
  SetGlobalThreadCount(4);
  Cholesky chol4;
  ASSERT_TRUE(chol4.Factor(g));
  Matrix threaded = chol4.factor();
  const bool ok = CholeskyRankKDowndate(&threaded, v);
  SetGlobalThreadCount(1);
  ASSERT_TRUE(ok);
  EXPECT_EQ(MaxAbsDiff(serial, threaded), 0.0);
}

TEST(CholeskyDeleteRowsColsTest, MatchesSubmatrixFactor) {
  Rng rng(31);
  const int n = 14;
  const Matrix g = RandomSpd(n, &rng);
  const std::vector<int> drop = {0, 3, 4, 9, 13};
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  const Matrix deleted = CholeskyDeleteRowsCols(chol.factor(), drop);

  std::vector<int> keep;
  for (int i = 0; i < n; ++i) {
    bool dropped = false;
    for (int index : drop) dropped = dropped || index == i;
    if (!dropped) keep.push_back(i);
  }
  Matrix sub(static_cast<int>(keep.size()), static_cast<int>(keep.size()));
  for (size_t i = 0; i < keep.size(); ++i) {
    for (size_t j = 0; j < keep.size(); ++j) {
      sub(static_cast<int>(i), static_cast<int>(j)) =
          g(keep[i], keep[j]);
    }
  }
  Cholesky sub_chol;
  ASSERT_TRUE(sub_chol.Factor(sub));
  ASSERT_EQ(deleted.rows(), sub_chol.factor().rows());
  EXPECT_LT(MaxAbsDiff(deleted, sub_chol.factor()), 1e-9);
}

TEST(CholeskyDeleteRowsColsDeathTest, UnsortedIndicesAbort) {
  Rng rng(32);
  const Matrix g = RandomSpd(4, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(g));
  EXPECT_DEATH(CholeskyDeleteRowsCols(chol.factor(), {2, 1}), "sorted");
}

}  // namespace
}  // namespace srda
