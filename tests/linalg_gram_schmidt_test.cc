// Tests for modified Gram-Schmidt orthonormalization.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/gram_schmidt.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

TEST(GramSchmidtTest, FullRankKeepsAllColumns) {
  Rng rng(1);
  Matrix basis = RandomMatrix(10, 4, &rng);
  const int kept = ModifiedGramSchmidt(&basis);
  EXPECT_EQ(kept, 4);
  EXPECT_LT(MaxAbsDiff(Gram(basis), Matrix::Identity(4)), 1e-12);
}

TEST(GramSchmidtTest, SpanIsPreserved) {
  Rng rng(2);
  const Matrix original = RandomMatrix(8, 3, &rng);
  Matrix basis = original;
  ASSERT_EQ(ModifiedGramSchmidt(&basis), 3);
  // Each original column must be reproducible from the orthonormal basis:
  // residual of projecting onto the basis is zero.
  for (int j = 0; j < 3; ++j) {
    Vector col = original.Col(j);
    Vector residual = col;
    for (int k = 0; k < 3; ++k) {
      const Vector q = basis.Col(k);
      Axpy(-Dot(q, col), q, &residual);
    }
    EXPECT_LT(Norm2(residual), 1e-10 * Norm2(col));
  }
}

TEST(GramSchmidtTest, DuplicateColumnDropped) {
  Rng rng(3);
  Matrix basis = RandomMatrix(6, 3, &rng);
  for (int i = 0; i < 6; ++i) basis(i, 2) = basis(i, 0);
  EXPECT_EQ(ModifiedGramSchmidt(&basis), 2);
  EXPECT_EQ(basis.cols(), 2);
  EXPECT_LT(MaxAbsDiff(Gram(basis), Matrix::Identity(2)), 1e-12);
}

TEST(GramSchmidtTest, LinearCombinationDropped) {
  Matrix basis(4, 3);
  // col2 = col0 + col1.
  basis(0, 0) = 1.0;
  basis(1, 1) = 1.0;
  basis(0, 2) = 1.0;
  basis(1, 2) = 1.0;
  EXPECT_EQ(ModifiedGramSchmidt(&basis), 2);
}

TEST(GramSchmidtTest, ZeroColumnDropped) {
  Matrix basis(5, 2);
  basis(0, 1) = 2.0;  // Column 0 is zero.
  EXPECT_EQ(ModifiedGramSchmidt(&basis), 1);
  EXPECT_NEAR(std::abs(basis(0, 0)), 1.0, 1e-15);
}

TEST(GramSchmidtTest, FirstColumnOnlyNormalized) {
  // SRDA relies on the first vector (all-ones) surviving unchanged in
  // direction.
  Matrix basis(4, 1, 1.0);
  EXPECT_EQ(ModifiedGramSchmidt(&basis), 1);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(basis(i, 0), 0.5, 1e-15);
}

TEST(GramSchmidtTest, NearlyDependentColumnsBenefitFromReorthogonalization) {
  // Columns nearly parallel: classical one-pass GS loses orthogonality;
  // the two-pass version must stay orthogonal to ~1e-12.
  Matrix basis(3, 2);
  basis(0, 0) = 1.0;
  basis(1, 0) = 1e-8;
  basis(0, 1) = 1.0;
  basis(1, 1) = -1e-8;
  ASSERT_EQ(ModifiedGramSchmidt(&basis, 1e-14), 2);
  EXPECT_LT(MaxAbsDiff(Gram(basis), Matrix::Identity(2)), 1e-12);
}

// Property sweep: orthonormality across shapes and ranks.
class GramSchmidtShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(GramSchmidtShapeTest, OutputOrthonormal) {
  Rng rng(500 + GetParam());
  const int rows = 5 + GetParam() * 3;
  const int cols = 2 + GetParam();
  Matrix basis = RandomMatrix(rows, cols, &rng);
  const int kept = ModifiedGramSchmidt(&basis);
  EXPECT_EQ(kept, cols);  // Random matrices are full rank a.s.
  EXPECT_LT(MaxAbsDiff(Gram(basis), Matrix::Identity(kept)), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GramSchmidtShapeTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace srda
