// Bitwise-identity matrix for the SIMD micro-kernel layer (DESIGN.md §4j).
//
// Every vector kernel must reproduce the generic reference chains
// lane-for-lane, so the tests compare raw bytes — never tolerances —
// between each supported dispatch level and the scalar table, at
// adversarial shapes (1, width - 1, width, width + 1, primes) chosen to
// exercise every vector-width remainder path, and between 1-thread and
// 4-thread runs of the public kernels that funnel through the table.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/srda.h"
#include "dataset/dataset.h"
#include "linalg/cholesky.h"
#include "linalg/cholesky_update.h"
#include "matrix/blas.h"
#include "matrix/matrix.h"
#include "matrix/simd/kernel_impl.h"
#include "matrix/simd/simd.h"
#include "select/model_selection.h"

namespace srda {
namespace {

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<size_t>(a.rows()) *
                         static_cast<size_t>(a.cols())) == 0;
}

bool BitwiseEqual(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) return false;
  return std::memcmp(x.data(), y.data(),
                     sizeof(double) * static_cast<size_t>(x.size())) == 0;
}

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

std::vector<double> RandomBuffer(size_t count, Rng* rng) {
  std::vector<double> buffer(count);
  for (double& v : buffer) v = rng->NextGaussian();
  return buffer;
}

// Forces a dispatch level for the duration of a scope and restores the
// detected default afterwards, so test order never leaks a forced level.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::CpuLevel level) : previous_(simd::ActiveLevel()) {
    SRDA_CHECK(simd::SetDispatchLevel(level));
  }
  ~ScopedLevel() { simd::SetDispatchLevel(previous_); }

 private:
  simd::CpuLevel previous_;
};

// The vector levels available in this binary on this CPU, scalar included.
std::vector<simd::CpuLevel> Levels() { return simd::SupportedLevels(); }

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndLevelsAreConsistent) {
  EXPECT_TRUE(simd::LevelSupported(simd::CpuLevel::kScalar));
  const std::vector<simd::CpuLevel> levels = Levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::CpuLevel::kScalar);
  for (simd::CpuLevel level : levels) {
    EXPECT_TRUE(simd::LevelSupported(level)) << simd::CpuLevelName(level);
    ScopedLevel forced(level);
    EXPECT_EQ(simd::ActiveLevel(), level);
  }
}

TEST(SimdDispatchTest, RejectsUnsupportedLevel) {
#if defined(__x86_64__) || defined(_M_X64)
  const simd::CpuLevel foreign = simd::CpuLevel::kNeon;
#else
  const simd::CpuLevel foreign = simd::CpuLevel::kAvx512;
#endif
  EXPECT_FALSE(simd::LevelSupported(foreign));
  const simd::CpuLevel before = simd::ActiveLevel();
  EXPECT_FALSE(simd::SetDispatchLevel(foreign));
  EXPECT_EQ(simd::ActiveLevel(), before);
}

// --- Raw kernel-table comparisons against the generic reference ---------

TEST(SimdKernelTest, GemmTileMatchesGenericBitwise) {
  Rng rng(11);
  // Shapes around the zmm (16), ymm (8/4) and register-tile (4) widths.
  const int kRows[] = {1, 3, 4, 5, 8};
  const int kCols[] = {1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 37};
  const int kDepth[] = {1, 2, 7, 13};
  for (int mr : kRows) {
    for (int nc : kCols) {
      for (int kk : kDepth) {
        const int i0 = 2, j0 = 3;  // nonzero offsets into C
        const int k0 = 4;          // b rows [k0, k0 + kk)
        const std::vector<double> panel =
            RandomBuffer(static_cast<size_t>(mr) * kk, &rng);
        const Matrix b = RandomMatrix(k0 + kk, j0 + nc, &rng);
        const Matrix c0 = RandomMatrix(i0 + mr, j0 + nc, &rng);

        Matrix want = c0;
        simd::generic::GemmTile(panel.data(), kk, kk, b.data(), b.cols(),
                                k0, want.data(), want.cols(), i0, i0 + mr,
                                j0, j0 + nc);
        for (simd::CpuLevel level : Levels()) {
          ScopedLevel forced(level);
          Matrix got = c0;
          simd::Dispatch().gemm_tile(panel.data(), kk, kk, b.data(),
                                     b.cols(), k0, got.data(), got.cols(),
                                     i0, i0 + mr, j0, j0 + nc);
          ASSERT_TRUE(BitwiseEqual(want, got))
              << simd::CpuLevelName(level) << " m=" << mr << " n=" << nc
              << " k=" << kk;
        }
      }
    }
  }
}

TEST(SimdKernelTest, DotTileMatchesGenericBitwise) {
  Rng rng(13);
  const int kRows[] = {1, 2, 3, 4, 5};
  const int kCols[] = {1, 2, 3, 4, 5, 7, 8, 9, 17};
  const int kDepth[] = {1, 3, 4, 5, 8, 13};
  for (int mr : kRows) {
    for (int nc : kCols) {
      for (int kk : kDepth) {
        const int i0 = 1, j0 = 2, k0 = 3;
        const Matrix a = RandomMatrix(i0 + mr, k0 + kk + 2, &rng);
        const Matrix b = RandomMatrix(j0 + nc, k0 + kk + 2, &rng);
        const Matrix c0 = RandomMatrix(i0 + mr, j0 + nc, &rng);

        Matrix want = c0;
        simd::generic::DotTile(a.data(), a.cols(), b.data(), b.cols(), k0,
                               kk, want.data(), want.cols(), i0, i0 + mr,
                               j0, j0 + nc);
        for (simd::CpuLevel level : Levels()) {
          ScopedLevel forced(level);
          Matrix got = c0;
          simd::Dispatch().dot_tile(a.data(), a.cols(), b.data(), b.cols(),
                                    k0, kk, got.data(), got.cols(), i0,
                                    i0 + mr, j0, j0 + nc);
          ASSERT_TRUE(BitwiseEqual(want, got))
              << simd::CpuLevelName(level) << " m=" << mr << " n=" << nc
              << " k=" << kk;
        }
      }
    }
  }
}

TEST(SimdKernelTest, SyrkRowMatchesGenericBitwise) {
  Rng rng(17);
  const int n = 41;  // prime
  const Matrix l0 = RandomMatrix(n, n, &rng);
  const int kDepth[] = {1, 2, 3, 4, 5, 8, 13};
  for (int kk : kDepth) {
    for (int i : {16, 20, 40}) {
      // The call-site contract (blocked Cholesky trailing update) keeps the
      // written columns [j0, jend) disjoint from the panel [p0, p0 + kk).
      const int p0 = 1;
      for (int j0 : {p0 + kk, p0 + kk + 1, p0 + kk + 5}) {
        const int jend = i + 1;
        if (p0 + kk > n || j0 >= jend) continue;
        Matrix want = l0;
        simd::generic::SyrkRow(want.data(), n, i, p0, kk, j0, jend);
        for (simd::CpuLevel level : Levels()) {
          ScopedLevel forced(level);
          Matrix got = l0;
          simd::Dispatch().syrk_row(got.data(), n, i, p0, kk, j0, jend);
          ASSERT_TRUE(BitwiseEqual(want, got))
              << simd::CpuLevelName(level) << " kk=" << kk << " i=" << i
              << " j0=" << j0;
        }
      }
    }
  }
}

TEST(SimdKernelTest, TrsmRowsMatchesGenericBitwise) {
  Rng rng(19);
  const int n = 43;  // prime
  const int kWidths[] = {1, 2, 3, 5, 8, 16};
  const int kRowCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 17};
  for (int width : kWidths) {
    for (int rows : kRowCounts) {
      const int p0 = 2;
      const int p1 = p0 + width;
      const int i = p1;  // factor rows below the panel
      if (i + rows > n) continue;
      const Matrix l0 = RandomMatrix(n, n, &rng);
      std::vector<double> inv_diag(static_cast<size_t>(width));
      for (double& v : inv_diag) v = 1.0 + rng.NextDouble();

      Matrix want = l0;
      std::vector<double> scratch(
          static_cast<size_t>(simd::kTrsmMaxLanes) * width);
      simd::generic::TrsmRows(want.data(), n, p0, p1, inv_diag.data(), i,
                              rows, scratch.data());
      for (simd::CpuLevel level : Levels()) {
        ScopedLevel forced(level);
        Matrix got = l0;
        simd::Dispatch().trsm_rows(got.data(), n, p0, p1, inv_diag.data(),
                                   i, rows, scratch.data());
        ASSERT_TRUE(BitwiseEqual(want, got))
            << simd::CpuLevelName(level) << " width=" << width
            << " rows=" << rows;
      }
    }
  }
}

TEST(SimdKernelTest, DowndateTileMatchesGenericBitwise) {
  Rng rng(23);
  constexpr int kLanes = simd::kDowndateLanes;
  const int kWidths[] = {1, 2, 3, 5, 8};
  const int kDepths[] = {1, 2, 3, 7, 8, 13};
  for (int width : kWidths) {
    for (int k : kDepths) {
      const Matrix l0 = RandomMatrix(kLanes, width, &rng);
      const std::vector<double> w0 =
          RandomBuffer(static_cast<size_t>(k) * kLanes, &rng);
      // Small coefficients keep the recurrence well-conditioned.
      std::vector<double> p(static_cast<size_t>(width) * k);
      std::vector<double> g(static_cast<size_t>(width) * k);
      for (double& v : p) v = 0.1 * rng.NextGaussian();
      for (double& v : g) v = 0.1 * rng.NextGaussian();

      Matrix want_l = l0;
      std::vector<double> want_w = w0;
      double* want_rows[kLanes];
      for (int q = 0; q < kLanes; ++q) want_rows[q] = want_l.RowPtr(q);
      simd::generic::DowndateTile(want_rows, want_w.data(), p.data(),
                                  g.data(), width, k);
      for (simd::CpuLevel level : Levels()) {
        ScopedLevel forced(level);
        Matrix got_l = l0;
        std::vector<double> got_w = w0;
        double* got_rows[kLanes];
        for (int q = 0; q < kLanes; ++q) got_rows[q] = got_l.RowPtr(q);
        simd::Dispatch().downdate_tile(got_rows, got_w.data(), p.data(),
                                       g.data(), width, k);
        ASSERT_TRUE(BitwiseEqual(want_l, got_l))
            << simd::CpuLevelName(level) << " width=" << width << " k=" << k;
        ASSERT_EQ(std::memcmp(want_w.data(), got_w.data(),
                              sizeof(double) * want_w.size()),
                  0)
            << simd::CpuLevelName(level) << " width=" << width << " k=" << k;
      }
    }
  }
}

// --- Public kernels through the table, across levels and thread counts --

class SimdBlasTest : public ::testing::TestWithParam<int> {};

TEST(SimdBlasTest, DenseKernelsBitwiseIdenticalAcrossLevelsAndThreads) {
  Rng rng(29);
  // 1 and width±1 exercise the degenerate and remainder paths; 97 is prime
  // (never a multiple of any vector width); 130 spans multiple blocks.
  for (int n : {1, 7, 8, 9, 15, 16, 17, 97, 130}) {
    const Matrix a = RandomMatrix(n + 3, n, &rng);
    const Matrix b = RandomMatrix(n + 3, n, &rng);
    const Matrix bt = RandomMatrix(n, n + 3, &rng);

    struct Result {
      Matrix multiply, mta, mtb, gram, outer;
    };
    auto run = [&] {
      Result r;
      r.multiply = Multiply(a, bt);
      r.mta = MultiplyTransposedA(a, b);
      r.mtb = MultiplyTransposedB(a, b);
      r.gram = Gram(a);
      r.outer = OuterGram(a);
      return r;
    };

    SetGlobalThreadCount(1);
    ScopedLevel scalar_level(simd::CpuLevel::kScalar);
    const Result want = run();

    // Sanity: the table-driven kernels agree with the naive references.
    EXPECT_LT(MaxAbsDiff(want.multiply, naive::Multiply(a, bt)), 1e-9);
    EXPECT_LT(MaxAbsDiff(want.gram, naive::Gram(a)), 1e-9);

    for (simd::CpuLevel level : Levels()) {
      ScopedLevel forced(level);
      for (int threads : {1, 4}) {
        SetGlobalThreadCount(threads);
        const Result got = run();
        SetGlobalThreadCount(1);
        EXPECT_TRUE(BitwiseEqual(want.multiply, got.multiply))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(want.mta, got.mta))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(want.mtb, got.mtb))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(want.gram, got.gram))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(want.outer, got.outer))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
      }
    }
  }
}

TEST(SimdLinalgTest, BlockedCholeskyBitwiseIdenticalAcrossLevelsAndThreads) {
  Rng rng(31);
  for (int n : {17, 97, 130}) {
    const Matrix a = RandomMatrix(n, n, &rng);
    Matrix spd = Gram(a);
    AddDiagonal(static_cast<double>(n), &spd);

    SetGlobalThreadCount(1);
    Matrix want;
    {
      ScopedLevel scalar_level(simd::CpuLevel::kScalar);
      Cholesky chol;
      ASSERT_TRUE(chol.Factor(spd));
      want = chol.factor();
    }
    for (simd::CpuLevel level : Levels()) {
      ScopedLevel forced(level);
      for (int threads : {1, 4}) {
        SetGlobalThreadCount(threads);
        Cholesky chol;
        ASSERT_TRUE(chol.Factor(spd));
        SetGlobalThreadCount(1);
        EXPECT_TRUE(BitwiseEqual(want, chol.factor()))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
      }
    }
  }
}

TEST(SimdLinalgTest, RankKDowndateBitwiseIdenticalAcrossLevelsAndThreads) {
  Rng rng(37);
  for (int n : {33, 97}) {
    const Matrix a = RandomMatrix(n + 5, n, &rng);
    Matrix spd = Gram(a);
    AddDiagonal(static_cast<double>(n), &spd);
    Cholesky chol;
    SetGlobalThreadCount(1);
    ASSERT_TRUE(chol.Factor(spd));
    const Matrix l0 = chol.factor();
    Matrix v = RandomMatrix(5, n, &rng);
    for (int i = 0; i < v.rows(); ++i) {
      for (int j = 0; j < v.cols(); ++j) v(i, j) *= 0.01;
    }

    Matrix want = l0;
    {
      ScopedLevel scalar_level(simd::CpuLevel::kScalar);
      ASSERT_TRUE(CholeskyRankKDowndate(&want, v));
    }
    for (simd::CpuLevel level : Levels()) {
      ScopedLevel forced(level);
      for (int threads : {1, 4}) {
        SetGlobalThreadCount(threads);
        Matrix got = l0;
        ASSERT_TRUE(CholeskyRankKDowndate(&got, v));
        SetGlobalThreadCount(1);
        EXPECT_TRUE(BitwiseEqual(want, got))
            << simd::CpuLevelName(level) << " n=" << n << " t=" << threads;
      }
    }
  }
}

DenseDataset MakeDataset(int num_classes, int per_class, int dim,
                         uint64_t seed) {
  Rng rng(seed);
  DenseDataset dataset;
  dataset.num_classes = num_classes;
  dataset.features = Matrix(num_classes * per_class, dim);
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        dataset.features(row, j) =
            (j % num_classes == k ? 2.0 : 0.0) + rng.NextGaussian();
      }
      dataset.labels.push_back(k);
    }
  }
  return dataset;
}

TEST(SimdEndToEndTest, FitAndAlphaSearchBitwiseIdenticalAcrossLevels) {
  const DenseDataset dataset = MakeDataset(4, 24, 31, 41);
  const std::vector<double> alphas = {0.01, 1.0, 100.0};

  SetGlobalThreadCount(1);
  SrdaOptions options;
  options.alpha = 0.5;

  SrdaModel want_model;
  AlphaSearchResult want_search;
  {
    ScopedLevel scalar_level(simd::CpuLevel::kScalar);
    want_model = FitSrda(dataset.features, dataset.labels,
                         dataset.num_classes, options);
    want_search = SelectSrdaAlpha(dataset, alphas, /*num_folds=*/3,
                                  /*seed=*/7);
  }
  ASSERT_TRUE(want_model.converged);

  for (simd::CpuLevel level : Levels()) {
    ScopedLevel forced(level);
    for (int threads : {1, 4}) {
      SetGlobalThreadCount(threads);
      const SrdaModel model = FitSrda(dataset.features, dataset.labels,
                                      dataset.num_classes, options);
      const AlphaSearchResult search =
          SelectSrdaAlpha(dataset, alphas, /*num_folds=*/3, /*seed=*/7);
      SetGlobalThreadCount(1);
      ASSERT_TRUE(model.converged);
      EXPECT_TRUE(BitwiseEqual(want_model.embedding.projection(),
                               model.embedding.projection()))
          << simd::CpuLevelName(level) << " t=" << threads;
      EXPECT_TRUE(BitwiseEqual(want_model.embedding.bias(),
                               model.embedding.bias()))
          << simd::CpuLevelName(level) << " t=" << threads;
      EXPECT_EQ(want_search.best_index, search.best_index)
          << simd::CpuLevelName(level) << " t=" << threads;
      ASSERT_EQ(want_search.errors.size(), search.errors.size());
      for (size_t i = 0; i < search.errors.size(); ++i) {
        EXPECT_EQ(want_search.errors[i], search.errors[i])
            << simd::CpuLevelName(level) << " t=" << threads << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace srda
