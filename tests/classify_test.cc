// Tests for classifiers and evaluation helpers.

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "matrix/matrix.h"

namespace srda {
namespace {

TEST(CentroidClassifierTest, SeparatedClusters) {
  Matrix train = Matrix::FromRows({{0.0, 0.0},
                                   {0.2, -0.1},
                                   {5.0, 5.0},
                                   {5.1, 4.9}});
  CentroidClassifier classifier;
  classifier.Fit(train, {0, 0, 1, 1}, 2);
  const Matrix test = Matrix::FromRows({{0.1, 0.1}, {4.8, 5.2}});
  const std::vector<int> predictions = classifier.Predict(test);
  EXPECT_EQ(predictions[0], 0);
  EXPECT_EQ(predictions[1], 1);
}

TEST(CentroidClassifierTest, CentroidsAreClassMeans) {
  Matrix train = Matrix::FromRows({{0.0, 2.0}, {2.0, 0.0}, {10.0, 10.0}});
  CentroidClassifier classifier;
  classifier.Fit(train, {0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(classifier.centroids()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(classifier.centroids()(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(classifier.centroids()(1, 0), 10.0);
}

TEST(CentroidClassifierDeathTest, PredictBeforeFitAborts) {
  CentroidClassifier classifier;
  EXPECT_DEATH(classifier.Predict(Matrix(1, 2)), "before Fit");
}

TEST(CentroidClassifierDeathTest, MissingClassAborts) {
  CentroidClassifier classifier;
  Matrix train(2, 2);
  EXPECT_DEATH(classifier.Fit(train, {0, 0}, 2), "no training samples");
}

TEST(CentroidClassifierDeathTest, DimensionMismatchAborts) {
  CentroidClassifier classifier;
  Matrix train(2, 3);
  classifier.Fit(train, {0, 1}, 2);
  EXPECT_DEATH(classifier.Predict(Matrix(1, 2)), "dimension mismatch");
}

TEST(KnnClassifierTest, OneNearestNeighbor) {
  Matrix train = Matrix::FromRows({{0.0}, {1.0}, {10.0}});
  KnnClassifier classifier(1);
  classifier.Fit(train, {0, 0, 1}, 2);
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.4}, {9.0}}));
  EXPECT_EQ(predictions[0], 0);
  EXPECT_EQ(predictions[1], 1);
}

TEST(KnnClassifierTest, MajorityVote) {
  Matrix train = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {3.0}});
  KnnClassifier classifier(3);
  classifier.Fit(train, {0, 1, 1, 1}, 2);
  // Query near 0: neighbors {0, 1, 2} have labels {0, 1, 1} -> class 1.
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.1}}));
  EXPECT_EQ(predictions[0], 1);
}

TEST(KnnClassifierTest, KLargerThanTrainSetClamped) {
  Matrix train = Matrix::FromRows({{0.0}, {5.0}});
  KnnClassifier classifier(10);
  classifier.Fit(train, {0, 1}, 2);
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.2}}));
  EXPECT_EQ(predictions.size(), 1u);
}

TEST(KnnClassifierDeathTest, NonPositiveKAborts) {
  EXPECT_DEATH(KnnClassifier(0), "positive");
}

TEST(ErrorRateTest, CountsMismatches) {
  EXPECT_DOUBLE_EQ(ErrorRate({0, 1, 2, 0}, {0, 1, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ErrorRate({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(ErrorRate({0}, {1}), 1.0);
}

TEST(ErrorRateDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(ErrorRate({0, 1}, {0}), "size mismatch");
  EXPECT_DEATH(ErrorRate({}, {}), "empty");
}

TEST(MeanStdTest, KnownValues) {
  const MeanStd stats = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.stddev, 2.138, 1e-3);  // Sample stddev.
}

TEST(MeanStdTest, SingleValueZeroStddev) {
  const MeanStd stats = ComputeMeanStd({3.5});
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(ClassifierAgreementTest, KnnAndCentroidAgreeOnWellSeparatedData) {
  Rng rng(7);
  const int per_class = 30;
  Matrix data(3 * per_class, 2);
  std::vector<int> labels;
  const double centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      data(row, 0) = centers[k][0] + rng.NextGaussian();
      data(row, 1) = centers[k][1] + rng.NextGaussian();
      labels.push_back(k);
    }
  }
  CentroidClassifier centroid;
  centroid.Fit(data, labels, 3);
  KnnClassifier knn(5);
  knn.Fit(data, labels, 3);
  const std::vector<int> a = centroid.Predict(data);
  const std::vector<int> b = knn.Predict(data);
  int disagreements = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++disagreements;
  }
  EXPECT_LT(disagreements, 5);
}

}  // namespace
}  // namespace srda
