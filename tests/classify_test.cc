// Tests for classifiers and evaluation helpers.

#include <algorithm>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "matrix/matrix.h"

namespace srda {
namespace {

TEST(CentroidClassifierTest, SeparatedClusters) {
  Matrix train = Matrix::FromRows({{0.0, 0.0},
                                   {0.2, -0.1},
                                   {5.0, 5.0},
                                   {5.1, 4.9}});
  CentroidClassifier classifier;
  classifier.Fit(train, {0, 0, 1, 1}, 2);
  const Matrix test = Matrix::FromRows({{0.1, 0.1}, {4.8, 5.2}});
  const std::vector<int> predictions = classifier.Predict(test);
  EXPECT_EQ(predictions[0], 0);
  EXPECT_EQ(predictions[1], 1);
}

TEST(CentroidClassifierTest, CentroidsAreClassMeans) {
  Matrix train = Matrix::FromRows({{0.0, 2.0}, {2.0, 0.0}, {10.0, 10.0}});
  CentroidClassifier classifier;
  classifier.Fit(train, {0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(classifier.centroids()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(classifier.centroids()(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(classifier.centroids()(1, 0), 10.0);
}

TEST(CentroidClassifierDeathTest, PredictBeforeFitAborts) {
  CentroidClassifier classifier;
  EXPECT_DEATH(classifier.Predict(Matrix(1, 2)), "before Fit");
}

TEST(CentroidClassifierDeathTest, MissingClassAborts) {
  CentroidClassifier classifier;
  Matrix train(2, 2);
  EXPECT_DEATH(classifier.Fit(train, {0, 0}, 2), "no training samples");
}

TEST(CentroidClassifierDeathTest, DimensionMismatchAborts) {
  CentroidClassifier classifier;
  Matrix train(2, 3);
  classifier.Fit(train, {0, 1}, 2);
  EXPECT_DEATH(classifier.Predict(Matrix(1, 2)), "dimension mismatch");
}

TEST(KnnClassifierTest, OneNearestNeighbor) {
  Matrix train = Matrix::FromRows({{0.0}, {1.0}, {10.0}});
  KnnClassifier classifier(1);
  classifier.Fit(train, {0, 0, 1}, 2);
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.4}, {9.0}}));
  EXPECT_EQ(predictions[0], 0);
  EXPECT_EQ(predictions[1], 1);
}

TEST(KnnClassifierTest, MajorityVote) {
  Matrix train = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {3.0}});
  KnnClassifier classifier(3);
  classifier.Fit(train, {0, 1, 1, 1}, 2);
  // Query near 0: neighbors {0, 1, 2} have labels {0, 1, 1} -> class 1.
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.1}}));
  EXPECT_EQ(predictions[0], 1);
}

TEST(KnnClassifierTest, KLargerThanTrainSetClamped) {
  Matrix train = Matrix::FromRows({{0.0}, {5.0}});
  KnnClassifier classifier(10);
  classifier.Fit(train, {0, 1}, 2);
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.2}}));
  EXPECT_EQ(predictions.size(), 1u);
}

TEST(KnnClassifierDeathTest, NonPositiveKAborts) {
  EXPECT_DEATH(KnnClassifier(0), "positive");
}

TEST(ErrorRateTest, CountsMismatches) {
  EXPECT_DOUBLE_EQ(ErrorRate({0, 1, 2, 0}, {0, 1, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ErrorRate({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(ErrorRate({0}, {1}), 1.0);
}

TEST(ErrorRateDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(ErrorRate({0, 1}, {0}), "size mismatch");
  EXPECT_DEATH(ErrorRate({}, {}), "empty");
}

TEST(MeanStdTest, KnownValues) {
  const MeanStd stats = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_NEAR(stats.stddev, 2.138, 1e-3);  // Sample stddev.
}

TEST(MeanStdTest, SingleValueZeroStddev) {
  const MeanStd stats = ComputeMeanStd({3.5});
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(ClassifierAgreementTest, KnnAndCentroidAgreeOnWellSeparatedData) {
  Rng rng(7);
  const int per_class = 30;
  Matrix data(3 * per_class, 2);
  std::vector<int> labels;
  const double centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      data(row, 0) = centers[k][0] + rng.NextGaussian();
      data(row, 1) = centers[k][1] + rng.NextGaussian();
      labels.push_back(k);
    }
  }
  CentroidClassifier centroid;
  centroid.Fit(data, labels, 3);
  KnnClassifier knn(5);
  knn.Fit(data, labels, 3);
  const std::vector<int> a = centroid.Predict(data);
  const std::vector<int> b = knn.Predict(data);
  int disagreements = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++disagreements;
  }
  EXPECT_LT(disagreements, 5);
}

// Batched scoring must be row-decomposable: scoring the block all at once,
// one row at a time, or in arbitrary sub-blocks yields identical
// predictions. This is the invariant the serving layer's micro-batching
// rests on.
TEST(ScorerBatchTest, BatchCompositionNeverChangesPredictions) {
  Rng rng(31);
  const int rows = 57;  // odd, so sub-blocks straddle uneven boundaries
  Matrix train(40, 4);
  std::vector<int> labels;
  for (int i = 0; i < train.rows(); ++i) {
    labels.push_back(i % 3);
    for (int j = 0; j < 4; ++j) {
      train(i, j) = 3.0 * (j == i % 3) + rng.NextGaussian();
    }
  }
  Matrix queries(rows, 4);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < 4; ++j) queries(i, j) = rng.NextGaussian();
  }

  CentroidClassifier centroid;
  centroid.Fit(train, labels, 3);
  KnnClassifier knn(3);
  knn.Fit(train, labels, 3);
  for (const Scorer* scorer :
       {static_cast<const Scorer*>(&centroid),
        static_cast<const Scorer*>(&knn)}) {
    const std::vector<int> whole = scorer->ScoreBatch(queries);
    ASSERT_EQ(static_cast<int>(whole.size()), rows);
    for (const int block_rows : {1, 7, 16}) {
      std::vector<int> pieced;
      for (int start = 0; start < rows; start += block_rows) {
        const int n = std::min(block_rows, rows - start);
        Matrix block(n, queries.cols());
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < queries.cols(); ++j) {
            block(i, j) = queries(start + i, j);
          }
        }
        for (int p : scorer->ScoreBatch(block)) pieced.push_back(p);
      }
      EXPECT_EQ(pieced, whole);
    }
  }
}

TEST(ScorerBatchTest, ScorerInterfaceReportsDimensions) {
  CentroidClassifier centroid;
  centroid.SetCentroids(Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}}));
  const Scorer& scorer = centroid;
  EXPECT_EQ(scorer.embedded_dim(), 2);
  EXPECT_EQ(scorer.num_classes(), 2);
  EXPECT_EQ(scorer.ScoreBatch(Matrix::FromRows({{0.9, 0.1}, {0.0, 2.0}})),
            (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace srda
