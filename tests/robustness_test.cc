// Failure-injection and degenerate-input tests: the library must either
// produce a defined result (converged flag, finite outputs) or abort through
// SRDA_CHECK — never return silent garbage.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "core/semi_supervised_srda.h"
#include "core/srda.h"
#include "linalg/cholesky.h"
#include "linalg/lsqr.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"

namespace srda {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool AllFinite(const Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(m(i, j))) return false;
    }
  }
  return true;
}

TEST(RobustnessTest, CholeskyRejectsNanMatrix) {
  Matrix a = Matrix::Identity(3);
  a(1, 1) = kNan;
  Cholesky chol;
  EXPECT_FALSE(chol.Factor(a));
}

TEST(RobustnessTest, CholeskyRejectsInfMatrix) {
  Matrix a = Matrix::Identity(3);
  a(2, 2) = kInf;
  Cholesky chol;
  // Either rejected outright or the factor stays unusable; Factor must not
  // return a "success" with non-finite entries.
  if (chol.Factor(a)) {
    EXPECT_TRUE(AllFinite(chol.factor()));
  }
}

TEST(RobustnessTest, SrdaOnConstantFeatures) {
  // A feature with zero variance adds a zero row/column to the scatter; the
  // ridge keeps the system solvable.
  Rng rng(1);
  Matrix x(20, 4);
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    labels.push_back(i % 2);
    x(i, 0) = 7.5;  // Constant feature.
    for (int j = 1; j < 4; ++j) {
      x(i, j) = 2.0 * (i % 2) + rng.NextGaussian();
    }
  }
  const SrdaModel model = FitSrda(x, labels, 2);
  ASSERT_TRUE(model.converged);
  EXPECT_TRUE(AllFinite(model.embedding.projection()));
  // The constant feature must get (near) zero weight: it carries no signal.
  EXPECT_NEAR(model.embedding.projection()(0, 0), 0.0, 1e-8);
}

TEST(RobustnessTest, SrdaOnDuplicatedSamples) {
  Rng rng(2);
  Matrix x(24, 5);
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 5; ++j) x(i, j) = (i % 2) * 2.0 + rng.NextGaussian();
    labels.push_back(i % 2);
  }
  for (int i = 12; i < 24; ++i) {  // Exact duplicates of the first half.
    for (int j = 0; j < 5; ++j) x(i, j) = x(i - 12, j);
    labels.push_back(labels[static_cast<size_t>(i - 12)]);
  }
  const SrdaModel model = FitSrda(x, labels, 2);
  ASSERT_TRUE(model.converged);
  EXPECT_TRUE(AllFinite(model.embedding.projection()));
}

TEST(RobustnessTest, SrdaAlphaZeroOnRankDeficientReportsFailure) {
  // alpha = 0 with duplicated columns: the primal normal equations are
  // singular; the trainer must report failure, not return garbage.
  Matrix x(10, 3);
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    x(i, 0) = rng.NextGaussian();
    x(i, 1) = x(i, 0);  // Duplicate column.
    x(i, 2) = rng.NextGaussian() + (i % 2);
    labels.push_back(i % 2);
  }
  SrdaOptions options;
  options.alpha = 0.0;
  const SrdaModel model = FitSrda(x, labels, 2, options);
  EXPECT_FALSE(model.converged);
}

TEST(RobustnessTest, RldaAlphaZeroOnRankDeficientReportsFailure) {
  // Same contract as SRDA now that every trainer shares the ridge engine:
  // alpha == 0 on a singular scatter matrix reports converged == false
  // instead of aborting.
  Matrix x(10, 3);
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    x(i, 0) = rng.NextGaussian();
    x(i, 1) = x(i, 0);  // Duplicate column.
    x(i, 2) = rng.NextGaussian() + (i % 2);
    labels.push_back(i % 2);
  }
  RldaOptions options;
  options.alpha = 0.0;
  const RldaModel model = FitRlda(x, labels, 2, options);
  EXPECT_FALSE(model.converged);
}

TEST(RobustnessTest, SemiSupervisedAlphaZeroOnRankDeficientReportsFailure) {
  Matrix x(10, 3);
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    x(i, 0) = rng.NextGaussian();
    x(i, 1) = x(i, 0);  // Duplicate column.
    x(i, 2) = rng.NextGaussian() + (i % 2);
    labels.push_back(i % 2);
  }
  SemiSupervisedSrdaOptions options;
  options.alpha = 0.0;
  options.graph_weight = 0.0;
  const SemiSupervisedSrdaModel model =
      FitSemiSupervisedSrda(x, labels, 2, options);
  EXPECT_FALSE(model.converged);
}

TEST(RobustnessTest, LdaOnIdenticalClassMeans) {
  // All classes share the same distribution: no discriminative direction
  // exists, eigenvalues collapse to ~0. LDA must stay finite and keep at
  // most c-1 directions (possibly 0).
  Rng rng(4);
  Matrix x(30, 4);
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    labels.push_back(i % 3);
    for (int j = 0; j < 4; ++j) x(i, j) = rng.NextGaussian();
  }
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  EXPECT_LE(model.num_directions, 2);
  if (model.num_directions > 0) {
    EXPECT_TRUE(AllFinite(model.embedding.projection()));
  }
}

TEST(RobustnessTest, LdaOnSingleSamplePerClass) {
  Rng rng(5);
  Matrix x(3, 10);
  std::vector<int> labels = {0, 1, 2};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 10; ++j) x(i, j) = rng.NextGaussian() + 2.0 * i;
  }
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  EXPECT_TRUE(AllFinite(model.embedding.projection()));
  // Each training point is its own class: they embed to distinct points.
  const Matrix embedded = model.embedding.Transform(x);
  Vector d01 = embedded.Row(0);
  Axpy(-1.0, embedded.Row(1), &d01);
  EXPECT_GT(Norm2(d01), 1e-6);
}

TEST(RobustnessTest, SrdaWideFeatureScales) {
  // Features spanning ~8 orders of magnitude: still within double-precision
  // reach, results must stay finite and usable.
  Rng rng(6);
  Matrix x(20, 3);
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    labels.push_back(i % 2);
    x(i, 0) = 1e4 * ((i % 2) + 0.1 * rng.NextGaussian());
    x(i, 1) = 1e-4 * rng.NextGaussian();
    x(i, 2) = rng.NextGaussian();
  }
  const SrdaModel model = FitSrda(x, labels, 2);
  ASSERT_TRUE(model.converged);
  EXPECT_TRUE(AllFinite(model.embedding.projection()));
  const Matrix embedded = model.embedding.Transform(x);
  EXPECT_TRUE(AllFinite(embedded));
}

TEST(RobustnessTest, SrdaAbsurdFeatureScalesFailsCleanly) {
  // Scales beyond double precision (condition ~1e18 after the ridge): the
  // trainer must decline rather than return meaningless numbers.
  Rng rng(9);
  Matrix x(20, 3);
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    labels.push_back(i % 2);
    x(i, 0) = 1e9 * ((i % 2) + 0.1 * rng.NextGaussian());
    x(i, 1) = 1e-6 * rng.NextGaussian();
    x(i, 2) = rng.NextGaussian();
  }
  const SrdaModel model = FitSrda(x, labels, 2);
  if (model.converged) {
    EXPECT_TRUE(AllFinite(model.embedding.projection()));
  }
  // Either outcome (clean failure or finite solution) is acceptable; what
  // this test pins down is the absence of silent NaN/Inf output.
}

TEST(RobustnessTest, LsqrOnZeroOperator) {
  const Matrix zero(5, 3);
  const DenseOperator op(&zero);
  Vector b(5, 1.0);
  const LsqrResult result = Lsqr(op, b);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(Norm2(result.x), 0.0);  // A^T b = 0 -> x = 0 is optimal.
}

TEST(RobustnessTest, LsqrHugeDamping) {
  Rng rng(7);
  Matrix a(10, 4);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = rng.NextGaussian();
  }
  const DenseOperator op(&a);
  Vector b(10);
  for (int i = 0; i < 10; ++i) b[i] = rng.NextGaussian();
  LsqrOptions options;
  options.damp = 1e8;  // Essentially forces x -> 0.
  options.max_iterations = 50;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_LT(Norm2(result.x), 1e-10);
}

TEST(RobustnessTest, SymmetricEigenNearlyDegenerateSpectrum) {
  // Eigenvalues clustered within 1e-14 of each other.
  Matrix a = Matrix::Identity(6);
  for (int i = 0; i < 6; ++i) a(i, i) = 1.0 + i * 1e-14;
  const SymmetricEigenResult result = SymmetricEigen(a);
  ASSERT_TRUE(result.converged);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], 1.0, 1e-12);
  }
  EXPECT_LT(MaxAbsDiff(Gram(result.eigenvectors), Matrix::Identity(6)),
            1e-10);
}

TEST(RobustnessTest, ThinSvdOnZeroMatrix) {
  const SvdResult svd = ThinSvd(Matrix(4, 3, 0.0));
  EXPECT_EQ(svd.rank, 0);
}

TEST(RobustnessTest, CentroidClassifierSingleTrainingPoint) {
  Matrix train(2, 2);
  train(0, 0) = 1.0;
  train(1, 0) = -1.0;
  CentroidClassifier classifier;
  classifier.Fit(train, {0, 1}, 2);
  const std::vector<int> predictions =
      classifier.Predict(Matrix::FromRows({{0.9, 0.0}}));
  EXPECT_EQ(predictions[0], 0);
}

TEST(RobustnessTest, RldaHugeAlphaStaysFinite) {
  Rng rng(8);
  Matrix x(18, 4);
  std::vector<int> labels;
  for (int i = 0; i < 18; ++i) {
    labels.push_back(i % 3);
    for (int j = 0; j < 4; ++j) x(i, j) = (i % 3) + rng.NextGaussian();
  }
  RldaOptions options;
  options.alpha = 1e12;
  const RldaModel model = FitRlda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);
  EXPECT_TRUE(AllFinite(model.embedding.projection()));
}

}  // namespace
}  // namespace srda
